# Empty compiler generated dependencies file for external_cubing.
# This may be replaced when dependencies are built.
