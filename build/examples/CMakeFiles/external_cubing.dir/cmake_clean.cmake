file(REMOVE_RECURSE
  "CMakeFiles/external_cubing.dir/external_cubing.cpp.o"
  "CMakeFiles/external_cubing.dir/external_cubing.cpp.o.d"
  "external_cubing"
  "external_cubing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_cubing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
