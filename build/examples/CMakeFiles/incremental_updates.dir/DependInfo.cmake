
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/incremental_updates.cpp" "examples/CMakeFiles/incremental_updates.dir/incremental_updates.cpp.o" "gcc" "examples/CMakeFiles/incremental_updates.dir/incremental_updates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/cure_query.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/cure_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/cure_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/cure_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/cure_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/cure_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cure_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cure_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
