file(REMOVE_RECURSE
  "CMakeFiles/weather_iceberg.dir/weather_iceberg.cpp.o"
  "CMakeFiles/weather_iceberg.dir/weather_iceberg.cpp.o.d"
  "weather_iceberg"
  "weather_iceberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_iceberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
