# Empty compiler generated dependencies file for weather_iceberg.
# This may be replaced when dependencies are built.
