file(REMOVE_RECURSE
  "CMakeFiles/retail_rollup.dir/retail_rollup.cpp.o"
  "CMakeFiles/retail_rollup.dir/retail_rollup.cpp.o.d"
  "retail_rollup"
  "retail_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
