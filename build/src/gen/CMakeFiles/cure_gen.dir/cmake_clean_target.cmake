file(REMOVE_RECURSE
  "libcure_gen.a"
)
