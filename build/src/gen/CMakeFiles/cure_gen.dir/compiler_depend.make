# Empty compiler generated dependencies file for cure_gen.
# This may be replaced when dependencies are built.
