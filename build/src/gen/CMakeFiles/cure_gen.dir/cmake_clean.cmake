file(REMOVE_RECURSE
  "CMakeFiles/cure_gen.dir/datasets.cc.o"
  "CMakeFiles/cure_gen.dir/datasets.cc.o.d"
  "CMakeFiles/cure_gen.dir/zipf.cc.o"
  "CMakeFiles/cure_gen.dir/zipf.cc.o.d"
  "libcure_gen.a"
  "libcure_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
