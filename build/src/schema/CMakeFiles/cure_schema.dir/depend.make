# Empty dependencies file for cure_schema.
# This may be replaced when dependencies are built.
