file(REMOVE_RECURSE
  "libcure_schema.a"
)
