file(REMOVE_RECURSE
  "CMakeFiles/cure_schema.dir/cube_schema.cc.o"
  "CMakeFiles/cure_schema.dir/cube_schema.cc.o.d"
  "CMakeFiles/cure_schema.dir/fact_table.cc.o"
  "CMakeFiles/cure_schema.dir/fact_table.cc.o.d"
  "CMakeFiles/cure_schema.dir/hierarchy.cc.o"
  "CMakeFiles/cure_schema.dir/hierarchy.cc.o.d"
  "CMakeFiles/cure_schema.dir/lattice.cc.o"
  "CMakeFiles/cure_schema.dir/lattice.cc.o.d"
  "CMakeFiles/cure_schema.dir/node_id.cc.o"
  "CMakeFiles/cure_schema.dir/node_id.cc.o.d"
  "libcure_schema.a"
  "libcure_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
