
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/cube_schema.cc" "src/schema/CMakeFiles/cure_schema.dir/cube_schema.cc.o" "gcc" "src/schema/CMakeFiles/cure_schema.dir/cube_schema.cc.o.d"
  "/root/repo/src/schema/fact_table.cc" "src/schema/CMakeFiles/cure_schema.dir/fact_table.cc.o" "gcc" "src/schema/CMakeFiles/cure_schema.dir/fact_table.cc.o.d"
  "/root/repo/src/schema/hierarchy.cc" "src/schema/CMakeFiles/cure_schema.dir/hierarchy.cc.o" "gcc" "src/schema/CMakeFiles/cure_schema.dir/hierarchy.cc.o.d"
  "/root/repo/src/schema/lattice.cc" "src/schema/CMakeFiles/cure_schema.dir/lattice.cc.o" "gcc" "src/schema/CMakeFiles/cure_schema.dir/lattice.cc.o.d"
  "/root/repo/src/schema/node_id.cc" "src/schema/CMakeFiles/cure_schema.dir/node_id.cc.o" "gcc" "src/schema/CMakeFiles/cure_schema.dir/node_id.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cure_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cure_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
