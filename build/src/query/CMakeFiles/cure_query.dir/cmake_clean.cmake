file(REMOVE_RECURSE
  "CMakeFiles/cure_query.dir/node_query.cc.o"
  "CMakeFiles/cure_query.dir/node_query.cc.o.d"
  "CMakeFiles/cure_query.dir/reference.cc.o"
  "CMakeFiles/cure_query.dir/reference.cc.o.d"
  "CMakeFiles/cure_query.dir/workload.cc.o"
  "CMakeFiles/cure_query.dir/workload.cc.o.d"
  "libcure_query.a"
  "libcure_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
