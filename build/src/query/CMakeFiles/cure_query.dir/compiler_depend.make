# Empty compiler generated dependencies file for cure_query.
# This may be replaced when dependencies are built.
