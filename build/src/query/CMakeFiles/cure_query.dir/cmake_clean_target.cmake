file(REMOVE_RECURSE
  "libcure_query.a"
)
