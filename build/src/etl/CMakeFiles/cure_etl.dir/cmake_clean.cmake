file(REMOVE_RECURSE
  "CMakeFiles/cure_etl.dir/csv.cc.o"
  "CMakeFiles/cure_etl.dir/csv.cc.o.d"
  "CMakeFiles/cure_etl.dir/dictionary.cc.o"
  "CMakeFiles/cure_etl.dir/dictionary.cc.o.d"
  "CMakeFiles/cure_etl.dir/loader.cc.o"
  "CMakeFiles/cure_etl.dir/loader.cc.o.d"
  "CMakeFiles/cure_etl.dir/schema_io.cc.o"
  "CMakeFiles/cure_etl.dir/schema_io.cc.o.d"
  "libcure_etl.a"
  "libcure_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
