
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/etl/csv.cc" "src/etl/CMakeFiles/cure_etl.dir/csv.cc.o" "gcc" "src/etl/CMakeFiles/cure_etl.dir/csv.cc.o.d"
  "/root/repo/src/etl/dictionary.cc" "src/etl/CMakeFiles/cure_etl.dir/dictionary.cc.o" "gcc" "src/etl/CMakeFiles/cure_etl.dir/dictionary.cc.o.d"
  "/root/repo/src/etl/loader.cc" "src/etl/CMakeFiles/cure_etl.dir/loader.cc.o" "gcc" "src/etl/CMakeFiles/cure_etl.dir/loader.cc.o.d"
  "/root/repo/src/etl/schema_io.cc" "src/etl/CMakeFiles/cure_etl.dir/schema_io.cc.o" "gcc" "src/etl/CMakeFiles/cure_etl.dir/schema_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/cure_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cure_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cure_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
