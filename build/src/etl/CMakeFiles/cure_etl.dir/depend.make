# Empty dependencies file for cure_etl.
# This may be replaced when dependencies are built.
