file(REMOVE_RECURSE
  "libcure_etl.a"
)
