file(REMOVE_RECURSE
  "libcure_common.a"
)
