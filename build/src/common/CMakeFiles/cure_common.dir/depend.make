# Empty dependencies file for cure_common.
# This may be replaced when dependencies are built.
