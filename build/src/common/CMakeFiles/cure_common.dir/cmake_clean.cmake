file(REMOVE_RECURSE
  "CMakeFiles/cure_common.dir/bytes.cc.o"
  "CMakeFiles/cure_common.dir/bytes.cc.o.d"
  "CMakeFiles/cure_common.dir/env.cc.o"
  "CMakeFiles/cure_common.dir/env.cc.o.d"
  "CMakeFiles/cure_common.dir/logging.cc.o"
  "CMakeFiles/cure_common.dir/logging.cc.o.d"
  "CMakeFiles/cure_common.dir/status.cc.o"
  "CMakeFiles/cure_common.dir/status.cc.o.d"
  "libcure_common.a"
  "libcure_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
