
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bitmap.cc" "src/storage/CMakeFiles/cure_storage.dir/bitmap.cc.o" "gcc" "src/storage/CMakeFiles/cure_storage.dir/bitmap.cc.o.d"
  "/root/repo/src/storage/buffer_cache.cc" "src/storage/CMakeFiles/cure_storage.dir/buffer_cache.cc.o" "gcc" "src/storage/CMakeFiles/cure_storage.dir/buffer_cache.cc.o.d"
  "/root/repo/src/storage/external_sort.cc" "src/storage/CMakeFiles/cure_storage.dir/external_sort.cc.o" "gcc" "src/storage/CMakeFiles/cure_storage.dir/external_sort.cc.o.d"
  "/root/repo/src/storage/file_io.cc" "src/storage/CMakeFiles/cure_storage.dir/file_io.cc.o" "gcc" "src/storage/CMakeFiles/cure_storage.dir/file_io.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/cure_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/cure_storage.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cure_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
