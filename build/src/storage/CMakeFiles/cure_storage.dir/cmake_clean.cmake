file(REMOVE_RECURSE
  "CMakeFiles/cure_storage.dir/bitmap.cc.o"
  "CMakeFiles/cure_storage.dir/bitmap.cc.o.d"
  "CMakeFiles/cure_storage.dir/buffer_cache.cc.o"
  "CMakeFiles/cure_storage.dir/buffer_cache.cc.o.d"
  "CMakeFiles/cure_storage.dir/external_sort.cc.o"
  "CMakeFiles/cure_storage.dir/external_sort.cc.o.d"
  "CMakeFiles/cure_storage.dir/file_io.cc.o"
  "CMakeFiles/cure_storage.dir/file_io.cc.o.d"
  "CMakeFiles/cure_storage.dir/relation.cc.o"
  "CMakeFiles/cure_storage.dir/relation.cc.o.d"
  "libcure_storage.a"
  "libcure_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
