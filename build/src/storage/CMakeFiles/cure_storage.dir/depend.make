# Empty dependencies file for cure_storage.
# This may be replaced when dependencies are built.
