file(REMOVE_RECURSE
  "libcure_storage.a"
)
