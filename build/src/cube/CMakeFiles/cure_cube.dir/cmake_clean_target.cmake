file(REMOVE_RECURSE
  "libcure_cube.a"
)
