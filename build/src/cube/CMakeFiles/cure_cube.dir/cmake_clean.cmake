file(REMOVE_RECURSE
  "CMakeFiles/cure_cube.dir/cube_store.cc.o"
  "CMakeFiles/cure_cube.dir/cube_store.cc.o.d"
  "CMakeFiles/cure_cube.dir/signature.cc.o"
  "CMakeFiles/cure_cube.dir/signature.cc.o.d"
  "CMakeFiles/cure_cube.dir/source.cc.o"
  "CMakeFiles/cure_cube.dir/source.cc.o.d"
  "libcure_cube.a"
  "libcure_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
