# Empty compiler generated dependencies file for cure_cube.
# This may be replaced when dependencies are built.
