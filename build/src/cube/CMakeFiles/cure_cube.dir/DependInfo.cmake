
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cube/cube_store.cc" "src/cube/CMakeFiles/cure_cube.dir/cube_store.cc.o" "gcc" "src/cube/CMakeFiles/cure_cube.dir/cube_store.cc.o.d"
  "/root/repo/src/cube/signature.cc" "src/cube/CMakeFiles/cure_cube.dir/signature.cc.o" "gcc" "src/cube/CMakeFiles/cure_cube.dir/signature.cc.o.d"
  "/root/repo/src/cube/source.cc" "src/cube/CMakeFiles/cure_cube.dir/source.cc.o" "gcc" "src/cube/CMakeFiles/cure_cube.dir/source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/cure_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cure_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cure_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
