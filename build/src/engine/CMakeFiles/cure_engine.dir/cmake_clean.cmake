file(REMOVE_RECURSE
  "CMakeFiles/cure_engine.dir/bubst.cc.o"
  "CMakeFiles/cure_engine.dir/bubst.cc.o.d"
  "CMakeFiles/cure_engine.dir/buc.cc.o"
  "CMakeFiles/cure_engine.dir/buc.cc.o.d"
  "CMakeFiles/cure_engine.dir/cure.cc.o"
  "CMakeFiles/cure_engine.dir/cure.cc.o.d"
  "CMakeFiles/cure_engine.dir/incremental.cc.o"
  "CMakeFiles/cure_engine.dir/incremental.cc.o.d"
  "CMakeFiles/cure_engine.dir/partition.cc.o"
  "CMakeFiles/cure_engine.dir/partition.cc.o.d"
  "libcure_engine.a"
  "libcure_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
