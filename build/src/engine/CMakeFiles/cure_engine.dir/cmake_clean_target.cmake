file(REMOVE_RECURSE
  "libcure_engine.a"
)
