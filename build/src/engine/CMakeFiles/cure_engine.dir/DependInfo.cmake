
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bubst.cc" "src/engine/CMakeFiles/cure_engine.dir/bubst.cc.o" "gcc" "src/engine/CMakeFiles/cure_engine.dir/bubst.cc.o.d"
  "/root/repo/src/engine/buc.cc" "src/engine/CMakeFiles/cure_engine.dir/buc.cc.o" "gcc" "src/engine/CMakeFiles/cure_engine.dir/buc.cc.o.d"
  "/root/repo/src/engine/cure.cc" "src/engine/CMakeFiles/cure_engine.dir/cure.cc.o" "gcc" "src/engine/CMakeFiles/cure_engine.dir/cure.cc.o.d"
  "/root/repo/src/engine/incremental.cc" "src/engine/CMakeFiles/cure_engine.dir/incremental.cc.o" "gcc" "src/engine/CMakeFiles/cure_engine.dir/incremental.cc.o.d"
  "/root/repo/src/engine/partition.cc" "src/engine/CMakeFiles/cure_engine.dir/partition.cc.o" "gcc" "src/engine/CMakeFiles/cure_engine.dir/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cube/CMakeFiles/cure_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/cure_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/cure_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cure_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cure_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
