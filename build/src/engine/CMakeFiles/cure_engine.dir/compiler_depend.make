# Empty compiler generated dependencies file for cure_engine.
# This may be replaced when dependencies are built.
