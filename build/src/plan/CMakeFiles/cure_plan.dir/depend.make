# Empty dependencies file for cure_plan.
# This may be replaced when dependencies are built.
