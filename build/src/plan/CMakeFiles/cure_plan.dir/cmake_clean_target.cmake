file(REMOVE_RECURSE
  "libcure_plan.a"
)
