file(REMOVE_RECURSE
  "CMakeFiles/cure_plan.dir/execution_plan.cc.o"
  "CMakeFiles/cure_plan.dir/execution_plan.cc.o.d"
  "libcure_plan.a"
  "libcure_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
