file(REMOVE_RECURSE
  "CMakeFiles/node_id_test.dir/node_id_test.cc.o"
  "CMakeFiles/node_id_test.dir/node_id_test.cc.o.d"
  "node_id_test"
  "node_id_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
