file(REMOVE_RECURSE
  "CMakeFiles/option_matrix_test.dir/option_matrix_test.cc.o"
  "CMakeFiles/option_matrix_test.dir/option_matrix_test.cc.o.d"
  "option_matrix_test"
  "option_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/option_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
