# Empty compiler generated dependencies file for option_matrix_test.
# This may be replaced when dependencies are built.
