file(REMOVE_RECURSE
  "CMakeFiles/complex_hierarchy_test.dir/complex_hierarchy_test.cc.o"
  "CMakeFiles/complex_hierarchy_test.dir/complex_hierarchy_test.cc.o.d"
  "complex_hierarchy_test"
  "complex_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
