file(REMOVE_RECURSE
  "CMakeFiles/cure_core_test.dir/cure_core_test.cc.o"
  "CMakeFiles/cure_core_test.dir/cure_core_test.cc.o.d"
  "cure_core_test"
  "cure_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
