# Empty dependencies file for cure_core_test.
# This may be replaced when dependencies are built.
