file(REMOVE_RECURSE
  "CMakeFiles/cube_store_test.dir/cube_store_test.cc.o"
  "CMakeFiles/cube_store_test.dir/cube_store_test.cc.o.d"
  "cube_store_test"
  "cube_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
