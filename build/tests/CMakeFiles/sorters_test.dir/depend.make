# Empty dependencies file for sorters_test.
# This may be replaced when dependencies are built.
