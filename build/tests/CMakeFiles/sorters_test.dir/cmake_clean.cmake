file(REMOVE_RECURSE
  "CMakeFiles/sorters_test.dir/sorters_test.cc.o"
  "CMakeFiles/sorters_test.dir/sorters_test.cc.o.d"
  "sorters_test"
  "sorters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
