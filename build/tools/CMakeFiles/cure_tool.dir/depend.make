# Empty dependencies file for cure_tool.
# This may be replaced when dependencies are built.
