file(REMOVE_RECURSE
  "CMakeFiles/cure_tool.dir/cure_tool.cpp.o"
  "CMakeFiles/cure_tool.dir/cure_tool.cpp.o.d"
  "cure_tool"
  "cure_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cure_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
