# Empty compiler generated dependencies file for bench_fig23_24_apb.
# This may be replaced when dependencies are built.
