file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_24_apb.dir/bench_fig23_24_apb.cpp.o"
  "CMakeFiles/bench_fig23_24_apb.dir/bench_fig23_24_apb.cpp.o.d"
  "bench_fig23_24_apb"
  "bench_fig23_24_apb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_24_apb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
