# Empty dependencies file for bench_plan_ablation.
# This may be replaced when dependencies are built.
