file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_ablation.dir/bench_plan_ablation.cpp.o"
  "CMakeFiles/bench_plan_ablation.dir/bench_plan_ablation.cpp.o.d"
  "bench_plan_ablation"
  "bench_plan_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
