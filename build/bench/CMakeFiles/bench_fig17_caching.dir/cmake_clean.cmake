file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_caching.dir/bench_fig17_caching.cpp.o"
  "CMakeFiles/bench_fig17_caching.dir/bench_fig17_caching.cpp.o.d"
  "bench_fig17_caching"
  "bench_fig17_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
