file(REMOVE_RECURSE
  "CMakeFiles/bench_iceberg_queries.dir/bench_iceberg_queries.cpp.o"
  "CMakeFiles/bench_iceberg_queries.dir/bench_iceberg_queries.cpp.o.d"
  "bench_iceberg_queries"
  "bench_iceberg_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iceberg_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
