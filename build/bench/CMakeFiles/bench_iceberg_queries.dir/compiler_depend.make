# Empty compiler generated dependencies file for bench_iceberg_queries.
# This may be replaced when dependencies are built.
