# Empty compiler generated dependencies file for bench_fig21_22_skew.
# This may be replaced when dependencies are built.
