file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_22_skew.dir/bench_fig21_22_skew.cpp.o"
  "CMakeFiles/bench_fig21_22_skew.dir/bench_fig21_22_skew.cpp.o.d"
  "bench_fig21_22_skew"
  "bench_fig21_22_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_22_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
