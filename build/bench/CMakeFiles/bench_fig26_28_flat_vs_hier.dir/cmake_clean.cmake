file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_28_flat_vs_hier.dir/bench_fig26_28_flat_vs_hier.cpp.o"
  "CMakeFiles/bench_fig26_28_flat_vs_hier.dir/bench_fig26_28_flat_vs_hier.cpp.o.d"
  "bench_fig26_28_flat_vs_hier"
  "bench_fig26_28_flat_vs_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_28_flat_vs_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
