# Empty dependencies file for bench_fig26_28_flat_vs_hier.
# This may be replaced when dependencies are built.
