# Empty compiler generated dependencies file for bench_fig19_20_dims.
# This may be replaced when dependencies are built.
