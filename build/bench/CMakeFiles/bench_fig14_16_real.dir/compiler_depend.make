# Empty compiler generated dependencies file for bench_fig14_16_real.
# This may be replaced when dependencies are built.
