file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_pool.dir/bench_fig18_pool.cpp.o"
  "CMakeFiles/bench_fig18_pool.dir/bench_fig18_pool.cpp.o.d"
  "bench_fig18_pool"
  "bench_fig18_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
