# Empty dependencies file for bench_fig18_pool.
# This may be replaced when dependencies are built.
