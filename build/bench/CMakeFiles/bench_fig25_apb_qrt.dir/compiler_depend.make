# Empty compiler generated dependencies file for bench_fig25_apb_qrt.
# This may be replaced when dependencies are built.
