file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_apb_qrt.dir/bench_fig25_apb_qrt.cpp.o"
  "CMakeFiles/bench_fig25_apb_qrt.dir/bench_fig25_apb_qrt.cpp.o.d"
  "bench_fig25_apb_qrt"
  "bench_fig25_apb_qrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_apb_qrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
