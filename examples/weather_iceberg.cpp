// Iceberg cubing on the Sep85L-style weather dataset.
//
//   $ ./build/examples/weather_iceberg
//
// Being BUC-based, CURE constructs iceberg cubes (HAVING count(*) >=
// min_support) natively, and count-iceberg *queries* over a complete CURE
// cube can skip TT relations outright since a TT's count is always 1 — the
// property the paper's Sec. 7 highlights.

#include <cstdio>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "query/node_query.h"
#include "query/workload.h"

using cure::engine::BuildCure;
using cure::engine::CureOptions;
using cure::engine::FactInput;
using cure::query::ResultSink;

int main() {
  cure::gen::Dataset weather = cure::gen::MakeSep85LProxy(/*row_divisor=*/10);
  std::printf("Sep85L-style weather reports: %llu rows, 9 dimensions\n",
              static_cast<unsigned long long>(weather.table.num_rows()));

  FactInput input{.table = &weather.table};

  // Complete cube vs iceberg cubes at increasing support thresholds.
  std::printf("\n%-22s %12s %14s %10s\n", "cube", "build time", "size",
              "tuples");
  for (uint64_t minsup : {uint64_t{1}, uint64_t{5}, uint64_t{20}}) {
    CureOptions options;
    options.min_support = minsup;
    auto cube = BuildCure(weather.schema, input, options);
    CURE_CHECK(cube.ok()) << cube.status().ToString();
    const auto& stats = (*cube)->stats();
    char label[32];
    std::snprintf(label, sizeof(label),
                  minsup == 1 ? "complete" : "iceberg minsup=%llu",
                  static_cast<unsigned long long>(minsup));
    std::printf("%-22s %9.2f s  %12s %10llu\n", label, stats.build_seconds,
                cure::FormatBytes(stats.cube_bytes).c_str(),
                static_cast<unsigned long long>(stats.tt + stats.nt + stats.cat));
  }

  // Count-iceberg queries over the complete cube: TTs are skipped.
  CureOptions options;
  auto cube = BuildCure(weather.schema, input, options);
  CURE_CHECK(cube.ok());
  auto engine = cure::query::CureQueryEngine::Create(cube->get(), 1.0);
  CURE_CHECK(engine.ok());
  const cure::schema::NodeIdCodec& codec = (*cube)->store().codec();
  const int count_agg = 1;  // the COUNT aggregate's index

  std::vector<cure::schema::NodeId> workload =
      cure::query::RandomNodeWorkload(codec, 64, /*seed=*/9);
  double full_s = 0, iceberg_s = 0;
  uint64_t full_tuples = 0, iceberg_tuples = 0;
  for (cure::schema::NodeId node : workload) {
    ResultSink sink;
    cure::Stopwatch watch;
    CURE_CHECK_OK((*engine)->QueryNode(node, &sink));
    full_s += watch.ElapsedSeconds();
    full_tuples += sink.count();

    sink.Reset();
    watch.Restart();
    CURE_CHECK_OK((*engine)->QueryNodeCountIceberg(node, count_agg,
                                                   /*min_count=*/10, &sink));
    iceberg_s += watch.ElapsedSeconds();
    iceberg_tuples += sink.count();
  }
  std::printf(
      "\n64 random node queries over the complete cube:\n"
      "  full results:              %8.2f ms, %llu tuples\n"
      "  HAVING count(*) >= 10:     %8.2f ms, %llu tuples "
      "(TT relations skipped)\n",
      full_s * 1e3, static_cast<unsigned long long>(full_tuples),
      iceberg_s * 1e3, static_cast<unsigned long long>(iceberg_tuples));
  return 0;
}
