// Incremental cube maintenance (the paper's Sec. 8 future work, implemented):
// append new fact rows and update the materialized CURE cube in place
// instead of rebuilding it.
//
//   $ ./build/examples/incremental_updates

#include <cstdio>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/cure.h"
#include "engine/incremental.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"

using cure::engine::ApplyDelta;
using cure::engine::BuildCure;
using cure::engine::CureOptions;
using cure::engine::FactInput;

namespace {

void AppendDay(cure::schema::FactTable* table, uint64_t rows, uint64_t seed) {
  cure::gen::Rng rng(seed);
  for (uint64_t i = 0; i < rows; ++i) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(2000)),
                             static_cast<uint32_t>(rng.NextRange(300)),
                             static_cast<uint32_t>(rng.NextRange(12))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(500)) + 1;
    table->AppendRow(row, &m);
  }
}

}  // namespace

int main() {
  // Schema: product (3 levels), store (2 levels), month.
  std::vector<cure::schema::Dimension> dims;
  dims.push_back(cure::schema::Dimension::Linear("Product", {2000, 100, 8}));
  dims.push_back(cure::schema::Dimension::Linear("Store", {300, 20}));
  dims.push_back(cure::schema::Dimension::Flat("Month", 12));
  auto schema = cure::schema::CubeSchema::Create(
      std::move(dims), 1,
      {{cure::schema::AggFn::kSum, 0, "revenue"},
       {cure::schema::AggFn::kCount, 0, "sales"}});
  CURE_CHECK(schema.ok());

  cure::schema::FactTable table(3, 1);
  AppendDay(&table, 200000, 1);
  std::printf("initial load: %llu rows\n",
              static_cast<unsigned long long>(table.num_rows()));

  CureOptions options;
  FactInput input{.table = &table};
  auto cube = BuildCure(*schema, input, options);
  CURE_CHECK(cube.ok()) << cube.status().ToString();
  std::printf("initial cube: %.2f s, %s\n\n", (*cube)->stats().build_seconds,
              cure::FormatBytes((*cube)->TotalBytes()).c_str());

  // Nightly batches: append and update in place.
  std::printf("%-8s %10s %12s %14s %14s %12s\n", "batch", "rows", "update",
              "absorbed TTs", "merged", "cube size");
  for (int day = 1; day <= 5; ++day) {
    const uint64_t old_rows = table.num_rows();
    AppendDay(&table, 5000, 100 + day);
    auto stats = ApplyDelta(cube->get(), table, old_rows);
    CURE_CHECK(stats.ok()) << stats.status().ToString();
    std::printf("%-8d %10llu %10.0f ms %14llu %14llu %12s\n", day,
                static_cast<unsigned long long>(stats->delta_rows),
                stats->seconds * 1e3,
                static_cast<unsigned long long>(stats->absorbed_tts),
                static_cast<unsigned long long>(stats->merged_tuples),
                cure::FormatBytes((*cube)->TotalBytes()).c_str());
  }

  // Verify a few nodes against brute force over the grown table.
  auto engine = cure::query::CureQueryEngine::Create(cube->get(), 1.0);
  CURE_CHECK(engine.ok());
  const cure::schema::NodeIdCodec& codec = (*cube)->store().codec();
  int checked = 0;
  for (cure::schema::NodeId id = 0; id < codec.num_nodes(); id += 7) {
    cure::query::ResultSink sink(/*retain=*/true);
    CURE_CHECK_OK((*engine)->QueryNode(id, &sink));
    auto expected = cure::query::ReferenceNodeResult(*schema, table, id);
    CURE_CHECK(expected.ok());
    CURE_CHECK(cure::query::SameResults(sink.TakeRows(),
                                        std::move(expected).value()))
        << "node " << id;
    ++checked;
  }
  std::printf("\nverified %d nodes against brute force after 5 update batches "
              "— the maintained cube is exact.\n", checked);
  return 0;
}
