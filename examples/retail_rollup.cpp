// Retail roll-up/drill-down scenario on an APB-1-style star schema.
//
//   $ ./build/examples/retail_rollup
//
// Demonstrates why hierarchical cubes matter (Sec. 1 of the paper): the
// same analytical session is answered (a) from a hierarchical CURE cube
// with pre-computed group-bys at every granularity, and (b) from a flat
// cube that must aggregate on the fly for every roll-up — the trade-off
// quantified by the paper's Figs. 26-28.

#include <cstdio>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "query/node_query.h"

using cure::Stopwatch;
using cure::engine::BuildCure;
using cure::engine::CureOptions;
using cure::engine::FactInput;
using cure::query::ResultSink;

int main() {
  cure::gen::ApbSpec spec;
  spec.density = 0.4;
  spec.scale_divisor = 20;  // ~250k rows
  cure::gen::Dataset apb = cure::gen::MakeApb(spec);
  std::printf("APB-1 retail fact table: %llu rows, %s, 168 lattice nodes\n",
              static_cast<unsigned long long>(apb.table.num_rows()),
              cure::FormatBytes(apb.table.bytes()).c_str());

  FactInput input{.table = &apb.table};

  // Hierarchical cube.
  CureOptions hier_options;
  auto hier = BuildCure(apb.schema, input, hier_options);
  CURE_CHECK(hier.ok()) << hier.status().ToString();
  std::printf("hierarchical CURE cube: %.2f s, %s\n",
              (*hier)->stats().build_seconds,
              cure::FormatBytes((*hier)->TotalBytes()).c_str());

  // Flat cube (FCURE): leaf levels only.
  CureOptions flat_options;
  flat_options.flat = true;
  auto flat = BuildCure(apb.schema, input, flat_options);
  CURE_CHECK(flat.ok()) << flat.status().ToString();
  std::printf("flat FCURE cube:        %.2f s, %s\n",
              (*flat)->stats().build_seconds,
              cure::FormatBytes((*flat)->TotalBytes()).c_str());

  auto hier_engine = cure::query::CureQueryEngine::Create(hier->get(), 1.0);
  auto flat_engine = cure::query::CureQueryEngine::Create(flat->get(), 1.0);
  CURE_CHECK(hier_engine.ok() && flat_engine.ok());

  const cure::schema::NodeIdCodec& codec = (*hier)->store().codec();
  // An analyst session: start broad, drill into detail.
  struct Step {
    const char* question;
    std::vector<int> levels;  // product, customer, time, channel
  };
  // ALL levels: product 6, customer 2, time 3, channel 1.
  const Step session[] = {
      {"Sales by product division per year", {5, 2, 2, 1}},
      {"  drill: by product line per quarter", {4, 2, 1, 1}},
      {"  drill: by family & retailer per quarter", {3, 1, 1, 1}},
      {"  drill: by group & retailer per month", {2, 1, 0, 1}},
      {"  focus: by class & store, all time", {1, 0, 3, 1}},
  };

  std::printf("\n%-45s %12s %14s\n", "roll-up / drill-down step",
              "hier cube", "flat cube");
  for (const Step& step : session) {
    const auto node = codec.Encode(step.levels);
    ResultSink a, b;
    Stopwatch hier_watch;
    CURE_CHECK_OK((*hier_engine)->QueryNode(node, &a));
    const double hier_s = hier_watch.ElapsedSeconds();
    Stopwatch flat_watch;
    CURE_CHECK_OK(cure::query::QueryHierarchicalOverFlat(**flat_engine,
                                                         apb.schema, node, &b));
    const double flat_s = flat_watch.ElapsedSeconds();
    CURE_CHECK_EQ(a.checksum(), b.checksum());  // identical answers
    std::printf("%-45s %9.2f ms %11.2f ms  (%llu tuples)\n", step.question,
                hier_s * 1e3, flat_s * 1e3,
                static_cast<unsigned long long>(a.count()));
  }

  std::printf(
      "\nBoth cubes return identical answers; the hierarchical cube reads "
      "pre-aggregated nodes while the flat cube re-aggregates leaf data on "
      "every roll-up.\n");
  return 0;
}
