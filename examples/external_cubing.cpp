// Out-of-core cubing: the paper's Sec. 4 external partitioning end to end.
//
//   $ ./build/examples/external_cubing
//
// Writes an APB-1-style fact table to disk, then builds the complete
// hierarchical cube with a memory budget far smaller than the data. CURE
// picks the partitioning level L on the first dimension, produces sound
// partitions with a single read/write pass while hash-building node N in
// memory, cubes each partition independently, and derives all remaining
// nodes from N — 2 reads + 1 write of R in total before construction.

#include <cstdio>

#include "common/bytes.h"
#include "common/logging.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "query/node_query.h"
#include "query/reference.h"
#include "storage/file_io.h"
#include "storage/relation.h"

using cure::engine::BuildCure;
using cure::engine::CureOptions;
using cure::engine::FactInput;

int main() {
  // Generate and spill the fact table to disk.
  cure::gen::ApbSpec spec;
  spec.density = 0.4;
  spec.scale_divisor = 40;
  cure::gen::Dataset apb = cure::gen::MakeApb(spec);
  const std::string fact_path = "/tmp/cure_example_fact.bin";
  auto relation =
      cure::storage::Relation::CreateFile(fact_path, apb.table.RecordSize());
  CURE_CHECK(relation.ok()) << relation.status().ToString();
  CURE_CHECK_OK(apb.table.WriteTo(&relation.value()));
  CURE_CHECK_OK(relation->Seal());
  std::printf("fact relation on disk: %llu rows, %s\n",
              static_cast<unsigned long long>(relation->num_rows()),
              cure::FormatBytes(relation->bytes()).c_str());

  // Build with a memory budget ~20x smaller than the fact table.
  CureOptions options;
  options.memory_budget_bytes = relation->bytes() / 20;
  options.temp_dir = "/tmp";
  std::printf("memory budget: %s (forces the external path)\n",
              cure::FormatBytes(options.memory_budget_bytes).c_str());

  FactInput input{.relation = &relation.value()};
  auto cube = BuildCure(apb.schema, input, options);
  CURE_CHECK(cube.ok()) << cube.status().ToString();
  const cure::engine::BuildStats& stats = (*cube)->stats();
  CURE_CHECK(stats.external);

  std::printf("\nexternal construction report\n");
  std::printf("  partitioning level L:   %d (of the Product hierarchy)\n",
              stats.partition_level);
  std::printf("  sound partitions:       %llu\n",
              static_cast<unsigned long long>(stats.num_partitions));
  std::printf("  node N (A_{L+1}B0C0D0): %llu rows, %s — built in memory "
              "during the partition pass\n",
              static_cast<unsigned long long>(stats.n_rows),
              cure::FormatBytes(stats.n_bytes).c_str());
  std::printf("  partition write volume: %s (1 write of R)\n",
              cure::FormatBytes(stats.partition_write_bytes).c_str());
  std::printf("  construction time:      %.2f s\n", stats.build_seconds);
  std::printf("  cube size:              %s\n",
              cure::FormatBytes(stats.cube_bytes).c_str());

  // Validate a few nodes against brute force over the original table.
  auto engine = cure::query::CureQueryEngine::Create(cube->get(), 0.25);
  CURE_CHECK(engine.ok());
  const cure::schema::NodeIdCodec& codec = (*cube)->store().codec();
  int checked = 0;
  for (cure::schema::NodeId id = 0; id < codec.num_nodes(); id += 23) {
    cure::query::ResultSink sink(/*retain=*/true);
    CURE_CHECK_OK((*engine)->QueryNode(id, &sink));
    auto expected = cure::query::ReferenceNodeResult(apb.schema, apb.table, id);
    CURE_CHECK(expected.ok());
    CURE_CHECK(cure::query::SameResults(sink.TakeRows(),
                                        std::move(expected).value()))
        << "node " << id;
    ++checked;
  }
  std::printf("\nverified %d nodes against brute-force aggregation — "
              "external cube is exact.\n", checked);

  CURE_CHECK_OK(cure::storage::RemoveFile(fact_path));
  return 0;
}
