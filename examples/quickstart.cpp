// Quickstart: build a CURE cube over a small retail fact table, inspect the
// condensed storage, and answer a few node queries.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API surface: schema definition with a
// dimension hierarchy, cube construction, CURE+ post-processing, and query
// answering (including a roll-up).

#include <cstdio>

#include "common/bytes.h"
#include "common/logging.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "query/node_query.h"
#include "schema/cube_schema.h"

using cure::engine::BuildCure;
using cure::engine::CureOptions;
using cure::engine::FactInput;

int main() {
  // 1. A fact table: SALES(product, store, date; revenue), where product
  //    rolls up barcode -> brand -> economic_strength and date rolls up
  //    day -> month (the Table 1 schema of the paper).
  cure::gen::Dataset sales = cure::gen::MakeSales(/*num_tuples=*/50000);
  std::printf("Fact table: %llu rows, %s\n",
              static_cast<unsigned long long>(sales.table.num_rows()),
              cure::FormatBytes(sales.table.bytes()).c_str());

  // 2. Build the complete hierarchical cube with CURE. The lattice has
  //    (3+1)*(1+1)*(2+1) = 24 nodes; all are materialized, condensed.
  CureOptions options;
  FactInput input{.table = &sales.table};
  auto cube = BuildCure(sales.schema, input, options);
  CURE_CHECK(cube.ok()) << cube.status().ToString();
  const cure::engine::BuildStats& stats = (*cube)->stats();
  std::printf("\nCURE construction: %.3f s\n", stats.build_seconds);
  std::printf("  trivial tuples (TT):          %llu\n",
              static_cast<unsigned long long>(stats.tt));
  std::printf("  normal tuples (NT):           %llu\n",
              static_cast<unsigned long long>(stats.nt));
  std::printf("  common aggregate tuples (CAT): %llu\n",
              static_cast<unsigned long long>(stats.cat));
  std::printf("  cube size: %s (fact table: %s)\n",
              cure::FormatBytes(stats.cube_bytes).c_str(),
              cure::FormatBytes(sales.table.bytes()).c_str());

  // 3. CURE+ post-processing: sort row-id lists / switch to bitmaps.
  CURE_CHECK_OK(cure::engine::CurePostProcess(cube->get()));
  std::printf("  after CURE+ post-processing: %s\n",
              cure::FormatBytes((*cube)->TotalBytes()).c_str());

  // 4. Query the cube. Node ids encode one hierarchy level per dimension;
  //    ALL = dimension absent.
  auto engine = cure::query::CureQueryEngine::Create(cube->get(), 1.0);
  CURE_CHECK(engine.ok()) << engine.status().ToString();
  const cure::schema::NodeIdCodec& codec = (*cube)->store().codec();

  // Revenue by economic_strength (product level 2), all stores, all dates.
  const auto strength_node = codec.Encode({2, 1, 2});
  cure::query::ResultSink sink(/*retain=*/true);
  CURE_CHECK_OK((*engine)->QueryNode(strength_node, &sink));
  std::printf("\nRevenue by product economic_strength (%llu groups):\n",
              static_cast<unsigned long long>(sink.count()));
  for (const auto& row : sink.rows()) {
    std::printf("  strength %2u -> revenue %lld (%lld sales)\n", row.dims[0],
                static_cast<long long>(row.aggrs[0]),
                static_cast<long long>(row.aggrs[1]));
  }

  // Drill down: revenue by brand (product level 1) for every month.
  const auto brand_month = codec.Encode({1, 1, 1});
  sink.Reset();
  CURE_CHECK_OK((*engine)->QueryNode(brand_month, &sink));
  std::printf("\nBrand x month: %llu result tuples (showing 3):\n",
              static_cast<unsigned long long>(sink.count()));
  for (size_t i = 0; i < sink.rows().size() && i < 3; ++i) {
    const auto& row = sink.rows()[i];
    std::printf("  brand %4u, month %2u -> revenue %lld\n", row.dims[0],
                row.dims[1], static_cast<long long>(row.aggrs[0]));
  }

  std::printf("\nDone.\n");
  return 0;
}
