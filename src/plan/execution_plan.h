#ifndef CURE_PLAN_EXECUTION_PLAN_H_
#define CURE_PLAN_EXECUTION_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/cube_schema.h"
#include "schema/node_id.h"

namespace cure {
namespace plan {

/// How a node is entered in the execution plan (Sec. 3.1 of the paper).
enum class EdgeType {
  kRoot,    ///< the ALL node, entry point of the plan
  kSolid,   ///< Rule 1: adds one more dimension at a top (plan-root) level
  kDashed,  ///< Rule 2: refines the rightmost dimension one level down
};

/// A node of the execution-plan tree.
struct PlanNode {
  schema::NodeId id = 0;
  schema::NodeId parent = 0;
  EdgeType edge = EdgeType::kRoot;
  /// The `dim` argument ExecutePlan is called with at this node: solid edges
  /// may introduce dimensions >= next_dim; the dashed edge refines
  /// next_dim - 1.
  int next_dim = 0;
  int depth = 0;
  std::vector<schema::NodeId> children;
  /// Order in which the engine's depth-first traversal reaches the node.
  uint64_t visit_order = 0;
};

/// The BUC-style execution plan over the hierarchical lattice.
///
/// kTall is the paper's P3 (Fig. 4): solid edges introduce each dimension at
/// its plan-root (top) levels, dashed edges refine the rightmost dimension
/// step by step, pushing expensive sorts to the bottom where they are shared.
/// kShort is the paper's P2 (Fig. 3): every level of a dimension is
/// introduced directly via solid edges, so each refinement re-sorts from
/// scratch; implemented for the plan ablation benchmark.
class ExecutionPlan {
 public:
  enum class Style { kTall, kShort };

  /// Builds the plan tree for `schema`. `base_levels[d]` (optional) bounds
  /// dashed descent: dimension d never refines below base_levels[d]
  /// (used by the external path's two sub-plans, Sec. 4).
  static ExecutionPlan Build(const schema::CubeSchema& schema, Style style);

  const schema::CubeSchema& schema() const { return *schema_; }
  const schema::NodeIdCodec& codec() const { return codec_; }
  Style style() const { return style_; }

  schema::NodeId root() const { return root_; }
  uint64_t num_nodes() const { return visited_count_; }
  bool Contains(schema::NodeId id) const { return nodes_[id].visit_order != kUnvisited; }
  const PlanNode& node(schema::NodeId id) const { return nodes_[id]; }

  /// Plan height: max tree depth (paper: P1 height 3, P2 height 3,
  /// P3 height 6 in the running example).
  int height() const { return height_; }

  /// Node ids on the path root -> id, inclusive. Query answering collects TT
  /// relations along this path (the paper's sub-tree sharing of TTs).
  std::vector<schema::NodeId> PathFromRoot(schema::NodeId id) const;

  /// Structural validation: every lattice node visited exactly once and all
  /// edges obey Rule 1 / (modified) Rule 2.
  Status Validate() const;

  /// Multi-line plan rendering for docs/tests (depth-first).
  std::string ToString() const;

 private:
  ExecutionPlan() = default;

  static constexpr uint64_t kUnvisited = ~uint64_t{0};

  void VisitTall(std::vector<int>* levels, std::vector<bool>* included, int dim,
                 schema::NodeId parent, EdgeType edge, int depth);
  void VisitShort(std::vector<int>* levels, std::vector<bool>* included, int dim,
                  schema::NodeId parent, EdgeType edge, int depth);
  schema::NodeId Emit(const std::vector<int>& levels, const std::vector<bool>& included,
                      int next_dim, schema::NodeId parent, EdgeType edge, int depth);

  const schema::CubeSchema* schema_ = nullptr;
  schema::NodeIdCodec codec_;
  Style style_ = Style::kTall;
  schema::NodeId root_ = 0;
  std::vector<PlanNode> nodes_;  // indexed by NodeId
  uint64_t visited_count_ = 0;
  int height_ = 0;
};

}  // namespace plan
}  // namespace cure

#endif  // CURE_PLAN_EXECUTION_PLAN_H_
