#include "plan/execution_plan.h"

#include <algorithm>

#include "common/logging.h"

namespace cure {
namespace plan {

using schema::CubeSchema;
using schema::Dimension;
using schema::NodeId;

ExecutionPlan ExecutionPlan::Build(const CubeSchema& schema, Style style) {
  ExecutionPlan plan;
  plan.schema_ = &schema;
  plan.codec_ = schema::NodeIdCodec(schema);
  plan.style_ = style;
  // Materializing a plan requires one PlanNode per lattice node; guard
  // against lattices that only the implicit (engine-side) traversal can
  // handle.
  CURE_CHECK_LT(plan.codec_.num_nodes(), NodeId{1} << 24)
      << "lattice too large to materialize an explicit plan";
  plan.nodes_.resize(plan.codec_.num_nodes());
  for (PlanNode& n : plan.nodes_) n.visit_order = kUnvisited;

  const int d = schema.num_dims();
  std::vector<int> levels(d);
  std::vector<bool> included(d, false);
  for (int i = 0; i < d; ++i) levels[i] = plan.codec_.all_level(i);

  if (style == Style::kTall) {
    plan.VisitTall(&levels, &included, 0, 0, EdgeType::kRoot, 0);
  } else {
    plan.VisitShort(&levels, &included, 0, 0, EdgeType::kRoot, 0);
  }
  return plan;
}

NodeId ExecutionPlan::Emit(const std::vector<int>& levels,
                           const std::vector<bool>& included, int next_dim,
                           NodeId parent, EdgeType edge, int depth) {
  std::vector<int> node_levels(levels.size());
  for (size_t i = 0; i < levels.size(); ++i) {
    node_levels[i] = included[i] ? levels[i] : codec_.all_level(static_cast<int>(i));
  }
  const NodeId id = codec_.Encode(node_levels);
  PlanNode& node = nodes_[id];
  CURE_CHECK_EQ(node.visit_order, kUnvisited) << "node visited twice: " << id;
  node.id = id;
  node.parent = parent;
  node.edge = edge;
  node.next_dim = next_dim;
  node.depth = depth;
  node.visit_order = visited_count_++;
  if (edge == EdgeType::kRoot) {
    root_ = id;
  } else {
    nodes_[parent].children.push_back(id);
  }
  height_ = std::max(height_, depth);
  return id;
}

void ExecutionPlan::VisitTall(std::vector<int>* levels, std::vector<bool>* included,
                              int dim, NodeId parent, EdgeType edge, int depth) {
  const int d = schema_->num_dims();
  const NodeId id = Emit(*levels, *included, dim, parent, edge, depth);

  // Rule 1 (solid edges): introduce every dimension >= dim at each of its
  // plan-root (top) levels.
  for (int next = dim; next < d; ++next) {
    const Dimension& dimension = schema_->dim(next);
    for (int root_level : dimension.plan_roots()) {
      (*levels)[next] = root_level;
      (*included)[next] = true;
      VisitTall(levels, included, next + 1, id, EdgeType::kSolid, depth + 1);
      (*included)[next] = false;
    }
  }

  // Rule 2 (dashed edges): refine the rightmost grouping dimension (dim - 1)
  // one step, to each of its plan children (modified Rule 2 already folded
  // into Dimension::plan_children()).
  if (dim >= 1 && (*included)[dim - 1]) {
    const Dimension& dimension = schema_->dim(dim - 1);
    const int current = (*levels)[dim - 1];
    for (int child : dimension.plan_children(current)) {
      (*levels)[dim - 1] = child;
      VisitTall(levels, included, dim, id, EdgeType::kDashed, depth + 1);
    }
    (*levels)[dim - 1] = current;
  }
}

void ExecutionPlan::VisitShort(std::vector<int>* levels, std::vector<bool>* included,
                               int dim, NodeId parent, EdgeType edge, int depth) {
  const int d = schema_->num_dims();
  const NodeId id = Emit(*levels, *included, dim, parent, edge, depth);

  // P2-style: introduce every dimension >= dim at *every* hierarchy level via
  // solid edges; no dashed refinement, so the plan height stays D but sorts
  // are not shared across levels of a dimension.
  for (int next = dim; next < d; ++next) {
    const Dimension& dimension = schema_->dim(next);
    for (int level = 0; level < dimension.num_levels(); ++level) {
      (*levels)[next] = level;
      (*included)[next] = true;
      VisitShort(levels, included, next + 1, id, EdgeType::kSolid, depth + 1);
      (*included)[next] = false;
    }
  }
}

std::vector<NodeId> ExecutionPlan::PathFromRoot(NodeId id) const {
  CURE_CHECK(Contains(id));
  std::vector<NodeId> path;
  NodeId cur = id;
  while (true) {
    path.push_back(cur);
    if (nodes_[cur].edge == EdgeType::kRoot) break;
    cur = nodes_[cur].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Status ExecutionPlan::Validate() const {
  if (visited_count_ != codec_.num_nodes()) {
    return Status::Internal("plan covers " + std::to_string(visited_count_) +
                            " of " + std::to_string(codec_.num_nodes()) + " nodes");
  }
  const int d = schema_->num_dims();
  for (const PlanNode& node : nodes_) {
    if (node.visit_order == kUnvisited) {
      return Status::Internal("unvisited node " + std::to_string(node.id));
    }
    if (node.edge == EdgeType::kRoot) continue;
    const std::vector<int> child_levels = codec_.Decode(node.id);
    const std::vector<int> parent_levels = codec_.Decode(node.parent);
    int differing = -1;
    for (int i = 0; i < d; ++i) {
      if (child_levels[i] != parent_levels[i]) {
        if (differing >= 0) return Status::Internal("edge changes two dimensions");
        differing = i;
      }
    }
    if (differing < 0) return Status::Internal("self edge");
    if (node.edge == EdgeType::kSolid) {
      // Parent must be at ALL for the differing dimension; the child level
      // must be a plan root (kTall) or any level (kShort).
      if (parent_levels[differing] != codec_.all_level(differing)) {
        return Status::Internal("solid edge from non-ALL level");
      }
      if (style_ == Style::kTall) {
        const auto& roots = schema_->dim(differing).plan_roots();
        if (std::find(roots.begin(), roots.end(), child_levels[differing]) ==
            roots.end()) {
          return Status::Internal("solid edge to non-root level");
        }
      }
    } else {
      // Dashed: child level one step below parent level, chosen by the
      // modified Rule 2; and the differing dimension must be the rightmost
      // grouping attribute of the parent.
      if (schema_->dim(differing).plan_parent(child_levels[differing]) !=
          parent_levels[differing]) {
        return Status::Internal("dashed edge not matching plan_parent");
      }
      for (int i = differing + 1; i < d; ++i) {
        if (parent_levels[i] != codec_.all_level(i)) {
          return Status::Internal("dashed edge not on rightmost dimension");
        }
      }
    }
  }
  return Status::OK();
}

std::string ExecutionPlan::ToString() const {
  std::string out;
  // Depth-first rendering in visit order.
  struct Item {
    NodeId id;
    int depth;
  };
  std::vector<Item> stack = {{root_, 0}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const PlanNode& node = nodes_[item.id];
    out.append(2 * item.depth, ' ');
    switch (node.edge) {
      case EdgeType::kRoot:
        break;
      case EdgeType::kSolid:
        out += "- ";
        break;
      case EdgeType::kDashed:
        out += ". ";
        break;
    }
    out += codec_.Name(item.id, *schema_);
    out += "\n";
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      stack.push_back({*it, item.depth + 1});
    }
  }
  return out;
}

}  // namespace plan
}  // namespace cure
