#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/metrics.h"
#include "storage/fault_injection.h"

namespace cure {
namespace storage {

namespace {

/// Always-on I/O accounting (one relaxed atomic add per syscall — noise
/// next to the syscall itself). Pointers are resolved once and stay valid
/// for the process lifetime (GlobalMetrics is leaked).
struct IoMetrics {
  Counter* read_bytes;
  Counter* write_bytes;
  Counter* reads;
  Counter* writes;
  Counter* fsyncs;
};

IoMetrics& Io() {
  static IoMetrics metrics = {
      GlobalMetrics().counter("cure_storage_read_bytes_total"),
      GlobalMetrics().counter("cure_storage_write_bytes_total"),
      GlobalMetrics().counter("cure_storage_read_ops_total"),
      GlobalMetrics().counter("cure_storage_write_ops_total"),
      GlobalMetrics().counter("cure_storage_fsync_total"),
  };
  return metrics;
}

Status ErrnoStatus(const std::string& op, const std::string& path) {
  const int err = errno;
  std::string msg = op + " '" + path + "': " + std::strerror(err);
  if (err == ENOSPC) {
    msg +=
        " (device out of space: free space or move the cube/scratch "
        "directories to a larger volume)";
  }
  return Status::IoError(msg);
}

/// Fault-injection shim for non-write operations: returns the errno to
/// inject, or 0 to proceed with the real syscall.
int Inject(const char* op, const std::string& path) {
  return FaultInjector::Instance().Consult(op, path);
}

}  // namespace

FileWriter::~FileWriter() { Close(); }

FileWriter::FileWriter(FileWriter&& other) noexcept { *this = std::move(other); }

FileWriter& FileWriter::operator=(FileWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    buffer_used_ = other.buffer_used_;
    bytes_written_ = other.bytes_written_;
    other.fd_ = -1;
    other.buffer_used_ = 0;
    other.bytes_written_ = 0;
  }
  return *this;
}

Status FileWriter::Open(const std::string& path, size_t buffer_bytes,
                        OpenMode mode) {
  CURE_RETURN_IF_ERROR(Close());
  if (const int inj = Inject("open", path)) {
    errno = inj;
    return ErrnoStatus("open", path);
  }
  const int flags = O_WRONLY | O_CREAT |
                    (mode == OpenMode::kAppend ? O_APPEND : O_TRUNC);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return ErrnoStatus("open", path);
  path_ = path;
  buffer_.resize(buffer_bytes);
  buffer_used_ = 0;
  bytes_written_ = 0;
  return Status::OK();
}

Status FileWriter::Append(const void* data, size_t len) {
  if (fd_ < 0) return Status::Internal("FileWriter::Append on closed file");
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const size_t space = buffer_.size() - buffer_used_;
    const size_t chunk = len < space ? len : space;
    std::memcpy(buffer_.data() + buffer_used_, src, chunk);
    buffer_used_ += chunk;
    src += chunk;
    len -= chunk;
    if (buffer_used_ == buffer_.size()) CURE_RETURN_IF_ERROR(Flush());
  }
  return Status::OK();
}

Status FileWriter::Flush() {
  if (fd_ < 0) return Status::OK();
  size_t off = 0;
  Status fail = Status::OK();
  while (off < buffer_used_) {
    // The shim may shorten `want` (a kernel-style short write the loop
    // absorbs) or inject an errno outright.
    size_t want = buffer_used_ - off;
    const int inj = FaultInjector::Instance().ConsultWrite(path_, &want);
    ssize_t n;
    if (inj != 0) {
      errno = inj;
      n = -1;
    } else {
      n = ::write(fd_, buffer_.data() + off, want);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      fail = ErrnoStatus("write", path_);
      break;
    }
    off += static_cast<size_t>(n);
  }
  // Keep buffer state consistent with the file even on failure: drop the
  // bytes that did reach the fd so a later Flush/Close retry never writes
  // them twice.
  if (off > 0 && off < buffer_used_) {
    std::memmove(buffer_.data(), buffer_.data() + off, buffer_used_ - off);
  }
  bytes_written_ += off;
  buffer_used_ -= off;
  if (off > 0) {
    Io().write_bytes->Add(off);
    Io().writes->Inc();
  }
  return fail;
}

Status FileWriter::Sync() {
  if (fd_ < 0) return Status::Internal("FileWriter::Sync on closed file");
  CURE_RETURN_IF_ERROR(Flush());
  if (const int inj = Inject("fsync", path_)) {
    errno = inj;
    return ErrnoStatus("fsync", path_);
  }
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  Io().fsyncs->Inc();
  return Status::OK();
}

Status FileWriter::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = Flush();
  if (::close(fd_) != 0 && s.ok()) s = ErrnoStatus("close", path_);
  fd_ = -1;
  return s;
}

FileReader::~FileReader() { Close(); }

FileReader::FileReader(FileReader&& other) noexcept { *this = std::move(other); }

FileReader& FileReader::operator=(FileReader&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    file_size_ = other.file_size_;
    other.fd_ = -1;
    other.file_size_ = 0;
  }
  return *this;
}

Status FileReader::Open(const std::string& path) {
  CURE_RETURN_IF_ERROR(Close());
  if (const int inj = Inject("open", path)) {
    errno = inj;
    return ErrnoStatus("open", path);
  }
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status s = ErrnoStatus("fstat", path);
    ::close(fd_);
    fd_ = -1;
    return s;
  }
  path_ = path;
  file_size_ = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status FileReader::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = Status::OK();
  if (::close(fd_) != 0) s = ErrnoStatus("close", path_);
  fd_ = -1;
  return s;
}

Status FileReader::ReadAt(uint64_t offset, void* out, size_t len) const {
  if (fd_ < 0) return Status::Internal("FileReader::ReadAt on closed file");
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    ssize_t n;
    if (const int inj = Inject("read", path_)) {
      errno = inj;
      n = -1;
    } else {
      n = ::pread(fd_, dst, len, static_cast<off_t>(offset));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path_);
    }
    if (n == 0) return Status::OutOfRange("read past end of '" + path_ + "'");
    Io().read_bytes->Add(static_cast<uint64_t>(n));
    Io().reads->Inc();
    dst += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (const int inj = Inject("truncate", path)) {
    errno = inj;
    return ErrnoStatus("truncate", path);
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path);
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (const int inj = Inject("unlink", path)) {
    errno = inj;
    return ErrnoStatus("unlink", path);
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return Status::IoError("remove '" + path + "': " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (const int inj = Inject("rename", from)) {
    errno = inj;
    return ErrnoStatus("rename", from);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename '" + from + "' ->", to);
  }
  return Status::OK();
}

Status SyncDir(const std::string& path) {
  if (const int inj = Inject("syncdir", path)) {
    errno = inj;
    return ErrnoStatus("fsync dir", path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir", path);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = ErrnoStatus("fsync dir", path);
  ::close(fd);
  if (s.ok()) Io().fsyncs->Inc();
  return s;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status EnsureDir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir '" + path + "': " + ec.message());
  return Status::OK();
}

Status RemoveDirTree(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) return Status::IoError("rmtree '" + path + "': " + ec.message());
  return Status::OK();
}

}  // namespace storage
}  // namespace cure
