#include "storage/external_sort.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace cure {
namespace storage {

namespace {

struct SortMetrics {
  Counter* runs;
  Counter* spill_bytes;
  Counter* in_memory_sorts;
  Counter* external_sorts;
};

SortMetrics& Sm() {
  static SortMetrics metrics = {
      GlobalMetrics().counter("cure_storage_sort_runs_total"),
      GlobalMetrics().counter("cure_storage_sort_spill_bytes_total"),
      GlobalMetrics().counter("cure_storage_sort_in_memory_total"),
      GlobalMetrics().counter("cure_storage_sort_external_total"),
  };
  return metrics;
}

// Sorts `records` (a flat buffer of `n` records of `width` bytes) in place.
void SortRun(std::vector<uint8_t>* records, size_t n, size_t width,
             const RecordLess& less) {
  std::vector<uint32_t> index(n);
  for (size_t i = 0; i < n; ++i) index[i] = static_cast<uint32_t>(i);
  const uint8_t* base = records->data();
  std::sort(index.begin(), index.end(), [&](uint32_t a, uint32_t b) {
    return less(base + static_cast<size_t>(a) * width,
                base + static_cast<size_t>(b) * width);
  });
  std::vector<uint8_t> sorted(records->size());
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(sorted.data() + i * width, base + static_cast<size_t>(index[i]) * width,
                width);
  }
  records->swap(sorted);
}

}  // namespace

Status ExternalSort(const Relation& input, const RecordLess& less,
                    const ExternalSortOptions& options, Relation* output) {
  const size_t width = input.record_size();
  if (width == 0) return Status::InvalidArgument("zero record size");
  const uint64_t total_bytes = input.bytes();

  // Fast path: everything fits in the budget.
  if (total_bytes <= options.memory_budget_bytes) {
    CURE_TRACE_SPAN("cure.storage.sort_in_memory", "rows", input.num_rows());
    Sm().in_memory_sorts->Inc();
    std::vector<uint8_t> buf(total_bytes);
    Relation::Scanner scan(input);
    uint64_t i = 0;
    while (const uint8_t* rec = scan.Next()) {
      std::memcpy(buf.data() + i * width, rec, width);
      ++i;
    }
    CURE_RETURN_IF_ERROR(scan.status());
    SortRun(&buf, input.num_rows(), width, less);
    for (uint64_t r = 0; r < input.num_rows(); ++r) {
      CURE_RETURN_IF_ERROR(output->Append(buf.data() + r * width));
    }
    return Status::OK();
  }

  // Run generation.
  CURE_TRACE_SPAN("cure.storage.sort_external", "rows", input.num_rows());
  Sm().external_sorts->Inc();
  const uint64_t run_records =
      std::max<uint64_t>(1, options.memory_budget_bytes / width);
  std::vector<Relation> runs;
  {
    Relation::Scanner scan(input);
    std::vector<uint8_t> buf;
    buf.reserve(run_records * width);
    size_t in_buf = 0;
    auto flush_run = [&]() -> Status {
      if (in_buf == 0) return Status::OK();
      CURE_TRACE_SPAN("cure.storage.sort_run", "rows", in_buf, "bytes",
                      in_buf * width);
      Sm().runs->Inc();
      Sm().spill_bytes->Add(in_buf * width);
      SortRun(&buf, in_buf, width, less);
      // Process-wide unique run names: concurrent sorts (parallel build
      // workers) and back-to-back sorts in one process must never reuse a
      // path, even with the same temp_dir.
      static std::atomic<uint64_t> run_counter{0};
      const uint64_t run_id =
          run_counter.fetch_add(1, std::memory_order_relaxed);
      const std::string path = options.temp_dir + "/cure_sort_run_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(run_id);
      CURE_ASSIGN_OR_RETURN(Relation run, Relation::CreateFile(path, width));
      for (size_t r = 0; r < in_buf; ++r) {
        CURE_RETURN_IF_ERROR(run.Append(buf.data() + r * width));
      }
      CURE_RETURN_IF_ERROR(run.Seal());
      runs.push_back(std::move(run));
      buf.clear();
      in_buf = 0;
      return Status::OK();
    };
    while (const uint8_t* rec = scan.Next()) {
      buf.insert(buf.end(), rec, rec + width);
      ++in_buf;
      if (in_buf >= run_records) CURE_RETURN_IF_ERROR(flush_run());
    }
    CURE_RETURN_IF_ERROR(scan.status());
    CURE_RETURN_IF_ERROR(flush_run());
  }

  // K-way merge with a heap of (record, run) cursors.
  CURE_TRACE_SPAN("cure.storage.sort_merge", "runs", runs.size());
  struct Cursor {
    std::unique_ptr<Relation::Scanner> scan;
    const uint8_t* rec = nullptr;
    size_t run = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    Cursor c;
    c.scan = std::make_unique<Relation::Scanner>(runs[i]);
    c.rec = c.scan->Next();
    c.run = i;
    CURE_RETURN_IF_ERROR(c.scan->status());
    if (c.rec != nullptr) cursors.push_back(std::move(c));
  }
  auto heap_greater = [&](size_t a, size_t b) {
    // Min-heap: a is "greater" when b's record orders first.
    return less(cursors[b].rec, cursors[a].rec);
  };
  std::vector<size_t> heap(cursors.size());
  for (size_t i = 0; i < heap.size(); ++i) heap[i] = i;
  std::make_heap(heap.begin(), heap.end(), heap_greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const size_t top = heap.back();
    heap.pop_back();
    CURE_RETURN_IF_ERROR(output->Append(cursors[top].rec));
    cursors[top].rec = cursors[top].scan->Next();
    CURE_RETURN_IF_ERROR(cursors[top].scan->status());
    if (cursors[top].rec != nullptr) {
      heap.push_back(top);
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    }
  }

  // Clean up run files.
  for (Relation& run : runs) {
    const std::string path = run.path();
    run = Relation();  // Close before removing.
    CURE_RETURN_IF_ERROR(RemoveFile(path));
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace cure
