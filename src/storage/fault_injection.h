#ifndef CURE_STORAGE_FAULT_INJECTION_H_
#define CURE_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace cure {
namespace storage {

/// A deterministic fault to inject into the file_io syscall shims.
///
/// Matching: an I/O operation matches when `op` is empty or equals the
/// shim's operation name ("open", "read", "write", "fsync", "rename",
/// "truncate", "unlink", "syncdir") AND `path_substr` is empty or a
/// substring of the operation's path. Matching operations are counted;
/// the `fail_index`-th match (0-based) trips the fault.
struct FaultPlan {
  /// Operation name to match; empty matches every operation.
  std::string op;
  /// Path substring to match; empty matches every path.
  std::string path_substr;
  /// 0-based index (among matching operations) of the op that fails.
  /// UINT64_MAX never fires — used to count call sites for a sweep.
  uint64_t fail_index = 0;
  /// errno to inject (e.g. EIO, ENOSPC). 0 with short_fraction set
  /// means "short write only": the write is truncated but succeeds.
  int error = 0;
  /// Fail only the fail_index-th op (transient) vs every op from
  /// fail_index on (sticky — models a dead disk).
  bool once = false;
  /// For "write" ops: fraction (0,1) of the requested length actually
  /// written before the fault. With error == 0 the shortened write
  /// SUCCEEDS (kernel-style short write the caller must loop over).
  double short_fraction = 0;
};

/// Process-global, test-scoped deterministic fault injector.
///
/// Disarmed (the default) it costs one relaxed atomic load per I/O
/// operation. Tests arm a FaultPlan (usually via ScopedFaultInjection),
/// run the workload, and read back counters: `ops_matched` says how many
/// matching operations executed — arming with fail_index = UINT64_MAX
/// turns the injector into a pure counter for enumerating a workload's
/// I/O points before sweeping them.
///
/// Thread-safe: shims on pool threads consult the same plan; counters
/// are mutex-protected so a sweep's op ordering is deterministic only
/// when the workload itself is (use num_threads = 1 for sweeps).
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `plan`, resetting counters. Replaces any armed plan.
  void Arm(const FaultPlan& plan);

  /// Disarms and resets counters.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Number of operations that matched the plan since Arm().
  uint64_t ops_matched() const;
  /// Number of faults actually injected since Arm().
  uint64_t faults_injected() const;

  /// Shim hook for non-write ops: returns 0 (proceed) or the errno to
  /// inject. Counts the op when it matches the armed plan.
  int Consult(const char* op, const std::string& path);

  /// Shim hook for writes: like Consult, but may instead shorten the
  /// write — on return, when the result is 0 and *len was reduced, the
  /// shim must write only *len bytes and report success.
  int ConsultWrite(const std::string& path, size_t* len);

 private:
  FaultInjector() = default;

  int ConsultLocked(const char* op, const std::string& path, size_t* len);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FaultPlan plan_;
  uint64_t ops_matched_ = 0;
  uint64_t faults_injected_ = 0;
  bool fired_once_ = false;
};

/// RAII arm/disarm for tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultPlan& plan) {
    FaultInjector::Instance().Arm(plan);
  }
  ~ScopedFaultInjection() { FaultInjector::Instance().Disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  uint64_t ops_matched() const {
    return FaultInjector::Instance().ops_matched();
  }
  uint64_t faults_injected() const {
    return FaultInjector::Instance().faults_injected();
  }
};

}  // namespace storage
}  // namespace cure

#endif  // CURE_STORAGE_FAULT_INJECTION_H_
