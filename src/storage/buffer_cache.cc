#include "storage/buffer_cache.h"

#include <cstring>

namespace cure {
namespace storage {

Status BufferCache::Init(const Relation* relation, double cached_fraction) {
  if (relation == nullptr) return Status::InvalidArgument("null relation");
  if (cached_fraction < 0.0) cached_fraction = 0.0;
  if (cached_fraction > 1.0) cached_fraction = 1.0;
  relation_ = relation;
  hits_ = 0;
  misses_ = 0;
  cached_rows_ = static_cast<uint64_t>(cached_fraction *
                                       static_cast<double>(relation->num_rows()));
  pinned_.clear();
  if (cached_rows_ == 0 || relation->memory_backed()) {
    // Memory-backed relations are implicitly fully cached; no copy needed.
    return Status::OK();
  }
  const size_t width = relation->record_size();
  pinned_.resize(cached_rows_ * width);
  Relation::Scanner scan(*relation);
  for (uint64_t r = 0; r < cached_rows_; ++r) {
    const uint8_t* rec = scan.Next();
    if (rec == nullptr) {
      CURE_RETURN_IF_ERROR(scan.status());
      return Status::Internal("short relation during cache fill");
    }
    std::memcpy(pinned_.data() + r * width, rec, width);
  }
  return Status::OK();
}

Status BufferCache::Read(uint64_t row, void* out) const {
  const uint8_t* raw = TryRaw(row);
  if (raw != nullptr) {
    std::memcpy(out, raw, relation_->record_size());
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return relation_->Read(row, out);
}

const uint8_t* BufferCache::TryRaw(uint64_t row) const {
  if (relation_ == nullptr) return nullptr;
  if (relation_->memory_backed()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return relation_->RawRecord(row);
  }
  if (row < cached_rows_) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return pinned_.data() + row * relation_->record_size();
  }
  return nullptr;
}

}  // namespace storage
}  // namespace cure
