#include "storage/fault_injection.h"

namespace cure {
namespace storage {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  ops_matched_ = 0;
  faults_injected_ = 0;
  fired_once_ = false;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  plan_ = FaultPlan{};
  fired_once_ = false;
}

uint64_t FaultInjector::ops_matched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_matched_;
}

uint64_t FaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

int FaultInjector::Consult(const char* op, const std::string& path) {
  if (!armed_.load(std::memory_order_relaxed)) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return ConsultLocked(op, path, nullptr);
}

int FaultInjector::ConsultWrite(const std::string& path, size_t* len) {
  if (!armed_.load(std::memory_order_relaxed)) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return ConsultLocked("write", path, len);
}

int FaultInjector::ConsultLocked(const char* op, const std::string& path,
                                 size_t* len) {
  if (!armed_.load(std::memory_order_relaxed)) return 0;
  if (!plan_.op.empty() && plan_.op != op) return 0;
  if (!plan_.path_substr.empty() &&
      path.find(plan_.path_substr) == std::string::npos) {
    return 0;
  }
  const uint64_t index = ops_matched_++;
  if (plan_.fail_index == UINT64_MAX) return 0;  // counting mode
  const bool fires =
      plan_.once ? (index == plan_.fail_index && !fired_once_)
                 : (index >= plan_.fail_index);
  if (!fires) return 0;
  fired_once_ = true;
  ++faults_injected_;
  if (len != nullptr && plan_.short_fraction > 0 &&
      plan_.short_fraction < 1 && *len > 1) {
    *len = static_cast<size_t>(static_cast<double>(*len) *
                               plan_.short_fraction);
    if (*len == 0) *len = 1;
  }
  return plan_.error;
}

}  // namespace storage
}  // namespace cure
