#include "storage/bitmap.h"

namespace cure {
namespace storage {

uint64_t Bitmap::Count() const {
  uint64_t count = 0;
  for (uint64_t word : words_) count += __builtin_popcountll(word);
  return count;
}

}  // namespace storage
}  // namespace cure
