#ifndef CURE_STORAGE_ROW_BLOCK_H_
#define CURE_STORAGE_ROW_BLOCK_H_

#include <cstdint>
#include <cstring>
#include <vector>

/// Compiler hint for the batch kernels' tight loops: the annotated pointer
/// does not alias any other pointer in scope, so the loop can be
/// auto-vectorized without runtime overlap checks.
#if defined(__GNUC__) || defined(__clang__)
#define CURE_RESTRICT __restrict__
#else
#define CURE_RESTRICT
#endif

namespace cure {
namespace storage {

/// Default rows per block for the block-oriented scan path. Sized so one
/// gathered 8-byte column slice (8 KB) stays comfortably inside L1.
inline constexpr size_t kDefaultBlockRows = 1024;

/// A batch of consecutive fixed-width records yielded by
/// Relation::BlockScanner. Records are contiguous: record i lives at
/// `data + i * record_size`. For memory-backed relations the block is a
/// zero-copy view into the relation's backing store; for file-backed ones
/// it points into the scanner's read buffer (one buffered read per block).
/// Either way the pointers are valid only until the next
/// BlockScanner::Next() call.
struct RowBlock {
  const uint8_t* data = nullptr;
  uint64_t first_row = 0;  ///< 0-based row-id of record 0
  size_t rows = 0;
  size_t record_size = 0;

  const uint8_t* record(size_t i) const { return data + i * record_size; }
};

/// Gathers the strided u32 field at `byte_offset` of every record of a
/// block into a caller-provided contiguous buffer (block.rows elements).
/// One pass per block instead of one dispatch per row — the column-slice
/// materialization primitive of the batch kernels.
inline void GatherBlockU32(const RowBlock& block, size_t byte_offset,
                           uint32_t* out) {
  const uint8_t* CURE_RESTRICT src = block.data + byte_offset;
  uint32_t* CURE_RESTRICT dst = out;
  const size_t stride = block.record_size;
  for (size_t i = 0; i < block.rows; ++i) {
    std::memcpy(&dst[i], src + i * stride, 4);
  }
}

/// i64 counterpart of GatherBlockU32.
inline void GatherBlockI64(const RowBlock& block, size_t byte_offset,
                           int64_t* out) {
  const uint8_t* CURE_RESTRICT src = block.data + byte_offset;
  int64_t* CURE_RESTRICT dst = out;
  const size_t stride = block.record_size;
  for (size_t i = 0; i < block.rows; ++i) {
    std::memcpy(&dst[i], src + i * stride, 8);
  }
}

/// u64 counterpart of GatherBlockU32 (row-id columns).
inline void GatherBlockU64(const RowBlock& block, size_t byte_offset,
                           uint64_t* out) {
  const uint8_t* CURE_RESTRICT src = block.data + byte_offset;
  uint64_t* CURE_RESTRICT dst = out;
  const size_t stride = block.record_size;
  for (size_t i = 0; i < block.rows; ++i) {
    std::memcpy(&dst[i], src + i * stride, 8);
  }
}

/// Materializes one fixed-width column of a RowBlock as a contiguous,
/// naturally-aligned slice (the "ColumnSlice" of the batch kernels): the
/// strided field at `byte_offset` of every record is gathered once per
/// block into an owned buffer whose element alignment is guaranteed by its
/// type. Reuse one ColumnView across blocks to amortize the allocation; the
/// returned pointer is valid until the next Gather call on the same view.
class ColumnView {
 public:
  /// Gathers the u32 field at `byte_offset` of each record.
  const uint32_t* GatherU32(const RowBlock& block, size_t byte_offset) {
    u32_.resize(block.rows);
    GatherBlockU32(block, byte_offset, u32_.data());
    return u32_.data();
  }

  /// Gathers the i64 field at `byte_offset` of each record.
  const int64_t* GatherI64(const RowBlock& block, size_t byte_offset) {
    i64_.resize(block.rows);
    GatherBlockI64(block, byte_offset, i64_.data());
    return i64_.data();
  }

  /// Gathers the u64 field at `byte_offset` of each record. Shares the
  /// i64 buffer (signed/unsigned aliasing of the same width is defined).
  const uint64_t* GatherU64(const RowBlock& block, size_t byte_offset) {
    return reinterpret_cast<const uint64_t*>(GatherI64(block, byte_offset));
  }

 private:
  std::vector<uint32_t> u32_;
  std::vector<int64_t> i64_;
};

/// A selection vector over one RowBlock: block-local record indices (in
/// ascending order) that passed every predicate so far. Produced by the
/// filter kernels, consumed by the aggregation/emit loops.
using SelectionVector = std::vector<uint32_t>;

}  // namespace storage
}  // namespace cure

#endif  // CURE_STORAGE_ROW_BLOCK_H_
