#include "storage/relation.h"

#include "common/logging.h"

namespace cure {
namespace storage {

Relation Relation::Memory(size_t record_size) {
  Relation rel;
  rel.record_size_ = record_size;
  rel.memory_ = true;
  return rel;
}

Result<Relation> Relation::CreateFile(const std::string& path, size_t record_size) {
  Relation rel;
  rel.record_size_ = record_size;
  rel.memory_ = false;
  rel.path_ = path;
  rel.writer_ = std::make_unique<FileWriter>();
  CURE_RETURN_IF_ERROR(rel.writer_->Open(path));
  return rel;
}

Result<Relation> Relation::OpenFile(const std::string& path, size_t record_size) {
  Relation rel;
  rel.record_size_ = record_size;
  rel.memory_ = false;
  rel.path_ = path;
  rel.reader_ = std::make_unique<FileReader>();
  CURE_RETURN_IF_ERROR(rel.reader_->Open(path));
  if (rel.reader_->file_size() % record_size != 0) {
    return Status::InvalidArgument("file size of '" + path +
                                   "' is not a multiple of the record size");
  }
  rel.num_rows_ = rel.reader_->file_size() / record_size;
  return rel;
}

Relation Relation::FileView(std::shared_ptr<FileReader> reader, uint64_t offset,
                            uint64_t num_rows, size_t record_size) {
  Relation rel;
  rel.record_size_ = record_size;
  rel.memory_ = false;
  rel.path_ = reader->path();
  rel.shared_reader_ = std::move(reader);
  rel.view_offset_ = offset;
  rel.num_rows_ = num_rows;
  return rel;
}

Status Relation::Append(const void* record) {
  if (shared_reader_ != nullptr) {
    return Status::Internal("Append to a read-only file view");
  }
  if (memory_) {
    const uint8_t* src = static_cast<const uint8_t*>(record);
    data_.insert(data_.end(), src, src + record_size_);
  } else {
    if (writer_ == nullptr) return Status::Internal("Append to sealed file relation");
    CURE_RETURN_IF_ERROR(writer_->Append(record, record_size_));
  }
  ++num_rows_;
  return Status::OK();
}

Status Relation::Seal() {
  if (memory_) return Status::OK();
  if (writer_ != nullptr) {
    CURE_RETURN_IF_ERROR(writer_->Close());
    writer_.reset();
  }
  if (reader_ == nullptr) {
    reader_ = std::make_unique<FileReader>();
    CURE_RETURN_IF_ERROR(reader_->Open(path_));
  }
  return Status::OK();
}

Status Relation::Read(uint64_t row, void* out) const {
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row) + " >= " +
                              std::to_string(num_rows_));
  }
  if (memory_) {
    std::memcpy(out, data_.data() + row * record_size_, record_size_);
    return Status::OK();
  }
  if (shared_reader_ != nullptr) {
    return shared_reader_->ReadAt(view_offset_ + row * record_size_, out,
                                  record_size_);
  }
  if (reader_ == nullptr) return Status::Internal("Read from unsealed file relation");
  return reader_->ReadAt(row * record_size_, out, record_size_);
}

Relation::Scanner::Scanner(const Relation& rel, size_t buffer_records)
    : rel_(rel), buffer_(rel.record_size() * buffer_records) {
  CURE_CHECK_GT(rel.record_size(), 0u);
}

const uint8_t* Relation::Scanner::Next() {
  if (!status_.ok()) return nullptr;
  if (row_ >= rel_.num_rows()) return nullptr;
  if (rel_.memory_) {
    const uint8_t* rec = rel_.data_.data() + row_ * rel_.record_size_;
    ++row_;
    return rec;
  }
  if (row_ >= buffered_end_) {
    const uint64_t max_records = buffer_.size() / rel_.record_size_;
    uint64_t n = rel_.num_rows() - row_;
    if (n > max_records) n = max_records;
    const FileReader* reader = rel_.shared_reader_ != nullptr
                                   ? rel_.shared_reader_.get()
                                   : rel_.reader_.get();
    Status s = reader->ReadAt(rel_.view_offset_ + row_ * rel_.record_size_,
                              buffer_.data(), n * rel_.record_size_);
    if (!s.ok()) {
      // Surface the failure through status() instead of aborting: serve-
      // time scans must degrade to an error reply, not take the process
      // down.
      status_ = std::move(s);
      return nullptr;
    }
    buffered_begin_ = row_;
    buffered_end_ = row_ + n;
  }
  const uint8_t* rec = buffer_.data() + (row_ - buffered_begin_) * rel_.record_size_;
  ++row_;
  return rec;
}

Relation::BlockScanner::BlockScanner(const Relation& rel, size_t block_rows)
    : rel_(rel), block_rows_(block_rows == 0 ? 1 : block_rows) {
  CURE_CHECK_GT(rel.record_size(), 0u);
  if (!rel.memory_backed()) {
    buffer_.resize(block_rows_ * rel.record_size());
  }
}

bool Relation::BlockScanner::Next(RowBlock* block) {
  if (!status_.ok()) return false;
  if (row_ >= rel_.num_rows()) return false;
  uint64_t n = rel_.num_rows() - row_;
  if (n > block_rows_) n = block_rows_;
  block->first_row = row_;
  block->rows = static_cast<size_t>(n);
  block->record_size = rel_.record_size_;
  if (rel_.memory_) {
    // Zero-copy: records live contiguously in the backing vector.
    block->data = rel_.data_.data() + row_ * rel_.record_size_;
    row_ += n;
    return true;
  }
  const FileReader* reader = rel_.shared_reader_ != nullptr
                                 ? rel_.shared_reader_.get()
                                 : rel_.reader_.get();
  if (reader == nullptr) {
    status_ = Status::Internal("block scan of unsealed file relation");
    return false;
  }
  Status s = reader->ReadAt(rel_.view_offset_ + row_ * rel_.record_size_,
                            buffer_.data(), n * rel_.record_size_);
  if (!s.ok()) {
    // Degrade to an error result, mirroring Scanner::Next().
    status_ = std::move(s);
    return false;
  }
  block->data = buffer_.data();
  row_ += n;
  return true;
}

}  // namespace storage
}  // namespace cure
