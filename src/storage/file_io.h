#ifndef CURE_STORAGE_FILE_IO_H_
#define CURE_STORAGE_FILE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cure {
namespace storage {

/// Append-only buffered file writer. All cube output and partition files go
/// through this class so that the benchmark harness measures genuine
/// sequential write costs.
class FileWriter {
 public:
  FileWriter() = default;
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  FileWriter(FileWriter&& other) noexcept;
  FileWriter& operator=(FileWriter&& other) noexcept;

  enum class OpenMode {
    kTruncate,  ///< create or truncate (the default, all build output)
    kAppend,    ///< create if missing, append at the end (the delta WAL)
  };

  /// Creates (truncating) the file at `path`.
  Status Open(const std::string& path, size_t buffer_bytes = 1 << 20,
              OpenMode mode = OpenMode::kTruncate);

  /// Appends `len` bytes.
  Status Append(const void* data, size_t len);

  /// Flushes the user-space buffer to the OS.
  Status Flush();

  /// Flushes, then fsyncs the file to stable storage — the WAL's commit
  /// point: after Sync() returns OK the appended bytes survive a crash.
  Status Sync();

  /// Flushes and closes. Safe to call twice.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::vector<uint8_t> buffer_;
  size_t buffer_used_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Random-access file reader (pread based, stateless reads) plus a buffered
/// sequential scanner.
class FileReader {
 public:
  FileReader() = default;
  ~FileReader();

  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;
  FileReader(FileReader&& other) noexcept;
  FileReader& operator=(FileReader&& other) noexcept;

  Status Open(const std::string& path);
  Status Close();

  /// Reads exactly `len` bytes at `offset`.
  Status ReadAt(uint64_t offset, void* out, size_t len) const;

  bool is_open() const { return fd_ >= 0; }
  uint64_t file_size() const { return file_size_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t file_size_ = 0;
};

/// Removes a file if it exists; OK when missing.
Status RemoveFile(const std::string& path);

/// Atomically renames `from` onto `to` (same filesystem). The publish
/// step of the crash-consistent persist protocol: rename is atomic, so
/// readers see either the old file or the complete new one, never a
/// partial write.
Status RenameFile(const std::string& from, const std::string& to);

/// fsyncs the directory at `path`, making directory entries (created,
/// renamed, or removed names) durable. Required after creating or
/// renaming a file whose *existence* must survive a crash.
Status SyncDir(const std::string& path);

/// Parent directory of `path` ("." when there is no separator).
std::string DirName(const std::string& path);

/// Truncates the file at `path` to exactly `size` bytes (WAL torn-tail
/// recovery). The file must exist and be at least `size` bytes long.
Status TruncateFile(const std::string& path, uint64_t size);

/// Creates a directory (and parents); OK when it already exists.
Status EnsureDir(const std::string& path);

/// Recursively removes a directory tree; OK when missing.
Status RemoveDirTree(const std::string& path);

}  // namespace storage
}  // namespace cure

#endif  // CURE_STORAGE_FILE_IO_H_
