#ifndef CURE_STORAGE_BUFFER_CACHE_H_
#define CURE_STORAGE_BUFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace cure {
namespace storage {

/// Pinned-prefix buffer cache over a sealed relation.
///
/// The paper's query-answering study (Fig. 17) caches a configurable portion
/// of the original fact table; CURE's key property is that caching just the
/// fact table and the AGGREGATES relation accelerates all node queries. This
/// cache pins the first `cached_fraction * num_rows` rows in memory;
/// row reads inside the pinned prefix are served from memory, the rest hit
/// the underlying storage. Hit/miss counters feed the benchmark reports.
///
/// After Init() the cache is immutable apart from the relaxed-atomic hit and
/// miss counters, so concurrent readers (the serving layer's query workers)
/// share one instance without locking.
class BufferCache {
 public:
  BufferCache() = default;

  /// Builds the pinned prefix. `cached_fraction` in [0, 1].
  Status Init(const Relation* relation, double cached_fraction);

  /// Reads the record at `row` into `out`, serving from cache if pinned.
  Status Read(uint64_t row, void* out) const;

  /// Zero-copy access: returns a pointer when the row is cached or the
  /// relation is memory-backed, nullptr otherwise.
  const uint8_t* TryRaw(uint64_t row) const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t cached_rows() const { return cached_rows_; }
  const Relation* relation() const { return relation_; }

 private:
  const Relation* relation_ = nullptr;
  uint64_t cached_rows_ = 0;
  std::vector<uint8_t> pinned_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace storage
}  // namespace cure

#endif  // CURE_STORAGE_BUFFER_CACHE_H_
