#ifndef CURE_STORAGE_BITMAP_H_
#define CURE_STORAGE_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cure {
namespace storage {

/// Dense bitmap index over row-ids [0, universe). CURE+ replaces a TT
/// relation's row-id list with a bitmap when the bitmap is smaller
/// (Sec. 5.3 of the paper); iteration of set bits yields the row-ids in
/// increasing order, which gives the sequential-scan access pattern the
/// post-processing step is after.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(uint64_t universe) : universe_(universe), words_((universe + 63) / 64) {}

  void Set(uint64_t i) {
    words_[i >> 6] |= (1ull << (i & 63));
  }

  bool Test(uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }

  /// Number of set bits.
  uint64_t Count() const;

  /// Calls `fn(row_id)` for every set bit in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<uint64_t>(w) * 64 + bit);
        word &= word - 1;
      }
    }
  }

  uint64_t universe() const { return universe_; }

  /// Storage footprint of the bitmap representation in bytes.
  uint64_t SerializedBytes() const { return words_.size() * sizeof(uint64_t); }

  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

 private:
  uint64_t universe_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace storage
}  // namespace cure

#endif  // CURE_STORAGE_BITMAP_H_
