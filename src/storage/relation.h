#ifndef CURE_STORAGE_RELATION_H_
#define CURE_STORAGE_RELATION_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/file_io.h"
#include "storage/row_block.h"

namespace cure {
namespace storage {

/// Default buffered-read size, in records, of the legacy record-at-a-time
/// Scanner. The one tuning knob shared by legacy and block scans: callers
/// with access to engine options pass CureOptions::scan_buffer_records /
/// batch_rows through; everyone else inherits this default.
inline constexpr size_t kDefaultScanBufferRecords = 4096;

/// A relation of fixed-width binary records, the universal container of the
/// ROLAP layer: fact tables, partitions, per-node NT/TT/CAT relations and the
/// AGGREGATES relation are all Relations.
///
/// A Relation is either memory-backed (a byte vector) or file-backed
/// (append-only writer + pread reader). Records are addressed by row-id
/// (0-based ordinal). Appends and scans are sequential; Read() is random
/// access.
class Relation {
 public:
  /// Creates an empty memory-backed relation.
  static Relation Memory(size_t record_size);

  /// Creates (truncating) a file-backed relation at `path`.
  static Result<Relation> CreateFile(const std::string& path, size_t record_size);

  /// Opens an existing file-backed relation for reading. The file size must
  /// be a multiple of `record_size`.
  static Result<Relation> OpenFile(const std::string& path, size_t record_size);

  /// A read-only view of `num_rows` records starting at byte `offset` of a
  /// shared open file — the representation of one relation inside a packed
  /// cube file. The view is sealed; appends are rejected.
  static Relation FileView(std::shared_ptr<FileReader> reader, uint64_t offset,
                           uint64_t num_rows, size_t record_size);

  Relation() = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  /// Appends one record of record_size() bytes.
  Status Append(const void* record);

  /// Finishes writing: flushes buffers and (for files) reopens for reading.
  Status Seal();

  /// Reads the record at `row` into `out`. Requires a sealed relation for
  /// file-backed storage.
  Status Read(uint64_t row, void* out) const;

  /// Memory-backed relations expose their raw record pointer for zero-copy
  /// access; returns nullptr for file-backed ones.
  const uint8_t* RawRecord(uint64_t row) const {
    if (!memory_) return nullptr;
    return data_.data() + row * record_size_;
  }

  size_t record_size() const { return record_size_; }
  uint64_t num_rows() const { return num_rows_; }
  uint64_t bytes() const { return num_rows_ * record_size_; }
  bool memory_backed() const { return memory_; }
  const std::string& path() const { return path_; }

  /// Buffered sequential scanner over a sealed relation.
  class Scanner {
   public:
    explicit Scanner(const Relation& rel,
                     size_t buffer_records = kDefaultScanBufferRecords);

    /// Returns a pointer to the next record, or nullptr at end OR on a
    /// read error — check status() after the scan loop to tell the two
    /// apart. The pointer is valid until the next call.
    const uint8_t* Next();

    /// OK while the scan is clean; the read error that ended it otherwise.
    /// A scan loop that must distinguish I/O failure from end-of-relation
    /// propagates this after Next() returns nullptr.
    const Status& status() const { return status_; }

    /// Current 0-based row index of the record last returned by Next().
    /// Before the first Next() there is no such record; returns 0 rather
    /// than underflowing to UINT64_MAX.
    uint64_t row() const { return row_ == 0 ? 0 : row_ - 1; }

   private:
    const Relation& rel_;
    std::vector<uint8_t> buffer_;
    uint64_t row_ = 0;
    uint64_t buffered_begin_ = 0;
    uint64_t buffered_end_ = 0;
    Status status_;
  };

  /// Block-oriented sequential scanner: yields batches of up to
  /// `block_rows` consecutive records as RowBlocks. Memory-backed relations
  /// yield zero-copy views into the backing store; file-backed ones issue
  /// one buffered read per block. The batch seam of the columnar scan path
  /// (DESIGN.md §13) — pair with ColumnView to get contiguous column
  /// slices for the vectorized kernels.
  class BlockScanner {
   public:
    explicit BlockScanner(const Relation& rel,
                          size_t block_rows = kDefaultBlockRows);

    /// Fills `*block` with the next batch. Returns false at end OR on a
    /// read error — check status() to tell the two apart. Block pointers
    /// are valid until the next call.
    bool Next(RowBlock* block);

    /// OK while the scan is clean; the read error that ended it otherwise.
    const Status& status() const { return status_; }

   private:
    const Relation& rel_;
    size_t block_rows_;
    std::vector<uint8_t> buffer_;  // file-backed reads only
    uint64_t row_ = 0;
    Status status_;
  };

 private:
  size_t record_size_ = 0;
  bool memory_ = true;
  uint64_t num_rows_ = 0;
  std::string path_;

  // Memory backing.
  std::vector<uint8_t> data_;

  // File backing. For file views, `shared_reader_` (plus `view_offset_`)
  // replaces the owned reader.
  std::unique_ptr<FileWriter> writer_;
  std::unique_ptr<FileReader> reader_;
  std::shared_ptr<FileReader> shared_reader_;
  uint64_t view_offset_ = 0;
};

}  // namespace storage
}  // namespace cure

#endif  // CURE_STORAGE_RELATION_H_
