#ifndef CURE_STORAGE_EXTERNAL_SORT_H_
#define CURE_STORAGE_EXTERNAL_SORT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace cure {
namespace storage {

/// Record comparator over raw fixed-width records: returns true when the
/// record at `a` orders before the record at `b`.
using RecordLess = std::function<bool(const uint8_t* a, const uint8_t* b)>;

/// Options for ExternalSort.
struct ExternalSortOptions {
  /// In-memory run size in bytes. Runs are sorted with std::sort and merged
  /// with a k-way loser-tree-free heap merge.
  uint64_t memory_budget_bytes = 64ull << 20;

  /// Directory for temporary run files.
  std::string temp_dir = "/tmp";
};

/// Sorts `input` (sealed) into `*output` (open for appends; caller seals).
/// Falls back to a pure in-memory sort when the input fits in the budget.
/// This is the external-memory substrate used by CURE+'s row-id
/// post-processing when a TT relation exceeds memory.
Status ExternalSort(const Relation& input, const RecordLess& less,
                    const ExternalSortOptions& options, Relation* output);

}  // namespace storage
}  // namespace cure

#endif  // CURE_STORAGE_EXTERNAL_SORT_H_
