#ifndef CURE_ALGEBRA_ROLLUP_H_
#define CURE_ALGEBRA_ROLLUP_H_

#include <cstdint>
#include <vector>

#include "algebra/query_desc.h"
#include "common/status.h"
#include "cube/measures.h"
#include "query/node_query.h"
#include "schema/cube_schema.h"
#include "schema/node_id.h"

namespace cure {
namespace algebra {

/// Derives a contained query's rows from a cached relation without touching
/// the cube: dim codes are projected through the hierarchy level maps,
/// groups re-combined with the schema's distributive aggregates (the same
/// lift-once/combine-anywhere property the cube build and the router's
/// scatter-gather merge rely on), request slices applied as filters, and the
/// request's iceberg threshold applied AFTER re-aggregation. Orders of
/// magnitude cheaper than a cube scan: the input is the cached result's
/// group count, not the node relation's tuple count.
class RollupExecutor {
 public:
  /// `schema` must outlive the executor.
  explicit RollupExecutor(const schema::CubeSchema* schema)
      : schema_(schema), codec_(*schema), aggregator_(*schema) {}

  /// Computes `request`'s result from `rows`, the materialized rows of
  /// `cached` over the same cube snapshot. The caller must have established
  /// Classify(cached, request) != kNo; a containment violation surfaces as
  /// kInternal rather than a wrong answer. Output rows are emitted in
  /// lexicographic dim-code order (deterministic across runs); the sink's
  /// checksum is order-independent and therefore bit-identical to the
  /// engine path's.
  Status Derive(const QueryDesc& cached,
                const std::vector<query::ResultSink::Row>& rows,
                const QueryDesc& request, query::ResultSink* sink) const;

 private:
  const schema::CubeSchema* schema_;
  schema::NodeIdCodec codec_;
  cube::Aggregator aggregator_;
};

/// Deterministic top-k selection over result rows: the k rows with the
/// largest `order_aggregate` value, ties broken by ascending dim codes (so
/// the selection — and with it the TOPK verb's response — is identical no
/// matter which path produced the rows). Returns rows sorted by
/// (aggregate desc, dims asc).
std::vector<query::ResultSink::Row> SelectTopK(
    std::vector<query::ResultSink::Row> rows, size_t k, int order_aggregate);

}  // namespace algebra
}  // namespace cure

#endif  // CURE_ALGEBRA_ROLLUP_H_
