#ifndef CURE_ALGEBRA_RESULT_CACHE_H_
#define CURE_ALGEBRA_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/query_desc.h"
#include "query/node_query.h"
#include "schema/node_id.h"

namespace cure {
namespace algebra {

/// Cache key of one node query: the canonical QueryDesc plus the cube epoch
/// the query ran against. Two requests with equal keys are guaranteed
/// identical results over an immutable cube snapshot, which is what makes
/// result caching sound; stamping the snapshot version into the key
/// invalidates every entry of an older cube at refresh time without a
/// stop-the-world purge (stale epochs simply stop being looked up and age
/// out through LRU eviction). The same epoch stamp keeps the SEMANTIC cache
/// sound for free: containment is only ever tested between keys of the
/// SAME epoch.
struct QueryKey : QueryDesc {
  uint64_t epoch = 0;  ///< cube snapshot version (0 = static cube)

  bool operator==(const QueryKey& other) const {
    return epoch == other.epoch &&
           static_cast<const QueryDesc&>(*this) ==
               static_cast<const QueryDesc&>(other);
  }
  uint64_t Hash() const;
};

/// An immutable, shareable query result: tuple count, order-independent
/// checksum, and the materialized rows. Entries are handed out by
/// shared_ptr, so an eviction never invalidates a response in flight.
struct QueryResult {
  uint64_t count = 0;
  uint64_t checksum = 0;
  std::vector<query::ResultSink::Row> rows;

  /// Approximate heap footprint used against the cache's byte budget.
  uint64_t ByteSize() const;
};

/// Sharded LRU result cache with a global byte-capacity budget split evenly
/// across shards. Each shard is an independent mutex + LRU list + hash map,
/// so concurrent lookups on different shards never contend; counters are
/// relaxed atomics. Entries larger than a shard's budget are not cached.
class QueryCache {
 public:
  /// `capacity_bytes` == 0 disables the cache (lookups always miss, inserts
  /// are dropped). `num_shards` is rounded up to a power of two.
  explicit QueryCache(uint64_t capacity_bytes, int num_shards = 8);

  bool enabled() const { return capacity_bytes_ > 0; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }

  /// Returns the cached result or nullptr; promotes the entry to MRU. With
  /// `count_stats` false the hit/miss counters are left untouched — the
  /// semantic layer probes candidates through this without skewing the
  /// exact-key statistics.
  std::shared_ptr<const QueryResult> Lookup(const QueryKey& key,
                                            bool count_stats = true);

  /// Inserts (or replaces) the entry, evicting LRU entries of the same
  /// shard until the shard budget holds. Oversized entries are dropped.
  void Insert(const QueryKey& key, std::shared_ptr<const QueryResult> result);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    uint64_t bytes = 0;
    uint64_t entries = 0;
  };
  Stats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const QueryKey& key) const {
      return static_cast<size_t>(key.Hash());
    }
  };
  struct Entry {
    QueryKey key;
    std::shared_ptr<const QueryResult> result;
    uint64_t bytes = 0;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<QueryKey, std::list<Entry>::iterator, KeyHash> map;
    uint64_t bytes = 0;
  };

  Shard* ShardFor(const QueryKey& key);

  uint64_t capacity_bytes_;
  uint64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> inserts_{0};
};

}  // namespace algebra
}  // namespace cure

#endif  // CURE_ALGEBRA_RESULT_CACHE_H_
