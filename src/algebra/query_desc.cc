#include "algebra/query_desc.h"

#include <algorithm>

namespace cure {
namespace algebra {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h * 0xBF58476D1CE4E5B9ull;
}

/// True when request slice (dim, q_level, q_code) implies cached slice
/// (same dim, c_level, c_code): the request level must derive the cached
/// level and the request code must roll up to the cached code.
bool SliceImplies(const schema::Dimension& dim, int q_level, uint32_t q_code,
                  int c_level, uint32_t c_code) {
  if (q_level == c_level) return q_code == c_code;
  if (!dim.Derives(q_level, c_level)) return false;
  Result<std::vector<uint32_t>> map = dim.LevelToLevelMap(q_level, c_level);
  if (!map.ok() || q_code >= map->size()) return false;
  return (*map)[q_code] == c_code;
}

}  // namespace

void QueryDesc::Canonicalize() {
  std::sort(slices.begin(), slices.end(),
            [](const query::CureQueryEngine::Slice& a,
               const query::CureQueryEngine::Slice& b) {
              if (a.dim != b.dim) return a.dim < b.dim;
              if (a.level != b.level) return a.level < b.level;
              return a.code < b.code;
            });
  if (min_count <= 1) {
    // Non-iceberg requests collapse onto one key regardless of how the
    // caller spelled "no threshold".
    min_count = 0;
    count_aggregate = -1;
  }
}

bool QueryDesc::operator==(const QueryDesc& other) const {
  if (node != other.node || count_aggregate != other.count_aggregate ||
      min_count != other.min_count || slices.size() != other.slices.size()) {
    return false;
  }
  for (size_t i = 0; i < slices.size(); ++i) {
    if (slices[i].dim != other.slices[i].dim ||
        slices[i].level != other.slices[i].level ||
        slices[i].code != other.slices[i].code) {
      return false;
    }
  }
  return true;
}

uint64_t QueryDesc::Hash() const {
  uint64_t h = 0x243F6A8885A308D3ull;
  h = Mix(h, node);
  h = Mix(h, static_cast<uint64_t>(count_aggregate + 1));
  h = Mix(h, static_cast<uint64_t>(min_count));
  for (const auto& slice : slices) {
    h = Mix(h, static_cast<uint64_t>(slice.dim));
    h = Mix(h, static_cast<uint64_t>(slice.level));
    h = Mix(h, slice.code);
  }
  return h;
}

Containment Classify(const schema::CubeSchema& schema,
                     const schema::Lattice& lattice, const QueryDesc& cached,
                     const QueryDesc& request) {
  if (cached == request) return Containment::kIdentical;

  // Rule 1 — the cached node must be at least as detailed as the request's.
  if (!lattice.IsAncestorOf(cached.node, request.node)) {
    return Containment::kNo;
  }

  // An iceberg request needs a resolved count aggregate to apply its
  // threshold post-rollup; the serving layer always fills it in.
  if (request.min_count > 1 && request.count_aggregate < 0) {
    return Containment::kNo;
  }

  // Rule 3 — iceberg truncation. A truncated cached relation only answers
  // requests at the SAME node (selection, never aggregation, over it).
  if (cached.min_count > 1) {
    if (cached.node != request.node ||
        cached.count_aggregate != request.count_aggregate ||
        request.min_count < cached.min_count) {
      return Containment::kNo;
    }
  }

  // Rule 2a — every cached slice must be implied by some request slice on
  // the same dimension (the cached predicate contains the request's).
  for (const auto& c : cached.slices) {
    bool implied = false;
    for (const auto& q : request.slices) {
      if (q.dim != c.dim) continue;
      if (SliceImplies(schema.dim(c.dim), q.level, q.code, c.level, c.code)) {
        implied = true;
        break;
      }
    }
    if (!implied) return Containment::kNo;
  }

  // Rule 2b — every request slice must be checkable on the cached rows:
  // the cached node must group the slice's dimension at a level deriving
  // the slice level. (Holds by transitivity for any valid request, but a
  // malformed request must classify as kNo rather than fail derivation.)
  const std::vector<int> cached_levels = lattice.codec().Decode(cached.node);
  for (const auto& q : request.slices) {
    if (q.dim < 0 || q.dim >= schema.num_dims()) return Containment::kNo;
    const int level = cached_levels[q.dim];
    if (level == lattice.codec().all_level(q.dim) ||
        !schema.dim(q.dim).Derives(level, q.level)) {
      return Containment::kNo;
    }
  }

  return Containment::kDerivable;
}

}  // namespace algebra
}  // namespace cure
