#ifndef CURE_ALGEBRA_QUERY_DESC_H_
#define CURE_ALGEBRA_QUERY_DESC_H_

#include <cstdint>
#include <vector>

#include "query/node_query.h"
#include "schema/cube_schema.h"
#include "schema/lattice.h"
#include "schema/node_id.h"

namespace cure {
namespace algebra {

/// Canonical description of one cube query: the queried lattice node, the
/// slice predicates in canonical (sorted) order, and the iceberg threshold.
/// This is the epoch-free core of the serving layer's cache key and the
/// operand of the containment algebra below (Vassiliadis-style containment
/// between cube queries over CURE's hierarchical lattice).
struct QueryDesc {
  schema::NodeId node = 0;
  std::vector<query::CureQueryEngine::Slice> slices;  // sorted (dim, level, code)
  int count_aggregate = -1;  ///< -1 when not an iceberg query
  int64_t min_count = 0;     ///< 0 when not an iceberg query

  /// Sorts the slices and collapses every spelling of "no threshold" onto
  /// min_count = 0 / count_aggregate = -1, so logically equal queries
  /// compare equal.
  void Canonicalize();

  bool operator==(const QueryDesc& other) const;
  uint64_t Hash() const;
};

/// Outcome of the containment test between a cached result and a request.
enum class Containment {
  /// The request cannot be derived from the cached result.
  kNo,
  /// Canonically identical descriptors — an exact-key cache hit.
  kIdentical,
  /// The request is strictly contained: its rows derive from the cached
  /// relation by projecting dim codes through the hierarchy level maps,
  /// filtering by the request's slices, re-combining with the distributive
  /// aggregates, and applying the request's iceberg threshold post-rollup
  /// (see RollupExecutor).
  kDerivable,
};

/// Decides whether query `request` is answerable from the materialized rows
/// of query `cached` over the same cube snapshot. The rules (terminology
/// follows the paper: an *ancestor* node is MORE detailed — DESIGN.md §15):
///
///  1. Node: cached.node must be an ancestor of (or equal to) request.node —
///     every grouping level of the request must be derivable from the
///     cached node's level on that dimension.
///  2. Slices: the cached slice predicate must contain the request's, i.e.
///     every cached slice must be implied by some request slice on the same
///     dimension (equal, or a finer request slice whose code rolls up to
///     the cached slice's code). The request's own slices are re-applied
///     during derivation, which is sound because the cached node is at
///     least as detailed as every request slice level.
///  3. Iceberg: an untruncated cached result (min_count <= 1) answers any
///     threshold (applied post-rollup). A truncated cached result is only
///     reusable at the SAME node with the same count aggregate and
///     request.min_count >= cached.min_count — counts add across merged
///     groups, so groups truncated out of a finer relation could push a
///     coarser group over the request's threshold, making any strict
///     roll-up from a truncated relation unsound.
Containment Classify(const schema::CubeSchema& schema,
                     const schema::Lattice& lattice, const QueryDesc& cached,
                     const QueryDesc& request);

}  // namespace algebra
}  // namespace cure

#endif  // CURE_ALGEBRA_QUERY_DESC_H_
