#ifndef CURE_ALGEBRA_SEMANTIC_CACHE_H_
#define CURE_ALGEBRA_SEMANTIC_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "algebra/query_desc.h"
#include "algebra/result_cache.h"
#include "algebra/rollup.h"
#include "schema/cube_schema.h"
#include "schema/lattice.h"

namespace cure {
namespace algebra {

/// Semantic result cache: an exact-key sharded LRU plus a per-node secondary
/// index that lets a query be answered from a cached *ancestor* result (a
/// more detailed relation over the same snapshot) via the containment
/// algebra and RollupExecutor. The lookup ladder the serving layer runs is
///
///   exact key  ->  DeriveFromCache (containment + roll-up)  ->  engine
///
/// The secondary index maps NodeId -> keys of cached results grouped at
/// that node. It is maintained lazily: evicted or stale-epoch keys are
/// pruned when a candidate probe fails, never eagerly, so the index adds no
/// work to the LRU's hot path. Derived results are re-inserted under the
/// request's own key, so a drill-down session pays the roll-up once and
/// exact-hits afterwards.
class SemanticCache {
 public:
  /// `schema` must outlive the cache. `capacity_bytes` == 0 disables both
  /// layers; `semantic_enabled` == false degrades to the plain exact-key
  /// cache (the serving layer's --no-semantic escape hatch).
  SemanticCache(const schema::CubeSchema* schema, uint64_t capacity_bytes,
                int num_shards = 8, bool semantic_enabled = true);

  bool enabled() const { return cache_.enabled(); }
  bool semantic_enabled() const { return semantic_enabled_ && enabled(); }

  /// The underlying exact-key cache (stats, direct probes in tests).
  QueryCache* exact() { return &cache_; }
  const QueryCache* exact() const { return &cache_; }

  /// Exact-key lookup; identical to QueryCache::Lookup.
  std::shared_ptr<const QueryResult> Lookup(const QueryKey& key) {
    return cache_.Lookup(key);
  }

  /// Inserts into the exact-key cache and indexes the key under its node.
  void Insert(const QueryKey& key, std::shared_ptr<const QueryResult> result);

  /// A successful semantic derivation: the request's result, computed from
  /// the cached rows of `source_node` by scanning `scanned_rows` of them.
  struct Derivation {
    std::shared_ptr<const QueryResult> result;
    schema::NodeId source_node = 0;
    uint64_t scanned_rows = 0;
  };

  /// Attempts to answer `key` from a cached result it is contained in.
  /// Candidates are tried cheapest-first (the request's own node, then
  /// ascending grouping-dim count — coarser cached relations have fewer
  /// rows to scan). On success the derived result is inserted under `key`.
  /// Returns nullopt on a semantic miss (also when semantic answering is
  /// disabled).
  ///
  /// `max_source_rows` is the caller's cost gate: a candidate whose cached
  /// result has more rows than this is not worth re-aggregating because the
  /// engine can answer the request cheaper (the serving layer passes its
  /// per-node scan estimate). 0 = no gate. Identical-containment candidates
  /// (pure reuse, nothing scanned) always qualify.
  std::optional<Derivation> DeriveFromCache(const QueryKey& key,
                                            uint64_t max_source_rows = 0);

  struct Stats {
    uint64_t semantic_hits = 0;    ///< queries answered by derivation
    uint64_t semantic_misses = 0;  ///< derivation attempted, no candidate fit
    uint64_t rollup_rows = 0;      ///< cached rows scanned by derivations
    uint64_t derived_rows = 0;     ///< result rows produced by derivations
    uint64_t index_nodes = 0;      ///< nodes with at least one indexed key
    uint64_t index_keys = 0;       ///< total indexed keys
  };
  Stats stats() const;

 private:
  /// Removes `key` from its node's index bucket (entry was evicted).
  void Unindex(const QueryKey& key);

  const schema::CubeSchema* schema_;
  schema::Lattice lattice_;
  RollupExecutor rollup_;
  QueryCache cache_;
  const bool semantic_enabled_;

  /// Index entries carry the cached result's row count so the cost gate
  /// prunes oversized candidates during the index scan, before any LRU
  /// probe — a failed semantic attempt must stay cheap on the query path.
  struct IndexedKey {
    QueryKey key;
    uint64_t rows = 0;
  };

  mutable std::mutex index_mu_;
  std::unordered_map<schema::NodeId, std::vector<IndexedKey>> index_;

  std::atomic<uint64_t> semantic_hits_{0};
  std::atomic<uint64_t> semantic_misses_{0};
  std::atomic<uint64_t> rollup_rows_{0};
  std::atomic<uint64_t> derived_rows_{0};
};

}  // namespace algebra
}  // namespace cure

#endif  // CURE_ALGEBRA_SEMANTIC_CACHE_H_
