#include "algebra/result_cache.h"

#include <bit>

namespace cure {
namespace algebra {

uint64_t QueryKey::Hash() const {
  uint64_t h = QueryDesc::Hash();
  h ^= epoch + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h * 0xBF58476D1CE4E5B9ull;
}

uint64_t QueryResult::ByteSize() const {
  uint64_t bytes = sizeof(QueryResult);
  for (const auto& row : rows) {
    bytes += sizeof(query::ResultSink::Row) + 4ull * row.dims.capacity() +
             8ull * row.aggrs.capacity();
  }
  return bytes;
}

QueryCache::QueryCache(uint64_t capacity_bytes, int num_shards)
    : capacity_bytes_(capacity_bytes) {
  if (num_shards < 1) num_shards = 1;
  const size_t shards = std::bit_ceil(static_cast<size_t>(num_shards));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = capacity_bytes_ / shards;
}

QueryCache::Shard* QueryCache::ShardFor(const QueryKey& key) {
  return shards_[key.Hash() & (shards_.size() - 1)].get();
}

std::shared_ptr<const QueryResult> QueryCache::Lookup(const QueryKey& key,
                                                      bool count_stats) {
  if (!enabled()) {
    if (count_stats) misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(key);
  if (it == shard->map.end()) {
    if (count_stats) misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  if (count_stats) hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void QueryCache::Insert(const QueryKey& key,
                        std::shared_ptr<const QueryResult> result) {
  if (!enabled() || result == nullptr) return;
  const uint64_t bytes = result->ByteSize();
  if (bytes > shard_capacity_) return;  // would evict the whole shard
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(key);
  if (it != shard->map.end()) {
    shard->bytes -= it->second->bytes;
    shard->lru.erase(it->second);
    shard->map.erase(it);
  }
  while (shard->bytes + bytes > shard_capacity_ && !shard->lru.empty()) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    shard->map.erase(victim.key);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard->lru.push_front(Entry{key, std::move(result), bytes});
  shard->map.emplace(key, shard->lru.begin());
  shard->bytes += bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

QueryCache::Stats QueryCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.bytes += shard->bytes;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace algebra
}  // namespace cure
