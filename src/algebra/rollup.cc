#include "algebra/rollup.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace cure {
namespace algebra {

namespace {

struct VecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (uint32_t x : v) {
      h ^= x + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      h *= 0xBF58476D1CE4E5B9ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

Status RollupExecutor::Derive(const QueryDesc& cached,
                              const std::vector<query::ResultSink::Row>& rows,
                              const QueryDesc& request,
                              query::ResultSink* sink) const {
  const std::vector<int> cached_levels = codec_.Decode(cached.node);
  const std::vector<int> request_levels = codec_.Decode(request.node);

  // Column position of each grouped dimension in the cached rows.
  std::vector<int> cached_col(schema_->num_dims(), -1);
  int num_cached_cols = 0;
  for (int d = 0; d < schema_->num_dims(); ++d) {
    if (cached_levels[d] != codec_.all_level(d)) {
      cached_col[d] = num_cached_cols++;
    }
  }

  // Projection: for every grouped dimension of the request, the cached
  // column it reads and the level map rewriting its codes (empty = levels
  // equal, codes pass through).
  struct Projection {
    int col = 0;
    std::vector<uint32_t> map;  // empty = identity
  };
  std::vector<Projection> projections;
  for (int d = 0; d < schema_->num_dims(); ++d) {
    if (request_levels[d] == codec_.all_level(d)) continue;
    if (cached_col[d] < 0 ||
        !schema_->dim(d).Derives(cached_levels[d], request_levels[d])) {
      return Status::Internal(
          "roll-up containment violated: cached node does not derive "
          "dimension " +
          schema_->dim(d).name() + " of the requested node");
    }
    Projection p;
    p.col = cached_col[d];
    if (cached_levels[d] != request_levels[d]) {
      CURE_ASSIGN_OR_RETURN(p.map, schema_->dim(d).LevelToLevelMap(
                                       cached_levels[d], request_levels[d]));
    }
    projections.push_back(std::move(p));
  }

  // Slice filters, evaluated against the cached rows' levels. Cached-side
  // slices already hold for every cached row; only the request's need
  // re-checking (a superset, by containment rule 2).
  struct Filter {
    int col = 0;
    uint32_t code = 0;
    std::vector<uint32_t> map;  // empty = identity
  };
  std::vector<Filter> filters;
  for (const auto& slice : request.slices) {
    if (slice.dim < 0 || slice.dim >= schema_->num_dims() ||
        cached_col[slice.dim] < 0 ||
        !schema_->dim(slice.dim).Derives(cached_levels[slice.dim],
                                         slice.level)) {
      return Status::Internal(
          "roll-up containment violated: slice on a dimension the cached "
          "node does not group finely enough");
    }
    Filter f;
    f.col = cached_col[slice.dim];
    f.code = slice.code;
    if (cached_levels[slice.dim] != slice.level) {
      CURE_ASSIGN_OR_RETURN(
          f.map, schema_->dim(slice.dim)
                     .LevelToLevelMap(cached_levels[slice.dim], slice.level));
    }
    filters.push_back(std::move(f));
  }

  if (request.min_count > 1 &&
      (request.count_aggregate < 0 ||
       request.count_aggregate >= schema_->num_aggregates() ||
       schema_->aggregate(request.count_aggregate).fn !=
           schema::AggFn::kCount)) {
    return Status::FailedPrecondition(
        "iceberg roll-up requires a COUNT aggregate index");
  }

  const size_t num_aggrs = static_cast<size_t>(schema_->num_aggregates());
  std::unordered_map<std::vector<uint32_t>, std::vector<int64_t>, VecHash>
      groups;
  std::vector<uint32_t> key(projections.size());
  for (const query::ResultSink::Row& row : rows) {
    if (row.dims.size() != static_cast<size_t>(num_cached_cols) ||
        row.aggrs.size() != num_aggrs) {
      return Status::Internal("cached row shape does not match its node");
    }
    bool pass = true;
    for (const Filter& f : filters) {
      const uint32_t code = row.dims[f.col];
      if (f.map.empty()) {
        if (code != f.code) pass = false;
      } else if (code >= f.map.size() || f.map[code] != f.code) {
        pass = false;
      }
      if (!pass) break;
    }
    if (!pass) continue;
    for (size_t i = 0; i < projections.size(); ++i) {
      const Projection& p = projections[i];
      const uint32_t code = row.dims[p.col];
      if (p.map.empty()) {
        key[i] = code;
      } else {
        if (code >= p.map.size()) {
          return Status::Internal("cached dim code out of level-map range");
        }
        key[i] = p.map[code];
      }
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      std::vector<int64_t> acc(num_aggrs);
      aggregator_.Init(acc.data());
      it = groups.emplace(key, std::move(acc)).first;
    }
    aggregator_.Combine(it->second.data(), row.aggrs.data());
  }

  // Deterministic output order; the iceberg threshold applies after the
  // re-aggregation (rule 3's post-rollup application).
  std::vector<const std::vector<uint32_t>*> order;
  order.reserve(groups.size());
  for (const auto& entry : groups) order.push_back(&entry.first);
  std::sort(order.begin(), order.end(),
            [](const std::vector<uint32_t>* a, const std::vector<uint32_t>* b) {
              return *a < *b;
            });
  for (const std::vector<uint32_t>* dims : order) {
    const std::vector<int64_t>& aggrs = groups.find(*dims)->second;
    if (request.min_count > 1 &&
        aggrs[request.count_aggregate] < request.min_count) {
      continue;
    }
    sink->Emit(dims->data(), static_cast<int>(dims->size()), aggrs.data(),
               static_cast<int>(aggrs.size()));
  }
  return Status::OK();
}

std::vector<query::ResultSink::Row> SelectTopK(
    std::vector<query::ResultSink::Row> rows, size_t k, int order_aggregate) {
  const auto less = [order_aggregate](const query::ResultSink::Row& a,
                                      const query::ResultSink::Row& b) {
    const size_t y = static_cast<size_t>(order_aggregate);
    const int64_t av = y < a.aggrs.size() ? a.aggrs[y] : 0;
    const int64_t bv = y < b.aggrs.size() ? b.aggrs[y] : 0;
    if (av != bv) return av > bv;
    if (a.dims != b.dims) return a.dims < b.dims;
    return a.aggrs < b.aggrs;
  };
  if (rows.size() > k) {
    std::partial_sort(rows.begin(), rows.begin() + static_cast<long>(k),
                      rows.end(), less);
    rows.resize(k);
  } else {
    std::sort(rows.begin(), rows.end(), less);
  }
  return rows;
}

}  // namespace algebra
}  // namespace cure
