#include "algebra/semantic_cache.h"

#include <algorithm>
#include <utility>

namespace cure {
namespace algebra {

namespace {

/// Bound on indexed keys per node; beyond it the oldest indexed key is
/// dropped from the index (the LRU entry itself stays until evicted — it is
/// simply no longer a semantic candidate).
constexpr size_t kMaxKeysPerNode = 128;

/// Bound on candidates a single derivation attempt classifies and probes.
/// Candidates are sorted cheapest-first, so the cap trims the expensive
/// tail; without it a semantic *miss* pays a Classify per indexed key,
/// which can cost more than the engine query it failed to avoid.
constexpr size_t kMaxCandidateProbes = 32;

}  // namespace

SemanticCache::SemanticCache(const schema::CubeSchema* schema,
                             uint64_t capacity_bytes, int num_shards,
                             bool semantic_enabled)
    : schema_(schema),
      lattice_(schema),
      rollup_(schema),
      cache_(capacity_bytes, num_shards),
      semantic_enabled_(semantic_enabled) {}

void SemanticCache::Insert(const QueryKey& key,
                           std::shared_ptr<const QueryResult> result) {
  const uint64_t rows = result != nullptr ? result->rows.size() : 0;
  cache_.Insert(key, std::move(result));
  if (!semantic_enabled()) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  std::vector<IndexedKey>& keys = index_[key.node];
  // Stale epochs can never be candidates again (epochs only advance), so
  // insertion doubles as the bucket's garbage collection.
  keys.erase(std::remove_if(keys.begin(), keys.end(),
                            [&](const IndexedKey& k) {
                              return k.key.epoch < key.epoch || k.key == key;
                            }),
             keys.end());
  if (keys.size() >= kMaxKeysPerNode) keys.erase(keys.begin());
  keys.push_back(IndexedKey{key, rows});
}

void SemanticCache::Unindex(const QueryKey& key) {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = index_.find(key.node);
  if (it == index_.end()) return;
  std::vector<IndexedKey>& keys = it->second;
  keys.erase(std::remove_if(keys.begin(), keys.end(),
                            [&](const IndexedKey& k) { return k.key == key; }),
             keys.end());
  if (keys.empty()) index_.erase(it);
}

std::optional<SemanticCache::Derivation> SemanticCache::DeriveFromCache(
    const QueryKey& key, uint64_t max_source_rows) {
  if (!semantic_enabled()) return std::nullopt;

  // Candidate keys of the same epoch whose node can compute the request's,
  // cheapest first: the request's own node (pure selection / re-threshold,
  // no re-aggregation), then ascending grouping-dim count. The cost gate
  // prunes ancestor candidates right here, off the indexed row counts —
  // a failed semantic attempt must not pay LRU probes for sources the
  // engine would beat anyway. Same-node candidates always pass: they may
  // classify as identical (pure reuse, nothing scanned).
  struct Candidate {
    QueryKey key;
    int cost = 0;
  };
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    const auto prune_stale = [&](std::vector<IndexedKey>& keys) {
      keys.erase(std::remove_if(keys.begin(), keys.end(),
                                [&](const IndexedKey& k) {
                                  return k.key.epoch < key.epoch;
                                }),
                 keys.end());
    };
    if (max_source_rows == 1) {
      // Fast path for requests the engine answers nearly for free: only an
      // identical (same key modulo threshold) or one-row same-node source
      // can qualify, and identical containment requires node equality — so
      // probe one bucket instead of scanning the whole index.
      auto it = index_.find(key.node);
      if (it != index_.end()) {
        prune_stale(it->second);
        if (it->second.empty()) {
          index_.erase(it);
        } else {
          for (const IndexedKey& k : it->second) {
            if (k.key.epoch == key.epoch) candidates.push_back({k.key, -1});
          }
        }
      }
    } else {
      for (auto it = index_.begin(); it != index_.end();) {
        std::vector<IndexedKey>& keys = it->second;
        prune_stale(keys);
        if (keys.empty()) {
          it = index_.erase(it);
          continue;
        }
        const bool same_node = it->first == key.node;
        if (same_node || lattice_.IsAncestorOf(it->first, key.node)) {
          const int cost = same_node ? -1 : lattice_.NumGroupingDims(it->first);
          for (const IndexedKey& k : keys) {
            if (k.key.epoch != key.epoch) continue;
            if (!same_node && max_source_rows > 0 && k.rows > max_source_rows) {
              continue;
            }
            candidates.push_back({k.key, cost});
          }
        }
        ++it;
      }
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.cost < b.cost;
                   });
  if (candidates.size() > kMaxCandidateProbes) {
    candidates.resize(kMaxCandidateProbes);
  }

  for (const Candidate& candidate : candidates) {
    const Containment containment =
        Classify(*schema_, lattice_, candidate.key, key);
    if (containment == Containment::kNo) continue;
    // count_stats=false: a semantic probe must not skew the exact-key
    // hit/miss statistics.
    std::shared_ptr<const QueryResult> cached =
        cache_.Lookup(candidate.key, /*count_stats=*/false);
    if (cached == nullptr) {
      Unindex(candidate.key);  // evicted underneath the index
      continue;
    }
    if (containment == Containment::kIdentical) {
      semantic_hits_.fetch_add(1, std::memory_order_relaxed);
      return Derivation{std::move(cached), candidate.key.node, 0};
    }
    // Cost gate: scanning more cached rows than the engine would touch
    // directly makes derivation a pessimization, not a cache hit.
    if (max_source_rows > 0 && cached->rows.size() > max_source_rows) {
      continue;
    }
    query::ResultSink sink(/*retain=*/true);
    const Status status = rollup_.Derive(candidate.key, cached->rows, key,
                                         &sink);
    if (!status.ok()) continue;  // defensive: containment said yes
    auto derived = std::make_shared<QueryResult>();
    derived->count = sink.count();
    derived->checksum = sink.checksum();
    derived->rows = sink.TakeRows();
    semantic_hits_.fetch_add(1, std::memory_order_relaxed);
    rollup_rows_.fetch_add(cached->rows.size(), std::memory_order_relaxed);
    derived_rows_.fetch_add(derived->count, std::memory_order_relaxed);
    Derivation derivation{derived, candidate.key.node, cached->rows.size()};
    // Future repeats of this query exact-hit instead of re-deriving.
    Insert(key, std::move(derived));
    return derivation;
  }

  semantic_misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

SemanticCache::Stats SemanticCache::stats() const {
  Stats stats;
  stats.semantic_hits = semantic_hits_.load(std::memory_order_relaxed);
  stats.semantic_misses = semantic_misses_.load(std::memory_order_relaxed);
  stats.rollup_rows = rollup_rows_.load(std::memory_order_relaxed);
  stats.derived_rows = derived_rows_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(index_mu_);
  stats.index_nodes = index_.size();
  for (const auto& [node, keys] : index_) stats.index_keys += keys.size();
  return stats;
}

}  // namespace algebra
}  // namespace cure
