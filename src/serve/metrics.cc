#include "serve/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace cure {
namespace serve {

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

LogHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) it->second = std::make_unique<LogHistogram>();
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

void AppendHistogramText(const std::string& name, const LogHistogram& histogram,
                         std::string* out) {
  const LogHistogram::Snapshot snap = histogram.TakeSnapshot();
  char line[160];
  std::snprintf(line, sizeof(line),
                "%s_count %" PRIu64 "\n%s_avg_us %.1f\n%s_p50_us %" PRId64
                "\n%s_p95_us %" PRId64 "\n%s_p99_us %" PRId64
                "\n%s_max_us %" PRId64 "\n",
                name.c_str(), snap.count, name.c_str(), snap.avg, name.c_str(),
                snap.p50, name.c_str(), snap.p95, name.c_str(), snap.p99,
                name.c_str(), snap.max);
  *out += line;
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[160];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name.c_str(),
                  counter->value());
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "%s %.3f\n", name.c_str(), gauge->value());
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    AppendHistogramText(name, *histogram, &out);
  }
  return out;
}

}  // namespace serve
}  // namespace cure
