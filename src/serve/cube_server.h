#ifndef CURE_SERVE_CUBE_SERVER_H_
#define CURE_SERVE_CUBE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/slowlog.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/cure.h"
#include "maintain/live_cube.h"
#include "query/node_query.h"
#include "serve/metrics.h"
#include "serve/query_cache.h"

namespace cure {
namespace serve {

struct CubeServerOptions {
  /// Query worker threads (0 = ThreadPool::DefaultThreadCount()).
  int num_threads = 0;
  /// Admission control: maximum queries admitted (queued + running) at any
  /// moment. Submit() beyond this bound fails fast with kResourceExhausted
  /// instead of queueing unboundedly.
  int max_inflight = 128;
  /// Result-cache byte budget; 0 disables the cache.
  uint64_t cache_bytes = 0;
  int cache_shards = 8;
  /// Semantic answering: when the exact key misses, try to derive the
  /// result from a cached ancestor via the containment algebra (DESIGN.md
  /// §15). false degrades to the plain exact-key cache (--no-semantic).
  bool semantic_cache = true;
  /// Minimum engine scan estimate (rows, per EngineScanRowsEstimate) below
  /// which the semantic probe is skipped outright: when the engine answers
  /// a node nearly for free, even a failed derivation attempt costs more
  /// than the scan it tried to avoid. 0 disables the cost gate entirely —
  /// every exact miss probes, and candidates are not pruned by row count
  /// (used by tests and small cubes where derivation is always worthwhile).
  uint64_t semantic_min_scan_rows = 4096;
  /// Pinned fraction of the fact relation (Fig. 17 semantics).
  double fact_cache_fraction = 1.0;
  /// Default per-query deadline measured from Submit(); 0 = none. A query
  /// still queued when its deadline passes fails with kDeadlineExceeded
  /// without running.
  double default_deadline_seconds = 0;
  /// Slow-query log threshold: queries slower than this log a
  /// CURE_LOG(kWarning) line with the per-stage breakdown (key/cache/
  /// execute micros) and the trace id. 0 disables the log. Overridable via
  /// the CURE_SLOW_QUERY_MS environment variable in cure_serve.
  double slow_query_seconds = 0;
  /// Batch scan path of the query engines (CureOptions::batch_rows
  /// contract): 1 = record-at-a-time reference path, 0 = the
  /// CURE_BATCH_ROWS environment variable then the built-in block size.
  /// Identical query results at every setting.
  size_t batch_rows = 0;
};

/// One query against the served cube. `min_count > 1` makes it an iceberg
/// query; `count_aggregate` -1 lets the server locate the schema's COUNT
/// aggregate automatically.
struct QueryRequest {
  schema::NodeId node = 0;
  std::vector<query::CureQueryEngine::Slice> slices;
  int64_t min_count = 0;
  int count_aggregate = -1;
  /// Materialize result rows in the response even when the cache is off.
  bool retain_rows = false;
  /// Per-request deadline override (seconds from Submit); 0 = server default.
  double deadline_seconds = 0;
  /// Caller-supplied trace id (e.g. propagated by a scatter–gather router
  /// so every backend's spans share the fan-out's id); 0 mints a fresh
  /// process-unique id.
  uint64_t trace_id = 0;
  /// Request a per-stage profile in the response (`profile=1` token). The
  /// stage checkpoints are recorded unconditionally — this flag only
  /// controls whether the transport renders them back to the client.
  bool profile = false;
};

struct QueryResponse {
  Status status;
  uint64_t count = 0;
  uint64_t checksum = 0;
  /// Rows, when retained or served from cache; may be null otherwise.
  std::shared_ptr<const QueryResult> result;
  bool cache_hit = false;
  /// Answered by rolling up a cached ancestor result (implies a cache miss
  /// on the exact key; mutually exclusive with cache_hit).
  bool semantic_hit = false;
  double latency_seconds = 0;
  /// Cube snapshot version the query ran against (0 for a static cube).
  uint64_t version = 0;
  /// Process-unique id correlating this query across trace spans, the
  /// slow-query log and the protocol response header (`trace=<id>`).
  uint64_t trace_id = 0;
  /// Per-stage breakdown in microseconds (always filled; the protocol layer
  /// renders them only when the request carried `profile=1`). queue_wait_us
  /// is filled by Submit's worker — Execute() leaves it 0.
  int64_t queue_wait_us = 0;
  int64_t key_us = 0;      ///< request canonicalization + cache-key build
  int64_t cache_us = 0;    ///< exact-key lookup + semantic derive attempt
  int64_t execute_us = 0;  ///< engine scan/aggregate (0 on a cache hit)
};

/// Long-lived concurrent serving layer over a CURE cube: per-snapshot
/// CureQueryEngines, a FIFO ThreadPool of query workers, a sharded LRU
/// result cache, bounded admission, per-query deadlines, and a metrics
/// registry. Concurrent queries produce (count, checksum) identical to
/// serial execution — each query runs against one immutable snapshot (see
/// DESIGN.md §9).
///
/// Two modes:
///  * static — Create(cube): one immutable cube for the server's lifetime;
///  * live — Create(live): snapshots come from a maintain::LiveCube, rows
///    arrive through Append/Flush, and background refreshes (scheduled on
///    this server's worker pool) swap in new versions with zero downtime. A
///    query in flight keeps serving its snapshot across a swap; the result
///    cache is invalidated by epoch (version-stamped keys), never purged.
class CubeServer {
 public:
  /// `cube` must outlive the server and must not be mutated while serving.
  static Result<std::unique_ptr<CubeServer>> Create(
      const engine::CureCube* cube, const CubeServerOptions& options);

  /// Live mode: serves `live`'s current snapshot and refreshes through it.
  /// `live` must outlive the server.
  static Result<std::unique_ptr<CubeServer>> Create(
      maintain::LiveCube* live, const CubeServerOptions& options);

  /// Drains queued queries, then joins the workers.
  ~CubeServer();

  CubeServer(const CubeServer&) = delete;
  CubeServer& operator=(const CubeServer&) = delete;

  /// Admission-controlled asynchronous dispatch. The future is always
  /// fulfilled: with the query result, a kResourceExhausted rejection, or a
  /// kDeadlineExceeded expiry.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Synchronous execution on the calling thread (bypasses the worker pool,
  /// admission control and deadlines; still cached and counted).
  QueryResponse Execute(const QueryRequest& request);

  /// Durable row ingest (live mode only; kFailedPrecondition otherwise).
  Status Append(const maintain::RowBatch& batch);
  /// Synchronous refresh of everything appended so far (live mode only).
  Result<maintain::RefreshStats> Flush();
  /// Staleness view of the served snapshot (live mode only).
  Result<maintain::Freshness> GetFreshness() const;

  /// Metrics text dump plus cache gauges — the line protocol's STATS body.
  /// Live mode adds the maintenance section: cube version, last-refresh
  /// wall time, pending-WAL rows, staleness gauge, refresh/replay
  /// histograms.
  std::string StatsText() const;

  /// Prometheus text exposition — the line protocol's METRICS body. Server
  /// series carry the `cure_serve_` prefix (query latency, cache, thread
  /// pool, refresh); the process-global storage series (buffer cache, I/O
  /// bytes, fsyncs, sort spills) are appended from GlobalMetrics().
  std::string PrometheusText() const;

  MetricsRegistry* metrics() { return &metrics_; }
  /// Flight recorder of the last N over-threshold query profiles (the
  /// SLOWLOG verb's body; populated when slow_query_seconds > 0).
  SlowQueryLog* slowlog() { return &slowlog_; }
  /// The exact-key layer of the result cache.
  QueryCache* cache() { return cache_.exact(); }
  /// The full semantic cache (containment index + roll-up derivation).
  SemanticCache* semantic_cache() { return &cache_; }
  maintain::LiveCube* live() { return live_; }
  const schema::CubeSchema& schema() const {
    return live_ != nullptr ? live_->schema() : cube_->schema();
  }
  const schema::NodeIdCodec& codec() const {
    return live_ != nullptr ? live_->codec() : cube_->store().codec();
  }
  const CubeServerOptions& options() const { return options_; }
  /// Index of the schema's COUNT aggregate, -1 when absent.
  int count_aggregate() const { return count_aggregate_; }
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Test hook: runs at the start of every pooled query task, before the
  /// deadline check (lets tests hold workers to fill the admission queue).
  void set_worker_hook(std::function<void()> hook) {
    worker_hook_ = std::move(hook);
  }

 private:
  CubeServer(const engine::CureCube* cube, maintain::LiveCube* live,
             const CubeServerOptions& options,
             std::shared_ptr<const maintain::CubeSnapshot> static_snapshot);

  /// The snapshot queries run against right now. Live mode reads the
  /// LiveCube's active version; static mode returns the fixed one.
  std::shared_ptr<const maintain::CubeSnapshot> Snapshot() const {
    return live_ != nullptr ? live_->snapshot() : static_snapshot_;
  }

  /// Canonicalizes the request into a cache key stamped with the snapshot
  /// epoch; fails on an iceberg request when the schema has no COUNT
  /// aggregate.
  Result<QueryKey> MakeKey(const QueryRequest& request, uint64_t epoch) const;
  QueryResponse ExecuteInternal(const QueryRequest& request);

  /// Samples point-in-time state (cache, thread pool, buffer cache, live
  /// freshness) into registry gauges so StatsText and PrometheusText render
  /// from one source instead of ad-hoc string assembly.
  void UpdateDerivedMetrics() const;

  const engine::CureCube* cube_;  ///< static mode only (null in live mode)
  maintain::LiveCube* live_;      ///< live mode only (null in static mode)
  CubeServerOptions options_;
  std::shared_ptr<const maintain::CubeSnapshot> static_snapshot_;
  int count_aggregate_ = -1;
  // Depends on schema(): declared after cube_/live_ so the constructor's
  // member-init order hands it a live schema pointer.
  SemanticCache cache_;
  // mutable: StatsText()/PrometheusText() are logically const but sample
  // point-in-time gauges into the registry right before rendering.
  mutable MetricsRegistry metrics_;
  SlowQueryLog slowlog_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<int64_t> in_flight_{0};
  std::function<void()> worker_hook_;

  /// Classifies a failed query into the storage-fault counters
  /// (io_errors_total / data_loss_total) in addition to queries_errors.
  void CountErrorClass(const Status& status);

  // Hot-path metric handles (owned by metrics_).
  Counter* queries_total_;
  Counter* queries_errors_;
  Counter* rejected_total_;
  Counter* deadline_exceeded_total_;
  Counter* io_errors_total_;
  Counter* data_loss_total_;
  Counter* slow_queries_total_;
  LogHistogram* latency_us_;
  LogHistogram* queue_wait_us_;
};

}  // namespace serve
}  // namespace cure

#endif  // CURE_SERVE_CUBE_SERVER_H_
