#ifndef CURE_SERVE_LINE_TRANSPORT_H_
#define CURE_SERVE_LINE_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace cure {
namespace serve {

struct LineTransportOptions {
  /// Listening port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  int port = 0;
  /// Concurrent connection cap; excess connections are turned away with
  /// `reject_response` and closed.
  int max_connections = 64;
  /// Response sent to a connection rejected by the connection cap.
  std::string reject_response = "ERR ResourceExhausted connection limit reached\n.\n";
};

/// Reusable blocking line-protocol TCP listener: accept loop, one thread
/// per connection, newline framing, partial-write-safe sends, connection
/// reaping and orderly shutdown. The protocol itself is supplied as a
/// handler — TcpLineServer (cube serving) and the router's front end both
/// run on this transport, so there is exactly one implementation of the
/// socket machinery.
///
/// A request line of "QUIT" (case-insensitive first token) closes the
/// connection; every other line is answered with handler(line), which must
/// return the full response including the terminating ".\n".
class LineTransport {
 public:
  using LineHandler = std::function<std::string(const std::string& line)>;

  /// Binds 127.0.0.1:<port> and starts the accept loop.
  static Result<std::unique_ptr<LineTransport>> Start(
      LineHandler handler, const LineTransportOptions& options);

  /// Implies Stop().
  ~LineTransport();

  LineTransport(const LineTransport&) = delete;
  LineTransport& operator=(const LineTransport&) = delete;

  /// The bound port (resolves ephemeral port 0).
  int port() const { return port_; }

  /// "127.0.0.1:<port>" — the endpoint key the network fault injector
  /// matches server-side ops against.
  const std::string& endpoint() const { return endpoint_; }

  /// Closes the listener and every connection, then joins all threads.
  /// Idempotent.
  void Stop();

 private:
  explicit LineTransport(LineHandler handler, std::string reject_response)
      : handler_(std::move(handler)),
        reject_response_(std::move(reject_response)) {}

  void AcceptLoop();
  void HandleConnection(int fd);

  LineHandler handler_;
  std::string reject_response_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string endpoint_;
  int max_connections_ = 64;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};

  struct Connection {
    std::thread thread;
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex mu_;
  std::vector<Connection> connections_;
};

/// Writes the whole buffer to `fd`: loops over partial write(2) results and
/// retries EINTR. False on any other error. Shared by the transport and the
/// tools' one-shot clients.
bool WriteAllToFd(int fd, const char* data, size_t len);

/// Fault-injectable variant: each send(2) first consults the network fault
/// injector under `endpoint` — injected short writes shorten the chunk (the
/// loop heals them, kernel-style), injected errors fail the call. This is
/// the write shim for both the server transport (endpoint = listen address)
/// and BackendClient (endpoint = backend address).
bool WriteAllToFd(int fd, const char* data, size_t len,
                  const std::string& endpoint);

}  // namespace serve
}  // namespace cure

#endif  // CURE_SERVE_LINE_TRANSPORT_H_
