#include "serve/protocol.h"

#include <cstdlib>

namespace cure {
namespace serve {

namespace {

/// Finds the (dim, level) of a level-column name; `dim_name` (optional)
/// restricts the search to one dimension.
Result<std::pair<int, int>> FindLevel(const schema::CubeSchema& schema,
                                      const std::string& dim_name,
                                      const std::string& level_name) {
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (!dim_name.empty() && schema.dim(d).name() != dim_name) continue;
    for (int l = 0; l < schema.dim(d).num_levels(); ++l) {
      if (schema.dim(d).level(l).name == level_name) {
        return std::make_pair(d, l);
      }
    }
  }
  if (!dim_name.empty()) {
    return Status::NotFound("no level '" + level_name + "' in dimension '" +
                            dim_name + "'");
  }
  return Status::NotFound("no hierarchy level named '" + level_name + "'");
}

}  // namespace

std::vector<std::string> SplitTokens(const std::string& text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
    if (j > i) tokens.push_back(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

bool TakeRequestTokens(std::vector<std::string>* tokens, uint64_t* trace_id,
                       double* deadline_seconds, std::string* error,
                       bool* profile) {
  // The control tokens trail the command, so peel from the back; each kind
  // is consumed at most once and an unknown trailing token stops the scan
  // (it belongs to the verb's own grammar).
  bool saw_trace = false;
  bool saw_deadline = false;
  bool saw_profile = false;
  while (!tokens->empty()) {
    const std::string& last = tokens->back();
    if (!saw_profile && last.rfind("profile=", 0) == 0) {
      const std::string value = last.substr(8);
      if (value != "1") {
        if (error != nullptr) {
          *error = "profile=<v> supports only profile=1";
        }
        return false;
      }
      if (profile != nullptr) *profile = true;
      saw_profile = true;
      tokens->pop_back();
      continue;
    }
    if (!saw_trace && last.rfind("trace=", 0) == 0) {
      const std::string value = last.substr(6);
      char* end = nullptr;
      const unsigned long long id = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || id == 0) {
        if (error != nullptr) {
          *error = "trace=<id> requires a positive integer id";
        }
        return false;
      }
      *trace_id = id;
      saw_trace = true;
      tokens->pop_back();
      continue;
    }
    if (!saw_deadline && last.rfind("deadline=", 0) == 0) {
      const std::string value = last.substr(9);
      char* end = nullptr;
      const unsigned long long ms = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == value.c_str() || *end != '\0' || ms == 0) {
        if (error != nullptr) {
          *error = "deadline=<ms> requires a positive integer millisecond "
                   "budget";
        }
        return false;
      }
      *deadline_seconds = static_cast<double>(ms) / 1000.0;
      saw_deadline = true;
      tokens->pop_back();
      continue;
    }
    break;
  }
  return true;
}

Result<schema::NodeId> ParseNodeSpec(const schema::CubeSchema& schema,
                                     const schema::NodeIdCodec& codec,
                                     const std::string& text) {
  std::vector<int> levels(schema.num_dims());
  for (int d = 0; d < schema.num_dims(); ++d) levels[d] = codec.all_level(d);
  if (text != "ALL" && text != "all") {
    size_t start = 0;
    while (start <= text.size()) {
      size_t end = text.find(',', start);
      if (end == std::string::npos) end = text.size();
      const std::string level_name = text.substr(start, end - start);
      start = end + 1;
      if (!level_name.empty()) {
        CURE_ASSIGN_OR_RETURN(auto found, FindLevel(schema, "", level_name));
        levels[found.first] = found.second;
      }
      if (start > text.size()) break;
    }
  }
  return codec.Encode(levels);
}

std::string FormatNodeSpec(const schema::CubeSchema& schema,
                           const schema::NodeIdCodec& codec,
                           schema::NodeId node) {
  const std::vector<int> levels = codec.Decode(node);
  std::string out;
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (levels[d] == codec.all_level(d)) continue;
    if (!out.empty()) out += ',';
    out += schema.dim(d).level(levels[d]).name;
  }
  return out.empty() ? "ALL" : out;
}

Result<query::CureQueryEngine::Slice> ParseSliceSpec(
    const schema::CubeSchema& schema, const std::string& spec,
    const SliceValueResolver& resolver) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    return Status::InvalidArgument("slice spec '" + spec +
                                   "' is not level=value");
  }
  std::string target = spec.substr(0, eq);
  const std::string value = spec.substr(eq + 1);
  std::string dim_name;
  const size_t colon = target.find(':');
  if (colon != std::string::npos) {
    dim_name = target.substr(0, colon);
    target = target.substr(colon + 1);
  }
  CURE_ASSIGN_OR_RETURN(auto found, FindLevel(schema, dim_name, target));
  query::CureQueryEngine::Slice slice;
  slice.dim = found.first;
  slice.level = found.second;
  if (resolver != nullptr) {
    CURE_ASSIGN_OR_RETURN(slice.code, resolver(slice.dim, slice.level, value));
    return slice;
  }
  char* end = nullptr;
  const unsigned long long code = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("slice value '" + value +
                                   "' is not a numeric code (no dictionary)");
  }
  const uint32_t cardinality = schema.dim(slice.dim).cardinality(slice.level);
  if (code >= cardinality) {
    return Status::OutOfRange("slice code " + value + " out of range for '" +
                              target + "' (cardinality " +
                              std::to_string(cardinality) + ")");
  }
  slice.code = static_cast<uint32_t>(code);
  return slice;
}

}  // namespace serve
}  // namespace cure
