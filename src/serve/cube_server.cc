#include "serve/cube_server.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/stopwatch.h"

namespace cure {
namespace serve {

CubeServer::CubeServer(const engine::CureCube* cube,
                       const CubeServerOptions& options,
                       std::unique_ptr<query::CureQueryEngine> engine)
    : cube_(cube),
      options_(options),
      engine_(std::move(engine)),
      cache_(options.cache_bytes, options.cache_shards),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  const schema::CubeSchema& schema = cube_->schema();
  for (int y = 0; y < schema.num_aggregates(); ++y) {
    if (schema.aggregate(y).fn == schema::AggFn::kCount) {
      count_aggregate_ = y;
      break;
    }
  }
  queries_total_ = metrics_.counter("queries_total");
  queries_errors_ = metrics_.counter("queries_errors");
  rejected_total_ = metrics_.counter("rejected_total");
  deadline_exceeded_total_ = metrics_.counter("deadline_exceeded_total");
  latency_us_ = metrics_.histogram("query_latency");
  queue_wait_us_ = metrics_.histogram("queue_wait");
}

CubeServer::~CubeServer() { pool_->Shutdown(); }

Result<std::unique_ptr<CubeServer>> CubeServer::Create(
    const engine::CureCube* cube, const CubeServerOptions& options) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument("max_inflight must be >= 1");
  }
  CURE_ASSIGN_OR_RETURN(
      std::unique_ptr<query::CureQueryEngine> engine,
      query::CureQueryEngine::Create(cube, options.fact_cache_fraction));
  return std::unique_ptr<CubeServer>(
      new CubeServer(cube, options, std::move(engine)));
}

Result<QueryKey> CubeServer::MakeKey(const QueryRequest& request) const {
  QueryKey key;
  key.node = request.node;
  key.slices = request.slices;
  key.min_count = request.min_count;
  key.count_aggregate = request.count_aggregate;
  if (key.min_count > 1 && key.count_aggregate < 0) {
    if (count_aggregate_ < 0) {
      return Status::InvalidArgument(
          "iceberg query requires a COUNT aggregate in the schema");
    }
    key.count_aggregate = count_aggregate_;
  }
  key.Canonicalize();
  return key;
}

QueryResponse CubeServer::ExecuteInternal(const QueryRequest& request) {
  QueryResponse response;
  Stopwatch watch;
  queries_total_->Inc();

  Result<QueryKey> key = MakeKey(request);
  if (!key.ok()) {
    queries_errors_->Inc();
    response.status = key.status();
    response.latency_seconds = watch.ElapsedSeconds();
    return response;
  }

  if (cache_.enabled()) {
    if (std::shared_ptr<const QueryResult> cached = cache_.Lookup(*key)) {
      response.cache_hit = true;
      response.count = cached->count;
      response.checksum = cached->checksum;
      response.result = std::move(cached);
      response.latency_seconds = watch.ElapsedSeconds();
      latency_us_->Record(watch.ElapsedMicros());
      return response;
    }
  }

  // Rows are materialized when the caller wants them or the cache will
  // store them; checksum-only requests with the cache off stay lean.
  const bool retain = request.retain_rows || cache_.enabled();
  query::ResultSink sink(retain);
  response.status = engine_->QueryNodeSlicedIceberg(
      key->node, key->slices, key->count_aggregate, key->min_count, &sink);
  if (!response.status.ok()) {
    queries_errors_->Inc();
    response.latency_seconds = watch.ElapsedSeconds();
    return response;
  }
  response.count = sink.count();
  response.checksum = sink.checksum();
  if (retain) {
    auto result = std::make_shared<QueryResult>();
    result->count = sink.count();
    result->checksum = sink.checksum();
    result->rows = sink.TakeRows();
    if (cache_.enabled()) cache_.Insert(*key, result);
    response.result = std::move(result);
  }
  response.latency_seconds = watch.ElapsedSeconds();
  latency_us_->Record(watch.ElapsedMicros());
  return response;
}

QueryResponse CubeServer::Execute(const QueryRequest& request) {
  return ExecuteInternal(request);
}

std::future<QueryResponse> CubeServer::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();

  int64_t admitted = in_flight_.load(std::memory_order_relaxed);
  do {
    if (admitted >= options_.max_inflight) {
      rejected_total_->Inc();
      QueryResponse response;
      response.status = Status::ResourceExhausted(
          "server at capacity: " + std::to_string(admitted) +
          " queries in flight");
      promise->set_value(std::move(response));
      return future;
    }
  } while (!in_flight_.compare_exchange_weak(admitted, admitted + 1,
                                             std::memory_order_relaxed));

  const double deadline = request.deadline_seconds > 0
                              ? request.deadline_seconds
                              : options_.default_deadline_seconds;
  pool_->Submit([this, promise, deadline,
                 request = std::move(request),
                 submit_watch = Stopwatch()]() mutable -> Status {
    if (worker_hook_) worker_hook_();
    queue_wait_us_->Record(submit_watch.ElapsedMicros());
    QueryResponse response;
    if (deadline > 0 && submit_watch.ElapsedSeconds() > deadline) {
      deadline_exceeded_total_->Inc();
      response.status = Status::DeadlineExceeded(
          "query spent its deadline in the admission queue");
    } else {
      response = ExecuteInternal(request);
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    promise->set_value(std::move(response));
    return Status::OK();
  });
  return future;
}

std::string CubeServer::StatsText() const {
  std::string out = metrics_.TextSnapshot();
  const QueryCache::Stats stats = cache_.stats();
  char line[256];
  std::snprintf(line, sizeof(line),
                "cache_enabled %d\ncache_hits %" PRIu64 "\ncache_misses %" PRIu64
                "\ncache_evictions %" PRIu64 "\ncache_inserts %" PRIu64
                "\ncache_bytes %" PRIu64 "\ncache_entries %" PRIu64
                "\nin_flight %" PRId64 "\n",
                cache_.enabled() ? 1 : 0, stats.hits, stats.misses,
                stats.evictions, stats.inserts, stats.bytes, stats.entries,
                in_flight());
  out += line;
  return out;
}

}  // namespace serve
}  // namespace cure
