#include "serve/cube_server.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/stopwatch.h"

namespace cure {
namespace serve {

CubeServer::CubeServer(
    const engine::CureCube* cube, maintain::LiveCube* live,
    const CubeServerOptions& options,
    std::shared_ptr<const maintain::CubeSnapshot> static_snapshot)
    : cube_(cube),
      live_(live),
      options_(options),
      static_snapshot_(std::move(static_snapshot)),
      cache_(options.cache_bytes, options.cache_shards),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  const schema::CubeSchema& schema = this->schema();
  for (int y = 0; y < schema.num_aggregates(); ++y) {
    if (schema.aggregate(y).fn == schema::AggFn::kCount) {
      count_aggregate_ = y;
      break;
    }
  }
  queries_total_ = metrics_.counter("queries_total");
  queries_errors_ = metrics_.counter("queries_errors");
  rejected_total_ = metrics_.counter("rejected_total");
  deadline_exceeded_total_ = metrics_.counter("deadline_exceeded_total");
  io_errors_total_ = metrics_.counter("io_errors_total");
  data_loss_total_ = metrics_.counter("data_loss_total");
  latency_us_ = metrics_.histogram("query_latency");
  queue_wait_us_ = metrics_.histogram("queue_wait");
  // Background refreshes share the query worker pool (the refresh job never
  // blocks on in-flight queries — it skips and retries — so queries queued
  // behind it are delayed by at most one delta application, not deadlocked).
  if (live_ != nullptr) live_->set_refresh_pool(pool_.get());
}

CubeServer::~CubeServer() {
  pool_->Shutdown();
  if (live_ != nullptr) live_->set_refresh_pool(nullptr);
}

Result<std::unique_ptr<CubeServer>> CubeServer::Create(
    const engine::CureCube* cube, const CubeServerOptions& options) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument("max_inflight must be >= 1");
  }
  // The static cube is wrapped into a fixed snapshot (version 0) so both
  // modes share one execution path.
  auto snapshot = std::make_shared<maintain::CubeSnapshot>();
  snapshot->version = 0;
  snapshot->rows = cube->stats().input_rows;
  snapshot->cube = cube;
  CURE_ASSIGN_OR_RETURN(
      snapshot->engine,
      query::CureQueryEngine::Create(cube, options.fact_cache_fraction));
  return std::unique_ptr<CubeServer>(
      new CubeServer(cube, nullptr, options, std::move(snapshot)));
}

Result<std::unique_ptr<CubeServer>> CubeServer::Create(
    maintain::LiveCube* live, const CubeServerOptions& options) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument("max_inflight must be >= 1");
  }
  return std::unique_ptr<CubeServer>(
      new CubeServer(nullptr, live, options, nullptr));
}

Status CubeServer::Append(const maintain::RowBatch& batch) {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "APPEND requires a live cube (the server was started over a static "
        "cube)");
  }
  return live_->Append(batch);
}

Result<maintain::RefreshStats> CubeServer::Flush() {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "FLUSH requires a live cube (the server was started over a static "
        "cube)");
  }
  return live_->Flush();
}

Result<maintain::Freshness> CubeServer::GetFreshness() const {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("the server is serving a static cube");
  }
  return live_->freshness();
}

Result<QueryKey> CubeServer::MakeKey(const QueryRequest& request,
                                     uint64_t epoch) const {
  QueryKey key;
  key.node = request.node;
  key.slices = request.slices;
  key.min_count = request.min_count;
  key.count_aggregate = request.count_aggregate;
  key.epoch = epoch;
  if (key.min_count > 1 && key.count_aggregate < 0) {
    if (count_aggregate_ < 0) {
      return Status::InvalidArgument(
          "iceberg query requires a COUNT aggregate in the schema");
    }
    key.count_aggregate = count_aggregate_;
  }
  key.Canonicalize();
  return key;
}

QueryResponse CubeServer::ExecuteInternal(const QueryRequest& request) {
  QueryResponse response;
  Stopwatch watch;
  queries_total_->Inc();

  // Pin the snapshot for the whole execution: a refresh swapping versions
  // mid-query cannot mutate or free anything this query reads.
  const std::shared_ptr<const maintain::CubeSnapshot> snapshot = Snapshot();
  response.version = snapshot->version;

  Result<QueryKey> key = MakeKey(request, snapshot->version);
  if (!key.ok()) {
    queries_errors_->Inc();
    CountErrorClass(key.status());
    response.status = key.status();
    response.latency_seconds = watch.ElapsedSeconds();
    return response;
  }

  if (cache_.enabled()) {
    if (std::shared_ptr<const QueryResult> cached = cache_.Lookup(*key)) {
      response.cache_hit = true;
      response.count = cached->count;
      response.checksum = cached->checksum;
      response.result = std::move(cached);
      response.latency_seconds = watch.ElapsedSeconds();
      latency_us_->Record(watch.ElapsedMicros());
      return response;
    }
  }

  // Rows are materialized when the caller wants them or the cache will
  // store them; checksum-only requests with the cache off stay lean.
  const bool retain = request.retain_rows || cache_.enabled();
  query::ResultSink sink(retain);
  response.status = snapshot->engine->QueryNodeSlicedIceberg(
      key->node, key->slices, key->count_aggregate, key->min_count, &sink);
  if (!response.status.ok()) {
    queries_errors_->Inc();
    CountErrorClass(response.status);
    response.latency_seconds = watch.ElapsedSeconds();
    return response;
  }
  response.count = sink.count();
  response.checksum = sink.checksum();
  if (retain) {
    auto result = std::make_shared<QueryResult>();
    result->count = sink.count();
    result->checksum = sink.checksum();
    result->rows = sink.TakeRows();
    if (cache_.enabled()) cache_.Insert(*key, result);
    response.result = std::move(result);
  }
  response.latency_seconds = watch.ElapsedSeconds();
  latency_us_->Record(watch.ElapsedMicros());
  return response;
}

void CubeServer::CountErrorClass(const Status& status) {
  // Storage faults get their own counters so an operator can tell "the
  // disk is dying / the cube file is corrupt" from request mistakes.
  if (status.code() == StatusCode::kIoError) {
    io_errors_total_->Inc();
  } else if (status.code() == StatusCode::kDataLoss) {
    data_loss_total_->Inc();
  }
}

QueryResponse CubeServer::Execute(const QueryRequest& request) {
  return ExecuteInternal(request);
}

std::future<QueryResponse> CubeServer::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();

  int64_t admitted = in_flight_.load(std::memory_order_relaxed);
  do {
    if (admitted >= options_.max_inflight) {
      rejected_total_->Inc();
      QueryResponse response;
      response.status = Status::ResourceExhausted(
          "server at capacity: " + std::to_string(admitted) +
          " queries in flight");
      promise->set_value(std::move(response));
      return future;
    }
  } while (!in_flight_.compare_exchange_weak(admitted, admitted + 1,
                                             std::memory_order_relaxed));

  const double deadline = request.deadline_seconds > 0
                              ? request.deadline_seconds
                              : options_.default_deadline_seconds;
  pool_->Submit([this, promise, deadline,
                 request = std::move(request),
                 submit_watch = Stopwatch()]() mutable -> Status {
    if (worker_hook_) worker_hook_();
    queue_wait_us_->Record(submit_watch.ElapsedMicros());
    QueryResponse response;
    if (deadline > 0 && submit_watch.ElapsedSeconds() > deadline) {
      deadline_exceeded_total_->Inc();
      response.status = Status::DeadlineExceeded(
          "query spent its deadline in the admission queue");
    } else {
      response = ExecuteInternal(request);
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    promise->set_value(std::move(response));
    return Status::OK();
  });
  return future;
}

std::string CubeServer::StatsText() const {
  std::string out = metrics_.TextSnapshot();
  const QueryCache::Stats stats = cache_.stats();
  char line[256];
  std::snprintf(line, sizeof(line),
                "cache_enabled %d\ncache_hits %" PRIu64 "\ncache_misses %" PRIu64
                "\ncache_evictions %" PRIu64 "\ncache_inserts %" PRIu64
                "\ncache_bytes %" PRIu64 "\ncache_entries %" PRIu64
                "\nin_flight %" PRId64 "\n",
                cache_.enabled() ? 1 : 0, stats.hits, stats.misses,
                stats.evictions, stats.inserts, stats.bytes, stats.entries,
                in_flight());
  out += line;

  if (live_ != nullptr) {
    const maintain::Freshness fresh = live_->freshness();
    const maintain::LiveCube::Counters c = live_->counters();
    std::snprintf(line, sizeof(line),
                  "cube_version %" PRIu64 "\nsnapshot_rows %" PRIu64
                  "\ntotal_rows %" PRIu64 "\npending_wal_rows %" PRIu64
                  "\npending_wal_bytes %" PRIu64 "\nstaleness_seconds %.3f\n",
                  fresh.version, fresh.snapshot_rows, fresh.total_rows,
                  fresh.pending_rows, fresh.pending_bytes,
                  fresh.staleness_seconds);
    out += line;
    std::snprintf(line, sizeof(line),
                  "last_refresh_unix %.3f\nlast_refresh_seconds %.3f\n",
                  fresh.last_refresh_unix, fresh.last_refresh_seconds);
    out += line;
    std::snprintf(line, sizeof(line),
                  "refresh_total %" PRIu64 "\nrefresh_delta %" PRIu64
                  "\nrefresh_rebuild %" PRIu64 "\nrefresh_failed %" PRIu64
                  "\nrefresh_skipped %" PRIu64 "\nappend_batches %" PRIu64
                  "\nappend_rows %" PRIu64 "\n",
                  c.refresh_total, c.refresh_delta, c.refresh_rebuild,
                  c.refresh_failed, c.refresh_skipped, c.append_batches,
                  c.append_rows);
    out += line;
    AppendHistogramText("refresh_latency", live_->refresh_latency_us(), &out);
    AppendHistogramText("wal_replay", live_->wal_replay_us(), &out);
  }
  return out;
}

}  // namespace serve
}  // namespace cure
