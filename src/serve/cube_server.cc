#include "serve/cube_server.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "cube/source.h"

namespace cure {
namespace serve {

namespace {

/// Rows the engine would touch to answer `node` from the cube directly —
/// the cost gate for semantic derivation. Row-id-bearing relations (TT, and
/// NT without dims_in_nt) count double: each row is a fact-table
/// dereference on top of the scan. A node with no storage estimates 0, so
/// derivation is skipped and the (trivially cheap) engine answers.
uint64_t EngineScanRowsEstimate(const engine::CureCube& cube,
                                schema::NodeId node) {
  const cube::CubeStore::NodeData* data = cube.store().node(node);
  if (data == nullptr) return 0;
  const bool nt_derefs = !cube.store().options().dims_in_nt;
  uint64_t rows = 0;
  if (data->has_nt) rows += data->nt.num_rows() * (nt_derefs ? 2 : 1);
  if (data->has_tt) rows += data->tt.num_rows() * 2;
  if (data->tt_bitmap != nullptr) rows += data->tt_bitmap->Count() * 2;
  if (data->has_cat) rows += data->cat.num_rows();
  if (data->has_plain) rows += data->plain.num_rows();
  return rows;
}

/// A derived row costs several engine rows: the roll-up re-aggregates
/// through a hash table while the engine streams a materialized relation.
/// The gate passed to DeriveFromCache scales the estimate down accordingly,
/// so derivation only replaces engine scans it genuinely undercuts.
constexpr uint64_t kDerivationRowCostFactor = 4;

}  // namespace

CubeServer::CubeServer(
    const engine::CureCube* cube, maintain::LiveCube* live,
    const CubeServerOptions& options,
    std::shared_ptr<const maintain::CubeSnapshot> static_snapshot)
    : cube_(cube),
      live_(live),
      options_(options),
      static_snapshot_(std::move(static_snapshot)),
      cache_(&this->schema(), options.cache_bytes, options.cache_shards,
             options.semantic_cache),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  const schema::CubeSchema& schema = this->schema();
  for (int y = 0; y < schema.num_aggregates(); ++y) {
    if (schema.aggregate(y).fn == schema::AggFn::kCount) {
      count_aggregate_ = y;
      break;
    }
  }
  queries_total_ = metrics_.counter("queries_total");
  queries_errors_ = metrics_.counter("queries_errors");
  rejected_total_ = metrics_.counter("rejected_total");
  deadline_exceeded_total_ = metrics_.counter("deadline_exceeded_total");
  io_errors_total_ = metrics_.counter("io_errors_total");
  data_loss_total_ = metrics_.counter("data_loss_total");
  slow_queries_total_ = metrics_.counter("slow_queries_total");
  latency_us_ = metrics_.histogram("query_latency");
  queue_wait_us_ = metrics_.histogram("queue_wait");
  // Background refreshes share the query worker pool (the refresh job never
  // blocks on in-flight queries — it skips and retries — so queries queued
  // behind it are delayed by at most one delta application, not deadlocked).
  if (live_ != nullptr) live_->set_refresh_pool(pool_.get());
}

CubeServer::~CubeServer() {
  pool_->Shutdown();
  if (live_ != nullptr) live_->set_refresh_pool(nullptr);
}

Result<std::unique_ptr<CubeServer>> CubeServer::Create(
    const engine::CureCube* cube, const CubeServerOptions& options) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument("max_inflight must be >= 1");
  }
  // The static cube is wrapped into a fixed snapshot (version 0) so both
  // modes share one execution path.
  auto snapshot = std::make_shared<maintain::CubeSnapshot>();
  snapshot->version = 0;
  snapshot->rows = cube->stats().input_rows;
  snapshot->cube = cube;
  CURE_ASSIGN_OR_RETURN(
      snapshot->engine,
      query::CureQueryEngine::Create(cube, options.fact_cache_fraction));
  snapshot->engine->set_batch_rows(options.batch_rows);
  return std::unique_ptr<CubeServer>(
      new CubeServer(cube, nullptr, options, std::move(snapshot)));
}

Result<std::unique_ptr<CubeServer>> CubeServer::Create(
    maintain::LiveCube* live, const CubeServerOptions& options) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument("max_inflight must be >= 1");
  }
  return std::unique_ptr<CubeServer>(
      new CubeServer(nullptr, live, options, nullptr));
}

Status CubeServer::Append(const maintain::RowBatch& batch) {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "APPEND requires a live cube (the server was started over a static "
        "cube)");
  }
  return live_->Append(batch);
}

Result<maintain::RefreshStats> CubeServer::Flush() {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "FLUSH requires a live cube (the server was started over a static "
        "cube)");
  }
  return live_->Flush();
}

Result<maintain::Freshness> CubeServer::GetFreshness() const {
  if (live_ == nullptr) {
    return Status::FailedPrecondition("the server is serving a static cube");
  }
  return live_->freshness();
}

Result<QueryKey> CubeServer::MakeKey(const QueryRequest& request,
                                     uint64_t epoch) const {
  QueryKey key;
  key.node = request.node;
  key.slices = request.slices;
  key.min_count = request.min_count;
  key.count_aggregate = request.count_aggregate;
  key.epoch = epoch;
  if (key.min_count > 1 && key.count_aggregate < 0) {
    if (count_aggregate_ < 0) {
      return Status::InvalidArgument(
          "iceberg query requires a COUNT aggregate in the schema");
    }
    key.count_aggregate = count_aggregate_;
  }
  key.Canonicalize();
  return key;
}

QueryResponse CubeServer::ExecuteInternal(const QueryRequest& request) {
  QueryResponse response;
  Stopwatch watch;
  response.trace_id = request.trace_id != 0 ? request.trace_id
                                            : Tracer::Instance().NextTraceId();
  TraceSpan query_span("cure.serve.query", "trace_id", response.trace_id,
                       "node", static_cast<uint64_t>(request.node));
  queries_total_->Inc();

  // Per-stage checkpoints (micros since `watch`): cheap enough to keep
  // unconditionally, reported by the slow-query log and the trace.
  int64_t key_done_us = 0;
  int64_t cache_done_us = 0;
  int64_t execute_done_us = 0;
  const auto finish = [&](bool record_latency) {
    const int64_t total_us = watch.ElapsedMicros();
    response.latency_seconds = static_cast<double>(total_us) * 1e-6;
    response.key_us = key_done_us;
    response.cache_us = std::max<int64_t>(cache_done_us - key_done_us, 0);
    response.execute_us =
        std::max<int64_t>(execute_done_us - cache_done_us, 0);
    if (record_latency) latency_us_->Record(total_us);
    if (options_.slow_query_seconds > 0 &&
        response.latency_seconds > options_.slow_query_seconds) {
      slow_queries_total_->Inc();
      const char* cache_token = response.cache_hit        ? "HIT"
                                : response.semantic_hit   ? "SEMANTIC"
                                                          : "MISS";
      CURE_LOG(kWarning) << "slow query trace=" << response.trace_id
                         << " node=" << request.node
                         << " version=" << response.version
                         << " status=" << response.status.ToString()
                         << " total_us=" << total_us
                         << " key_us=" << key_done_us
                         << " cache_us=" << (cache_done_us - key_done_us)
                         << " execute_us=" << (execute_done_us - cache_done_us)
                         << " rows=" << response.count << " cache="
                         << cache_token;
      // Same breakdown into the flight recorder, one line per query, in the
      // profile section's key=value grammar so SLOWLOG output is machine-
      // parseable with the same scanner.
      slowlog_.Record(
          "trace=" + std::to_string(response.trace_id) +
          " node=" + std::to_string(request.node) +
          " status=" + std::string(StatusCodeName(response.status.code())) +
          " total_us=" + std::to_string(total_us) +
          " key_us=" + std::to_string(key_done_us) +
          " cache_us=" + std::to_string(cache_done_us - key_done_us) +
          " execute_us=" + std::to_string(execute_done_us - cache_done_us) +
          " rows=" + std::to_string(response.count) + " cache=" + cache_token);
    }
  };

  // Pin the snapshot for the whole execution: a refresh swapping versions
  // mid-query cannot mutate or free anything this query reads.
  const std::shared_ptr<const maintain::CubeSnapshot> snapshot = Snapshot();
  response.version = snapshot->version;

  Result<QueryKey> key = MakeKey(request, snapshot->version);
  key_done_us = watch.ElapsedMicros();
  if (!key.ok()) {
    queries_errors_->Inc();
    CountErrorClass(key.status());
    response.status = key.status();
    finish(/*record_latency=*/false);
    return response;
  }

  if (cache_.enabled()) {
    CURE_TRACE_SPAN("cure.serve.cache_lookup");
    if (std::shared_ptr<const QueryResult> cached = cache_.Lookup(*key)) {
      response.cache_hit = true;
      response.count = cached->count;
      response.checksum = cached->checksum;
      response.result = std::move(cached);
      cache_done_us = watch.ElapsedMicros();
      execute_done_us = cache_done_us;
      finish(/*record_latency=*/true);
      return response;
    }
  }

  // Exact key missed: try to derive the answer from a cached ancestor
  // result (containment + roll-up, DESIGN.md §15) before paying for a cube
  // scan. The derivation's checksum is bit-identical to the engine path's.
  if (cache_.semantic_enabled()) {
    CURE_TRACE_SPAN("cure.serve.semantic_lookup", "trace_id",
                    response.trace_id);
    // Two-level cost gate. Below semantic_min_scan_rows the probe itself is
    // the pessimization, so it is skipped entirely; above it, candidates
    // whose cached rows exceed the scaled estimate are pruned inside
    // DeriveFromCache (0 would mean "ungated"; the floor of 1 still admits
    // identical-containment reuse).
    uint64_t scan_budget = 0;
    bool probe = true;
    if (snapshot->cube != nullptr && options_.semantic_min_scan_rows > 0) {
      const uint64_t estimate =
          EngineScanRowsEstimate(*snapshot->cube, request.node);
      probe = estimate >= options_.semantic_min_scan_rows;
      scan_budget =
          std::max<uint64_t>(estimate / kDerivationRowCostFactor, 1);
    }
    std::optional<SemanticCache::Derivation> derived;
    if (probe) derived = cache_.DeriveFromCache(*key, scan_budget);
    if (derived) {
      response.semantic_hit = true;
      response.count = derived->result->count;
      response.checksum = derived->result->checksum;
      response.result = std::move(derived->result);
      cache_done_us = watch.ElapsedMicros();
      execute_done_us = cache_done_us;
      finish(/*record_latency=*/true);
      return response;
    }
  }
  cache_done_us = watch.ElapsedMicros();

  // Rows are materialized when the caller wants them or the cache will
  // store them; checksum-only requests with the cache off stay lean.
  const bool retain = request.retain_rows || cache_.enabled();
  query::ResultSink sink(retain);
  {
    CURE_TRACE_SPAN("cure.serve.execute", "trace_id", response.trace_id);
    response.status = snapshot->engine->QueryNodeSlicedIceberg(
        key->node, key->slices, key->count_aggregate, key->min_count, &sink);
  }
  execute_done_us = watch.ElapsedMicros();
  if (!response.status.ok()) {
    queries_errors_->Inc();
    CountErrorClass(response.status);
    finish(/*record_latency=*/false);
    return response;
  }
  response.count = sink.count();
  response.checksum = sink.checksum();
  if (retain) {
    auto result = std::make_shared<QueryResult>();
    result->count = sink.count();
    result->checksum = sink.checksum();
    result->rows = sink.TakeRows();
    if (cache_.enabled()) cache_.Insert(*key, result);
    response.result = std::move(result);
  }
  finish(/*record_latency=*/true);
  return response;
}

void CubeServer::CountErrorClass(const Status& status) {
  // Storage faults get their own counters so an operator can tell "the
  // disk is dying / the cube file is corrupt" from request mistakes.
  if (status.code() == StatusCode::kIoError) {
    io_errors_total_->Inc();
  } else if (status.code() == StatusCode::kDataLoss) {
    data_loss_total_->Inc();
  }
}

QueryResponse CubeServer::Execute(const QueryRequest& request) {
  return ExecuteInternal(request);
}

std::future<QueryResponse> CubeServer::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();

  int64_t admitted = in_flight_.load(std::memory_order_relaxed);
  do {
    if (admitted >= options_.max_inflight) {
      rejected_total_->Inc();
      QueryResponse response;
      response.status = Status::ResourceExhausted(
          "server at capacity: " + std::to_string(admitted) +
          " queries in flight");
      promise->set_value(std::move(response));
      return future;
    }
  } while (!in_flight_.compare_exchange_weak(admitted, admitted + 1,
                                             std::memory_order_relaxed));

  const double deadline = request.deadline_seconds > 0
                              ? request.deadline_seconds
                              : options_.default_deadline_seconds;
  pool_->Submit([this, promise, deadline,
                 request = std::move(request),
                 submit_watch = Stopwatch()]() mutable -> Status {
    if (worker_hook_) worker_hook_();
    const int64_t wait_us = submit_watch.ElapsedMicros();
    queue_wait_us_->Record(wait_us);
    if (Tracer::enabled()) {
      // The wait happened before this worker picked the task up, so the
      // span is recorded retroactively with an explicit start timestamp.
      TraceEvent event;
      event.name = "cure.serve.queue_wait";
      event.type = TraceEventType::kComplete;
      event.ts_us = Tracer::NowMicros() - wait_us;
      event.dur_us = wait_us;
      Tracer::Instance().Record(event);
    }
    QueryResponse response;
    if (deadline > 0 && submit_watch.ElapsedSeconds() > deadline) {
      deadline_exceeded_total_->Inc();
      response.status = Status::DeadlineExceeded(
          "query spent its deadline in the admission queue");
    } else {
      response = ExecuteInternal(request);
      response.queue_wait_us = wait_us;
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    promise->set_value(std::move(response));
    return Status::OK();
  });
  return future;
}

void CubeServer::UpdateDerivedMetrics() const {
  // Satellite: every point-in-time stat flows through the registry (one
  // uniform rendering path for STATS and METRICS) instead of ad-hoc
  // snprintf assembly.
  const QueryCache::Stats stats = cache_.exact()->stats();
  metrics_.gauge("cache_enabled")->Set(cache_.enabled() ? 1 : 0);
  metrics_.gauge("cache_hits")->Set(static_cast<double>(stats.hits));
  metrics_.gauge("cache_misses")->Set(static_cast<double>(stats.misses));
  metrics_.gauge("cache_evictions")->Set(static_cast<double>(stats.evictions));
  metrics_.gauge("cache_inserts")->Set(static_cast<double>(stats.inserts));
  metrics_.gauge("cache_bytes")->Set(static_cast<double>(stats.bytes));
  metrics_.gauge("cache_entries")->Set(static_cast<double>(stats.entries));
  const SemanticCache::Stats sem = cache_.stats();
  metrics_.gauge("cache_semantic_enabled")
      ->Set(cache_.semantic_enabled() ? 1 : 0);
  metrics_.gauge("cache_semantic_hits")
      ->Set(static_cast<double>(sem.semantic_hits));
  metrics_.gauge("cache_semantic_misses")
      ->Set(static_cast<double>(sem.semantic_misses));
  metrics_.gauge("cache_rollup_rows")
      ->Set(static_cast<double>(sem.rollup_rows));
  metrics_.gauge("cache_derived_rows")
      ->Set(static_cast<double>(sem.derived_rows));
  metrics_.gauge("cache_index_nodes")
      ->Set(static_cast<double>(sem.index_nodes));
  metrics_.gauge("cache_index_keys")
      ->Set(static_cast<double>(sem.index_keys));
  metrics_.gauge("in_flight")->Set(static_cast<double>(in_flight()));

  // Satellite: thread-pool queue depth and worker utilization.
  metrics_.gauge("pool_threads")->Set(pool_->num_threads());
  metrics_.gauge("pool_queue_depth")
      ->Set(static_cast<double>(pool_->queue_depth()));
  metrics_.gauge("pool_busy_workers")->Set(pool_->busy_workers());
  metrics_.gauge("pool_tasks_submitted")
      ->Set(static_cast<double>(pool_->tasks_submitted()));
  metrics_.gauge("pool_tasks_completed")
      ->Set(static_cast<double>(pool_->tasks_completed()));

  // Buffer-cache counters of the served snapshot's fact source (already
  // relaxed atomics; sampled here rather than plumbed through the engine).
  if (const std::shared_ptr<const maintain::CubeSnapshot> snapshot =
          Snapshot();
      snapshot != nullptr && snapshot->engine != nullptr) {
    const cube::SourceAccessor* fact =
        snapshot->engine->sources().Get(cube::kSourceFact);
    if (const auto* rel = dynamic_cast<const cube::FactRelationSource*>(fact)) {
      const storage::BufferCache& cache = rel->cache();
      metrics_.gauge("buffer_cache_hits")
          ->Set(static_cast<double>(cache.hits()));
      metrics_.gauge("buffer_cache_misses")
          ->Set(static_cast<double>(cache.misses()));
      metrics_.gauge("buffer_cache_cached_rows")
          ->Set(static_cast<double>(cache.cached_rows()));
    }
  }

  if (live_ != nullptr) {
    const maintain::Freshness fresh = live_->freshness();
    const maintain::LiveCube::Counters c = live_->counters();
    metrics_.gauge("cube_version")->Set(static_cast<double>(fresh.version));
    metrics_.gauge("snapshot_rows")
        ->Set(static_cast<double>(fresh.snapshot_rows));
    metrics_.gauge("total_rows")->Set(static_cast<double>(fresh.total_rows));
    metrics_.gauge("pending_wal_rows")
        ->Set(static_cast<double>(fresh.pending_rows));
    metrics_.gauge("pending_wal_bytes")
        ->Set(static_cast<double>(fresh.pending_bytes));
    metrics_.gauge("staleness_seconds")->Set(fresh.staleness_seconds);
    metrics_.gauge("last_refresh_unix")->Set(fresh.last_refresh_unix);
    metrics_.gauge("last_refresh_seconds")->Set(fresh.last_refresh_seconds);
    metrics_.gauge("refresh_total")->Set(static_cast<double>(c.refresh_total));
    metrics_.gauge("refresh_delta")->Set(static_cast<double>(c.refresh_delta));
    metrics_.gauge("refresh_rebuild")
        ->Set(static_cast<double>(c.refresh_rebuild));
    metrics_.gauge("refresh_failed")
        ->Set(static_cast<double>(c.refresh_failed));
    metrics_.gauge("refresh_skipped")
        ->Set(static_cast<double>(c.refresh_skipped));
    metrics_.gauge("append_batches")
        ->Set(static_cast<double>(c.append_batches));
    metrics_.gauge("append_rows")->Set(static_cast<double>(c.append_rows));
  }
}

std::string CubeServer::StatsText() const {
  UpdateDerivedMetrics();
  std::string out = metrics_.TextSnapshot();
  if (live_ != nullptr) {
    AppendHistogramText("refresh_latency", live_->refresh_latency_us(), &out);
    AppendHistogramText("wal_replay", live_->wal_replay_us(), &out);
  }
  return out;
}

std::string CubeServer::PrometheusText() const {
  UpdateDerivedMetrics();
  // include_buckets: the `# BUCKETS` comment lines feed the router's
  // METRICS-cluster federation (bucket-exact histogram merge).
  std::string out =
      metrics_.PrometheusText("cure_serve_", /*include_buckets=*/true);
  if (live_ != nullptr) {
    AppendPrometheusHistogram("cure_serve_refresh_latency_us",
                              live_->refresh_latency_us(), &out);
    AppendHistogramBuckets("cure_serve_refresh_latency_us",
                           live_->refresh_latency_us(), &out);
    AppendPrometheusHistogram("cure_serve_wal_replay_us",
                              live_->wal_replay_us(), &out);
    AppendHistogramBuckets("cure_serve_wal_replay_us", live_->wal_replay_us(),
                           &out);
  }
  // Process-global storage series (file I/O, external sort, ...) — already
  // prefixed cure_storage_.
  out += GlobalMetrics().PrometheusText();
  return out;
}

}  // namespace serve
}  // namespace cure
