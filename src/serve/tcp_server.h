#ifndef CURE_SERVE_TCP_SERVER_H_
#define CURE_SERVE_TCP_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/cube_server.h"
#include "serve/line_transport.h"
#include "serve/protocol.h"

namespace cure {
namespace serve {

struct TcpServerOptions {
  /// Listening port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  int port = 0;
  /// Concurrent connection cap; excess connections are turned away with an
  /// ERR line (queries inside a connection are further bounded by the
  /// CubeServer's admission control).
  int max_connections = 64;
};

/// Minimal TCP line-protocol front end over a CubeServer, running on the
/// shared LineTransport. Every query line is dispatched through
/// CubeServer::Submit, so the protocol path exercises the same pool, cache,
/// admission control and metrics as embedded use.
///
/// Protocol (one command per line; responses end with a lone "." line):
///   QUERY <node>                      e.g. QUERY city,category  |  QUERY ALL
///   ICEBERG <node> <minsup>           count-iceberg query
///   SLICE <node> <level=value>... [MINSUP <n>]   sliced (optionally iceberg)
///   ROLLUP <node> <dim> [<level=value>...] [MINSUP <n>]
///                                     one roll-up step along <dim> (to the
///                                     next coarser level, or ALL from the
///                                     top); queries the landed node, which
///                                     is echoed as a trailing `node=<spec>`
///                                     header token
///   DRILL <node> <dim> [<level=value>...] [MINSUP <n>]
///                                     the inverse step (one level finer;
///                                     from ALL the dimension enters at its
///                                     coarsest level)
///   TOPK <node> <k> [<level=value>...]
///                                     the k groups with the largest COUNT
///                                     (deterministic ties: ascending dim
///                                     codes), selected server-side from the
///                                     full result so the selection is
///                                     identical no matter which path —
///                                     engine, exact hit or semantic
///                                     derivation — produced the rows
///   BATCH <node> [<node>...]          several whole-node queries in one
///                                     round trip, executed most-detailed-
///                                     first so coarser members can be
///                                     answered semantically from earlier
///                                     ones. Response: "OK <n> <xor-of-
///                                     section-checksums-hex> BATCH
///                                     trace=<id>", then per requested node
///                                     (input order) a section header
///                                     "= <spec> <count> <checksum-hex>
///                                     <HIT|SEMANTIC|MISS>" followed by
///                                     exactly <count> rows
///   APPEND <int>...                   live mode: append k rows, each row
///                                     D leaf codes then M measures; durable
///                                     (WAL-fsynced) on OK. Response:
///                                     "OK <rows> <pending-rows>"
///   FLUSH                             live mode: synchronous refresh.
///                                     Response: "OK <version> <applied>
///                                     <DELTA|REBUILD|NOOP>"
///   STATS                             metrics text dump
///   SLOWLOG                           flight recorder: the last N
///                                     over-threshold query profiles
///                                     (newest first; see --slow-ms)
///   QUIT                              closes the connection
/// Every query verb accepts an optional trailing `trace=<id>` token: the
/// supplied id is adopted for the query's trace spans and echoed back in
/// the response header, so a scatter–gathering router's fan-out shares one
/// trace id end-to-end instead of each backend minting its own. A trailing
/// `profile=1` token appends a profile section after the rows: one
/// "% profile ..." line with the per-stage breakdown in microseconds
/// (queue_wait/key/cache/execute/encode/total), then — when the tracer is
/// armed — one "% span name=<n> ts_us=<t> dur_us=<d>" line per recorded
/// span tagged with the request's trace id (DESIGN.md §17).
/// Query responses: "OK <count> <checksum-hex> <HIT|SEMANTIC|MISS>
/// trace=<id>" then one tab-separated row per line; SEMANTIC marks a result
/// derived from a cached ancestor by the containment algebra (bit-identical
/// to the engine path). Errors: "ERR <CodeName> <message>".
class TcpLineServer {
 public:
  /// Decodes a dimension code for row output (e.g. dictionary lookup);
  /// codes print numerically when absent.
  using ValueDecoder =
      std::function<std::string(int dim, int level, uint32_t code)>;

  /// Binds 127.0.0.1:<port> and starts the accept loop. `server` must
  /// outlive the returned instance.
  static Result<std::unique_ptr<TcpLineServer>> Start(
      CubeServer* server, const TcpServerOptions& options,
      ValueDecoder decoder = nullptr, SliceValueResolver resolver = nullptr);

  /// Implies Stop().
  ~TcpLineServer();

  TcpLineServer(const TcpLineServer&) = delete;
  TcpLineServer& operator=(const TcpLineServer&) = delete;

  /// The bound port (resolves ephemeral port 0).
  int port() const { return transport_->port(); }

  /// Closes the listener and every connection, then joins all threads.
  /// Idempotent.
  void Stop();

  /// Executes one protocol line and returns the full response (including
  /// the terminating ".\n"). Public for protocol-level tests; thread-safe.
  std::string HandleLine(const std::string& line);

 private:
  TcpLineServer(CubeServer* server, ValueDecoder decoder,
                SliceValueResolver resolver)
      : server_(server),
        decoder_(std::move(decoder)),
        resolver_(std::move(resolver)) {}

  std::string FormatQueryResponse(schema::NodeId node,
                                  const QueryResponse& response,
                                  const std::string& extra_token,
                                  bool profile) const;
  /// Dictionary-decoded tab-separated result rows (no header/terminator).
  std::string FormatRows(schema::NodeId node, const QueryResult& result) const;
  /// One "% profile ..." line (plus "% span ..." lines when the tracer is
  /// armed) for a finished query; `encode_us` is the row-formatting time,
  /// `node_label` tags BATCH members ("" elsewhere).
  std::string FormatProfileSection(const QueryResponse& response,
                                   int64_t encode_us,
                                   const std::string& node_label) const;
  std::string HandleBatch(const std::vector<schema::NodeId>& nodes,
                          uint64_t trace_id, double deadline_seconds,
                          bool profile);

  CubeServer* server_;
  ValueDecoder decoder_;
  SliceValueResolver resolver_;
  std::unique_ptr<LineTransport> transport_;
};

}  // namespace serve
}  // namespace cure

#endif  // CURE_SERVE_TCP_SERVER_H_
