#ifndef CURE_SERVE_METRICS_H_
#define CURE_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/histogram.h"

namespace cure {
namespace serve {

/// A monotonically increasing counter. Wait-free increments.
class Counter {
 public:
  void Inc() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time value (e.g. staleness seconds, pending WAL rows), set by
/// whoever observes it — typically right before a text snapshot.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Appends the standard histogram text lines
/// (`<name>_{count,avg_us,p50_us,p95_us,p99_us,max_us}`) for `histogram` to
/// `*out` — the same format MetricsRegistry::TextSnapshot uses, shared so
/// externally owned histograms (the maintenance layer's) render uniformly.
void AppendHistogramText(const std::string& name, const LogHistogram& histogram,
                         std::string* out);

/// Lock-cheap metrics registry for the serving layer: named atomic counters
/// and log-bucketed latency histograms (microseconds). Registration takes a
/// mutex; after that the hot path touches only relaxed atomics through the
/// returned pointers, which stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use.
  Counter* counter(const std::string& name);

  /// Returns the histogram named `name`, creating it on first use. Values
  /// are interpreted as microseconds in the text snapshot.
  LogHistogram* histogram(const std::string& name);

  /// Returns the gauge named `name`, creating it on first use.
  Gauge* gauge(const std::string& name);

  /// Plain-text dump, one `name value` pair per line, names sorted.
  /// Histograms expand into `<name>_{count,avg,p50,p95,p99,max}` lines.
  /// External gauges (e.g. cache occupancy sampled at dump time) can be
  /// appended by the caller.
  std::string TextSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace serve
}  // namespace cure

#endif  // CURE_SERVE_METRICS_H_
