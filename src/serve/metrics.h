#ifndef CURE_SERVE_METRICS_H_
#define CURE_SERVE_METRICS_H_

// The metrics registry was promoted to common/metrics.h so storage, engine,
// maintain and bench code can report through the same layer. This header
// stays as a compatibility alias for serve-layer code and tests.

#include "common/metrics.h"

namespace cure {
namespace serve {

using ::cure::AppendHistogramText;
using ::cure::Counter;
using ::cure::Gauge;
using ::cure::MetricsRegistry;

}  // namespace serve
}  // namespace cure

#endif  // CURE_SERVE_METRICS_H_
