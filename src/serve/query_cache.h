#ifndef CURE_SERVE_QUERY_CACHE_H_
#define CURE_SERVE_QUERY_CACHE_H_

// The result cache was promoted to src/algebra/ where the semantic layer
// (containment + roll-up derivation) builds on it; the key gained a
// canonical epoch-free core (algebra::QueryDesc). This header stays as a
// compatibility alias for serve-layer code and tests.

#include "algebra/result_cache.h"
#include "algebra/semantic_cache.h"

namespace cure {
namespace serve {

using ::cure::algebra::QueryCache;
using ::cure::algebra::QueryKey;
using ::cure::algebra::QueryResult;
using ::cure::algebra::SemanticCache;

}  // namespace serve
}  // namespace cure

#endif  // CURE_SERVE_QUERY_CACHE_H_
