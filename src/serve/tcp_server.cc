#include "serve/tcp_server.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/trace.h"

namespace cure {
namespace serve {

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

std::string ErrResponse(const Status& status) {
  return "ERR " + std::string(StatusCodeName(status.code())) + " " +
         status.message() + "\n.\n";
}

std::string ErrResponse(StatusCode code, const std::string& message) {
  return "ERR " + std::string(StatusCodeName(code)) + " " + message + "\n.\n";
}

bool ParseInt64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

// Strips an optional trailing `trace=<id>` token from a query command's
// token list; the id (when present and well-formed) is adopted by the
// query instead of minting a new one, so a router's scattered fan-out
// shares one trace id end-to-end.
bool TakeTraceToken(std::vector<std::string>* tokens, uint64_t* trace_id) {
  if (tokens->empty()) return true;
  const std::string& last = tokens->back();
  if (last.rfind("trace=", 0) != 0) return true;
  const std::string value = last.substr(6);
  char* end = nullptr;
  const unsigned long long id = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0' || id == 0) {
    return false;
  }
  *trace_id = id;
  tokens->pop_back();
  return true;
}

}  // namespace

Result<std::unique_ptr<TcpLineServer>> TcpLineServer::Start(
    CubeServer* server, const TcpServerOptions& options, ValueDecoder decoder,
    SliceValueResolver resolver) {
  auto self = std::unique_ptr<TcpLineServer>(
      new TcpLineServer(server, std::move(decoder), std::move(resolver)));
  LineTransportOptions transport_options;
  transport_options.port = options.port;
  transport_options.max_connections = options.max_connections;
  transport_options.reject_response =
      ErrResponse(StatusCode::kResourceExhausted, "connection limit reached");
  CURE_ASSIGN_OR_RETURN(
      self->transport_,
      LineTransport::Start(
          [raw = self.get()](const std::string& line) {
            return raw->HandleLine(line);
          },
          transport_options));
  return self;
}

TcpLineServer::~TcpLineServer() { Stop(); }

void TcpLineServer::Stop() { transport_->Stop(); }

std::string TcpLineServer::HandleLine(const std::string& line) {
  std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) {
    return ErrResponse(StatusCode::kInvalidArgument, "empty command");
  }
  const std::string cmd = ToUpper(tokens[0]);

  if (cmd == "STATS") {
    return "OK\n" + server_->StatsText() + ".\n";
  }
  if (cmd == "METRICS") {
    // Prometheus text exposition (server series + process-global storage
    // series); scrape with e.g. `printf 'METRICS\nQUIT\n' | nc host port`.
    return "OK\n" + server_->PrometheusText() + ".\n";
  }
  if (cmd == "APPEND") {
    const schema::CubeSchema& schema = server_->schema();
    const size_t width =
        static_cast<size_t>(schema.num_dims() + schema.num_raw_measures());
    if (tokens.size() <= 1 || (tokens.size() - 1) % width != 0) {
      return ErrResponse(
          StatusCode::kInvalidArgument,
          "APPEND takes k*" + std::to_string(width) +
              " integers: <leaf codes...> <measures...> per row");
    }
    maintain::RowBatch batch(schema.num_dims(), schema.num_raw_measures());
    std::vector<uint32_t> dims(schema.num_dims());
    std::vector<int64_t> measures(schema.num_raw_measures());
    size_t t = 1;
    while (t < tokens.size()) {
      for (int d = 0; d < schema.num_dims(); ++d, ++t) {
        int64_t value = 0;
        if (!ParseInt64(tokens[t], &value) || value < 0 ||
            value > 0xFFFFFFFFll) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "'" + tokens[t] + "' is not a valid leaf code");
        }
        dims[d] = static_cast<uint32_t>(value);
      }
      for (int m = 0; m < schema.num_raw_measures(); ++m, ++t) {
        int64_t value = 0;
        if (!ParseInt64(tokens[t], &value)) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "'" + tokens[t] + "' is not a valid measure");
        }
        measures[m] = value;
      }
      batch.Add(dims.data(), measures.data());
    }
    const Status status = server_->Append(batch);
    if (!status.ok()) return ErrResponse(status);
    Result<maintain::Freshness> fresh = server_->GetFreshness();
    const uint64_t pending = fresh.ok() ? fresh->pending_rows : 0;
    char header[64];
    std::snprintf(header, sizeof(header), "OK %llu %llu\n.\n",
                  static_cast<unsigned long long>(batch.rows()),
                  static_cast<unsigned long long>(pending));
    return header;
  }
  if (cmd == "FLUSH") {
    if (tokens.size() != 1) {
      return ErrResponse(StatusCode::kInvalidArgument, "FLUSH takes no arguments");
    }
    Result<maintain::RefreshStats> result = server_->Flush();
    if (!result.ok()) return ErrResponse(result.status());
    char header[96];
    std::snprintf(header, sizeof(header), "OK %llu %llu %s\n.\n",
                  static_cast<unsigned long long>(result->version),
                  static_cast<unsigned long long>(result->rows_applied),
                  result->refreshed
                      ? (result->used_delta ? "DELTA" : "REBUILD")
                      : "NOOP");
    return header;
  }
  if (cmd != "QUERY" && cmd != "ICEBERG" && cmd != "SLICE") {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "unknown command '" + tokens[0] +
                           "' (expected QUERY, ICEBERG, SLICE, APPEND, FLUSH, "
                           "STATS, METRICS or QUIT)");
  }

  QueryRequest request;
  request.retain_rows = true;
  if (!TakeTraceToken(&tokens, &request.trace_id)) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "trace=<id> requires a positive integer id");
  }
  if (tokens.size() < 2) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       cmd + " requires a node spec, e.g. " + cmd +
                           " city,category");
  }

  Result<schema::NodeId> node =
      ParseNodeSpec(server_->schema(), server_->codec(), tokens[1]);
  if (!node.ok()) return ErrResponse(node.status());
  request.node = *node;

  size_t arg = 2;
  if (cmd == "ICEBERG") {
    if (tokens.size() != 3) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "usage: ICEBERG <node> <minsup>");
    }
    if (!ParseInt64(tokens[2], &request.min_count) || request.min_count < 1) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "minsup '" + tokens[2] + "' is not a positive integer");
    }
    arg = 3;
  } else if (cmd == "SLICE") {
    if (tokens.size() < 3) {
      return ErrResponse(
          StatusCode::kInvalidArgument,
          "usage: SLICE <node> <level=value>... [MINSUP <n>]");
    }
    while (arg < tokens.size()) {
      if (ToUpper(tokens[arg]) == "MINSUP") {
        if (arg + 2 != tokens.size() ||
            !ParseInt64(tokens[arg + 1], &request.min_count) ||
            request.min_count < 1) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "MINSUP must be followed by a single positive "
                             "integer at the end of the command");
        }
        arg = tokens.size();
        break;
      }
      Result<query::CureQueryEngine::Slice> slice =
          ParseSliceSpec(server_->schema(), tokens[arg], resolver_);
      if (!slice.ok()) return ErrResponse(slice.status());
      request.slices.push_back(*slice);
      ++arg;
    }
    if (request.slices.empty()) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "SLICE requires at least one level=value predicate");
    }
  }
  if (arg != tokens.size()) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "unexpected argument '" + tokens[arg] + "'");
  }

  QueryResponse response = server_->Submit(std::move(request)).get();
  if (!response.status.ok()) return ErrResponse(response.status);
  return FormatQueryResponse(*node, response);
}

std::string TcpLineServer::FormatQueryResponse(
    schema::NodeId node, const QueryResponse& response) const {
  CURE_TRACE_SPAN("cure.serve.encode", "trace_id", response.trace_id);
  // The trace id is echoed so a slow response can be matched against the
  // slow-query log and exported trace spans.
  char header[96];
  std::snprintf(header, sizeof(header), "OK %llu %016llx %s trace=%llu\n",
                static_cast<unsigned long long>(response.count),
                static_cast<unsigned long long>(response.checksum),
                response.cache_hit ? "HIT" : "MISS",
                static_cast<unsigned long long>(response.trace_id));
  std::string out = header;

  if (response.result != nullptr) {
    // Result rows carry one code per *grouped* dimension, in dimension
    // order; recover the (dim, level) of each column from the node id.
    const schema::NodeIdCodec& codec = server_->codec();
    const std::vector<int> levels = codec.Decode(node);
    std::vector<std::pair<int, int>> columns;
    for (int d = 0; d < codec.num_dims(); ++d) {
      if (levels[d] != codec.all_level(d)) columns.emplace_back(d, levels[d]);
    }
    for (const query::ResultSink::Row& row : response.result->rows) {
      std::string line;
      for (size_t i = 0; i < row.dims.size(); ++i) {
        if (!line.empty()) line += '\t';
        if (decoder_ != nullptr && i < columns.size()) {
          line += decoder_(columns[i].first, columns[i].second, row.dims[i]);
        } else {
          line += std::to_string(row.dims[i]);
        }
      }
      for (const int64_t aggr : row.aggrs) {
        if (!line.empty()) line += '\t';
        line += std::to_string(aggr);
      }
      out += line;
      out += '\n';
    }
  }
  out += ".\n";
  return out;
}

}  // namespace serve
}  // namespace cure
