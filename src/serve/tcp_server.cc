#include "serve/tcp_server.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "algebra/rollup.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "schema/lattice.h"

namespace cure {
namespace serve {

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

std::string ErrResponse(const Status& status) {
  return "ERR " + std::string(StatusCodeName(status.code())) + " " +
         status.message() + "\n.\n";
}

std::string ErrResponse(StatusCode code, const std::string& message) {
  return "ERR " + std::string(StatusCodeName(code)) + " " + message + "\n.\n";
}

bool ParseInt64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

Result<std::unique_ptr<TcpLineServer>> TcpLineServer::Start(
    CubeServer* server, const TcpServerOptions& options, ValueDecoder decoder,
    SliceValueResolver resolver) {
  auto self = std::unique_ptr<TcpLineServer>(
      new TcpLineServer(server, std::move(decoder), std::move(resolver)));
  LineTransportOptions transport_options;
  transport_options.port = options.port;
  transport_options.max_connections = options.max_connections;
  transport_options.reject_response =
      ErrResponse(StatusCode::kResourceExhausted, "connection limit reached");
  CURE_ASSIGN_OR_RETURN(
      self->transport_,
      LineTransport::Start(
          [raw = self.get()](const std::string& line) {
            return raw->HandleLine(line);
          },
          transport_options));
  return self;
}

TcpLineServer::~TcpLineServer() { Stop(); }

void TcpLineServer::Stop() { transport_->Stop(); }

std::string TcpLineServer::HandleLine(const std::string& line) {
  std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) {
    return ErrResponse(StatusCode::kInvalidArgument, "empty command");
  }
  const std::string cmd = ToUpper(tokens[0]);

  if (cmd == "STATS") {
    return "OK\n" + server_->StatsText() + ".\n";
  }
  if (cmd == "METRICS") {
    // Prometheus text exposition (server series + process-global storage
    // series); scrape with e.g. `printf 'METRICS\nQUIT\n' | nc host port`.
    return "OK\n" + server_->PrometheusText() + ".\n";
  }
  if (cmd == "SLOWLOG") {
    if (tokens.size() != 1) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "SLOWLOG takes no arguments");
    }
    return "OK\n" + server_->slowlog()->Dump() + ".\n";
  }
  if (cmd == "APPEND") {
    const schema::CubeSchema& schema = server_->schema();
    const size_t width =
        static_cast<size_t>(schema.num_dims() + schema.num_raw_measures());
    if (tokens.size() <= 1 || (tokens.size() - 1) % width != 0) {
      return ErrResponse(
          StatusCode::kInvalidArgument,
          "APPEND takes k*" + std::to_string(width) +
              " integers: <leaf codes...> <measures...> per row");
    }
    maintain::RowBatch batch(schema.num_dims(), schema.num_raw_measures());
    std::vector<uint32_t> dims(schema.num_dims());
    std::vector<int64_t> measures(schema.num_raw_measures());
    size_t t = 1;
    while (t < tokens.size()) {
      for (int d = 0; d < schema.num_dims(); ++d, ++t) {
        int64_t value = 0;
        if (!ParseInt64(tokens[t], &value) || value < 0 ||
            value > 0xFFFFFFFFll) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "'" + tokens[t] + "' is not a valid leaf code");
        }
        dims[d] = static_cast<uint32_t>(value);
      }
      for (int m = 0; m < schema.num_raw_measures(); ++m, ++t) {
        int64_t value = 0;
        if (!ParseInt64(tokens[t], &value)) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "'" + tokens[t] + "' is not a valid measure");
        }
        measures[m] = value;
      }
      batch.Add(dims.data(), measures.data());
    }
    const Status status = server_->Append(batch);
    if (!status.ok()) return ErrResponse(status);
    Result<maintain::Freshness> fresh = server_->GetFreshness();
    const uint64_t pending = fresh.ok() ? fresh->pending_rows : 0;
    char header[64];
    std::snprintf(header, sizeof(header), "OK %llu %llu\n.\n",
                  static_cast<unsigned long long>(batch.rows()),
                  static_cast<unsigned long long>(pending));
    return header;
  }
  if (cmd == "FLUSH") {
    if (tokens.size() != 1) {
      return ErrResponse(StatusCode::kInvalidArgument, "FLUSH takes no arguments");
    }
    Result<maintain::RefreshStats> result = server_->Flush();
    if (!result.ok()) return ErrResponse(result.status());
    char header[96];
    std::snprintf(header, sizeof(header), "OK %llu %llu %s\n.\n",
                  static_cast<unsigned long long>(result->version),
                  static_cast<unsigned long long>(result->rows_applied),
                  result->refreshed
                      ? (result->used_delta ? "DELTA" : "REBUILD")
                      : "NOOP");
    return header;
  }
  if (cmd != "QUERY" && cmd != "ICEBERG" && cmd != "SLICE" &&
      cmd != "ROLLUP" && cmd != "DRILL" && cmd != "TOPK" && cmd != "BATCH") {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "unknown command '" + tokens[0] +
                           "' (expected QUERY, ICEBERG, SLICE, ROLLUP, DRILL, "
                           "TOPK, BATCH, APPEND, FLUSH, STATS, METRICS, "
                           "SLOWLOG or QUIT)");
  }

  QueryRequest request;
  request.retain_rows = true;
  // trace= is adopted so the router's fan-out shares one trace id;
  // deadline= is the client's remaining budget, enforced by CubeServer's
  // admission queue (a query still queued past it fails kDeadlineExceeded).
  std::string token_error;
  if (!TakeRequestTokens(&tokens, &request.trace_id,
                         &request.deadline_seconds, &token_error,
                         &request.profile)) {
    return ErrResponse(StatusCode::kInvalidArgument, token_error);
  }
  if (tokens.size() < 2) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       cmd + " requires a node spec, e.g. " + cmd +
                           " city,category");
  }

  if (cmd == "BATCH") {
    std::vector<schema::NodeId> nodes;
    for (size_t i = 1; i < tokens.size(); ++i) {
      Result<schema::NodeId> node =
          ParseNodeSpec(server_->schema(), server_->codec(), tokens[i]);
      if (!node.ok()) return ErrResponse(node.status());
      nodes.push_back(*node);
    }
    return HandleBatch(nodes, request.trace_id, request.deadline_seconds,
                       request.profile);
  }

  Result<schema::NodeId> node =
      ParseNodeSpec(server_->schema(), server_->codec(), tokens[1]);
  if (!node.ok()) return ErrResponse(node.status());
  request.node = *node;

  // Trailing header token announcing where a navigation verb landed.
  std::string extra_token;
  int64_t topk = 0;

  size_t arg = 2;
  if (cmd == "ICEBERG") {
    if (tokens.size() != 3) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "usage: ICEBERG <node> <minsup>");
    }
    if (!ParseInt64(tokens[2], &request.min_count) || request.min_count < 1) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "minsup '" + tokens[2] + "' is not a positive integer");
    }
    arg = 3;
  } else if (cmd == "ROLLUP" || cmd == "DRILL") {
    if (tokens.size() < 3) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "usage: " + cmd +
                             " <node> <dim> [<level=value>...] [MINSUP <n>]");
    }
    const schema::CubeSchema& schema = server_->schema();
    int dim = -1;
    for (int d = 0; d < schema.num_dims(); ++d) {
      if (schema.dim(d).name() == tokens[2]) dim = d;
    }
    if (dim < 0) {
      return ErrResponse(StatusCode::kNotFound,
                         "no dimension named '" + tokens[2] + "'");
    }
    const schema::Lattice lattice(&schema);
    Result<schema::NodeId> target =
        cmd == "ROLLUP" ? lattice.RollUpDim(request.node, dim)
                        : lattice.DrillDownDim(request.node, dim);
    if (!target.ok()) return ErrResponse(target.status());
    request.node = *target;
    extra_token =
        " node=" + FormatNodeSpec(schema, server_->codec(), request.node);
    arg = 3;
  } else if (cmd == "TOPK") {
    if (tokens.size() < 3 || !ParseInt64(tokens[2], &topk) || topk < 1) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "usage: TOPK <node> <k> [<level=value>...] with a "
                         "positive k");
    }
    arg = 3;
  }
  if (cmd == "SLICE" || cmd == "ROLLUP" || cmd == "DRILL" || cmd == "TOPK") {
    if (cmd == "SLICE" && tokens.size() < 3) {
      return ErrResponse(
          StatusCode::kInvalidArgument,
          "usage: SLICE <node> <level=value>... [MINSUP <n>]");
    }
    while (arg < tokens.size()) {
      if (ToUpper(tokens[arg]) == "MINSUP") {
        if (cmd == "TOPK") {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "TOPK does not take MINSUP");
        }
        if (arg + 2 != tokens.size() ||
            !ParseInt64(tokens[arg + 1], &request.min_count) ||
            request.min_count < 1) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "MINSUP must be followed by a single positive "
                             "integer at the end of the command");
        }
        arg = tokens.size();
        break;
      }
      Result<query::CureQueryEngine::Slice> slice =
          ParseSliceSpec(server_->schema(), tokens[arg], resolver_);
      if (!slice.ok()) return ErrResponse(slice.status());
      request.slices.push_back(*slice);
      ++arg;
    }
    if (cmd == "SLICE" && request.slices.empty()) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "SLICE requires at least one level=value predicate");
    }
  }
  if (arg != tokens.size()) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "unexpected argument '" + tokens[arg] + "'");
  }

  const schema::NodeId query_node = request.node;
  const bool profile = request.profile;
  QueryResponse response = server_->Submit(std::move(request)).get();
  if (!response.status.ok()) return ErrResponse(response.status);

  if (cmd == "TOPK") {
    // Selection happens over the full, already-deterministic result, so
    // TOPK answers are identical whether the rows came from the engine, an
    // exact cache hit, or a semantic derivation.
    if (response.result == nullptr) {
      return ErrResponse(StatusCode::kInternal,
                         "TOPK requires materialized rows");
    }
    const int order_aggregate =
        server_->count_aggregate() >= 0 ? server_->count_aggregate() : 0;
    std::vector<query::ResultSink::Row> rows = algebra::SelectTopK(
        response.result->rows, static_cast<size_t>(topk), order_aggregate);
    query::ResultSink sink(/*retain=*/true);
    for (const query::ResultSink::Row& row : rows) {
      sink.Emit(row.dims.data(), static_cast<int>(row.dims.size()),
                row.aggrs.data(), static_cast<int>(row.aggrs.size()));
    }
    auto selected = std::make_shared<QueryResult>();
    selected->count = sink.count();
    selected->checksum = sink.checksum();
    selected->rows = sink.TakeRows();
    response.count = selected->count;
    response.checksum = selected->checksum;
    response.result = std::move(selected);
  }

  return FormatQueryResponse(query_node, response, extra_token, profile);
}

std::string TcpLineServer::HandleBatch(
    const std::vector<schema::NodeId>& nodes, uint64_t trace_id,
    double deadline_seconds, bool profile) {
  if (trace_id == 0) trace_id = Tracer::Instance().NextTraceId();
  // Most-detailed-first execution order: once a fine node's result is
  // cached, every coarser member of the batch can be answered from it by
  // the semantic layer instead of its own cube scan. Sections are still
  // emitted in input order.
  std::vector<size_t> order(nodes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const schema::Lattice lattice(&server_->schema());
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return lattice.NumGroupingDims(nodes[a]) > lattice.NumGroupingDims(nodes[b]);
  });

  std::vector<std::string> sections(nodes.size());
  std::string profile_section;
  uint64_t combined_checksum = 0;
  for (const size_t idx : order) {
    QueryRequest request;
    request.node = nodes[idx];
    request.retain_rows = true;
    request.trace_id = trace_id;
    request.deadline_seconds = deadline_seconds;
    QueryResponse response = server_->Submit(std::move(request)).get();
    if (!response.status.ok()) return ErrResponse(response.status);
    combined_checksum ^= response.checksum;
    const std::string spec =
        FormatNodeSpec(server_->schema(), server_->codec(), nodes[idx]);
    char section_header[128];
    std::snprintf(
        section_header, sizeof(section_header), "= %s %llu %016llx %s\n",
        spec.c_str(),
        static_cast<unsigned long long>(response.count),
        static_cast<unsigned long long>(response.checksum),
        response.cache_hit ? "HIT"
                           : response.semantic_hit ? "SEMANTIC" : "MISS");
    sections[idx] = section_header;
    int64_t encode_us = 0;
    if (response.result != nullptr) {
      Stopwatch encode_watch;
      sections[idx] += FormatRows(nodes[idx], *response.result);
      encode_us = encode_watch.ElapsedMicros();
    }
    if (profile) {
      profile_section += FormatProfileSection(response, encode_us, spec);
    }
  }

  char header[96];
  std::snprintf(header, sizeof(header), "OK %llu %016llx BATCH trace=%llu\n",
                static_cast<unsigned long long>(nodes.size()),
                static_cast<unsigned long long>(combined_checksum),
                static_cast<unsigned long long>(trace_id));
  std::string out = header;
  for (const std::string& section : sections) out += section;
  out += profile_section;
  out += ".\n";
  return out;
}

std::string TcpLineServer::FormatQueryResponse(
    schema::NodeId node, const QueryResponse& response,
    const std::string& extra_token, bool profile) const {
  CURE_TRACE_SPAN("cure.serve.encode", "trace_id", response.trace_id);
  // The trace id is echoed so a slow response can be matched against the
  // slow-query log and exported trace spans.
  char header[96];
  std::snprintf(header, sizeof(header), "OK %llu %016llx %s trace=%llu",
                static_cast<unsigned long long>(response.count),
                static_cast<unsigned long long>(response.checksum),
                response.cache_hit ? "HIT"
                                   : response.semantic_hit ? "SEMANTIC"
                                                           : "MISS",
                static_cast<unsigned long long>(response.trace_id));
  std::string out = header;
  out += extra_token;
  out += '\n';

  int64_t encode_us = 0;
  if (response.result != nullptr) {
    Stopwatch encode_watch;
    out += FormatRows(node, *response.result);
    encode_us = encode_watch.ElapsedMicros();
  }
  if (profile) out += FormatProfileSection(response, encode_us, "");
  out += ".\n";
  return out;
}

std::string TcpLineServer::FormatProfileSection(
    const QueryResponse& response, int64_t encode_us,
    const std::string& node_label) const {
  // "% "-prefixed lines ride behind the rows so row-diffing clients and the
  // router's row merge can skip them wholesale (DESIGN.md §17). One
  // key=value grammar shared with the slow-query log.
  std::string out = "% profile stage=serve trace=" +
                    std::to_string(response.trace_id);
  if (!node_label.empty()) out += " node=" + node_label;
  out += " queue_wait_us=" + std::to_string(response.queue_wait_us) +
         " key_us=" + std::to_string(response.key_us) +
         " cache_us=" + std::to_string(response.cache_us) +
         " execute_us=" + std::to_string(response.execute_us) +
         " encode_us=" + std::to_string(encode_us) + " total_us=" +
         std::to_string(static_cast<int64_t>(response.latency_seconds * 1e6)) +
         " cache=";
  out += response.cache_hit ? "HIT"
         : response.semantic_hit ? "SEMANTIC"
                                 : "MISS";
  out += " version=" + std::to_string(response.version);
  out += '\n';
  if (Tracer::enabled()) {
    // The request's own spans, tagged by trace id, newest ring contents
    // only — the in-band sibling of the Chrome-trace export.
    for (const TraceEvent& event :
         Tracer::Instance().EventsForTraceId(response.trace_id)) {
      if (event.type != TraceEventType::kComplete) continue;
      out += "% span name=";
      out += event.name != nullptr ? event.name : "(null)";
      out += " ts_us=" + std::to_string(event.ts_us) +
             " dur_us=" + std::to_string(event.dur_us) + '\n';
    }
  }
  return out;
}

std::string TcpLineServer::FormatRows(schema::NodeId node,
                                      const QueryResult& result) const {
  // Result rows carry one code per *grouped* dimension, in dimension
  // order; recover the (dim, level) of each column from the node id.
  const schema::NodeIdCodec& codec = server_->codec();
  const std::vector<int> levels = codec.Decode(node);
  std::vector<std::pair<int, int>> columns;
  for (int d = 0; d < codec.num_dims(); ++d) {
    if (levels[d] != codec.all_level(d)) columns.emplace_back(d, levels[d]);
  }
  std::string out;
  for (const query::ResultSink::Row& row : result.rows) {
    std::string line;
    for (size_t i = 0; i < row.dims.size(); ++i) {
      if (!line.empty()) line += '\t';
      if (decoder_ != nullptr && i < columns.size()) {
        line += decoder_(columns[i].first, columns[i].second, row.dims[i]);
      } else {
        line += std::to_string(row.dims[i]);
      }
    }
    for (const int64_t aggr : row.aggrs) {
      if (!line.empty()) line += '\t';
      line += std::to_string(aggr);
    }
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace serve
}  // namespace cure
