#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/trace.h"

namespace cure {
namespace serve {

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

std::string ErrResponse(const Status& status) {
  return "ERR " + std::string(StatusCodeName(status.code())) + " " +
         status.message() + "\n.\n";
}

std::string ErrResponse(StatusCode code, const std::string& message) {
  return "ERR " + std::string(StatusCodeName(code)) + " " + message + "\n.\n";
}

bool ParseInt64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

/// Writes the whole buffer: loops over partial write(2) results (a send on
/// a full socket buffer may accept only a prefix) and retries EINTR (a
/// signal landing mid-send must not drop the rest of the response). False
/// on any other error.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SendAll(int fd, const std::string& data) {
  return WriteAll(fd, data.data(), data.size());
}

}  // namespace

Result<std::unique_ptr<TcpLineServer>> TcpLineServer::Start(
    CubeServer* server, const TcpServerOptions& options, ValueDecoder decoder,
    SliceValueResolver resolver) {
  auto self = std::unique_ptr<TcpLineServer>(
      new TcpLineServer(server, std::move(decoder), std::move(resolver)));
  self->max_connections_ = options.max_connections;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(options.port) +
                            ") failed: " + msg);
  }
  if (::listen(fd, 64) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen() failed: " + msg);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname() failed: " + msg);
  }
  self->listen_fd_ = fd;
  self->port_ = static_cast<int>(ntohs(bound.sin_port));
  self->accept_thread_ = std::thread([raw = self.get()] { raw->AcceptLoop(); });
  return self;
}

TcpLineServer::~TcpLineServer() { Stop(); }

void TcpLineServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock accept(); the loop exits on the next failed accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::vector<Connection> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (Connection& conn : connections) {
    ::shutdown(conn.fd, SHUT_RDWR);  // Unblocks a recv() in progress.
  }
  for (Connection& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
}

void TcpLineServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    if (active_connections_.load(std::memory_order_relaxed) >=
        max_connections_) {
      SendAll(fd, ErrResponse(StatusCode::kResourceExhausted,
                              "connection limit reached"));
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread handler([this, fd, done] {
      HandleConnection(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      done->store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(mu_);
    // Reap finished connections so a long-lived server does not accumulate
    // joinable threads; live ones are joined by Stop().
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i].done->load(std::memory_order_acquire)) {
        connections_[i].thread.join();
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
      } else {
        ++i;
      }
    }
    connections_.push_back(Connection{std::move(handler), fd, std::move(done)});
  }
}

void TcpLineServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::vector<std::string> tokens = SplitTokens(line);
      if (!tokens.empty() && ToUpper(tokens[0]) == "QUIT") {
        open = false;
        break;
      }
      if (!SendAll(fd, HandleLine(line))) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

std::string TcpLineServer::HandleLine(const std::string& line) {
  const std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) {
    return ErrResponse(StatusCode::kInvalidArgument, "empty command");
  }
  const std::string cmd = ToUpper(tokens[0]);

  if (cmd == "STATS") {
    return "OK\n" + server_->StatsText() + ".\n";
  }
  if (cmd == "METRICS") {
    // Prometheus text exposition (server series + process-global storage
    // series); scrape with e.g. `printf 'METRICS\nQUIT\n' | nc host port`.
    return "OK\n" + server_->PrometheusText() + ".\n";
  }
  if (cmd == "APPEND") {
    const schema::CubeSchema& schema = server_->schema();
    const size_t width =
        static_cast<size_t>(schema.num_dims() + schema.num_raw_measures());
    if (tokens.size() <= 1 || (tokens.size() - 1) % width != 0) {
      return ErrResponse(
          StatusCode::kInvalidArgument,
          "APPEND takes k*" + std::to_string(width) +
              " integers: <leaf codes...> <measures...> per row");
    }
    maintain::RowBatch batch(schema.num_dims(), schema.num_raw_measures());
    std::vector<uint32_t> dims(schema.num_dims());
    std::vector<int64_t> measures(schema.num_raw_measures());
    size_t t = 1;
    while (t < tokens.size()) {
      for (int d = 0; d < schema.num_dims(); ++d, ++t) {
        int64_t value = 0;
        if (!ParseInt64(tokens[t], &value) || value < 0 ||
            value > 0xFFFFFFFFll) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "'" + tokens[t] + "' is not a valid leaf code");
        }
        dims[d] = static_cast<uint32_t>(value);
      }
      for (int m = 0; m < schema.num_raw_measures(); ++m, ++t) {
        int64_t value = 0;
        if (!ParseInt64(tokens[t], &value)) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "'" + tokens[t] + "' is not a valid measure");
        }
        measures[m] = value;
      }
      batch.Add(dims.data(), measures.data());
    }
    const Status status = server_->Append(batch);
    if (!status.ok()) return ErrResponse(status);
    Result<maintain::Freshness> fresh = server_->GetFreshness();
    const uint64_t pending = fresh.ok() ? fresh->pending_rows : 0;
    char header[64];
    std::snprintf(header, sizeof(header), "OK %llu %llu\n.\n",
                  static_cast<unsigned long long>(batch.rows()),
                  static_cast<unsigned long long>(pending));
    return header;
  }
  if (cmd == "FLUSH") {
    if (tokens.size() != 1) {
      return ErrResponse(StatusCode::kInvalidArgument, "FLUSH takes no arguments");
    }
    Result<maintain::RefreshStats> result = server_->Flush();
    if (!result.ok()) return ErrResponse(result.status());
    char header[96];
    std::snprintf(header, sizeof(header), "OK %llu %llu %s\n.\n",
                  static_cast<unsigned long long>(result->version),
                  static_cast<unsigned long long>(result->rows_applied),
                  result->refreshed
                      ? (result->used_delta ? "DELTA" : "REBUILD")
                      : "NOOP");
    return header;
  }
  if (cmd != "QUERY" && cmd != "ICEBERG" && cmd != "SLICE") {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "unknown command '" + tokens[0] +
                           "' (expected QUERY, ICEBERG, SLICE, APPEND, FLUSH, "
                           "STATS, METRICS or QUIT)");
  }
  if (tokens.size() < 2) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       cmd + " requires a node spec, e.g. " + cmd +
                           " city,category");
  }

  QueryRequest request;
  request.retain_rows = true;
  Result<schema::NodeId> node =
      ParseNodeSpec(server_->schema(), server_->codec(), tokens[1]);
  if (!node.ok()) return ErrResponse(node.status());
  request.node = *node;

  size_t arg = 2;
  if (cmd == "ICEBERG") {
    if (tokens.size() != 3) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "usage: ICEBERG <node> <minsup>");
    }
    if (!ParseInt64(tokens[2], &request.min_count) || request.min_count < 1) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "minsup '" + tokens[2] + "' is not a positive integer");
    }
    arg = 3;
  } else if (cmd == "SLICE") {
    if (tokens.size() < 3) {
      return ErrResponse(
          StatusCode::kInvalidArgument,
          "usage: SLICE <node> <level=value>... [MINSUP <n>]");
    }
    while (arg < tokens.size()) {
      if (ToUpper(tokens[arg]) == "MINSUP") {
        if (arg + 2 != tokens.size() ||
            !ParseInt64(tokens[arg + 1], &request.min_count) ||
            request.min_count < 1) {
          return ErrResponse(StatusCode::kInvalidArgument,
                             "MINSUP must be followed by a single positive "
                             "integer at the end of the command");
        }
        arg = tokens.size();
        break;
      }
      Result<query::CureQueryEngine::Slice> slice =
          ParseSliceSpec(server_->schema(), tokens[arg], resolver_);
      if (!slice.ok()) return ErrResponse(slice.status());
      request.slices.push_back(*slice);
      ++arg;
    }
    if (request.slices.empty()) {
      return ErrResponse(StatusCode::kInvalidArgument,
                         "SLICE requires at least one level=value predicate");
    }
  }
  if (arg != tokens.size()) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "unexpected argument '" + tokens[arg] + "'");
  }

  QueryResponse response = server_->Submit(std::move(request)).get();
  if (!response.status.ok()) return ErrResponse(response.status);
  return FormatQueryResponse(*node, response);
}

std::string TcpLineServer::FormatQueryResponse(
    schema::NodeId node, const QueryResponse& response) const {
  CURE_TRACE_SPAN("cure.serve.encode", "trace_id", response.trace_id);
  // The trace id is echoed so a slow response can be matched against the
  // slow-query log and exported trace spans.
  char header[96];
  std::snprintf(header, sizeof(header), "OK %llu %016llx %s trace=%llu\n",
                static_cast<unsigned long long>(response.count),
                static_cast<unsigned long long>(response.checksum),
                response.cache_hit ? "HIT" : "MISS",
                static_cast<unsigned long long>(response.trace_id));
  std::string out = header;

  if (response.result != nullptr) {
    // Result rows carry one code per *grouped* dimension, in dimension
    // order; recover the (dim, level) of each column from the node id.
    const schema::NodeIdCodec& codec = server_->codec();
    const std::vector<int> levels = codec.Decode(node);
    std::vector<std::pair<int, int>> columns;
    for (int d = 0; d < codec.num_dims(); ++d) {
      if (levels[d] != codec.all_level(d)) columns.emplace_back(d, levels[d]);
    }
    for (const query::ResultSink::Row& row : response.result->rows) {
      std::string line;
      for (size_t i = 0; i < row.dims.size(); ++i) {
        if (!line.empty()) line += '\t';
        if (decoder_ != nullptr && i < columns.size()) {
          line += decoder_(columns[i].first, columns[i].second, row.dims[i]);
        } else {
          line += std::to_string(row.dims[i]);
        }
      }
      for (const int64_t aggr : row.aggrs) {
        if (!line.empty()) line += '\t';
        line += std::to_string(aggr);
      }
      out += line;
      out += '\n';
    }
  }
  out += ".\n";
  return out;
}

}  // namespace serve
}  // namespace cure
