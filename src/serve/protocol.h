#ifndef CURE_SERVE_PROTOCOL_H_
#define CURE_SERVE_PROTOCOL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/node_query.h"
#include "schema/cube_schema.h"
#include "schema/node_id.h"

namespace cure {
namespace serve {

/// Splits `text` on whitespace (any run of spaces/tabs).
std::vector<std::string> SplitTokens(const std::string& text);

/// Strips the optional trailing request-control tokens `trace=<id>`,
/// `deadline=<ms>` and `profile=1` (in any order) from a query command's
/// token list. A well-formed trace id is adopted so a router's fan-out
/// shares one trace end-to-end; a deadline is the client's remaining budget
/// in milliseconds; `profile=1` asks the server to attach a per-request
/// stage profile to the reply. Returns false with *error set on a malformed
/// token; untouched outputs keep their caller-supplied defaults.
bool TakeRequestTokens(std::vector<std::string>* tokens, uint64_t* trace_id,
                       double* deadline_seconds, std::string* error,
                       bool* profile = nullptr);

/// Parses a node spec — comma-separated hierarchy level names, or "ALL" —
/// into a node id, e.g. "city,category". Absent dimensions stay at ALL.
/// This is the <node> operand of the QUERY/ICEBERG/SLICE commands and of
/// `cure_tool query`.
Result<schema::NodeId> ParseNodeSpec(const schema::CubeSchema& schema,
                                     const schema::NodeIdCodec& codec,
                                     const std::string& text);

/// Inverse of ParseNodeSpec: renders a node id as its comma-separated level
/// names ("ALL" for the apex). Round-trips through ParseNodeSpec. Used by
/// the ROLLUP/DRILL response header (`node=<spec>`) and the BATCH section
/// headers.
std::string FormatNodeSpec(const schema::CubeSchema& schema,
                           const schema::NodeIdCodec& codec,
                           schema::NodeId node);

/// Resolves a slice value string to a dimension code at (dim, level) —
/// typically a dictionary lookup when the cube has string dimensions.
using SliceValueResolver =
    std::function<Result<uint32_t>(int dim, int level, const std::string& value)>;

/// Parses one slice spec of the form `level=value` or `dim:level=value`
/// (the explicit form disambiguates level names reused across dimensions).
/// `value` goes through `resolver` when provided, else it must be a numeric
/// code.
Result<query::CureQueryEngine::Slice> ParseSliceSpec(
    const schema::CubeSchema& schema, const std::string& spec,
    const SliceValueResolver& resolver = nullptr);

}  // namespace serve
}  // namespace cure

#endif  // CURE_SERVE_PROTOCOL_H_
