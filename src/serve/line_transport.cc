#include "serve/line_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/net_fault.h"

namespace cure {
namespace serve {

namespace {

/// True when the first whitespace-delimited token of `line` is "QUIT"
/// (case-insensitive) — the one command the transport interprets itself.
bool IsQuitLine(const std::string& line) {
  size_t start = 0;
  while (start < line.size() &&
         std::isspace(static_cast<unsigned char>(line[start]))) {
    ++start;
  }
  size_t end = start;
  while (end < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[end]))) {
    ++end;
  }
  if (end - start != 4) return false;
  static const char kQuit[] = "QUIT";
  for (size_t i = 0; i < 4; ++i) {
    if (std::toupper(static_cast<unsigned char>(line[start + i])) != kQuit[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

// Partial write(2) results (a send on a full socket buffer may accept only
// a prefix) are looped over; EINTR (a signal landing mid-send must not drop
// the rest of the response) is retried.
bool WriteAllToFd(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool WriteAllToFd(int fd, const char* data, size_t len,
                  const std::string& endpoint) {
  size_t sent = 0;
  while (sent < len) {
    size_t chunk = len - sent;
    const int injected =
        net::NetFaultInjector::Instance().ConsultWrite(endpoint, &chunk);
    if (injected != 0) {
      errno = injected;
      return false;
    }
    const ssize_t n = ::send(fd, data + sent, chunk, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

Result<std::unique_ptr<LineTransport>> LineTransport::Start(
    LineHandler handler, const LineTransportOptions& options) {
  if (handler == nullptr) {
    return Status::InvalidArgument("LineTransport requires a line handler");
  }
  auto self = std::unique_ptr<LineTransport>(
      new LineTransport(std::move(handler), options.reject_response));
  self->max_connections_ = options.max_connections;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(options.port) +
                            ") failed: " + msg);
  }
  if (::listen(fd, 64) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen() failed: " + msg);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname() failed: " + msg);
  }
  self->listen_fd_ = fd;
  self->port_ = static_cast<int>(ntohs(bound.sin_port));
  self->endpoint_ = "127.0.0.1:" + std::to_string(self->port_);
  self->accept_thread_ = std::thread([raw = self.get()] { raw->AcceptLoop(); });
  return self;
}

LineTransport::~LineTransport() { Stop(); }

void LineTransport::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock accept(); the loop exits on the next failed accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::vector<Connection> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (Connection& conn : connections) {
    ::shutdown(conn.fd, SHUT_RDWR);  // Unblocks a recv() in progress.
  }
  for (Connection& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
}

void LineTransport::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // Fault shim: an injected accept fault is connection-scoped — the
    // accepted socket is dropped (the client sees EOF/RST on its first
    // read) but the accept loop, and so the server, stays alive.
    if (net::NetFaultInjector::Instance().Consult("accept", endpoint_) != 0) {
      ::close(fd);
      continue;
    }
    if (active_connections_.load(std::memory_order_relaxed) >=
        max_connections_) {
      WriteAllToFd(fd, reject_response_.data(), reject_response_.size());
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread handler([this, fd, done] {
      HandleConnection(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      done->store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(mu_);
    // Reap finished connections so a long-lived server does not accumulate
    // joinable threads; live ones are joined by Stop().
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i].done->load(std::memory_order_acquire)) {
        connections_[i].thread.join();
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
      } else {
        ++i;
      }
    }
    connections_.push_back(Connection{std::move(handler), fd, std::move(done)});
  }
}

void LineTransport::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_relaxed)) {
    // Fault shim: an injected read fault closes this connection (the
    // standard server reaction to a receive error), never the server.
    if (net::NetFaultInjector::Instance().Consult("read", endpoint_) != 0) {
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (IsQuitLine(line)) {
        open = false;
        break;
      }
      const std::string response = handler_(line);
      if (!WriteAllToFd(fd, response.data(), response.size(), endpoint_)) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

}  // namespace serve
}  // namespace cure
