#include "query/reference.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "cube/measures.h"

namespace cure {
namespace query {

using schema::CubeSchema;
using schema::FactTable;
using schema::NodeId;

Result<std::vector<ResultSink::Row>> ReferenceNodeResult(const CubeSchema& schema,
                                                         const FactTable& table,
                                                         NodeId node,
                                                         uint64_t min_support) {
  const schema::NodeIdCodec codec(schema);
  const std::vector<int> levels = codec.Decode(node);
  const int num_dims = schema.num_dims();
  const int y = schema.num_aggregates();

  std::vector<int> grouping_dims;
  std::vector<uint64_t> radix;
  uint64_t key_space = 1;
  for (int d = 0; d < num_dims; ++d) {
    if (levels[d] == codec.all_level(d)) continue;
    grouping_dims.push_back(d);
    const uint64_t card = schema.dim(d).cardinality(levels[d]);
    if (key_space > (uint64_t{1} << 62) / std::max<uint64_t>(card, 1)) {
      return Status::Unimplemented("reference key space exceeds 2^62");
    }
    radix.push_back(card);
    key_space *= card;
  }

  const cube::Aggregator aggregator(schema);
  struct Group {
    std::vector<int64_t> aggrs;
    uint64_t count = 0;
  };
  std::unordered_map<uint64_t, Group> groups;
  std::vector<int64_t> raw(std::max(schema.num_raw_measures(), 1));
  std::vector<int64_t> lifted(y);
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    uint64_t key = 0;
    for (size_t i = 0; i < grouping_dims.size(); ++i) {
      const int d = grouping_dims[i];
      key = key * radix[i] +
            schema.dim(d).CodeAt(table.dim(d, r), levels[d]);
    }
    for (int m = 0; m < schema.num_raw_measures(); ++m) raw[m] = table.measure(m, r);
    aggregator.Lift(raw.data(), lifted.data());
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.aggrs.resize(y);
      aggregator.Init(it->second.aggrs.data());
    }
    aggregator.Combine(it->second.aggrs.data(), lifted.data());
    ++it->second.count;
  }

  std::vector<ResultSink::Row> rows;
  rows.reserve(groups.size());
  for (const auto& [key, group] : groups) {
    if (group.count < min_support) continue;
    ResultSink::Row row;
    row.dims.resize(grouping_dims.size());
    uint64_t k = key;
    for (size_t i = grouping_dims.size(); i-- > 0;) {
      row.dims[i] = static_cast<uint32_t>(k % radix[i]);
      k /= radix[i];
    }
    row.aggrs = group.aggrs;
    rows.push_back(std::move(row));
  }
  return rows;
}

void Canonicalize(std::vector<ResultSink::Row>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const ResultSink::Row& a, const ResultSink::Row& b) {
              if (a.dims != b.dims) return a.dims < b.dims;
              return a.aggrs < b.aggrs;
            });
}

bool SameResults(std::vector<ResultSink::Row> a, std::vector<ResultSink::Row> b) {
  if (a.size() != b.size()) return false;
  Canonicalize(&a);
  Canonicalize(&b);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].dims != b[i].dims || a[i].aggrs != b[i].aggrs) return false;
  }
  return true;
}

}  // namespace query
}  // namespace cure
