#ifndef CURE_QUERY_REFERENCE_H_
#define CURE_QUERY_REFERENCE_H_

#include <vector>

#include "common/status.h"
#include "query/node_query.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"
#include "schema/node_id.h"

namespace cure {
namespace query {

/// Brute-force reference evaluator: computes the exact result of a lattice
/// node by hash aggregation straight over the fact table. Used by the test
/// suite to validate every cube format and by the examples to demonstrate
/// correctness.
Result<std::vector<ResultSink::Row>> ReferenceNodeResult(
    const schema::CubeSchema& schema, const schema::FactTable& table,
    schema::NodeId node, uint64_t min_support = 1);

/// Canonicalizes rows (sorts by dims then aggregates) for comparisons.
void Canonicalize(std::vector<ResultSink::Row>* rows);

/// True when the two canonicalized result sets are identical.
bool SameResults(std::vector<ResultSink::Row> a, std::vector<ResultSink::Row> b);

}  // namespace query
}  // namespace cure

#endif  // CURE_QUERY_REFERENCE_H_
