#ifndef CURE_QUERY_WORKLOAD_H_
#define CURE_QUERY_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "query/node_query.h"
#include "schema/node_id.h"

namespace cure {
namespace query {

/// Draws `count` node ids uniformly at random from the lattice — the
/// paper's query workload of "1,000 random node queries, which perform no
/// selection". With `unique` the draw is without replacement (count is
/// clamped to the lattice size), so repeated nodes cannot silently inflate
/// result-cache hit rates in serving benchmarks.
std::vector<schema::NodeId> RandomNodeWorkload(const schema::NodeIdCodec& codec,
                                               size_t count, uint64_t seed,
                                               bool unique = false);

/// One step of an analyst drill-down session: the node to query plus the
/// slice predicates accumulated so far.
struct DrillStep {
  schema::NodeId node = 0;
  std::vector<CureQueryEngine::Slice> slices;
};

/// One session: a sequence of steps, each one lattice-adjacent to its
/// predecessor (finer, coarser, or same node with a narrower slice).
using DrillSession = std::vector<DrillStep>;

/// Generates `num_sessions` analyst drill-down traces of `steps_per_session`
/// steps each. Every session starts at the apex (ALL on every dimension)
/// and at each step either DRILLs one dimension finer (p=0.5), NARROWS by
/// adding a slice on a currently-grouped dimension (p=0.3), or ROLLs one
/// dimension back up, dropping its slices (p=0.2); impossible actions fall
/// back to the next one. Successive steps are therefore exactly the
/// descendant-heavy access pattern a semantic result cache exploits: a
/// step's answer is usually derivable from the finer results already
/// cached by the steps around it.
std::vector<DrillSession> DrillDownSessions(const schema::CubeSchema& schema,
                                            size_t num_sessions,
                                            size_t steps_per_session,
                                            uint64_t seed);

/// Query response time over a workload: average plus latency percentiles
/// (from a LogHistogram over microseconds, shared with the serving layer's
/// metrics).
struct QrtStats {
  double avg_seconds = 0;
  double total_seconds = 0;
  double p50_seconds = 0;
  double p95_seconds = 0;
  double max_seconds = 0;
  uint64_t total_tuples = 0;
  size_t queries = 0;
};

/// Runs `query(node, sink)` for every node in the workload and aggregates
/// timing. The sink is reset per query; tuple counts accumulate. When
/// `latencies` is non-null, every per-query latency (microseconds) is also
/// recorded there — pass a MetricsRegistry histogram to publish the exact
/// per-query distribution the serving layer snapshots, rather than the
/// collapsed QrtStats percentiles.
Result<QrtStats> MeasureQrt(
    const std::vector<schema::NodeId>& workload,
    const std::function<Status(schema::NodeId, ResultSink*)>& query,
    LogHistogram* latencies = nullptr);

}  // namespace query
}  // namespace cure

#endif  // CURE_QUERY_WORKLOAD_H_
