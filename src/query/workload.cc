#include "query/workload.h"

#include "common/stopwatch.h"
#include "gen/random.h"

namespace cure {
namespace query {

std::vector<schema::NodeId> RandomNodeWorkload(const schema::NodeIdCodec& codec,
                                               size_t count, uint64_t seed) {
  gen::Rng rng(seed);
  std::vector<schema::NodeId> nodes;
  nodes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    nodes.push_back(rng.NextRange(codec.num_nodes()));
  }
  return nodes;
}

Result<QrtStats> MeasureQrt(
    const std::vector<schema::NodeId>& workload,
    const std::function<Status(schema::NodeId, ResultSink*)>& query) {
  QrtStats stats;
  ResultSink sink;
  for (schema::NodeId node : workload) {
    sink.Reset();
    Stopwatch watch;
    CURE_RETURN_IF_ERROR(query(node, &sink));
    stats.total_seconds += watch.ElapsedSeconds();
    stats.total_tuples += sink.count();
    ++stats.queries;
  }
  stats.avg_seconds = stats.queries > 0 ? stats.total_seconds / stats.queries : 0;
  return stats;
}

}  // namespace query
}  // namespace cure
