#include "query/workload.h"

#include <unordered_set>

#include "common/histogram.h"
#include "common/stopwatch.h"
#include "gen/random.h"

namespace cure {
namespace query {

std::vector<schema::NodeId> RandomNodeWorkload(const schema::NodeIdCodec& codec,
                                               size_t count, uint64_t seed,
                                               bool unique) {
  gen::Rng rng(seed);
  std::vector<schema::NodeId> nodes;
  if (!unique) {
    nodes.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      nodes.push_back(rng.NextRange(codec.num_nodes()));
    }
    return nodes;
  }
  const uint64_t num_nodes = codec.num_nodes();
  if (count > num_nodes) count = num_nodes;
  if (2 * count >= num_nodes) {
    // Dense draw: partial Fisher-Yates over the full lattice.
    nodes.resize(num_nodes);
    for (uint64_t i = 0; i < num_nodes; ++i) nodes[i] = i;
    for (size_t i = 0; i < count; ++i) {
      const uint64_t j = i + rng.NextRange(num_nodes - i);
      std::swap(nodes[i], nodes[j]);
    }
    nodes.resize(count);
  } else {
    // Sparse draw: rejection sampling.
    std::unordered_set<schema::NodeId> seen;
    nodes.reserve(count);
    while (nodes.size() < count) {
      const schema::NodeId id = rng.NextRange(num_nodes);
      if (seen.insert(id).second) nodes.push_back(id);
    }
  }
  return nodes;
}

Result<QrtStats> MeasureQrt(
    const std::vector<schema::NodeId>& workload,
    const std::function<Status(schema::NodeId, ResultSink*)>& query,
    LogHistogram* latencies_out) {
  QrtStats stats;
  LogHistogram local;
  LogHistogram& latencies = latencies_out != nullptr ? *latencies_out : local;
  ResultSink sink;
  for (schema::NodeId node : workload) {
    sink.Reset();
    Stopwatch watch;
    CURE_RETURN_IF_ERROR(query(node, &sink));
    stats.total_seconds += watch.ElapsedSeconds();
    latencies.Record(watch.ElapsedMicros());
    stats.total_tuples += sink.count();
    ++stats.queries;
  }
  stats.avg_seconds = stats.queries > 0 ? stats.total_seconds / stats.queries : 0;
  const LogHistogram::Snapshot snap = latencies.TakeSnapshot();
  stats.p50_seconds = static_cast<double>(snap.p50) * 1e-6;
  stats.p95_seconds = static_cast<double>(snap.p95) * 1e-6;
  stats.max_seconds = static_cast<double>(snap.max) * 1e-6;
  return stats;
}

}  // namespace query
}  // namespace cure
