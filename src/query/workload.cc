#include "query/workload.h"

#include <unordered_set>
#include <utility>

#include "common/histogram.h"
#include "common/stopwatch.h"
#include "gen/random.h"
#include "schema/lattice.h"

namespace cure {
namespace query {

std::vector<schema::NodeId> RandomNodeWorkload(const schema::NodeIdCodec& codec,
                                               size_t count, uint64_t seed,
                                               bool unique) {
  gen::Rng rng(seed);
  std::vector<schema::NodeId> nodes;
  if (!unique) {
    nodes.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      nodes.push_back(rng.NextRange(codec.num_nodes()));
    }
    return nodes;
  }
  const uint64_t num_nodes = codec.num_nodes();
  if (count > num_nodes) count = num_nodes;
  if (2 * count >= num_nodes) {
    // Dense draw: partial Fisher-Yates over the full lattice.
    nodes.resize(num_nodes);
    for (uint64_t i = 0; i < num_nodes; ++i) nodes[i] = i;
    for (size_t i = 0; i < count; ++i) {
      const uint64_t j = i + rng.NextRange(num_nodes - i);
      std::swap(nodes[i], nodes[j]);
    }
    nodes.resize(count);
  } else {
    // Sparse draw: rejection sampling.
    std::unordered_set<schema::NodeId> seen;
    nodes.reserve(count);
    while (nodes.size() < count) {
      const schema::NodeId id = rng.NextRange(num_nodes);
      if (seen.insert(id).second) nodes.push_back(id);
    }
  }
  return nodes;
}

std::vector<DrillSession> DrillDownSessions(const schema::CubeSchema& schema,
                                            size_t num_sessions,
                                            size_t steps_per_session,
                                            uint64_t seed) {
  gen::Rng rng(seed);
  const schema::Lattice lattice(&schema);
  const schema::NodeIdCodec& codec = lattice.codec();
  std::vector<int> apex_levels(static_cast<size_t>(schema.num_dims()));
  for (int d = 0; d < schema.num_dims(); ++d) {
    apex_levels[static_cast<size_t>(d)] = codec.all_level(d);
  }
  const schema::NodeId apex = codec.Encode(apex_levels);

  std::vector<DrillSession> sessions;
  sessions.reserve(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    DrillSession session;
    if (steps_per_session == 0) {
      sessions.push_back(std::move(session));
      continue;
    }
    schema::NodeId node = apex;
    std::vector<CureQueryEngine::Slice> slices;
    session.push_back(DrillStep{node, slices});
    while (session.size() < steps_per_session) {
      // Preference order by the drawn action; impossible actions (apex has
      // nothing to roll up, a leaf node nothing to drill) fall through.
      const double p = rng.NextDouble();
      const char* order = p < 0.5 ? "dnr" : (p < 0.8 ? "ndr" : "rdn");
      bool applied = false;
      for (const char* action = order; *action != '\0' && !applied; ++action) {
        std::vector<int> candidates;
        switch (*action) {
          case 'd': {  // DRILL: one dimension finer.
            for (int d = 0; d < schema.num_dims(); ++d) {
              if (lattice.DrillDownDim(node, d).ok()) candidates.push_back(d);
            }
            if (candidates.empty()) break;
            const int dim = static_cast<int>(
                candidates[rng.NextRange(candidates.size())]);
            node = lattice.DrillDownDim(node, dim).value();
            applied = true;
            break;
          }
          case 'n': {  // NARROW: slice a grouped dimension at its level.
            const std::vector<int> levels = codec.Decode(node);
            for (int d = 0; d < schema.num_dims(); ++d) {
              if (levels[static_cast<size_t>(d)] == codec.all_level(d)) continue;
              bool already = false;
              for (const CureQueryEngine::Slice& slice : slices) {
                if (slice.dim == d) already = true;
              }
              const uint32_t cardinality =
                  schema.dim(d).level(levels[static_cast<size_t>(d)]).cardinality;
              if (!already && cardinality > 0) candidates.push_back(d);
            }
            if (candidates.empty()) break;
            const int dim = static_cast<int>(
                candidates[rng.NextRange(candidates.size())]);
            const int level = levels[static_cast<size_t>(dim)];
            CureQueryEngine::Slice slice;
            slice.dim = dim;
            slice.level = level;
            slice.code = static_cast<uint32_t>(
                rng.NextRange(schema.dim(dim).level(level).cardinality));
            slices.push_back(slice);
            applied = true;
            break;
          }
          case 'r': {  // ROLLUP: one dimension coarser, its slices dropped
                       // (a coarser grouping can no longer check them).
            for (int d = 0; d < schema.num_dims(); ++d) {
              if (lattice.RollUpDim(node, d).ok()) candidates.push_back(d);
            }
            if (candidates.empty()) break;
            const int dim = static_cast<int>(
                candidates[rng.NextRange(candidates.size())]);
            node = lattice.RollUpDim(node, dim).value();
            for (size_t i = slices.size(); i-- > 0;) {
              if (slices[i].dim == dim) {
                slices.erase(slices.begin() + static_cast<ptrdiff_t>(i));
              }
            }
            applied = true;
            break;
          }
          default:
            break;
        }
      }
      session.push_back(DrillStep{node, slices});
    }
    sessions.push_back(std::move(session));
  }
  return sessions;
}

Result<QrtStats> MeasureQrt(
    const std::vector<schema::NodeId>& workload,
    const std::function<Status(schema::NodeId, ResultSink*)>& query,
    LogHistogram* latencies_out) {
  QrtStats stats;
  LogHistogram local;
  LogHistogram& latencies = latencies_out != nullptr ? *latencies_out : local;
  ResultSink sink;
  for (schema::NodeId node : workload) {
    sink.Reset();
    Stopwatch watch;
    CURE_RETURN_IF_ERROR(query(node, &sink));
    stats.total_seconds += watch.ElapsedSeconds();
    latencies.Record(watch.ElapsedMicros());
    stats.total_tuples += sink.count();
    ++stats.queries;
  }
  stats.avg_seconds = stats.queries > 0 ? stats.total_seconds / stats.queries : 0;
  const LogHistogram::Snapshot snap = latencies.TakeSnapshot();
  stats.p50_seconds = static_cast<double>(snap.p50) * 1e-6;
  stats.p95_seconds = static_cast<double>(snap.p95) * 1e-6;
  stats.max_seconds = static_cast<double>(snap.max) * 1e-6;
  return stats;
}

}  // namespace query
}  // namespace cure
