#include "query/node_query.h"

#include <cstring>
#include <unordered_map>

#include "common/logging.h"
#include "common/trace.h"
#include "cube/rowid.h"
#include "engine/kernels.h"
#include "storage/row_block.h"

namespace cure {
namespace query {

using cube::CatFormat;
using cube::CubeStore;
using cube::RowId;
using schema::NodeId;

Result<std::unique_ptr<CureQueryEngine>> CureQueryEngine::Create(
    const engine::CureCube* cube, double fact_cache_fraction) {
  if (cube->plan_style() != plan::ExecutionPlan::Style::kTall) {
    return Status::InvalidArgument(
        "query answering requires a cube built with the tall (P3) plan");
  }
  CURE_ASSIGN_OR_RETURN(cube::SourceSet sources,
                        cube->MakeSources(fact_cache_fraction));
  return std::unique_ptr<CureQueryEngine>(
      new CureQueryEngine(cube, std::move(sources)));
}

Status CureQueryEngine::QueryNode(NodeId id, ResultSink* sink) const {
  return QueryImpl(id, -1, 0, nullptr, sink);
}

Status CureQueryEngine::QueryNodeCountIceberg(NodeId id, int count_aggregate,
                                              int64_t min_count,
                                              ResultSink* sink) const {
  return QueryImpl(id, count_aggregate, min_count, nullptr, sink);
}

Status CureQueryEngine::QueryNodeSliced(NodeId id,
                                        const std::vector<Slice>& slices,
                                        ResultSink* sink) const {
  return QueryImpl(id, -1, 0, &slices, sink);
}

Status CureQueryEngine::QueryNodeSlicedIceberg(NodeId id,
                                               const std::vector<Slice>& slices,
                                               int count_aggregate,
                                               int64_t min_count,
                                               ResultSink* sink) const {
  return QueryImpl(id, count_aggregate, min_count, &slices, sink);
}

Status CureQueryEngine::QueryImpl(NodeId id, int count_aggregate,
                                  int64_t min_count,
                                  const std::vector<Slice>* slices,
                                  ResultSink* sink) const {
  const CubeStore& store = cube_->store();
  const schema::CubeSchema& schema = cube_->schema();
  const int num_dims = schema.num_dims();
  const int y = schema.num_aggregates();
  const std::vector<int> levels = store.codec().Decode(id);
  int g = 0;
  for (int d = 0; d < num_dims; ++d) {
    if (levels[d] != store.codec().all_level(d)) ++g;
  }
  const bool iceberg = count_aggregate >= 0 && min_count > 1;

  // Prepare slice predicates: each needs the grouping-output position of
  // its dimension and the roll-up map from the node's level to the slice's.
  struct PreparedSlice {
    int output_pos;
    std::vector<uint32_t> map;  // empty = identity
    uint32_t code;
  };
  std::vector<PreparedSlice> prepared;
  if (slices != nullptr) {
    for (const Slice& slice : *slices) {
      if (slice.dim < 0 || slice.dim >= num_dims) {
        return Status::InvalidArgument("slice dimension out of range");
      }
      const int node_level = levels[slice.dim];
      if (node_level == store.codec().all_level(slice.dim) ||
          !schema.dim(slice.dim).Derives(node_level, slice.level)) {
        return Status::InvalidArgument(
            "slice on dimension '" + schema.dim(slice.dim).name() +
            "' requires the node to group it at a level at least as fine as "
            "the slice level");
      }
      PreparedSlice p;
      p.output_pos = 0;
      for (int d = 0; d < slice.dim; ++d) {
        if (levels[d] != store.codec().all_level(d)) ++p.output_pos;
      }
      if (node_level != slice.level) {
        CURE_ASSIGN_OR_RETURN(
            p.map, schema.dim(slice.dim).LevelToLevelMap(node_level, slice.level));
      }
      p.code = slice.code;
      prepared.push_back(std::move(p));
    }
  }
  auto passes_slices = [&](const uint32_t* out_dims) {
    for (const PreparedSlice& p : prepared) {
      const uint32_t code = out_dims[p.output_pos];
      if ((p.map.empty() ? code : p.map[code]) != p.code) return false;
    }
    return true;
  };

  uint32_t native[64];
  uint32_t dims[64];
  int64_t aggrs[16];
  int64_t row_aggrs[16];
  CURE_CHECK_LE(num_dims, 64);
  CURE_CHECK_LE(y, 16);

  const CubeStore::NodeData* node = store.node(id);
  const size_t block_rows = engine::ResolveBatchRows(batch_rows_);

  // Normal tuples.
  if (node != nullptr && node->has_nt && block_rows > 1) {
    // Block path: predicates run as selection-vector kernels over column
    // slices gathered once per block; only surviving rows are materialized
    // (and, in the row-id scheme, dereferenced through the sources).
    CURE_TRACE_SPAN("cure.engine.kernel.nt_scan", "rows", node->nt.num_rows());
    const bool dims_in_nt = store.options().dims_in_nt;
    storage::Relation::BlockScanner scan(node->nt, block_rows);
    storage::RowBlock block;
    storage::SelectionVector sel(block_rows);
    std::vector<int64_t> count_col(iceberg ? block_rows : 0);
    std::vector<uint32_t> dim_col(
        dims_in_nt && !prepared.empty() ? block_rows : 0);
    while (scan.Next(&block)) {
      size_t n;
      if (iceberg) {
        // Iceberg prefilter before any per-row work: in the row-id scheme
        // this skips the source dereference for sub-threshold groups.
        const size_t off =
            (dims_in_nt ? 4ull * g : 8ull) + 8ull * count_aggregate;
        storage::GatherBlockI64(block, off, count_col.data());
        n = engine::SelectGeI64(count_col.data(), block.rows, min_count,
                                sel.data());
      } else {
        n = block.rows;
        for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
      }
      if (dims_in_nt) {
        for (const PreparedSlice& p : prepared) {
          if (n == 0) break;
          storage::GatherBlockU32(block, 4ull * p.output_pos, dim_col.data());
          n = p.map.empty()
                  ? engine::RefineEqU32(dim_col.data(), p.code, sel.data(), n)
                  : engine::RefineMappedEqU32(dim_col.data(), p.map.data(),
                                              p.code, sel.data(), n);
        }
      }
      for (size_t j = 0; j < n; ++j) {
        const uint8_t* rec = block.record(sel[j]);
        if (dims_in_nt) {
          std::memcpy(dims, rec, 4ull * g);
          std::memcpy(aggrs, rec + 4ull * g, 8ull * y);
        } else {
          RowId rowid;
          std::memcpy(&rowid, rec, 8);
          std::memcpy(aggrs, rec + 8, 8ull * y);
          CURE_RETURN_IF_ERROR(sources_.GetRow(rowid, native, row_aggrs));
          CURE_RETURN_IF_ERROR(sources_.ProjectDims(cube::RowIdSource(rowid),
                                                    native, levels, dims));
          if (!passes_slices(dims)) continue;
        }
        sink->Emit(dims, g, aggrs, y);
      }
    }
    CURE_RETURN_IF_ERROR(scan.status());
  } else if (node != nullptr && node->has_nt) {
    storage::Relation::Scanner scan(node->nt);
    while (const uint8_t* rec = scan.Next()) {
      if (store.options().dims_in_nt) {
        std::memcpy(dims, rec, 4ull * g);
        std::memcpy(aggrs, rec + 4ull * g, 8ull * y);
      } else {
        RowId rowid;
        std::memcpy(&rowid, rec, 8);
        std::memcpy(aggrs, rec + 8, 8ull * y);
        CURE_RETURN_IF_ERROR(sources_.GetRow(rowid, native, row_aggrs));
        CURE_RETURN_IF_ERROR(
            sources_.ProjectDims(cube::RowIdSource(rowid), native, levels, dims));
      }
      if (iceberg && aggrs[count_aggregate] < min_count) continue;
      if (!passes_slices(dims)) continue;
      sink->Emit(dims, g, aggrs, y);
    }
    CURE_RETURN_IF_ERROR(scan.status());
  }

  // Common aggregate tuples. The block scanner batches the CAT relation
  // reads; the per-row aggregate-table dereference is inherently random
  // access and stays scalar.
  if (node != nullptr && node->has_cat) {
    const storage::Relation& aggregates = store.aggregates();
    uint8_t agg_rec[256];
    CURE_CHECK_LE(aggregates.record_size(), sizeof(agg_rec));
    auto emit_cat = [&](const uint8_t* rec) -> Status {
      RowId rowid = 0;
      uint64_t arowid = 0;
      if (store.cat_format() == CatFormat::kFormatA) {
        std::memcpy(&arowid, rec, 8);
        CURE_RETURN_IF_ERROR(aggregates.Read(arowid, agg_rec));
        std::memcpy(&rowid, agg_rec, 8);
        std::memcpy(aggrs, agg_rec + 8, 8ull * y);
      } else {  // kFormatB
        std::memcpy(&rowid, rec, 8);
        std::memcpy(&arowid, rec + 8, 8);
        CURE_RETURN_IF_ERROR(aggregates.Read(arowid, agg_rec));
        std::memcpy(aggrs, agg_rec, 8ull * y);
      }
      if (iceberg && aggrs[count_aggregate] < min_count) return Status::OK();
      CURE_RETURN_IF_ERROR(sources_.GetRow(rowid, native, row_aggrs));
      CURE_RETURN_IF_ERROR(
          sources_.ProjectDims(cube::RowIdSource(rowid), native, levels, dims));
      if (!passes_slices(dims)) return Status::OK();
      sink->Emit(dims, g, aggrs, y);
      return Status::OK();
    };
    if (block_rows > 1) {
      storage::Relation::BlockScanner scan(node->cat, block_rows);
      storage::RowBlock block;
      while (scan.Next(&block)) {
        for (size_t i = 0; i < block.rows; ++i) {
          CURE_RETURN_IF_ERROR(emit_cat(block.record(i)));
        }
      }
      CURE_RETURN_IF_ERROR(scan.status());
    } else {
      storage::Relation::Scanner scan(node->cat);
      while (const uint8_t* rec = scan.Next()) {
        CURE_RETURN_IF_ERROR(emit_cat(rec));
      }
      CURE_RETURN_IF_ERROR(scan.status());
    }
  }

  // Trivial tuples, shared along the plan path (skipped entirely for
  // iceberg queries: a TT's count is always 1).
  if (!iceberg) {
    const int region = cube_->NodeRegion(id);
    for (NodeId path_node : plan_.PathFromRoot(id)) {
      if (cube_->NodeRegion(path_node) != region) continue;
      const CubeStore::NodeData* pd = store.node(path_node);
      if (pd == nullptr) continue;
      auto emit_tt = [&](RowId rowid) -> Status {
        CURE_RETURN_IF_ERROR(sources_.GetRow(rowid, native, row_aggrs));
        CURE_RETURN_IF_ERROR(
            sources_.ProjectDims(cube::RowIdSource(rowid), native, levels, dims));
        if (passes_slices(dims)) sink->Emit(dims, g, row_aggrs, y);
        return Status::OK();
      };
      if (pd->tt_bitmap != nullptr) {
        Status status = Status::OK();
        pd->tt_bitmap->ForEach([&](uint64_t ordinal) {
          if (!status.ok()) return;
          status = emit_tt(cube::MakeRowId(pd->tt_source, ordinal));
        });
        CURE_RETURN_IF_ERROR(status);
      } else if (pd->has_tt && block_rows > 1) {
        // Block path: one contiguous row-id gather per block, then the
        // scalar per-row dereference/emit.
        storage::Relation::BlockScanner scan(pd->tt, block_rows);
        storage::RowBlock block;
        std::vector<uint64_t> rowids(block_rows);
        while (scan.Next(&block)) {
          storage::GatherBlockU64(block, 0, rowids.data());
          for (size_t i = 0; i < block.rows; ++i) {
            CURE_RETURN_IF_ERROR(emit_tt(rowids[i]));
          }
        }
        CURE_RETURN_IF_ERROR(scan.status());
      } else if (pd->has_tt) {
        storage::Relation::Scanner scan(pd->tt);
        while (const uint8_t* rec = scan.Next()) {
          RowId rowid;
          std::memcpy(&rowid, rec, 8);
          CURE_RETURN_IF_ERROR(emit_tt(rowid));
        }
        CURE_RETURN_IF_ERROR(scan.status());
      }
    }
  }
  return Status::OK();
}

Status BucQueryEngine::QueryNode(NodeId id, ResultSink* sink) const {
  const CubeStore& store = cube_->store();
  const schema::CubeSchema& schema = cube_->schema();
  const int y = schema.num_aggregates();
  const CubeStore::NodeData* node = store.node(id);
  if (node == nullptr || !node->has_plain) return Status::OK();
  const int g = static_cast<int>(node->grouping_dims.size());
  uint32_t dims[64];
  int64_t aggrs[16];
  const size_t block_rows = engine::ResolveBatchRows(batch_rows_);
  if (block_rows > 1) {
    storage::Relation::BlockScanner scan(node->plain, block_rows);
    storage::RowBlock block;
    while (scan.Next(&block)) {
      for (size_t i = 0; i < block.rows; ++i) {
        const uint8_t* rec = block.record(i);
        std::memcpy(dims, rec, 4ull * g);
        std::memcpy(aggrs, rec + 4ull * g, 8ull * y);
        sink->Emit(dims, g, aggrs, y);
      }
    }
    return scan.status();
  }
  storage::Relation::Scanner scan(node->plain);
  while (const uint8_t* rec = scan.Next()) {
    std::memcpy(dims, rec, 4ull * g);
    std::memcpy(aggrs, rec + 4ull * g, 8ull * y);
    sink->Emit(dims, g, aggrs, y);
  }
  return scan.status();
}

Status BubstQueryEngine::QueryNode(NodeId id, ResultSink* sink) const {
  const schema::CubeSchema& schema = cube_->schema();
  const int num_dims = schema.num_dims();
  const int y = schema.num_aggregates();
  const std::vector<int> query_levels = codec_.Decode(id);
  std::vector<bool> grouped(num_dims);
  int g = 0;
  for (int d = 0; d < num_dims; ++d) {
    grouped[d] = query_levels[d] != codec_.all_level(d);
    if (grouped[d]) ++g;
  }

  uint32_t row_dims[64];
  uint32_t out_dims[64];
  int64_t aggrs[16];
  std::vector<int> row_levels(num_dims);
  const size_t tag_offset = 4ull * num_dims + 8ull * y;
  auto emit_row = [&](const uint8_t* rec) {
    std::memcpy(row_dims, rec, 4ull * num_dims);
    std::memcpy(aggrs, rec + 4ull * num_dims, 8ull * y);
    uint64_t tag;
    std::memcpy(&tag, rec + tag_offset, 8);
    const bool bst = (tag & engine::BubstRecord::kBstFlag) != 0;
    const NodeId row_node = tag & ~engine::BubstRecord::kBstFlag;
    bool matches;
    if (bst) {
      // A BST written at node G stands for the tuples of G's recursion
      // sub-tree: nodes whose extra grouping dims all come after G's last
      // one. (A plain superset test would double-count tuples that are
      // singletons in several independent dimension subsets, because the
      // bottom-up recursion writes one BST per pruned branch.)
      codec_.DecodeInto(row_node, &row_levels);
      matches = true;
      int max_row_dim = -1;
      for (int d = 0; d < num_dims; ++d) {
        if (row_levels[d] != codec_.all_level(d)) max_row_dim = d;
      }
      for (int d = 0; d < num_dims; ++d) {
        const bool row_grouped = row_levels[d] != codec_.all_level(d);
        if (row_grouped && !grouped[d]) {
          matches = false;  // query must include all of G's dims
          break;
        }
        if (!row_grouped && grouped[d] && d < max_row_dim) {
          matches = false;  // extra dims must come after G's last dim
          break;
        }
      }
    } else {
      matches = row_node == id;
    }
    if (!matches) return;
    int o = 0;
    for (int d = 0; d < num_dims; ++d) {
      if (grouped[d]) out_dims[o++] = row_dims[d];
    }
    sink->Emit(out_dims, g, aggrs, y);
  };

  // The format's cost: every query scans the entire monolithic relation.
  const size_t block_rows = engine::ResolveBatchRows(batch_rows_);
  if (block_rows > 1) {
    // Block path: gather the node-tag column once per block and prefilter
    // with a branch-free kernel — only exact-node rows and BSTs (which need
    // the full sub-tree test) reach the per-row logic.
    storage::Relation::BlockScanner scan(cube_->monolithic(), block_rows);
    storage::RowBlock block;
    std::vector<uint64_t> tags(block_rows);
    storage::SelectionVector sel(block_rows);
    while (scan.Next(&block)) {
      storage::GatherBlockU64(block, tag_offset, tags.data());
      const size_t n = engine::SelectEqOrFlagU64(
          tags.data(), block.rows, id, engine::BubstRecord::kBstFlag,
          sel.data());
      for (size_t j = 0; j < n; ++j) emit_row(block.record(sel[j]));
    }
    return scan.status();
  }
  storage::Relation::Scanner scan(cube_->monolithic());
  while (const uint8_t* rec = scan.Next()) emit_row(rec);
  return scan.status();
}

FlatNodeMapping MapToFlatNode(const schema::CubeSchema& hier_schema,
                              NodeId hier_node) {
  const schema::NodeIdCodec hier_codec(hier_schema);
  const schema::CubeSchema flat_schema = hier_schema.Flattened();
  const schema::NodeIdCodec flat_codec(flat_schema);
  const std::vector<int> hier_levels = hier_codec.Decode(hier_node);
  std::vector<int> flat_levels(hier_schema.num_dims());
  FlatNodeMapping mapping;
  for (int d = 0; d < hier_schema.num_dims(); ++d) {
    if (hier_levels[d] == hier_codec.all_level(d)) {
      flat_levels[d] = flat_codec.all_level(d);
    } else {
      flat_levels[d] = 0;
      if (hier_levels[d] != 0) mapping.needs_rollup = true;
    }
  }
  mapping.flat_node = flat_codec.Encode(flat_levels);
  return mapping;
}

Status RollUpRows(const schema::CubeSchema& hier_schema, NodeId hier_node,
                  const std::vector<ResultSink::Row>& leaf_rows,
                  ResultSink* sink) {
  const schema::NodeIdCodec hier_codec(hier_schema);
  const std::vector<int> hier_levels = hier_codec.Decode(hier_node);
  const int num_dims = hier_schema.num_dims();
  const int y = hier_schema.num_aggregates();
  std::vector<int> grouping_dims;
  for (int d = 0; d < num_dims; ++d) {
    if (hier_levels[d] != hier_codec.all_level(d)) grouping_dims.push_back(d);
  }

  const cube::Aggregator aggregator(hier_schema);
  std::unordered_map<uint64_t, std::vector<int64_t>> groups;
  // Mixed-radix key over the target-level cardinalities.
  std::vector<uint64_t> radix(grouping_dims.size());
  uint64_t key_space = 1;
  for (size_t i = 0; i < grouping_dims.size(); ++i) {
    const int d = grouping_dims[i];
    radix[i] = hier_schema.dim(d).cardinality(hier_levels[d]);
    CURE_CHECK_LT(key_space, (uint64_t{1} << 62) / std::max<uint64_t>(radix[i], 1));
    key_space *= radix[i];
  }
  for (const ResultSink::Row& row : leaf_rows) {
    uint64_t key = 0;
    for (size_t i = 0; i < grouping_dims.size(); ++i) {
      const int d = grouping_dims[i];
      key = key * radix[i] + hier_schema.dim(d).CodeAt(row.dims[i], hier_levels[d]);
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.resize(y);
      aggregator.Init(it->second.data());
    }
    aggregator.Combine(it->second.data(), row.aggrs.data());
  }
  uint32_t out_dims[64];
  for (const auto& [key, aggrs] : groups) {
    uint64_t k = key;
    for (size_t i = grouping_dims.size(); i-- > 0;) {
      out_dims[i] = static_cast<uint32_t>(k % radix[i]);
      k /= radix[i];
    }
    sink->Emit(out_dims, static_cast<int>(grouping_dims.size()), aggrs.data(), y);
  }
  return Status::OK();
}

Status QueryHierarchicalOverFlat(const CureQueryEngine& flat_engine,
                                 const schema::CubeSchema& hier_schema,
                                 NodeId hier_node, ResultSink* sink) {
  const FlatNodeMapping mapping = MapToFlatNode(hier_schema, hier_node);
  if (!mapping.needs_rollup) {
    // Leaf-level query: answer directly from the flat cube.
    return flat_engine.QueryNode(mapping.flat_node, sink);
  }
  // Fetch the leaf-level node and roll it up on the fly (the extra
  // aggregation work the paper's Fig. 28 measures).
  ResultSink leaf_sink(/*retain=*/true);
  CURE_RETURN_IF_ERROR(flat_engine.QueryNode(mapping.flat_node, &leaf_sink));
  return RollUpRows(hier_schema, hier_node, leaf_sink.rows(), sink);
}

}  // namespace query
}  // namespace cure
