#ifndef CURE_QUERY_NODE_QUERY_H_
#define CURE_QUERY_NODE_QUERY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "cube/source.h"
#include "engine/bubst.h"
#include "engine/buc.h"
#include "engine/cure.h"
#include "plan/execution_plan.h"
#include "schema/node_id.h"

namespace cure {
namespace query {

/// Receives query result tuples. Always counts tuples and maintains an
/// order-independent checksum; with `retain` it also materializes the rows
/// (tests and the flat-cube roll-up path use that).
class ResultSink {
 public:
  struct Row {
    std::vector<uint32_t> dims;
    std::vector<int64_t> aggrs;
  };

  explicit ResultSink(bool retain = false) : retain_(retain) {}

  void Emit(const uint32_t* dims, int num_dims, const int64_t* aggrs,
            int num_aggrs) {
    ++count_;
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < num_dims; ++i) h = Mix(h, dims[i]);
    for (int i = 0; i < num_aggrs; ++i) {
      h = Mix(h, static_cast<uint64_t>(aggrs[i]));
    }
    checksum_ ^= h;  // Order-independent combine.
    if (retain_) {
      Row row;
      row.dims.assign(dims, dims + num_dims);
      row.aggrs.assign(aggrs, aggrs + num_aggrs);
      rows_.push_back(std::move(row));
    }
  }

  uint64_t count() const { return count_; }
  uint64_t checksum() const { return checksum_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>&& TakeRows() { return std::move(rows_); }

  void Reset() {
    count_ = 0;
    checksum_ = 0;
    rows_.clear();
  }

 private:
  static uint64_t Mix(uint64_t h, uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h * 0xBF58476D1CE4E5B9ull;
  }

  bool retain_;
  uint64_t count_ = 0;
  uint64_t checksum_ = 0;
  std::vector<Row> rows_;
};

/// Answers node queries over a CURE cube (Sec. 5's storage schemes read
/// back): NTs and CATs from the node's relations (dereferencing row-ids
/// through the fact table / node N), TTs collected along the execution-plan
/// path from the root — the reader side of the paper's TT sub-tree sharing.
class CureQueryEngine {
 public:
  /// `fact_cache_fraction`: pinned fraction of the fact relation (Fig. 17);
  /// ignored (fully cached) when the cube was built from an in-memory table.
  static Result<std::unique_ptr<CureQueryEngine>> Create(
      const engine::CureCube* cube, double fact_cache_fraction);

  /// Emits every tuple of lattice node `id`.
  Status QueryNode(schema::NodeId id, ResultSink* sink) const;

  /// Count-iceberg query: HAVING count >= min_count. TT relations are
  /// skipped outright (their count is always 1), the property that makes
  /// iceberg queries over CURE cubes orders of magnitude faster (Sec. 7).
  Status QueryNodeCountIceberg(schema::NodeId id, int count_aggregate,
                               int64_t min_count, ResultSink* sink) const;

  /// A dice/slice predicate: dimension `dim` restricted to hierarchy-level
  /// `level` code `code`. The queried node must group `dim` at `level` or a
  /// finer level (the standard OLAP slicing restriction — coarser nodes do
  /// not retain the information).
  struct Slice {
    int dim = 0;
    int level = 0;
    uint32_t code = 0;
  };

  /// Node query with selection: emits only the groups whose codes roll up
  /// to every slice's value (e.g. node at City level sliced to
  /// Country = "France").
  Status QueryNodeSliced(schema::NodeId id, const std::vector<Slice>& slices,
                         ResultSink* sink) const;

  /// Combined slice + count-iceberg query: groups must both roll up to every
  /// slice's value and satisfy HAVING count >= min_count. With min_count <= 1
  /// this degenerates to QueryNodeSliced; with empty slices to
  /// QueryNodeCountIceberg. The serving layer routes every request through
  /// this entry.
  Status QueryNodeSlicedIceberg(schema::NodeId id,
                                const std::vector<Slice>& slices,
                                int count_aggregate, int64_t min_count,
                                ResultSink* sink) const;

  const cube::SourceSet& sources() const { return sources_; }
  const plan::ExecutionPlan& plan() const { return plan_; }

  /// Batch scan path of the readers, same contract as
  /// CureOptions::batch_rows: 1 = record-at-a-time reference path, 0 =
  /// CURE_BATCH_ROWS env / built-in default. Identical results either way.
  void set_batch_rows(size_t batch_rows) { batch_rows_ = batch_rows; }

 private:
  CureQueryEngine(const engine::CureCube* cube, cube::SourceSet sources)
      : cube_(cube),
        sources_(std::move(sources)),
        plan_(plan::ExecutionPlan::Build(cube->schema(),
                                         plan::ExecutionPlan::Style::kTall)) {}

  Status QueryImpl(schema::NodeId id, int count_aggregate, int64_t min_count,
                   const std::vector<Slice>* slices, ResultSink* sink) const;

  const engine::CureCube* cube_;
  cube::SourceSet sources_;
  plan::ExecutionPlan plan_;
  size_t batch_rows_ = 0;
};

/// Answers node queries over a BUC cube: a direct scan of the node's
/// uncondensed relation.
class BucQueryEngine {
 public:
  explicit BucQueryEngine(const engine::BucCube* cube) : cube_(cube) {}

  Status QueryNode(schema::NodeId id, ResultSink* sink) const;

  /// Same contract as CureQueryEngine::set_batch_rows.
  void set_batch_rows(size_t batch_rows) { batch_rows_ = batch_rows; }

 private:
  const engine::BucCube* cube_;
  size_t batch_rows_ = 0;
};

/// Answers node queries over a BU-BST cube: a sequential scan of the entire
/// monolithic relation per query (the format's inherent cost, Fig. 16).
class BubstQueryEngine {
 public:
  explicit BubstQueryEngine(const engine::BubstCube* cube)
      : cube_(cube), codec_(cube->schema()) {}

  Status QueryNode(schema::NodeId id, ResultSink* sink) const;

  /// Same contract as CureQueryEngine::set_batch_rows.
  void set_batch_rows(size_t batch_rows) { batch_rows_ = batch_rows; }

 private:
  const engine::BubstCube* cube_;
  schema::NodeIdCodec codec_;
  size_t batch_rows_ = 0;
};

/// Mapping between a hierarchical node and its leaf-level (flat) twin.
struct FlatNodeMapping {
  schema::NodeId flat_node = 0;
  /// True when some grouping dimension sits above the leaf level, i.e. the
  /// flat result must be rolled up.
  bool needs_rollup = false;
};
FlatNodeMapping MapToFlatNode(const schema::CubeSchema& hier_schema,
                              schema::NodeId hier_node);

/// Rolls leaf-level result rows up to the hierarchy levels of `hier_node`
/// and emits the aggregated groups into `sink` — the on-the-fly aggregation
/// a flat cube pays for every roll-up query (Fig. 28).
Status RollUpRows(const schema::CubeSchema& hier_schema, schema::NodeId hier_node,
                  const std::vector<ResultSink::Row>& leaf_rows, ResultSink* sink);

/// Answers a *hierarchical* node query over a *flat* cube by rolling the
/// matching leaf-level node up on the fly — the cost FCURE pays for
/// roll-up/drill-down workloads (Fig. 28).
///
/// `hier_node` is a node id in `hier_schema`'s codec; `flat_engine` must
/// serve the flat cube of the same data.
Status QueryHierarchicalOverFlat(const CureQueryEngine& flat_engine,
                                 const schema::CubeSchema& hier_schema,
                                 schema::NodeId hier_node, ResultSink* sink);

}  // namespace query
}  // namespace cure

#endif  // CURE_QUERY_NODE_QUERY_H_
