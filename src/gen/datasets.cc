#include "gen/datasets.h"

#include <algorithm>

#include "common/logging.h"
#include "gen/random.h"
#include "gen/zipf.h"

namespace cure {
namespace gen {

using schema::AggFn;
using schema::AggregateSpec;
using schema::CubeSchema;
using schema::Dimension;
using schema::FactTable;

namespace {

std::vector<AggregateSpec> DefaultAggregates(bool single) {
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFn::kSum, 0, "sum_m"});
  if (!single) aggs.push_back({AggFn::kCount, 0, "count"});
  return aggs;
}

CubeSchema MakeSchemaOrDie(std::vector<Dimension> dims, int measures,
                           std::vector<AggregateSpec> aggs) {
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), measures, std::move(aggs));
  CURE_CHECK(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

}  // namespace

Dataset MakeSynthetic(const SyntheticSpec& spec) {
  CURE_CHECK_GE(spec.num_dims, 1);
  std::vector<uint32_t> cards = spec.cardinalities;
  if (cards.empty()) {
    cards.resize(spec.num_dims);
    for (int i = 0; i < spec.num_dims; ++i) {
      cards[i] = static_cast<uint32_t>(
          std::max<uint64_t>(2, spec.num_tuples / static_cast<uint64_t>(i + 1)));
    }
  }
  CURE_CHECK_EQ(cards.size(), static_cast<size_t>(spec.num_dims));

  Dataset ds;
  ds.name = "synthetic_d" + std::to_string(spec.num_dims) + "_t" +
            std::to_string(spec.num_tuples) + "_z" + std::to_string(spec.zipf);
  std::vector<Dimension> dims;
  dims.reserve(spec.num_dims);
  for (int d = 0; d < spec.num_dims; ++d) {
    dims.push_back(Dimension::Flat("D" + std::to_string(d), cards[d]));
  }
  ds.schema = MakeSchemaOrDie(std::move(dims), 1,
                              DefaultAggregates(spec.single_aggregate));

  Rng rng(spec.seed);
  std::vector<ZipfSampler> samplers;
  samplers.reserve(spec.num_dims);
  for (int d = 0; d < spec.num_dims; ++d) {
    samplers.emplace_back(cards[d], spec.zipf);
  }
  ds.table = FactTable(spec.num_dims, 1);
  ds.table.Reserve(spec.num_tuples);
  std::vector<uint32_t> row(spec.num_dims);
  for (uint64_t t = 0; t < spec.num_tuples; ++t) {
    for (int d = 0; d < spec.num_dims; ++d) row[d] = samplers[d].Sample(&rng);
    const int64_t m = static_cast<int64_t>(rng.NextRange(1000)) + 1;
    ds.table.AppendRow(row.data(), &m);
  }
  return ds;
}

uint64_t ApbNumTuples(const ApbSpec& spec) {
  const double raw = spec.density * 12393000.0;
  return static_cast<uint64_t>(raw / static_cast<double>(spec.scale_divisor));
}

Dataset MakeApb(const ApbSpec& spec) {
  Dataset ds;
  ds.name = "apb_density" + std::to_string(spec.density);

  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("Product", {6500, 435, 215, 54, 11, 3}));
  dims.push_back(Dimension::Linear("Customer", {640, 71}));
  dims.push_back(Dimension::Linear("Time", {17, 6, 2}));
  dims.push_back(Dimension::Linear("Channel", {9}));

  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFn::kSum, 0, "unit_sales"});
  aggs.push_back({AggFn::kSum, 1, "dollar_sales"});
  ds.schema = MakeSchemaOrDie(std::move(dims), 2, std::move(aggs));

  const uint64_t rows = ApbNumTuples(spec);
  Rng rng(spec.seed);
  // APB-1's generator draws roughly uniformly over the key space with a mild
  // preference for popular products/stores; a light zipf keeps that flavor.
  ZipfSampler product(6500, 0.3);
  ZipfSampler store(640, 0.3);
  ds.table = FactTable(4, 2);
  ds.table.Reserve(rows);
  uint32_t row[4];
  int64_t measures[2];
  for (uint64_t t = 0; t < rows; ++t) {
    row[0] = product.Sample(&rng);
    row[1] = store.Sample(&rng);
    row[2] = static_cast<uint32_t>(rng.NextRange(17));
    row[3] = static_cast<uint32_t>(rng.NextRange(9));
    measures[0] = static_cast<int64_t>(rng.NextRange(100)) + 1;  // unit sales
    measures[1] = measures[0] * (static_cast<int64_t>(rng.NextRange(50)) + 1);
    ds.table.AppendRow(row, measures);
  }
  return ds;
}

Dataset MakeApbMini(const ApbSpec& spec) {
  Dataset ds;
  ds.name = "apb_mini_density" + std::to_string(spec.density);
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("Product", {325, 65, 22, 11, 5, 3}));
  dims.push_back(Dimension::Linear("Customer", {64, 16}));
  dims.push_back(Dimension::Linear("Time", {17, 6, 2}));
  dims.push_back(Dimension::Linear("Channel", {9}));
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFn::kSum, 0, "unit_sales"});
  aggs.push_back({AggFn::kSum, 1, "dollar_sales"});
  ds.schema = MakeSchemaOrDie(std::move(dims), 2, std::move(aggs));

  const uint64_t rows = ApbNumTuples(spec);
  Rng rng(spec.seed);
  ds.table = FactTable(4, 2);
  ds.table.Reserve(rows);
  uint32_t row[4];
  int64_t measures[2];
  for (uint64_t t = 0; t < rows; ++t) {
    row[0] = static_cast<uint32_t>(rng.NextRange(325));
    row[1] = static_cast<uint32_t>(rng.NextRange(64));
    row[2] = static_cast<uint32_t>(rng.NextRange(17));
    row[3] = static_cast<uint32_t>(rng.NextRange(9));
    measures[0] = static_cast<int64_t>(rng.NextRange(100)) + 1;
    measures[1] = measures[0] * (static_cast<int64_t>(rng.NextRange(50)) + 1);
    ds.table.AppendRow(row, measures);
  }
  return ds;
}

Dataset MakeCovTypeProxy(uint64_t row_divisor, uint64_t seed) {
  CURE_CHECK_GE(row_divisor, 1u);
  // Published shape of the UCI Forest CoverType dataset as used by cubing
  // papers: 581,012 rows, 10 dimensions with these cardinalities.
  const std::vector<uint32_t> cards = {1978, 361, 67, 551, 700,
                                       5785, 207, 185, 255, 5827};
  Dataset ds;
  ds.name = "covtype_proxy";
  std::vector<Dimension> dims;
  for (size_t d = 0; d < cards.size(); ++d) {
    dims.push_back(Dimension::Flat("C" + std::to_string(d), cards[d]));
  }
  ds.schema = MakeSchemaOrDie(std::move(dims), 1, DefaultAggregates(false));

  const uint64_t rows = 581012 / row_divisor;
  Rng rng(seed);
  // CoverType attributes are continuous measurements bucketed into codes;
  // adjacent attributes are correlated. The proxy draws a latent "terrain"
  // variable and derives each attribute from it with noise, which yields the
  // sparse-but-correlated structure (many TTs) the real dataset shows.
  std::vector<ZipfSampler> noise;
  for (uint32_t c : cards) noise.emplace_back(c, 0.4);
  ds.table = FactTable(static_cast<int>(cards.size()), 1);
  ds.table.Reserve(rows);
  std::vector<uint32_t> row(cards.size());
  for (uint64_t t = 0; t < rows; ++t) {
    const double latent = rng.NextDouble();
    for (size_t d = 0; d < cards.size(); ++d) {
      if (d % 2 == 0) {
        // Correlated with the latent terrain variable (+/- 5% noise).
        double v = latent + (rng.NextDouble() - 0.5) * 0.1;
        v = std::min(0.999999, std::max(0.0, v));
        row[d] = static_cast<uint32_t>(v * cards[d]);
      } else {
        row[d] = noise[d].Sample(&rng);
      }
    }
    const int64_t m = static_cast<int64_t>(rng.NextRange(100)) + 1;
    ds.table.AppendRow(row.data(), &m);
  }
  return ds;
}

Dataset MakeSep85LProxy(uint64_t row_divisor, uint64_t seed) {
  CURE_CHECK_GE(row_divisor, 1u);
  // Published shape of the Sep85L cloud-report dataset: 1,015,367 rows,
  // 9 dimensions.
  const std::vector<uint32_t> cards = {7037, 352, 179, 101, 90, 101, 2, 8, 10};
  Dataset ds;
  ds.name = "sep85l_proxy";
  std::vector<Dimension> dims;
  for (size_t d = 0; d < cards.size(); ++d) {
    dims.push_back(Dimension::Flat("W" + std::to_string(d), cards[d]));
  }
  ds.schema = MakeSchemaOrDie(std::move(dims), 1, DefaultAggregates(false));

  const uint64_t rows = 1015367 / row_divisor;
  Rng rng(seed);
  std::vector<ZipfSampler> samplers;
  for (uint32_t c : cards) samplers.emplace_back(c, 0.6);
  ds.table = FactTable(static_cast<int>(cards.size()), 1);
  ds.table.Reserve(rows);
  std::vector<uint32_t> row(cards.size());
  for (uint64_t t = 0; t < rows; ++t) {
    // The paper notes Sep85L "contains some dense areas that generate many
    // non-trivial tuples": 40% of the rows are drawn from a small sub-domain
    // (weather stations report repeatedly under identical conditions).
    const bool dense = rng.NextDouble() < 0.4;
    for (size_t d = 0; d < cards.size(); ++d) {
      if (dense) {
        row[d] = static_cast<uint32_t>(rng.NextRange(std::max<uint32_t>(2, cards[d] / 50)));
      } else {
        row[d] = samplers[d].Sample(&rng);
      }
    }
    const int64_t m = static_cast<int64_t>(rng.NextRange(100)) + 1;
    ds.table.AppendRow(row.data(), &m);
  }
  return ds;
}

Dataset MakeSales(uint64_t num_tuples, uint64_t seed) {
  Dataset ds;
  ds.name = "sales";
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("Product", {10000, 1000, 10}));
  dims.push_back(Dimension::Flat("StoreId", 500));
  dims.push_back(Dimension::Linear("Date", {365, 12}));
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFn::kSum, 0, "revenue"});
  aggs.push_back({AggFn::kCount, 0, "sales_count"});
  ds.schema = MakeSchemaOrDie(std::move(dims), 1, std::move(aggs));

  Rng rng(seed);
  // Uniform product draw: the Table 1 analysis assumes near-uniform value
  // frequencies per hierarchy level.
  ds.table = FactTable(3, 1);
  ds.table.Reserve(num_tuples);
  uint32_t row[3];
  for (uint64_t t = 0; t < num_tuples; ++t) {
    row[0] = static_cast<uint32_t>(rng.NextRange(10000));
    row[1] = static_cast<uint32_t>(rng.NextRange(500));
    row[2] = static_cast<uint32_t>(rng.NextRange(365));
    const int64_t m = static_cast<int64_t>(rng.NextRange(500)) + 1;
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

Dataset MakePaperExample() {
  Dataset ds;
  ds.name = "paper_fig9";
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Flat("A", 4));
  dims.push_back(Dimension::Flat("B", 4));
  dims.push_back(Dimension::Flat("C", 4));
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFn::kSum, 0, "M"});
  ds.schema = MakeSchemaOrDie(std::move(dims), 1, std::move(aggs));

  ds.table = FactTable(3, 1);
  // Fig. 9a rows: (A, B, C, M). Codes shifted down by 1 to be 0-based.
  const int64_t ms[5] = {10, 20, 40, 45, 45};
  const uint32_t rows[5][3] = {
      {0, 0, 0}, {0, 0, 1}, {1, 1, 2}, {2, 1, 0}, {2, 2, 2}};
  for (int i = 0; i < 5; ++i) ds.table.AppendRow(rows[i], &ms[i]);
  return ds;
}

}  // namespace gen
}  // namespace cure
