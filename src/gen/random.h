#ifndef CURE_GEN_RANDOM_H_
#define CURE_GEN_RANDOM_H_

#include <cstdint>

namespace cure {
namespace gen {

/// Deterministic splitmix64-based PRNG. All generators take explicit seeds
/// so every dataset in tests and benchmarks is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  uint64_t NextRange(uint64_t n) { return NextUint64() % n; }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace gen
}  // namespace cure

#endif  // CURE_GEN_RANDOM_H_
