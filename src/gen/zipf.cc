#include "gen/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cure {
namespace gen {

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  CURE_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  const double inv = 1.0 / total;
  for (double& v : cdf_) v *= inv;
  cdf_.back() = 1.0;
}

uint32_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace gen
}  // namespace cure
