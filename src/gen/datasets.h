#ifndef CURE_GEN_DATASETS_H_
#define CURE_GEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"

namespace cure {
namespace gen {

/// A generated dataset: schema (dimensions/hierarchies + aggregates) and the
/// fact table itself.
struct Dataset {
  schema::CubeSchema schema;
  schema::FactTable table{0, 0};
  std::string name;
};

/// -------- Synthetic flat datasets (Figs. 19-22) --------
///
/// The paper's synthetic generator: D flat dimensions, T tuples, zipf factor
/// Z, and cardinality of the i-th dimension C_i = T / i (1-based i). One
/// int64 measure with aggregates SUM and COUNT (Y = 2 by default; set
/// `single_aggregate` for the Y = 1 storage-format corner).
struct SyntheticSpec {
  int num_dims = 8;
  uint64_t num_tuples = 500000;
  double zipf = 0.8;
  /// If non-empty, overrides the C_i = T/i rule.
  std::vector<uint32_t> cardinalities;
  bool single_aggregate = false;
  uint64_t seed = 42;
};
Dataset MakeSynthetic(const SyntheticSpec& spec);

/// -------- APB-1 benchmark (Figs. 23-28) --------
///
/// Schema exactly as the paper quotes the APB-1 generator:
///   Product : Code 6,500 -> Class 435 -> Group 215 -> Family 54 ->
///             Line 11 -> Division 3
///   Customer: Store 640 -> Retailer 71
///   Time    : Month 17 -> Quarter 6 -> Year 2
///   Channel : Base 9
/// with two measures (Unit Sales, Dollar Sales). The number of tuples is
/// density * 12,393,000 (density 0.1 -> 1,239,300 rows, density 40 ->
/// 495,720,000 rows as in the paper), divided by `scale_divisor` to fit a
/// laptop run; the memory budget of the engines is shrunk by the same factor
/// in the benches so the external-partitioning behaviour is preserved.
struct ApbSpec {
  double density = 0.4;
  uint64_t scale_divisor = 100;
  uint64_t seed = 7;
};
Dataset MakeApb(const ApbSpec& spec);

/// Number of rows MakeApb would generate (before building the table).
uint64_t ApbNumTuples(const ApbSpec& spec);

/// Density-parity mini APB-1: the same 4-dimension / 12-level shape with
/// cardinalities shrunk ~20x (Product 325 -> 65 -> 22 -> 11 -> 5 -> 3,
/// Customer 64 -> 16, Time 17 -> 6 -> 2, Channel 9) so that at the scaled
/// row counts the *fill fraction* of the key space matches the full-size
/// benchmark: density 40 at scale_divisor 200 fills ~78% of all leaf
/// combinations, exactly like 496M rows over APB-1's 636M combinations.
/// This preserves the paper's headline regime where the cube ends up
/// *smaller* than the fact table (massive aggregation sharing).
Dataset MakeApbMini(const ApbSpec& spec);

/// -------- Real-dataset proxies (Figs. 14-17) --------
///
/// The raw CovType and Sep85L files are not redistributable/offline;
/// these proxies replicate their published shape: row count, dimension
/// count, per-dimension cardinalities, and (for Sep85L) dense areas that
/// produce many non-trivial tuples. See DESIGN.md, "Substitutions".
/// `row_divisor` scales the row count down (1 = full published size).
Dataset MakeCovTypeProxy(uint64_t row_divisor, uint64_t seed = 1);
Dataset MakeSep85LProxy(uint64_t row_divisor, uint64_t seed = 2);

/// -------- SALES example of Table 1 --------
///
/// Fact table with dimension Product organized as
/// barcode 10,000 -> brand 1,000 -> economic_strength 10 plus two flat
/// auxiliary dimensions, used by the partitioning bench.
Dataset MakeSales(uint64_t num_tuples, uint64_t seed = 3);

/// Small deterministic dataset mirroring Fig. 9a of the paper (fact table R
/// with dimensions A, B, C and measure M); the worked NT/TT/CAT example.
Dataset MakePaperExample();

}  // namespace gen
}  // namespace cure

#endif  // CURE_GEN_DATASETS_H_
