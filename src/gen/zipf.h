#ifndef CURE_GEN_ZIPF_H_
#define CURE_GEN_ZIPF_H_

#include <cstdint>
#include <vector>

#include "gen/random.h"

namespace cure {
namespace gen {

/// Zipf(theta) sampler over {0, ..., n-1}: P(i) ∝ 1/(i+1)^theta.
/// theta = 0 degenerates to the uniform distribution — the convention the
/// paper's skew experiments (Figs. 21-22, "Z from 0 to 2") use.
///
/// Implementation: precomputed CDF + binary search; construction is O(n),
/// sampling O(log n).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint32_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace gen
}  // namespace cure

#endif  // CURE_GEN_ZIPF_H_
