#ifndef CURE_ROUTER_MERGE_H_
#define CURE_ROUTER_MERGE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "cube/measures.h"
#include "query/node_query.h"
#include "schema/cube_schema.h"

namespace cure {
namespace router {

/// Re-aggregates per-shard partial relations into the global result — the
/// gather half of the router's scatter–gather. Because every aggregate is
/// distributive (SUM/COUNT/MIN/MAX) and lifting happens once at the fact
/// row, per-shard results are already in aggregate space and merging is the
/// same associative Combine the cube build uses (paper Sec. 4 observation
/// 3). The shards' fact partitions are disjoint, so the merged relation is
/// exactly the single-node relation.
///
/// Iceberg thresholds MUST be applied here, after the merge: a group can
/// clear MINSUP globally while clearing it on no single shard. The router
/// therefore scatters plain (non-iceberg) queries and filters in Finish().
class PartialMerger {
 public:
  explicit PartialMerger(const schema::CubeSchema& schema)
      : aggregator_(schema) {}

  /// Folds one partial group in: dims are the grouped dimensions' codes (in
  /// dimension order), aggrs the shard's aggregate vector for that group.
  /// `aggrs` must hold exactly num_aggregates() values.
  void Add(const std::vector<uint32_t>& dims, const int64_t* aggrs);

  int num_aggregates() const { return aggregator_.num_aggregates(); }
  size_t num_groups() const { return groups_.size(); }

  /// Emits every merged group into `sink`, sorted lexicographically by dim
  /// codes (deterministic output order across runs). With `min_count > 0`
  /// only groups whose aggrs[count_aggregate] >= min_count survive — the
  /// post-merge iceberg filter; `count_aggregate` must then index a COUNT
  /// aggregate (kFailedPrecondition when it is out of range).
  Status Finish(int count_aggregate, int64_t min_count,
                query::ResultSink* sink) const;

 private:
  struct VecHash {
    size_t operator()(const std::vector<uint32_t>& v) const {
      uint64_t h = 0x9E3779B97F4A7C15ull;
      for (uint32_t x : v) {
        h ^= x + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
        h *= 0xBF58476D1CE4E5B9ull;
      }
      return static_cast<size_t>(h);
    }
  };

  cube::Aggregator aggregator_;
  std::unordered_map<std::vector<uint32_t>, std::vector<int64_t>, VecHash>
      groups_;
};

}  // namespace router
}  // namespace cure

#endif  // CURE_ROUTER_MERGE_H_
