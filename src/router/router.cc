#include "router/router.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "algebra/rollup.h"
#include "common/trace.h"
#include "router/federation.h"
#include "schema/lattice.h"
#include "serve/protocol.h"

namespace cure {
namespace router {

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string ErrResponse(const Status& status) {
  return "ERR " + std::string(StatusCodeName(status.code())) + " " +
         status.message() + "\n.\n";
}

std::string ErrResponse(StatusCode code, const std::string& message) {
  return "ERR " + std::string(StatusCodeName(code)) + " " + message + "\n.\n";
}

bool ParseInt64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

/// Splits a backend result row on tabs.
std::vector<std::string> SplitRow(const std::string& row) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (;;) {
    const size_t tab = row.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(row.substr(start));
      return fields;
    }
    fields.push_back(row.substr(start, tab - start));
    start = tab + 1;
  }
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Appends the remaining deadline budget (at least 1ms so a backend never
/// sees deadline=0, which the protocol rejects) to a backend line.
std::string WithRemainingDeadline(const std::string& backend_line,
                                  int64_t deadline_us) {
  if (deadline_us <= 0) return backend_line;
  const int64_t remaining_ms = (deadline_us - NowMicros()) / 1000;
  return backend_line +
         " deadline=" + std::to_string(remaining_ms < 1 ? 1 : remaining_ms);
}

/// Header suffix announcing a degraded answer; empty when complete.
std::string PartialToken(int shards_ok, int shards_total) {
  if (shards_ok >= shards_total) return "";
  return " PARTIAL shards=" + std::to_string(shards_ok) + "/" +
         std::to_string(shards_total);
}

}  // namespace

/// Scoreboard shared between QueryShard's event loop and its attempt
/// threads. Everything is guarded by `mu`; `outstanding` counts launched
/// attempts that have not yet pushed a result.
struct CureRouter::ShardAttemptState {
  struct Attempt {
    Result<BackendReply> reply;
    int replica = 0;
    Attempt(Result<BackendReply> r, int rep)
        : reply(std::move(r)), replica(rep) {}
  };
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Attempt> results;
  int outstanding = 0;
};

Result<std::unique_ptr<CureRouter>> CureRouter::Create(
    const schema::CubeSchema* schema, ShardMap map,
    const RouterOptions& options, ValueEncoder encoder, ValueDecoder decoder) {
  CURE_RETURN_IF_ERROR(map.Validate());
  auto self = std::unique_ptr<CureRouter>(
      new CureRouter(schema, std::move(map), options, std::move(encoder),
                     std::move(decoder)));
  if (options.health_period_seconds > 0) {
    self->health_thread_ = std::thread([raw = self.get()] {
      std::unique_lock<std::mutex> lock(raw->health_mu_);
      while (!raw->stopping_) {
        lock.unlock();
        raw->ProbeHealth();
        lock.lock();
        raw->health_cv_.wait_for(
            lock,
            std::chrono::duration<double>(raw->options_.health_period_seconds),
            [raw] { return raw->stopping_; });
      }
    });
  }
  return self;
}

CureRouter::CureRouter(const schema::CubeSchema* schema, ShardMap map,
                       const RouterOptions& options, ValueEncoder encoder,
                       ValueDecoder decoder)
    : schema_(schema),
      codec_(*schema),
      map_(std::move(map)),
      options_(options),
      encoder_(std::move(encoder)),
      decoder_(std::move(decoder)),
      client_(options.backend_timeout_seconds) {
  for (int y = 0; y < schema_->num_aggregates(); ++y) {
    if (schema_->aggregate(y).fn == schema::AggFn::kCount) {
      count_aggregate_ = y;
      break;
    }
  }
  replicas_.resize(map_.num_shards());
  rr_.assign(map_.num_shards(), 0);
  backend_latency_.resize(map_.num_shards());
  for (int s = 0; s < map_.num_shards(); ++s) {
    replicas_[s].resize(map_.num_replicas(s));
    for (int r = 0; r < map_.num_replicas(s); ++r) {
      backend_latency_[s].push_back(metrics_.histogram(
          "backend_s" + std::to_string(s) + "_r" + std::to_string(r) +
          "_latency"));
    }
  }
  const int threads = options_.num_threads > 0 ? options_.num_threads
                                               : map_.num_shards();
  pool_ = std::make_unique<ThreadPool>(threads);
  queries_total_ = metrics_.counter("queries_total");
  queries_errors_ = metrics_.counter("queries_errors");
  backend_rpcs_total_ = metrics_.counter("backend_rpcs_total");
  backend_retries_total_ = metrics_.counter("backend_retries_total");
  replicas_ejected_total_ = metrics_.counter("replicas_ejected_total");
  health_probes_total_ = metrics_.counter("health_probes_total");
  health_probe_failures_total_ = metrics_.counter("health_probe_failures_total");
  hedges_total_ = metrics_.counter("hedges_total");
  retries_total_ = metrics_.counter("retries_total");
  partial_total_ = metrics_.counter("partial_total");
  breaker_trips_total_ = metrics_.counter("breaker_trips_total");
  query_latency_us_ = metrics_.histogram("query_latency_us");
}

CureRouter::~CureRouter() {
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    stopping_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  pool_.reset();
  // Hedge losers and deadline-abandoned attempts run detached; wait for
  // them before members they touch (client_, metrics) are destroyed.
  {
    std::unique_lock<std::mutex> lock(attempts_mu_);
    attempts_cv_.wait(lock, [this] { return outstanding_attempts_ == 0; });
  }
}

void CureRouter::ProbeHealth() {
  for (int s = 0; s < map_.num_shards(); ++s) {
    for (int r = 0; r < map_.num_replicas(s); ++r) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (replicas_[s][r].ejected) continue;  // tombstoned for good
      }
      health_probes_total_->Inc();
      auto fresh = client_.ProbeStats(map_.shards[s][r]);
      std::lock_guard<std::mutex> lock(mu_);
      ReplicaState& state = replicas_[s][r];
      if (fresh.ok()) {
        state.healthy = true;
        state.cube_version = fresh->cube_version;
        state.staleness_seconds = fresh->staleness_seconds;
        // A reachable backend is breaker evidence too: close it so the
        // replica rejoins the preferred candidates immediately.
        state.consecutive_failures = 0;
        state.open_until_us = 0;
      } else {
        health_probe_failures_total_->Inc();
        state.healthy = false;
      }
    }
  }
}

std::vector<int> CureRouter::PickOrder(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto& states = replicas_[shard];
  const uint64_t rotation = rr_[shard]++;
  const int n = static_cast<int>(states.size());
  const int64_t now_us = NowMicros();
  // Partition, in round-robin rotation order, into: healthy with a closed
  // breaker (freshness-sorted, preferred), half-open breakers (cooldown
  // expired — eligible for a probe request), suspects (marked unhealthy but
  // breaker closed, e.g. by a stale probe), and open breakers (absolute
  // last resort: trying them beats failing the whole query).
  std::vector<int> closed, half_open, suspect, open;
  for (int i = 0; i < n; ++i) {
    const int r = static_cast<int>((rotation + i) % n);
    const ReplicaState& state = states[r];
    if (state.ejected) continue;
    if (state.open_until_us != 0) {
      (now_us >= state.open_until_us ? half_open : open).push_back(r);
    } else {
      (state.healthy ? closed : suspect).push_back(r);
    }
  }
  std::stable_sort(closed.begin(), closed.end(), [&](int a, int b) {
    if (states[a].cube_version != states[b].cube_version) {
      return states[a].cube_version > states[b].cube_version;
    }
    return states[a].staleness_seconds < states[b].staleness_seconds;
  });
  closed.insert(closed.end(), half_open.begin(), half_open.end());
  closed.insert(closed.end(), suspect.begin(), suspect.end());
  closed.insert(closed.end(), open.begin(), open.end());
  return closed;
}

double CureRouter::NextJitter() {
  // splitmix64 step over a shared atomic state: statistically fine for
  // de-synchronizing retry storms, no global RNG locks on the query path.
  uint64_t z = jitter_state_.fetch_add(0x9e3779b97f4a7c15ull,
                                       std::memory_order_relaxed);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

double CureRouter::HedgeDelaySeconds() const {
  if (options_.hedge_percentile > 0) {
    LogHistogram cluster;
    MergeBackendLatency(&cluster);
    const LogHistogram::Snapshot snap = cluster.TakeSnapshot();
    // Percentiles of a handful of samples are noise; fall back to the
    // fixed delay until the distribution means something.
    if (snap.count >= 16) {
      return static_cast<double>(snap.Percentile(options_.hedge_percentile)) *
             1e-6;
    }
  }
  return options_.hedge_seconds;
}

void CureRouter::RecordBackendSuccess(int shard, int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = replicas_[shard][replica];
  state.healthy = true;
  state.consecutive_failures = 0;
  state.open_until_us = 0;
}

void CureRouter::RecordBackendFailure(int shard, int replica) {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = replicas_[shard][replica];
  state.healthy = false;
  ++state.consecutive_failures;
  if (options_.breaker_failure_threshold > 0 &&
      state.consecutive_failures >= options_.breaker_failure_threshold) {
    // Consecutive failures trip (or, for a failed half-open probe, re-arm)
    // the breaker; count only the closed→open transitions.
    const int64_t now_us = NowMicros();
    if (state.open_until_us == 0) breaker_trips_total_->Inc();
    state.open_until_us =
        now_us +
        static_cast<int64_t>(options_.breaker_cooldown_seconds * 1e6);
  }
}

bool CureRouter::PartialEligible(StatusCode code) {
  // Shard-unavailable classes only: a deterministic request error
  // (InvalidArgument, NotFound, ...) means every shard would refuse it and
  // a partial answer would be wrong, not degraded.
  return code == StatusCode::kIoError || code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kDataLoss ||
         code == StatusCode::kResourceExhausted;
}

Result<BackendReply> CureRouter::QueryShard(int shard,
                                            const std::string& backend_line,
                                            int64_t deadline_us,
                                            ShardProfile* profile,
                                            int64_t profile_base_us) {
  const std::vector<int> order = PickOrder(shard);
  if (order.empty()) {
    return Status::IoError("shard " + std::to_string(shard) +
                           " has no serving replicas (all ejected)");
  }
  if (deadline_us > 0 && NowMicros() >= deadline_us) {
    return Status::DeadlineExceeded("shard " + std::to_string(shard) +
                                    ": deadline exhausted before any attempt");
  }
  if (profile != nullptr) {
    // Pre-note candidates whose breaker is open right now: if they never
    // launch, the profile shows WHY the picker passed them over. A later
    // launch (last-resort pick) overwrites the record in place.
    profile->shard = shard;
    const int64_t now_us = NowMicros();
    std::lock_guard<std::mutex> lock(mu_);
    for (const int r : order) {
      if (replicas_[shard][r].open_until_us > now_us) {
        AttemptRecord record;
        record.replica = r;
        record.kind = "skip";
        record.outcome = "breaker-skip";
        profile->attempts.push_back(std::move(record));
      }
    }
  }

  // Event loop over detached attempt threads: launch, then react to
  // whichever comes first — a result, the hedge timer, or the deadline.
  // First OK answer wins; a hedge loser (or an attempt outlasting the
  // deadline) self-records into the shared scoreboard and is ignored.
  auto state = std::make_shared<ShardAttemptState>();
  const int max_launches = 1 + std::max(0, options_.retry_budget);
  const double hedge_delay = HedgeDelaySeconds();
  size_t next_candidate = 0;
  int launches = 0;
  bool hedged = false;
  int64_t last_launch_us = 0;
  double backoff = options_.backoff_initial_seconds;
  Status last_error = Status::OK();

  // The attempt log is written ONLY by this event-loop thread (launch and
  // result processing), never by the detached attempt threads — no locking
  // beyond what the loop already holds.
  auto note_launch = [&](int r, const char* kind, int64_t launch_at_us) {
    if (profile == nullptr) return;
    for (AttemptRecord& record : profile->attempts) {
      if (record.replica == r) {
        record.kind = kind;
        record.outcome = "lost";
        record.launch_us = launch_at_us - profile_base_us;
        return;
      }
    }
    AttemptRecord record;
    record.replica = r;
    record.kind = kind;
    record.outcome = "lost";
    record.launch_us = launch_at_us - profile_base_us;
    profile->attempts.push_back(std::move(record));
  };
  auto note_outcome = [&](int r, const char* outcome) {
    if (profile == nullptr) return;
    for (AttemptRecord& record : profile->attempts) {
      if (record.replica == r && record.end_us == 0 &&
          record.outcome == "lost") {
        record.outcome = outcome;
        record.end_us = NowMicros() - profile_base_us;
        return;
      }
    }
  };

  auto launch = [&](const char* kind) {
    const int r = order[next_candidate++];
    ++launches;
    last_launch_us = NowMicros();
    note_launch(r, kind, last_launch_us);
    backend_rpcs_total_->Inc();
    const std::string attempt_line =
        WithRemainingDeadline(backend_line, deadline_us);
    const double attempt_deadline =
        deadline_us > 0 ? (deadline_us - last_launch_us) * 1e-6 : 0;
    {
      std::lock_guard<std::mutex> lock(attempts_mu_);
      ++outstanding_attempts_;
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->outstanding;
    }
    std::thread([this, shard, r, attempt_line, attempt_deadline, state] {
      CURE_TRACE_SPAN("cure.router.backend_rpc", "shard",
                      static_cast<uint64_t>(shard), "replica",
                      static_cast<uint64_t>(r));
      const BackendAddress& addr = map_.shards[shard][r];
      const int64_t start_us = NowMicros();
      Result<BackendReply> reply =
          client_.Query(addr, attempt_line, attempt_deadline);
      backend_latency_[shard][r]->Record(NowMicros() - start_us);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->results.emplace_back(std::move(reply), r);
        --state->outstanding;
        state->cv.notify_all();
      }
      // Final touch of `this`: the destructor blocks on this counter before
      // tearing down the members used above.
      std::lock_guard<std::mutex> lock(attempts_mu_);
      --outstanding_attempts_;
      attempts_cv_.notify_all();
    }).detach();
  };

  launch("primary");
  size_t processed = 0;
  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    // Drain new results.
    while (processed < state->results.size()) {
      ShardAttemptState::Attempt& attempt = state->results[processed++];
      const int r = attempt.replica;
      const Status status =
          attempt.reply.ok() ? attempt.reply->status : attempt.reply.status();
      if (status.ok()) {
        // Move out while still locked: an abandoned hedge attempt can push
        // into (and reallocate) the scoreboard at any moment.
        Result<BackendReply> winner = std::move(attempt.reply);
        note_outcome(r, "won");
        if (profile != nullptr) {
          profile->ok = true;
          profile->backend_lines = winner->profile_lines;
        }
        lock.unlock();
        RecordBackendSuccess(shard, r);
        return winner;
      }
      note_outcome(r, status.code() == StatusCode::kDataLoss ? "data-loss"
                   : (!attempt.reply.ok() ||
                      status.code() == StatusCode::kIoError ||
                      status.code() == StatusCode::kDeadlineExceeded)
                       ? "failover"
                       : "fail-fast");
      if (status.code() == StatusCode::kDataLoss) {
        // The replica's storage is corrupt; take it out of rotation for
        // good (a health probe reaching the process again proves nothing
        // about the data).
        lock.unlock();
        replicas_ejected_total_->Inc();
        {
          std::lock_guard<std::mutex> state_lock(mu_);
          replicas_[shard][r].ejected = true;
          replicas_[shard][r].healthy = false;
        }
        last_error = status;
        lock.lock();
        continue;
      }
      if (!attempt.reply.ok() || status.code() == StatusCode::kIoError ||
          status.code() == StatusCode::kDeadlineExceeded) {
        // Failover class: transport failure, backend I/O error, or a spent
        // per-attempt budget — breaker bookkeeping, then another replica.
        lock.unlock();
        RecordBackendFailure(shard, r);
        last_error = status;
        lock.lock();
        continue;
      }
      // Deterministic request error (InvalidArgument, NotFound, ...): every
      // replica would answer the same — fail fast without burning retries.
      Result<BackendReply> failed = std::move(attempt.reply);
      lock.unlock();
      return failed;
    }

    if (deadline_us > 0 && NowMicros() >= deadline_us) {
      // Client budget gone; in-flight attempts self-record into the shared
      // scoreboard and die quietly.
      return Status::DeadlineExceeded(
          "shard " + std::to_string(shard) + " deadline exhausted after " +
          std::to_string(launches) + " attempt(s)" +
          (last_error.ok() ? "" : ": " + last_error.message()));
    }

    const bool can_launch =
        next_candidate < order.size() && launches < max_launches;

    if (state->outstanding == 0) {
      if (!can_launch) {
        return Status(last_error.code() == StatusCode::kOk
                          ? StatusCode::kIoError
                          : last_error.code(),
                      "shard " + std::to_string(shard) +
                          " exhausted all replicas: " + last_error.message());
      }
      // Sequential retry: back off (jittered, capped, truncated to the
      // remaining deadline) before relaunching. Nothing is in flight, so
      // no result can arrive during the sleep.
      double sleep_seconds = backoff * (0.5 + 0.5 * NextJitter());
      if (deadline_us > 0) {
        const double remaining = (deadline_us - NowMicros()) * 1e-6;
        if (sleep_seconds > remaining) sleep_seconds = remaining;
      }
      if (sleep_seconds > 0) {
        lock.unlock();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_seconds));
        lock.lock();
      }
      backoff = std::min(backoff * 2, options_.backoff_cap_seconds);
      backend_retries_total_->Inc();
      retries_total_->Inc();
      CURE_TRACE_SPAN("cure.router.retry", "shard",
                      static_cast<uint64_t>(shard), "attempt",
                      static_cast<uint64_t>(launches));
      lock.unlock();
      launch("retry");
      lock.lock();
      continue;
    }

    // An attempt is in flight: wait for its result, the hedge timer, or
    // the deadline — whichever strikes first.
    int64_t wake_us = deadline_us > 0 ? deadline_us : 0;
    bool hedge_armed = false;
    if (!hedged && hedge_delay >= 0 && can_launch) {
      const int64_t hedge_at = last_launch_us +
                               static_cast<int64_t>(hedge_delay * 1e6);
      if (wake_us == 0 || hedge_at < wake_us) {
        wake_us = hedge_at;
        hedge_armed = true;
      }
    }
    const size_t before = state->results.size();
    if (wake_us == 0) {
      state->cv.wait(lock,
                     [&] { return state->results.size() > before; });
    } else {
      const int64_t wait_us = wake_us - NowMicros();
      if (wait_us > 0) {
        state->cv.wait_for(lock, std::chrono::microseconds(wait_us), [&] {
          return state->results.size() > before;
        });
      }
      if (hedge_armed && state->results.size() == before &&
          NowMicros() >= wake_us) {
        // The primary is slow, not (yet) failed: hedge once to the next
        // candidate and let the first answer win.
        hedged = true;
        hedges_total_->Inc();
        CURE_TRACE_SPAN("cure.router.hedge", "shard",
                        static_cast<uint64_t>(shard));
        lock.unlock();
        launch("hedge");
        lock.lock();
      }
    }
  }
}

std::string CureRouter::HandleQuery(const std::vector<std::string>& tokens_in,
                                    const std::string& cmd,
                                    ClusterProfile* profile) {
  std::vector<std::string> tokens = tokens_in;
  uint64_t trace_id = 0;
  double deadline_seconds = 0;
  std::string token_error;
  if (!serve::TakeRequestTokens(&tokens, &trace_id, &deadline_seconds,
                                &token_error)) {
    return ErrResponse(StatusCode::kInvalidArgument, token_error);
  }
  if (trace_id == 0) trace_id = Tracer::Instance().NextTraceId();
  CURE_TRACE_SPAN("cure.router.query", "trace_id", trace_id);
  const int64_t start_us = NowMicros();
  const int64_t deadline_us =
      deadline_seconds > 0
          ? start_us + static_cast<int64_t>(deadline_seconds * 1e6)
          : 0;
  queries_total_->Inc();

  if (tokens.size() < 2) {
    queries_errors_->Inc();
    return ErrResponse(StatusCode::kInvalidArgument,
                       cmd + " requires a node spec, e.g. " + cmd +
                           " city,category");
  }

  // Parse the node locally: the grouped columns drive row re-encoding and
  // a bad node spec should fail here, not N times on the backends.
  Result<schema::NodeId> node = serve::ParseNodeSpec(*schema_, codec_, tokens[1]);
  if (!node.ok()) {
    queries_errors_->Inc();
    return ErrResponse(node.status());
  }

  // Strip the iceberg threshold: MINSUP must be applied AFTER the merge (a
  // group can clear it globally while clearing it on no single shard), so
  // backends always run the plain query.
  int64_t min_count = 0;
  std::vector<std::string> backend_tokens;
  backend_tokens.push_back(cmd == "ICEBERG" ? "QUERY" : cmd);
  if (cmd == "ICEBERG") {
    if (tokens.size() != 3) {
      queries_errors_->Inc();
      return ErrResponse(StatusCode::kInvalidArgument,
                         "usage: ICEBERG <node> <minsup>");
    }
    if (!ParseInt64(tokens[2], &min_count) || min_count < 1) {
      queries_errors_->Inc();
      return ErrResponse(StatusCode::kInvalidArgument,
                         "minsup '" + tokens[2] + "' is not a positive integer");
    }
    backend_tokens.push_back(tokens[1]);
  } else {
    backend_tokens.push_back(tokens[1]);
    for (size_t arg = 2; arg < tokens.size(); ++arg) {
      if (cmd == "SLICE" && ToUpper(tokens[arg]) == "MINSUP") {
        if (arg + 2 != tokens.size() || !ParseInt64(tokens[arg + 1], &min_count) ||
            min_count < 1) {
          queries_errors_->Inc();
          return ErrResponse(StatusCode::kInvalidArgument,
                             "MINSUP must be followed by a single positive "
                             "integer at the end of the command");
        }
        break;
      }
      backend_tokens.push_back(tokens[arg]);
    }
  }
  if (min_count > 1 && count_aggregate_ < 0) {
    queries_errors_->Inc();
    return ErrResponse(StatusCode::kFailedPrecondition,
                       "iceberg queries require a COUNT aggregate in the "
                       "schema");
  }

  std::string backend_line;
  for (const std::string& token : backend_tokens) {
    if (!backend_line.empty()) backend_line += ' ';
    backend_line += token;
  }
  backend_line += " trace=" + std::to_string(trace_id);
  if (profile != nullptr) backend_line += " profile=1";

  query::ResultSink sink(/*retain=*/true);
  std::vector<std::pair<int, int>> columns;
  int shards_ok = map_.num_shards();
  const Status gathered =
      ScatterGather(*node, backend_line, min_count, deadline_us, &sink,
                    &columns, &shards_ok, profile, start_us);
  const int64_t total_us = NowMicros() - start_us;
  if (profile != nullptr) {
    profile->trace_id = trace_id;
    profile->shards_total = map_.num_shards();
    profile->total_us = total_us;
    profile->result_count = sink.count();
    profile->result_checksum = sink.checksum();
  }
  MaybeRecordSlow(cmd.c_str(), trace_id, total_us, shards_ok, gathered);
  if (!gathered.ok()) {
    queries_errors_->Inc();
    query_latency_us_->Record(total_us);
    return ErrResponse(gathered);
  }
  const std::string partial = PartialToken(shards_ok, map_.num_shards());
  if (!partial.empty()) partial_total_->Inc();

  char header[96];
  std::snprintf(header, sizeof(header), "OK %llu %016llx SCATTER trace=%llu",
                static_cast<unsigned long long>(sink.count()),
                static_cast<unsigned long long>(sink.checksum()),
                static_cast<unsigned long long>(trace_id));
  std::string out = header;
  out += partial;
  out += '\n';
  out += FormatRowsText(sink.rows(), columns);
  out += ".\n";
  query_latency_us_->Record(NowMicros() - start_us);
  return out;
}

std::vector<Result<BackendReply>> CureRouter::Scatter(
    const std::string& backend_line, int64_t deadline_us,
    ClusterProfile* profile, int64_t profile_base_us) {
  std::vector<std::future<Status>> futures;
  std::vector<Result<BackendReply>> replies(
      static_cast<size_t>(map_.num_shards()),
      Status::Internal("shard reply missing"));
  CURE_TRACE_SPAN("cure.router.scatter", "shards",
                  static_cast<uint64_t>(map_.num_shards()));
  if (profile != nullptr) {
    // One pre-sized slot per shard so the pool tasks never touch a shared
    // vector concurrently.
    profile->shards.assign(static_cast<size_t>(map_.num_shards()),
                           ShardProfile());
    for (int s = 0; s < map_.num_shards(); ++s) profile->shards[s].shard = s;
  }
  futures.reserve(replies.size());
  for (int s = 0; s < map_.num_shards(); ++s) {
    ShardProfile* shard_profile =
        profile != nullptr ? &profile->shards[s] : nullptr;
    futures.push_back(pool_->Submit([this, s, deadline_us, &backend_line,
                                     &replies, shard_profile,
                                     profile_base_us] {
      replies[s] = QueryShard(s, backend_line, deadline_us, shard_profile,
                              profile_base_us);
      return Status::OK();
    }));
  }
  for (auto& f : futures) f.get();
  return replies;
}

std::vector<std::pair<int, int>> CureRouter::GroupedColumns(
    schema::NodeId node) const {
  const std::vector<int> levels = codec_.Decode(node);
  std::vector<std::pair<int, int>> columns;
  for (int d = 0; d < codec_.num_dims(); ++d) {
    if (levels[d] != codec_.all_level(d)) columns.emplace_back(d, levels[d]);
  }
  return columns;
}

Status CureRouter::MergeShardRows(
    int shard, const std::vector<std::string>& rows,
    const std::vector<std::pair<int, int>>& columns,
    PartialMerger* merger) const {
  const size_t num_aggrs = static_cast<size_t>(schema_->num_aggregates());
  std::vector<uint32_t> dims(columns.size());
  std::vector<int64_t> aggrs(num_aggrs);
  for (const std::string& row : rows) {
    const std::vector<std::string> fields = SplitRow(row);
    if (fields.size() != columns.size() + num_aggrs) {
      return Status::Internal(
          "shard " + std::to_string(shard) + " returned a row with " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(columns.size() + num_aggrs));
    }
    for (size_t i = 0; i < columns.size(); ++i) {
      if (encoder_ != nullptr) {
        CURE_ASSIGN_OR_RETURN(
            dims[i], encoder_(columns[i].first, columns[i].second, fields[i]));
      } else {
        dims[i] =
            static_cast<uint32_t>(std::strtoul(fields[i].c_str(), nullptr, 10));
      }
    }
    for (size_t y = 0; y < num_aggrs; ++y) {
      int64_t value = 0;
      if (!ParseInt64(fields[columns.size() + y], &value)) {
        return Status::Internal("shard " + std::to_string(shard) +
                                " returned a non-numeric aggregate '" +
                                fields[columns.size() + y] + "'");
      }
      aggrs[y] = value;
    }
    merger->Add(dims, aggrs.data());
  }
  return Status::OK();
}

std::string CureRouter::FormatRowsText(
    const std::vector<query::ResultSink::Row>& rows,
    const std::vector<std::pair<int, int>>& columns) const {
  std::string out;
  for (const query::ResultSink::Row& row : rows) {
    std::string line;
    for (size_t i = 0; i < row.dims.size(); ++i) {
      if (!line.empty()) line += '\t';
      if (decoder_ != nullptr && i < columns.size()) {
        line += decoder_(columns[i].first, columns[i].second, row.dims[i]);
      } else {
        line += std::to_string(row.dims[i]);
      }
    }
    for (const int64_t aggr : row.aggrs) {
      if (!line.empty()) line += '\t';
      line += std::to_string(aggr);
    }
    out += line;
    out += '\n';
  }
  return out;
}

Status CureRouter::ScatterGather(schema::NodeId node,
                                 const std::string& backend_line,
                                 int64_t min_count, int64_t deadline_us,
                                 query::ResultSink* sink,
                                 std::vector<std::pair<int, int>>* columns,
                                 int* shards_ok, ClusterProfile* profile,
                                 int64_t profile_base_us) {
  const int64_t scatter_start_us = NowMicros();
  const std::vector<Result<BackendReply>> replies =
      Scatter(backend_line, deadline_us, profile, profile_base_us);
  if (profile != nullptr) {
    profile->scatter_us = NowMicros() - scatter_start_us;
  }
  *columns = GroupedColumns(node);
  PartialMerger merger(*schema_);
  int merged = 0;
  Status degraded_error = Status::OK();
  const int64_t merge_start_us = NowMicros();
  {
    CURE_TRACE_SPAN("cure.router.merge");
    for (int s = 0; s < map_.num_shards(); ++s) {
      const Result<BackendReply>& reply = replies[s];
      const Status status = reply.ok() ? reply->status : reply.status();
      if (!status.ok()) {
        // Opt-in degradation: an unavailable shard is skipped and the
        // answer marked PARTIAL; deterministic errors still fail the whole
        // query (every shard would refuse the same way).
        if (options_.allow_partial && PartialEligible(status.code())) {
          degraded_error = status;
          continue;
        }
        return status;
      }
      CURE_RETURN_IF_ERROR(MergeShardRows(s, reply->rows, *columns, &merger));
      ++merged;
    }
  }
  if (profile != nullptr) {
    profile->merge_us = NowMicros() - merge_start_us;
    profile->shards_ok = merged;
  }
  if (merged == 0) return degraded_error;  // nothing survived — still an error
  if (shards_ok != nullptr) *shards_ok = merged;
  return merger.Finish(count_aggregate_, min_count, sink);
}

std::string CureRouter::HandleNavigate(const std::vector<std::string>& tokens_in,
                                       const std::string& cmd,
                                       ClusterProfile* profile) {
  std::vector<std::string> tokens = tokens_in;
  uint64_t trace_id = 0;
  double deadline_seconds = 0;
  std::string token_error;
  if (!serve::TakeRequestTokens(&tokens, &trace_id, &deadline_seconds,
                                &token_error)) {
    return ErrResponse(StatusCode::kInvalidArgument, token_error);
  }
  if (trace_id == 0) trace_id = Tracer::Instance().NextTraceId();
  CURE_TRACE_SPAN("cure.router.navigate", "trace_id", trace_id);
  const int64_t start_us = NowMicros();
  const int64_t deadline_us =
      deadline_seconds > 0
          ? start_us + static_cast<int64_t>(deadline_seconds * 1e6)
          : 0;
  queries_total_->Inc();

  if (tokens.size() < 3) {
    queries_errors_->Inc();
    return ErrResponse(StatusCode::kInvalidArgument,
                       "usage: " + cmd +
                           " <node> <dim> [<level=value>...] [MINSUP <n>]");
  }
  Result<schema::NodeId> node =
      serve::ParseNodeSpec(*schema_, codec_, tokens[1]);
  if (!node.ok()) {
    queries_errors_->Inc();
    return ErrResponse(node.status());
  }
  int dim = -1;
  for (int d = 0; d < schema_->num_dims(); ++d) {
    if (schema_->dim(d).name() == tokens[2]) dim = d;
  }
  if (dim < 0) {
    queries_errors_->Inc();
    return ErrResponse(StatusCode::kNotFound,
                       "no dimension named '" + tokens[2] + "'");
  }
  // The navigation step resolves HERE, on the router's own lattice, so the
  // backends only ever see plain QUERY/SLICE lines (and the landed node is
  // announced to the client exactly as a single backend would).
  const schema::Lattice lattice(schema_);
  Result<schema::NodeId> target = cmd == "ROLLUP"
                                      ? lattice.RollUpDim(*node, dim)
                                      : lattice.DrillDownDim(*node, dim);
  if (!target.ok()) {
    queries_errors_->Inc();
    return ErrResponse(target.status());
  }
  const std::string spec = serve::FormatNodeSpec(*schema_, codec_, *target);

  // Slices pass through; MINSUP is stripped and applied post-merge.
  int64_t min_count = 0;
  std::vector<std::string> slices;
  for (size_t arg = 3; arg < tokens.size(); ++arg) {
    if (ToUpper(tokens[arg]) == "MINSUP") {
      if (arg + 2 != tokens.size() || !ParseInt64(tokens[arg + 1], &min_count) ||
          min_count < 1) {
        queries_errors_->Inc();
        return ErrResponse(StatusCode::kInvalidArgument,
                           "MINSUP must be followed by a single positive "
                           "integer at the end of the command");
      }
      break;
    }
    slices.push_back(tokens[arg]);
  }
  if (min_count > 1 && count_aggregate_ < 0) {
    queries_errors_->Inc();
    return ErrResponse(StatusCode::kFailedPrecondition,
                       "iceberg queries require a COUNT aggregate in the "
                       "schema");
  }

  std::string backend_line = slices.empty() ? "QUERY " : "SLICE ";
  backend_line += spec;
  for (const std::string& slice : slices) backend_line += ' ' + slice;
  backend_line += " trace=" + std::to_string(trace_id);
  if (profile != nullptr) backend_line += " profile=1";

  query::ResultSink sink(/*retain=*/true);
  std::vector<std::pair<int, int>> columns;
  int shards_ok = map_.num_shards();
  const Status gathered =
      ScatterGather(*target, backend_line, min_count, deadline_us, &sink,
                    &columns, &shards_ok, profile, start_us);
  if (profile != nullptr) {
    profile->trace_id = trace_id;
    profile->shards_total = map_.num_shards();
    profile->total_us = NowMicros() - start_us;
    profile->result_count = sink.count();
    profile->result_checksum = sink.checksum();
  }
  MaybeRecordSlow(cmd.c_str(), trace_id, NowMicros() - start_us, shards_ok,
                  gathered);
  if (!gathered.ok()) {
    queries_errors_->Inc();
    query_latency_us_->Record(NowMicros() - start_us);
    return ErrResponse(gathered);
  }
  const std::string partial = PartialToken(shards_ok, map_.num_shards());
  if (!partial.empty()) partial_total_->Inc();

  char header[128];
  std::snprintf(header, sizeof(header),
                "OK %llu %016llx SCATTER trace=%llu node=%s",
                static_cast<unsigned long long>(sink.count()),
                static_cast<unsigned long long>(sink.checksum()),
                static_cast<unsigned long long>(trace_id), spec.c_str());
  std::string out = header;
  out += partial;
  out += '\n';
  out += FormatRowsText(sink.rows(), columns);
  out += ".\n";
  query_latency_us_->Record(NowMicros() - start_us);
  return out;
}

std::string CureRouter::HandleTopK(const std::vector<std::string>& tokens_in,
                                   ClusterProfile* profile) {
  std::vector<std::string> tokens = tokens_in;
  uint64_t trace_id = 0;
  double deadline_seconds = 0;
  std::string token_error;
  if (!serve::TakeRequestTokens(&tokens, &trace_id, &deadline_seconds,
                                &token_error)) {
    return ErrResponse(StatusCode::kInvalidArgument, token_error);
  }
  if (trace_id == 0) trace_id = Tracer::Instance().NextTraceId();
  CURE_TRACE_SPAN("cure.router.topk", "trace_id", trace_id);
  const int64_t start_us = NowMicros();
  const int64_t deadline_us =
      deadline_seconds > 0
          ? start_us + static_cast<int64_t>(deadline_seconds * 1e6)
          : 0;
  queries_total_->Inc();

  int64_t topk = 0;
  if (tokens.size() < 3 || !ParseInt64(tokens[2], &topk) || topk < 1) {
    queries_errors_->Inc();
    return ErrResponse(StatusCode::kInvalidArgument,
                       "usage: TOPK <node> <k> [<level=value>...] with a "
                       "positive k");
  }
  Result<schema::NodeId> node =
      serve::ParseNodeSpec(*schema_, codec_, tokens[1]);
  if (!node.ok()) {
    queries_errors_->Inc();
    return ErrResponse(node.status());
  }
  std::vector<std::string> slices;
  for (size_t arg = 3; arg < tokens.size(); ++arg) {
    if (ToUpper(tokens[arg]) == "MINSUP") {
      queries_errors_->Inc();
      return ErrResponse(StatusCode::kInvalidArgument,
                         "TOPK does not take MINSUP");
    }
    slices.push_back(tokens[arg]);
  }

  // Top-k membership is not per-shard-decidable (a group can be globally
  // hot while cold on every shard), so the FULL query is scattered and the
  // selection happens after the merge — exactly like MINSUP.
  std::string backend_line = slices.empty() ? "QUERY " : "SLICE ";
  backend_line += tokens[1];
  for (const std::string& slice : slices) backend_line += ' ' + slice;
  backend_line += " trace=" + std::to_string(trace_id);
  if (profile != nullptr) backend_line += " profile=1";

  query::ResultSink sink(/*retain=*/true);
  std::vector<std::pair<int, int>> columns;
  int shards_ok = map_.num_shards();
  const Status gathered =
      ScatterGather(*node, backend_line, /*min_count=*/0, deadline_us, &sink,
                    &columns, &shards_ok, profile, start_us);
  if (profile != nullptr) {
    profile->trace_id = trace_id;
    profile->shards_total = map_.num_shards();
    profile->total_us = NowMicros() - start_us;
    profile->result_count = sink.count();
    profile->result_checksum = sink.checksum();
  }
  MaybeRecordSlow("TOPK", trace_id, NowMicros() - start_us, shards_ok,
                  gathered);
  if (!gathered.ok()) {
    queries_errors_->Inc();
    query_latency_us_->Record(NowMicros() - start_us);
    return ErrResponse(gathered);
  }
  const std::string partial = PartialToken(shards_ok, map_.num_shards());
  if (!partial.empty()) partial_total_->Inc();

  const int order_aggregate = count_aggregate_ >= 0 ? count_aggregate_ : 0;
  const std::vector<query::ResultSink::Row> selected = algebra::SelectTopK(
      sink.rows(), static_cast<size_t>(topk), order_aggregate);
  query::ResultSink top(/*retain=*/true);
  for (const query::ResultSink::Row& row : selected) {
    top.Emit(row.dims.data(), static_cast<int>(row.dims.size()),
             row.aggrs.data(), static_cast<int>(row.aggrs.size()));
  }

  char header[96];
  std::snprintf(header, sizeof(header), "OK %llu %016llx SCATTER trace=%llu",
                static_cast<unsigned long long>(top.count()),
                static_cast<unsigned long long>(top.checksum()),
                static_cast<unsigned long long>(trace_id));
  std::string out = header;
  out += partial;
  out += '\n';
  out += FormatRowsText(top.rows(), columns);
  out += ".\n";
  query_latency_us_->Record(NowMicros() - start_us);
  return out;
}

std::string CureRouter::HandleBatch(const std::vector<std::string>& tokens_in) {
  std::vector<std::string> tokens = tokens_in;
  uint64_t trace_id = 0;
  double deadline_seconds = 0;
  std::string token_error;
  if (!serve::TakeRequestTokens(&tokens, &trace_id, &deadline_seconds,
                                &token_error)) {
    return ErrResponse(StatusCode::kInvalidArgument, token_error);
  }
  if (trace_id == 0) trace_id = Tracer::Instance().NextTraceId();
  CURE_TRACE_SPAN("cure.router.batch", "trace_id", trace_id, "nodes",
                  static_cast<uint64_t>(tokens.size() - 1));
  const int64_t start_us = NowMicros();
  const int64_t deadline_us =
      deadline_seconds > 0
          ? start_us + static_cast<int64_t>(deadline_seconds * 1e6)
          : 0;
  queries_total_->Inc();

  if (tokens.size() < 2) {
    queries_errors_->Inc();
    return ErrResponse(StatusCode::kInvalidArgument,
                       "usage: BATCH <node> [<node>...]");
  }
  std::vector<schema::NodeId> nodes;
  std::vector<std::string> specs;  // canonical, as the backends echo them
  for (size_t i = 1; i < tokens.size(); ++i) {
    Result<schema::NodeId> node =
        serve::ParseNodeSpec(*schema_, codec_, tokens[i]);
    if (!node.ok()) {
      queries_errors_->Inc();
      return ErrResponse(node.status());
    }
    nodes.push_back(*node);
    specs.push_back(serve::FormatNodeSpec(*schema_, codec_, *node));
  }

  // The whole batch is forwarded to every shard in ONE round trip (the
  // backends keep their most-detailed-first execution order, so their
  // semantic caches still chain within the batch); each section is then
  // merged independently, exactly as if it had been scattered on its own.
  std::string backend_line = "BATCH";
  for (const std::string& spec : specs) backend_line += ' ' + spec;
  backend_line += " trace=" + std::to_string(trace_id);
  const std::vector<Result<BackendReply>> replies =
      Scatter(backend_line, deadline_us);

  std::vector<std::vector<std::pair<int, int>>> columns(nodes.size());
  std::vector<std::unique_ptr<PartialMerger>> mergers;
  for (size_t i = 0; i < nodes.size(); ++i) {
    columns[i] = GroupedColumns(nodes[i]);
    mergers.push_back(std::make_unique<PartialMerger>(*schema_));
  }

  int shards_ok = 0;
  Status degraded_error = Status::OK();
  for (int s = 0; s < map_.num_shards(); ++s) {
    const Result<BackendReply>& reply = replies[s];
    const Status status = reply.ok() ? reply->status : reply.status();
    if (!status.ok()) {
      // Same degradation rule as ScatterGather: a whole unavailable shard
      // may be skipped under allow_partial (every section loses its rows
      // uniformly); anything else fails the batch.
      if (options_.allow_partial && PartialEligible(status.code())) {
        degraded_error = status;
        continue;
      }
      queries_errors_->Inc();
      query_latency_us_->Record(NowMicros() - start_us);
      return ErrResponse(status);
    }
    ++shards_ok;
    // Sections arrive in input order, each framed by its "= <spec> <count>
    // <checksum> <token>" header; the count prefix delimits its rows.
    size_t row = 0, section = 0;
    while (row < reply->rows.size()) {
      std::istringstream head(reply->rows[row]);
      std::string marker, spec, checksum_hex, token;
      uint64_t count = 0;
      if (!(head >> marker >> spec >> count >> checksum_hex >> token) ||
          marker != "=") {
        queries_errors_->Inc();
        query_latency_us_->Record(NowMicros() - start_us);
        return ErrResponse(StatusCode::kInternal,
                           "shard " + std::to_string(s) +
                               " returned a malformed BATCH section header '" +
                               reply->rows[row] + "'");
      }
      if (section >= nodes.size() || spec != specs[section]) {
        queries_errors_->Inc();
        query_latency_us_->Record(NowMicros() - start_us);
        return ErrResponse(StatusCode::kInternal,
                           "shard " + std::to_string(s) +
                               " returned unexpected BATCH section '" + spec +
                               "'");
      }
      ++row;
      if (row + count > reply->rows.size()) {
        queries_errors_->Inc();
        query_latency_us_->Record(NowMicros() - start_us);
        return ErrResponse(StatusCode::kInternal,
                           "shard " + std::to_string(s) +
                               " truncated BATCH section '" + spec + "'");
      }
      const std::vector<std::string> body(
          reply->rows.begin() + static_cast<ptrdiff_t>(row),
          reply->rows.begin() + static_cast<ptrdiff_t>(row + count));
      const Status merged =
          MergeShardRows(s, body, columns[section], mergers[section].get());
      if (!merged.ok()) {
        queries_errors_->Inc();
        query_latency_us_->Record(NowMicros() - start_us);
        return ErrResponse(merged);
      }
      row += count;
      ++section;
    }
    if (section != nodes.size()) {
      queries_errors_->Inc();
      query_latency_us_->Record(NowMicros() - start_us);
      return ErrResponse(StatusCode::kInternal,
                         "shard " + std::to_string(s) + " returned " +
                             std::to_string(section) + " BATCH sections, "
                             "expected " + std::to_string(nodes.size()));
    }
  }
  if (shards_ok == 0) {
    queries_errors_->Inc();
    query_latency_us_->Record(NowMicros() - start_us);
    return ErrResponse(degraded_error);
  }
  const std::string partial = PartialToken(shards_ok, map_.num_shards());
  if (!partial.empty()) partial_total_->Inc();

  std::string sections_out;
  uint64_t combined_checksum = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    query::ResultSink sink(/*retain=*/true);
    const Status finish =
        mergers[i]->Finish(count_aggregate_, /*min_count=*/0, &sink);
    if (!finish.ok()) {
      queries_errors_->Inc();
      query_latency_us_->Record(NowMicros() - start_us);
      return ErrResponse(finish);
    }
    combined_checksum ^= sink.checksum();
    char section_header[128];
    std::snprintf(section_header, sizeof(section_header),
                  "= %s %llu %016llx SCATTER\n", specs[i].c_str(),
                  static_cast<unsigned long long>(sink.count()),
                  static_cast<unsigned long long>(sink.checksum()));
    sections_out += section_header;
    sections_out += FormatRowsText(sink.rows(), columns[i]);
  }

  char header[96];
  std::snprintf(header, sizeof(header), "OK %llu %016llx BATCH trace=%llu",
                static_cast<unsigned long long>(nodes.size()),
                static_cast<unsigned long long>(combined_checksum),
                static_cast<unsigned long long>(trace_id));
  std::string out = header;
  out += partial;
  out += '\n';
  out += sections_out;
  out += ".\n";
  MaybeRecordSlow("BATCH", trace_id, NowMicros() - start_us, shards_ok,
                  Status::OK());
  query_latency_us_->Record(NowMicros() - start_us);
  return out;
}

std::string CureRouter::HandleProfile(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "usage: PROFILE <QUERY|ICEBERG|SLICE|ROLLUP|DRILL|"
                       "TOPK> ...");
  }
  const std::vector<std::string> inner(tokens.begin() + 1, tokens.end());
  const std::string cmd = ToUpper(inner[0]);
  ClusterProfile profile;
  std::string response;
  if (cmd == "QUERY" || cmd == "ICEBERG" || cmd == "SLICE") {
    response = HandleQuery(inner, cmd, &profile);
  } else if (cmd == "ROLLUP" || cmd == "DRILL") {
    response = HandleNavigate(inner, cmd, &profile);
  } else if (cmd == "TOPK") {
    response = HandleTopK(inner, &profile);
  } else {
    return ErrResponse(StatusCode::kInvalidArgument,
                       "PROFILE wraps QUERY, ICEBERG, SLICE, ROLLUP, DRILL "
                       "or TOPK, not '" + inner[0] + "'");
  }
  // A failed wrapped query keeps its ERR verbatim — the caller learns the
  // real error, not a profile of a non-answer.
  if (response.rfind("ERR", 0) == 0) return response;
  std::string command;
  for (const std::string& token : inner) {
    if (!command.empty()) command += ' ';
    command += token;
  }
  profile.command = command;
  char header[96];
  std::snprintf(header, sizeof(header), "OK %llu %016llx PROFILE trace=%llu\n",
                static_cast<unsigned long long>(profile.result_count),
                static_cast<unsigned long long>(profile.result_checksum),
                static_cast<unsigned long long>(profile.trace_id));
  return header + FormatClusterProfile(profile) + ".\n";
}

void CureRouter::MaybeRecordSlow(const char* verb, uint64_t trace_id,
                                 int64_t total_us, int shards_ok,
                                 const Status& status) {
  if (options_.slow_query_seconds <= 0) return;
  if (total_us < static_cast<int64_t>(options_.slow_query_seconds * 1e6)) {
    return;
  }
  slowlog_.Record("trace=" + std::to_string(trace_id) + " verb=" + verb +
                  " status=" + StatusCodeName(status.code()) +
                  " total_us=" + std::to_string(total_us) +
                  " shards_ok=" + std::to_string(shards_ok) + "/" +
                  std::to_string(map_.num_shards()));
}

std::string CureRouter::HealthText() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now_us = NowMicros();
  std::string out = "OK\n";
  char line[224];
  for (int s = 0; s < map_.num_shards(); ++s) {
    for (int r = 0; r < map_.num_replicas(s); ++r) {
      const ReplicaState& state = replicas_[s][r];
      const char* breaker =
          state.open_until_us == 0
              ? "closed"
              : (now_us >= state.open_until_us ? "half-open" : "open");
      std::snprintf(
          line, sizeof(line),
          "shard %d replica %d %s %s version=%llu staleness=%s breaker=%s\n",
          s, r, map_.shards[s][r].ToString().c_str(),
          state.ejected ? "EJECTED" : (state.healthy ? "UP" : "DOWN"),
          static_cast<unsigned long long>(state.cube_version),
          FormatMetricValue(state.staleness_seconds).c_str(), breaker);
      out += line;
    }
  }
  out += ".\n";
  return out;
}

void CureRouter::UpdateDerivedMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  int healthy = 0, ejected = 0, total = 0;
  for (size_t s = 0; s < replicas_.size(); ++s) {
    for (size_t r = 0; r < replicas_[s].size(); ++r) {
      const ReplicaState& state = replicas_[s][r];
      ++total;
      if (state.ejected) {
        ++ejected;
      } else if (state.healthy) {
        ++healthy;
      }
      // Breaker state is rendered by PrometheusText() as one labelled
      // series instead of a metric NAME per replica (a 16×4 cluster would
      // mint 64 metric names and clutter every dashboard's series browser).
    }
  }
  metrics_.gauge("shards")->Set(map_.num_shards());
  metrics_.gauge("replicas_total")->Set(total);
  metrics_.gauge("replicas_healthy")->Set(healthy);
  metrics_.gauge("replicas_ejected")->Set(ejected);
  metrics_.gauge("pool_queue_depth")
      ->Set(static_cast<double>(pool_->queue_depth()));
  metrics_.gauge("pool_busy_workers")->Set(pool_->busy_workers());
  const BackendClient::PoolStats conns = client_.pool_stats();
  metrics_.gauge("backend_pool_connects")
      ->Set(static_cast<double>(conns.connects));
  metrics_.gauge("backend_pool_reuses")
      ->Set(static_cast<double>(conns.reuses));
  metrics_.gauge("backend_pool_discards_idle")
      ->Set(static_cast<double>(conns.discards_idle));
  metrics_.gauge("backend_pool_retries_stale")
      ->Set(static_cast<double>(conns.retries_stale));
  metrics_.gauge("backend_pool_open")->Set(static_cast<double>(conns.open));
}

void CureRouter::MergeBackendLatency(LogHistogram* out) const {
  for (const auto& shard : backend_latency_) {
    for (const LogHistogram* histogram : shard) out->Merge(*histogram);
  }
}

std::string CureRouter::StatsText() const {
  UpdateDerivedMetrics();
  std::string out = metrics_.TextSnapshot();
  LogHistogram cluster;
  MergeBackendLatency(&cluster);
  AppendHistogramText("backend_all_latency", cluster, &out);
  return out;
}

std::string CureRouter::PrometheusText() const {
  UpdateDerivedMetrics();
  std::string out = metrics_.PrometheusText("cure_router_");
  LogHistogram cluster;
  MergeBackendLatency(&cluster);
  AppendPrometheusHistogram("cure_router_backend_all_latency", cluster, &out);
  // Breaker state as ONE series with shard/replica labels (0 = closed,
  // 1 = half-open, 2 = open) — constant metric-name cardinality no matter
  // how big the map is. HEALTH keeps the human-readable per-replica view.
  out += "# TYPE cure_router_breaker_state gauge\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t now_us = NowMicros();
    for (size_t s = 0; s < replicas_.size(); ++s) {
      for (size_t r = 0; r < replicas_[s].size(); ++r) {
        const ReplicaState& state = replicas_[s][r];
        const double breaker =
            state.open_until_us == 0 ? 0
            : (now_us >= state.open_until_us ? 1 : 2);
        out += PrometheusSampleLine("cure_router_breaker_state",
                                    {{"shard", std::to_string(s)},
                                     {"replica", std::to_string(r)}},
                                    breaker);
      }
    }
  }
  return out;
}

std::string CureRouter::ClusterMetricsText() {
  std::string out = PrometheusText();
  // Scrape every non-ejected replica; the federator re-labels the samples
  // and merges the `# BUCKETS` histograms cluster-wide. Ejected replicas
  // are skipped on purpose (their data is condemned); unreachable ones are
  // reported as comments rather than silently dropped.
  MetricsFederator federator;
  for (int s = 0; s < map_.num_shards(); ++s) {
    for (int r = 0; r < map_.num_replicas(s); ++r) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (replicas_[s][r].ejected) continue;
      }
      const BackendAddress& addr = map_.shards[s][r];
      Result<std::string> scraped = client_.RoundTrip(addr, "METRICS");
      if (!scraped.ok()) {
        federator.AddUnreachable(s, r, addr.ToString(),
                                 scraped.status().message());
        continue;
      }
      // Strip the protocol's "OK" status line; the exposition body follows.
      std::string body = std::move(scraped).value();
      const size_t first_newline = body.find('\n');
      if (body.rfind("OK", 0) == 0 && first_newline != std::string::npos) {
        body.erase(0, first_newline + 1);
      }
      federator.AddBackend(s, r, body);
    }
  }
  out += federator.Render();
  return out;
}

std::string CureRouter::HandleLine(const std::string& line) {
  std::vector<std::string> tokens = serve::SplitTokens(line);
  if (tokens.empty()) {
    return ErrResponse(StatusCode::kInvalidArgument, "empty command");
  }
  const std::string cmd = ToUpper(tokens[0]);
  if (cmd == "STATS") return "OK\n" + StatsText() + ".\n";
  if (cmd == "METRICS") {
    if (tokens.size() == 2 && ToUpper(tokens[1]) == "CLUSTER") {
      return "OK\n" + ClusterMetricsText() + ".\n";
    }
    return "OK\n" + PrometheusText() + ".\n";
  }
  if (cmd == "SLOWLOG") return "OK\n" + slowlog_.Dump() + ".\n";
  if (cmd == "HEALTH") return HealthText();
  if (cmd == "PROFILE") return HandleProfile(tokens);
  if (cmd == "QUERY" || cmd == "ICEBERG" || cmd == "SLICE") {
    return HandleQuery(tokens, cmd);
  }
  if (cmd == "ROLLUP" || cmd == "DRILL") return HandleNavigate(tokens, cmd);
  if (cmd == "TOPK") return HandleTopK(tokens);
  if (cmd == "BATCH") return HandleBatch(tokens);
  return ErrResponse(StatusCode::kInvalidArgument,
                     "unknown command '" + tokens[0] +
                         "' (expected QUERY, ICEBERG, SLICE, ROLLUP, DRILL, "
                         "TOPK, BATCH, PROFILE, STATS, METRICS, SLOWLOG, "
                         "HEALTH or QUIT)");
}

void CureRouter::OverrideReplicaFreshnessForTest(int shard, int replica,
                                                 uint64_t version,
                                                 double staleness) {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = replicas_[shard][replica];
  state.healthy = true;
  state.cube_version = version;
  state.staleness_seconds = staleness;
}

std::vector<int> CureRouter::ReplicaOrderForTest(int shard) {
  return PickOrder(shard);
}

}  // namespace router
}  // namespace cure
