#include "router/merge.h"

#include <algorithm>

namespace cure {
namespace router {

void PartialMerger::Add(const std::vector<uint32_t>& dims,
                        const int64_t* aggrs) {
  auto [it, inserted] = groups_.try_emplace(dims);
  if (inserted) {
    it->second.resize(aggregator_.num_aggregates());
    aggregator_.Init(it->second.data());
  }
  aggregator_.Combine(it->second.data(), aggrs);
}

Status PartialMerger::Finish(int count_aggregate, int64_t min_count,
                             query::ResultSink* sink) const {
  if (min_count > 1 &&
      (count_aggregate < 0 ||
       count_aggregate >= aggregator_.num_aggregates())) {
    return Status::FailedPrecondition(
        "iceberg merge requires a COUNT aggregate in the schema");
  }
  std::vector<const std::pair<const std::vector<uint32_t>,
                              std::vector<int64_t>>*> ordered;
  ordered.reserve(groups_.size());
  for (const auto& entry : groups_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : ordered) {
    if (min_count > 1 && entry->second[count_aggregate] < min_count) continue;
    sink->Emit(entry->first.data(), static_cast<int>(entry->first.size()),
               entry->second.data(),
               static_cast<int>(entry->second.size()));
  }
  return Status::OK();
}

}  // namespace router
}  // namespace cure
