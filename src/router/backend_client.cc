#include "router/backend_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "serve/line_transport.h"

namespace cure {
namespace router {

namespace {

/// Applies `seconds` as both SO_RCVTIMEO and SO_SNDTIMEO (which also bounds
/// connect(2) on Linux). 0 leaves the socket fully blocking.
void SetSocketTimeout(int fd, double seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Result<int> Connect(const BackendAddress& addr, double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  SetSocketTimeout(fd, timeout_seconds);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(addr.port));
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("backend host '" + addr.host +
                                   "' is not an IPv4 address");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect " + addr.ToString() + ": " + err);
  }
  return fd;
}

/// Maps a protocol code name ("IOError", "DataLoss", ...) back onto its
/// StatusCode; unknown names collapse to kInternal so a newer backend's
/// error still fails closed rather than silently succeeding.
StatusCode ParseStatusCodeName(const std::string& name) {
  static const StatusCode kCodes[] = {
      StatusCode::kInvalidArgument,  StatusCode::kNotFound,
      StatusCode::kAlreadyExists,    StatusCode::kOutOfRange,
      StatusCode::kIoError,          StatusCode::kDataLoss,
      StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
      StatusCode::kFailedPrecondition, StatusCode::kInternal,
      StatusCode::kUnimplemented,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace

Result<std::string> BackendClient::RoundTrip(const BackendAddress& addr,
                                             const std::string& line) const {
  auto fd_result = Connect(addr, timeout_seconds_);
  if (!fd_result.ok()) return fd_result.status();
  const int fd = fd_result.value();

  const std::string request = line + "\nQUIT\n";
  if (!serve::WriteAllToFd(fd, request.data(), request.size())) {
    ::close(fd);
    return Status::IoError("send to " + addr.ToString() + " failed");
  }

  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("recv from " + addr.ToString() + ": " + err);
    }
    if (n == 0) {
      ::close(fd);
      return Status::IoError("backend " + addr.ToString() +
                             " closed the connection mid-response");
    }
    response.append(buffer, static_cast<size_t>(n));
    if (response == ".\n" ||
        (response.size() >= 3 &&
         response.compare(response.size() - 3, 3, "\n.\n") == 0)) {
      break;
    }
  }
  ::close(fd);
  // Strip the ".\n" terminator line.
  response.erase(response.size() - 2);
  return response;
}

BackendReply ParseBackendReply(const std::string& response) {
  BackendReply reply;
  std::istringstream in(response);
  std::string header;
  if (!std::getline(in, header)) {
    reply.status = Status::IoError("empty backend response");
    return reply;
  }
  std::istringstream fields(header);
  std::string verdict;
  fields >> verdict;
  if (verdict == "ERR") {
    std::string code_name;
    fields >> code_name;
    std::string message;
    std::getline(fields, message);
    if (!message.empty() && message.front() == ' ') message.erase(0, 1);
    reply.status = Status(ParseStatusCodeName(code_name), message);
    return reply;
  }
  if (verdict != "OK") {
    reply.status =
        Status::IoError("malformed backend response header '" + header + "'");
    return reply;
  }
  std::string checksum_hex, cache_token, trace_token;
  if (!(fields >> reply.count >> checksum_hex >> cache_token >> trace_token)) {
    reply.status =
        Status::IoError("malformed backend OK header '" + header + "'");
    return reply;
  }
  reply.checksum = std::strtoull(checksum_hex.c_str(), nullptr, 16);
  reply.cache_hit = cache_token == "HIT";
  if (trace_token.rfind("trace=", 0) == 0) {
    reply.trace_id = std::strtoull(trace_token.c_str() + 6, nullptr, 10);
  }
  std::string row;
  while (std::getline(in, row)) {
    if (!row.empty() && row.back() == '\r') row.pop_back();
    reply.rows.push_back(std::move(row));
  }
  return reply;
}

Result<BackendReply> BackendClient::Query(const BackendAddress& addr,
                                          const std::string& line) const {
  auto response = RoundTrip(addr, line);
  if (!response.ok()) return response.status();
  return ParseBackendReply(response.value());
}

Result<BackendFreshness> BackendClient::ProbeStats(
    const BackendAddress& addr) const {
  auto response = RoundTrip(addr, "STATS");
  if (!response.ok()) return response.status();
  BackendFreshness fresh;
  std::istringstream in(response.value());
  std::string line;
  if (!std::getline(in, line) || line.rfind("OK", 0) != 0) {
    return Status::IoError("malformed STATS response from " + addr.ToString());
  }
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string name;
    double value = 0;
    if (!(fields >> name >> value)) continue;
    if (name == "cube_version") {
      fresh.cube_version = static_cast<uint64_t>(value);
    } else if (name == "staleness_seconds") {
      fresh.staleness_seconds = value;
    }
  }
  return fresh;
}

}  // namespace router
}  // namespace cure
