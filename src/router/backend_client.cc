#include "router/backend_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/net_fault.h"
#include "serve/line_transport.h"

namespace cure {
namespace router {

namespace {

/// Pooled connections kept per backend address; enough for a scatter
/// thread per replica at typical fan-outs without hoarding fds.
constexpr size_t kMaxPooledPerBackend = 4;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Applies `seconds` as both SO_RCVTIMEO and SO_SNDTIMEO. 0 leaves the
/// socket fully blocking. A failed setsockopt must surface: silently
/// proceeding would leave the socket unbounded and a dead backend could
/// hang a scatter thread forever.
Status ApplyTimeout(int fd, const BackendAddress& addr, double seconds) {
  if (seconds <= 0) return Status::OK();
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IoError("setsockopt(timeout) for " + addr.ToString() +
                           ": " + std::strerror(errno));
  }
  return Status::OK();
}

Result<int> Connect(const BackendAddress& addr, double timeout_seconds) {
  const std::string endpoint = addr.ToString();
  // Fault shim: an injected connect fault fires before the syscall, so a
  // "refused" plan behaves like nothing is listening on the port.
  const int injected = net::NetFaultInjector::Instance().Consult("connect",
                                                                 endpoint);
  if (injected != 0) {
    if (injected == ETIMEDOUT) {
      return Status::DeadlineExceeded("connect " + endpoint + " timed out");
    }
    return Status::IoError("connect " + endpoint + ": " +
                           std::strerror(injected));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(addr.port));
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("backend host '" + addr.host +
                                   "' is not an IPv4 address");
  }
  // SO_SNDTIMEO does not reliably bound connect(2) everywhere, so the
  // connect itself uses non-blocking + poll with the deadline and the
  // socket is restored to blocking afterwards.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fcntl(O_NONBLOCK) for " + endpoint + ": " + err);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (errno != EINPROGRESS) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("connect " + endpoint + ": " + err);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    int timeout_ms = -1;
    if (timeout_seconds > 0) {
      timeout_ms = std::max(1, static_cast<int>(timeout_seconds * 1000.0));
    }
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      ::close(fd);
      return Status::DeadlineExceeded(
          "connect " + endpoint + " timed out after " +
          std::to_string(timeout_ms) + "ms");
    }
    if (rc < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("poll(connect " + endpoint + "): " + err);
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) != 0) {
      so_error = errno;
    }
    if (so_error != 0) {
      ::close(fd);
      return Status::IoError("connect " + endpoint + ": " +
                             std::strerror(so_error));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fcntl(restore) for " + endpoint + ": " + err);
  }
  Status timeouts = ApplyTimeout(fd, addr, timeout_seconds);
  if (!timeouts.ok()) {
    ::close(fd);
    return timeouts;
  }
  return fd;
}

/// One request/response exchange on an open connection. Does NOT close the
/// fd on success; closes it on any failure. `*got_bytes` reports whether
/// the backend produced any response bytes — the retry-once policy only
/// resends requests the backend provably never started answering.
Result<std::string> ExchangeOnFd(int fd, const BackendAddress& addr,
                                 const std::string& line, bool* got_bytes) {
  *got_bytes = false;
  const std::string endpoint = addr.ToString();
  const std::string request = line + "\n";
  if (!serve::WriteAllToFd(fd, request.data(), request.size(), endpoint)) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("send to " + endpoint + " failed: " + err);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n;
    const int injected =
        net::NetFaultInjector::Instance().Consult("read", endpoint);
    if (injected != 0) {
      n = -1;
      errno = injected;
    } else {
      n = ::recv(fd, buffer, sizeof(buffer), 0);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ETIMEDOUT) {
        // SO_RCVTIMEO struck — possibly mid-response, which a generic parse
        // or EOF error would mislabel. The bytes-read count distinguishes a
        // backend that never answered from one that stalled partway.
        ::close(fd);
        return Status::DeadlineExceeded(
            "recv from " + endpoint + " timed out mid-response (" +
            std::to_string(response.size()) + " bytes read)");
      }
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("recv from " + endpoint + ": " + err);
    }
    if (n == 0) {
      ::close(fd);
      return Status::IoError("backend " + addr.ToString() +
                             " closed the connection mid-response");
    }
    *got_bytes = true;
    response.append(buffer, static_cast<size_t>(n));
    if (response == ".\n" ||
        (response.size() >= 3 &&
         response.compare(response.size() - 3, 3, "\n.\n") == 0)) {
      break;
    }
  }
  // Strip the ".\n" terminator line.
  response.erase(response.size() - 2);
  return response;
}

/// Maps a protocol code name ("IOError", "DataLoss", ...) back onto its
/// StatusCode; unknown names collapse to kInternal so a newer backend's
/// error still fails closed rather than silently succeeding.
StatusCode ParseStatusCodeName(const std::string& name) {
  static const StatusCode kCodes[] = {
      StatusCode::kInvalidArgument,  StatusCode::kNotFound,
      StatusCode::kAlreadyExists,    StatusCode::kOutOfRange,
      StatusCode::kIoError,          StatusCode::kDataLoss,
      StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
      StatusCode::kFailedPrecondition, StatusCode::kInternal,
      StatusCode::kUnimplemented,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace

BackendClient::~BackendClient() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  for (auto& [key, conns] : pool_) {
    for (const PooledConn& conn : conns) ::close(conn.fd);
  }
  pool_.clear();
}

int BackendClient::AcquirePooled(const std::string& key) const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  auto it = pool_.find(key);
  if (it == pool_.end()) return -1;
  std::vector<PooledConn>& conns = it->second;
  const int64_t now_us = NowMicros();
  // Most recently used first: its server-side peer is the least likely to
  // have been idle-reaped.
  while (!conns.empty()) {
    const PooledConn conn = conns.back();
    conns.pop_back();
    if (idle_timeout_seconds_ > 0 &&
        static_cast<double>(now_us - conn.last_used_us) * 1e-6 >
            idle_timeout_seconds_) {
      ::close(conn.fd);
      discards_idle_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    return conn.fd;
  }
  return -1;
}

void BackendClient::ReleasePooled(const std::string& key, int fd) const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  std::vector<PooledConn>& conns = pool_[key];
  if (conns.size() >= kMaxPooledPerBackend) {
    ::close(conns.front().fd);  // oldest = most likely already reaped
    conns.erase(conns.begin());
  }
  conns.push_back(PooledConn{fd, NowMicros()});
}

BackendClient::PoolStats BackendClient::pool_stats() const {
  PoolStats stats;
  stats.connects = connects_.load(std::memory_order_relaxed);
  stats.reuses = reuses_.load(std::memory_order_relaxed);
  stats.discards_idle = discards_idle_.load(std::memory_order_relaxed);
  stats.retries_stale = retries_stale_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(pool_mu_);
  for (const auto& [key, conns] : pool_) stats.open += conns.size();
  return stats;
}

Result<std::string> BackendClient::RoundTrip(const BackendAddress& addr,
                                             const std::string& line,
                                             double deadline_seconds) const {
  // A caller deadline tighter than the configured timeout wins: the router
  // spends one client budget across attempts instead of granting each
  // attempt the full per-op timeout.
  double effective_timeout = timeout_seconds_;
  if (deadline_seconds > 0 &&
      (effective_timeout <= 0 || deadline_seconds < effective_timeout)) {
    effective_timeout = deadline_seconds;
  }
  const std::string key = addr.ToString();
  int fd = AcquirePooled(key);
  bool reused = fd >= 0;
  if (reused) reuses_.fetch_add(1, std::memory_order_relaxed);

  for (;;) {
    if (fd < 0) {
      auto fd_result = Connect(addr, effective_timeout);
      if (!fd_result.ok()) return fd_result.status();
      fd = fd_result.value();
      connects_.fetch_add(1, std::memory_order_relaxed);
    } else if (deadline_seconds > 0) {
      // Pooled connections carry the configured timeout; re-tighten to this
      // call's remaining budget.
      Status timeouts = ApplyTimeout(fd, addr, effective_timeout);
      if (!timeouts.ok()) {
        ::close(fd);
        fd = -1;
        reused = false;
        continue;
      }
    }
    bool got_bytes = false;
    Result<std::string> response = ExchangeOnFd(fd, addr, line, &got_bytes);
    if (response.ok()) {
      ReleasePooled(key, fd);
      return response;
    }
    // ExchangeOnFd closed the fd. A pooled connection that died before
    // producing a single byte was almost certainly reaped while idle —
    // retry once on a fresh connection; anything else is a real failure.
    fd = -1;
    if (reused && !got_bytes) {
      retries_stale_.fetch_add(1, std::memory_order_relaxed);
      reused = false;
      continue;
    }
    return response.status();
  }
}

BackendReply ParseBackendReply(const std::string& response) {
  BackendReply reply;
  std::istringstream in(response);
  std::string header;
  if (!std::getline(in, header)) {
    reply.status = Status::IoError("empty backend response");
    return reply;
  }
  std::istringstream fields(header);
  std::string verdict;
  fields >> verdict;
  if (verdict == "ERR") {
    std::string code_name;
    fields >> code_name;
    std::string message;
    std::getline(fields, message);
    if (!message.empty() && message.front() == ' ') message.erase(0, 1);
    reply.status = Status(ParseStatusCodeName(code_name), message);
    return reply;
  }
  if (verdict != "OK") {
    reply.status =
        Status::IoError("malformed backend response header '" + header + "'");
    return reply;
  }
  std::string checksum_hex, cache_token, trace_token;
  if (!(fields >> reply.count >> checksum_hex >> cache_token >> trace_token)) {
    reply.status =
        Status::IoError("malformed backend OK header '" + header + "'");
    return reply;
  }
  reply.checksum = std::strtoull(checksum_hex.c_str(), nullptr, 16);
  reply.cache_hit = cache_token == "HIT";
  if (trace_token.rfind("trace=", 0) == 0) {
    reply.trace_id = std::strtoull(trace_token.c_str() + 6, nullptr, 10);
  }
  std::string row;
  while (std::getline(in, row)) {
    if (!row.empty() && row.back() == '\r') row.pop_back();
    if (row.rfind("% ", 0) == 0) {
      reply.profile_lines.push_back(std::move(row));
    } else {
      reply.rows.push_back(std::move(row));
    }
  }
  return reply;
}

Result<BackendReply> BackendClient::Query(const BackendAddress& addr,
                                          const std::string& line,
                                          double deadline_seconds) const {
  auto response = RoundTrip(addr, line, deadline_seconds);
  if (!response.ok()) return response.status();
  return ParseBackendReply(response.value());
}

Result<BackendFreshness> BackendClient::ProbeStats(
    const BackendAddress& addr) const {
  auto response = RoundTrip(addr, "STATS");
  if (!response.ok()) return response.status();
  BackendFreshness fresh;
  std::istringstream in(response.value());
  std::string line;
  if (!std::getline(in, line) || line.rfind("OK", 0) != 0) {
    return Status::IoError("malformed STATS response from " + addr.ToString());
  }
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string name;
    double value = 0;
    if (!(fields >> name >> value)) continue;
    if (name == "cube_version") {
      fresh.cube_version = static_cast<uint64_t>(value);
    } else if (name == "staleness_seconds") {
      fresh.staleness_seconds = value;
    }
  }
  return fresh;
}

}  // namespace router
}  // namespace cure
