#ifndef CURE_ROUTER_ROUTER_H_
#define CURE_ROUTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/slowlog.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "router/backend_client.h"
#include "router/merge.h"
#include "router/profile.h"
#include "router/shard_map.h"
#include "schema/cube_schema.h"
#include "schema/node_id.h"

namespace cure {
namespace router {

struct RouterOptions {
  /// Per-backend-call timeout (connect / send / recv each); 0 = none.
  double backend_timeout_seconds = 5.0;
  /// Background health-probe period; 0 disables the probe thread (health
  /// state then changes only through query outcomes and explicit
  /// ProbeHealth() calls — the mode tests use).
  double health_period_seconds = 0;
  /// Scatter worker threads (0 = one per shard).
  int num_threads = 0;
  /// Fixed hedge delay: an attempt still unanswered after this long gets a
  /// second request to another healthy replica, first answer wins. < 0
  /// disables hedging (the default — tests and latency-insensitive callers
  /// keep strictly sequential failover).
  double hedge_seconds = -1;
  /// When > 0, the hedge delay is this percentile (e.g. 0.95) of the
  /// cluster-wide backend latency distribution instead of the fixed delay;
  /// falls back to hedge_seconds until enough samples accumulate.
  double hedge_percentile = 0;
  /// Max relaunches (retries + hedges) beyond the first attempt per shard
  /// per request. Candidate replicas are still each tried at most once.
  int retry_budget = 3;
  /// Capped exponential backoff between sequential retries; jittered to
  /// avoid synchronized retry storms across scatter threads.
  double backoff_initial_seconds = 0.005;
  double backoff_cap_seconds = 0.25;
  /// Circuit breaker: this many consecutive failover-class failures open a
  /// replica's breaker for `breaker_cooldown_seconds`; after the cooldown
  /// it is half-open (eligible as a probe candidate) and one success closes
  /// it. 0 disables the breaker.
  int breaker_failure_threshold = 3;
  double breaker_cooldown_seconds = 2.0;
  /// Opt-in graceful degradation: when some (but not all) shards fail with
  /// failover-class errors, answer from the surviving shards with a
  /// trailing "PARTIAL shards=<k>/<n>" header token instead of ERR. Strict
  /// (all-or-error) by default.
  bool allow_partial = false;
  /// Slow-query flight recorder: queries slower than this land in the
  /// SLOWLOG ring (one line each, newest first). 0 disables recording.
  double slow_query_seconds = 0;
};

/// Sharded, replicated scatter–gather front end over cure_serve backends.
///
/// The cube's fact table is partitioned across the shard map's shards
/// (cure_tool shard builds one complete cube per disjoint fact partition);
/// each query verb is scattered to ONE replica of EVERY shard, the
/// per-shard partial relations are gathered and re-aggregated with the
/// cube's own distributive merge semantics (SUM/COUNT/MIN/MAX Combine), and
/// the merged relation — bit-identical to a single-node cube over the whole
/// fact table, including the order-independent checksum — is returned to
/// the client in the same line protocol cure_serve speaks.
///
/// Replica pick is staleness-aware: health probes read each backend's STATS
/// gauges and the router prefers, per shard, the healthy replica with the
/// highest cube_version, breaking ties by lowest staleness_seconds, then
/// round-robin. Failure handling follows the storage-fault taxonomy:
/// transport failures and backend IOError retry on the next replica;
/// DataLoss permanently ejects the replica (health probes do not restore
/// it); deterministic request errors (InvalidArgument, NotFound, ...) are
/// returned to the client without failover.
class CureRouter {
 public:
  /// Re-encodes a dimension string emitted by a backend into its code at
  /// (dim, level) — the inverse of TcpLineServer::ValueDecoder. Codes parse
  /// numerically when absent (cubes without dictionaries).
  using ValueEncoder =
      std::function<Result<uint32_t>(int dim, int level, const std::string& value)>;
  /// Decodes a code for client row output, exactly as the backends do.
  using ValueDecoder =
      std::function<std::string(int dim, int level, uint32_t code)>;

  /// `schema` must match the backends' cube schema (cure_tool shard writes
  /// it next to the shard map) and must outlive the router.
  static Result<std::unique_ptr<CureRouter>> Create(
      const schema::CubeSchema* schema, ShardMap map,
      const RouterOptions& options, ValueEncoder encoder = nullptr,
      ValueDecoder decoder = nullptr);

  ~CureRouter();

  CureRouter(const CureRouter&) = delete;
  CureRouter& operator=(const CureRouter&) = delete;

  /// Executes one protocol line and returns the full response (including
  /// the terminating ".\n"). Thread-safe — the LineTransport front end
  /// calls this from one thread per client connection.
  ///
  /// Verbs: QUERY/ICEBERG/SLICE (scattered; responses read
  /// "OK <count> <checksum-hex> SCATTER trace=<id>" plus merged rows),
  /// ROLLUP/DRILL (the navigation step is resolved HERE on the lattice,
  /// then scattered as a plain query; the landed node is echoed as a
  /// trailing `node=<spec>` header token), TOPK (scattered as the full
  /// query — top-k membership is not per-shard-decidable — and selected
  /// after the merge, like MINSUP), BATCH (the whole line is forwarded to
  /// every shard in one round trip and each section merged independently;
  /// sections read "= <spec> <count> <checksum-hex> SCATTER"), PROFILE
  /// (wraps QUERY/ICEBERG/SLICE/ROLLUP/DRILL/TOPK; re-runs it with
  /// `profile=1` on every backend line and answers with the cluster
  /// profile — per-shard attempt log plus backend stage breakdowns —
  /// instead of rows; see profile.h), STATS, METRICS (Prometheus,
  /// cure_router_ prefix; `METRICS cluster` additionally scrapes every
  /// serving replica and appends the federated shard/replica-labelled
  /// exposition — see federation.h), SLOWLOG (the slow-query ring,
  /// newest first), HEALTH (one line per replica: "shard <s> replica <r>
  /// <addr> <UP|DOWN|EJECTED> version=<v> staleness=<s>").
  std::string HandleLine(const std::string& line);

  /// Probes every non-ejected replica's STATS once, updating health and
  /// freshness. Called by the background thread when enabled.
  void ProbeHealth();

  const ShardMap& shard_map() const { return map_; }
  MetricsRegistry* metrics() { return &metrics_; }

  /// STATS body: registry text plus the per-backend latency histograms
  /// merged into one cluster-wide histogram (backend_all_latency_*).
  std::string StatsText() const;
  /// Prometheus exposition with the cure_router_ prefix. Breaker state is
  /// published as ONE series with shard/replica labels
  /// (cure_router_breaker_state{shard="s",replica="r"}: 0 = closed,
  /// 1 = half-open, 2 = open) instead of a metric name per replica.
  std::string PrometheusText() const;
  /// `METRICS cluster` body: the router's own exposition plus a federated
  /// scrape of every serving replica (see MetricsFederator).
  std::string ClusterMetricsText();

  SlowQueryLog* slowlog() { return &slowlog_; }

  /// ---- Test seams ----
  /// Overrides a replica's freshness (and marks it healthy) so replica-pick
  /// tests don't need live backends.
  void OverrideReplicaFreshnessForTest(int shard, int replica,
                                       uint64_t version, double staleness);
  /// The replica order the picker would try for `shard` right now.
  std::vector<int> ReplicaOrderForTest(int shard);

 private:
  /// Per-replica serving state, guarded by mu_.
  struct ReplicaState {
    bool healthy = true;   ///< optimistic until a probe or query says otherwise
    bool ejected = false;  ///< DataLoss tombstone; never cleared
    uint64_t cube_version = 0;
    double staleness_seconds = 0;
    /// Circuit breaker (closed → open → half-open → closed): consecutive
    /// failover-class failures since the last success, and the steady-clock
    /// instant the open state expires (0 = closed; past = half-open).
    int consecutive_failures = 0;
    int64_t open_until_us = 0;
  };

  /// Shared scoreboard between QueryShard's event loop and its (detached)
  /// attempt threads; held by shared_ptr so a late loser whose request the
  /// loop already abandoned (deadline, first-wins hedge) self-records
  /// harmlessly.
  struct ShardAttemptState;

  CureRouter(const schema::CubeSchema* schema, ShardMap map,
             const RouterOptions& options, ValueEncoder encoder,
             ValueDecoder decoder);

  /// Scatters `backend_line` to shard `shard` with replica pick, hedging
  /// and failover. OK replies come back verbatim; the Status reflects
  /// either the last transport/IOError (all candidates exhausted or budget
  /// spent), kDeadlineExceeded (client budget gone), or the first
  /// deterministic backend error. `deadline_us` is the absolute
  /// steady-clock deadline in microseconds (0 = none); each attempt is sent
  /// with the REMAINING budget so retries spend one client budget.
  /// When `profile` is non-null, every replica attempt is recorded into it
  /// (launch/end offsets relative to `profile_base_us`, kind, outcome) and
  /// the winner's "% " profile lines are copied over.
  Result<BackendReply> QueryShard(int shard, const std::string& backend_line,
                                  int64_t deadline_us,
                                  ShardProfile* profile = nullptr,
                                  int64_t profile_base_us = 0);

  /// Candidate replica order for a shard (see class comment). Breaker-aware:
  /// healthy closed-breaker replicas (freshness-sorted) first, then
  /// half-open probe candidates, then suspects, then open-breaker replicas
  /// as last resort.
  std::vector<int> PickOrder(int shard);

  /// The hedge delay in effect right now, in seconds; < 0 = disabled.
  double HedgeDelaySeconds() const;

  /// Cheap thread-safe uniform [0, 1) for backoff jitter.
  double NextJitter();

  /// Breaker + health bookkeeping for a query outcome on (shard, replica).
  void RecordBackendSuccess(int shard, int replica);
  void RecordBackendFailure(int shard, int replica);

  /// Scatters `backend_line` to every shard (one pool task per shard, each
  /// picking its own replica with failover). A non-null `profile` collects
  /// the per-shard attempt logs (its `shards` vector is filled here).
  std::vector<Result<BackendReply>> Scatter(const std::string& backend_line,
                                            int64_t deadline_us,
                                            ClusterProfile* profile = nullptr,
                                            int64_t profile_base_us = 0);

  /// True when a shard error is eligible for partial-result degradation
  /// (the shard is unavailable, not the request malformed).
  static bool PartialEligible(StatusCode code);

  /// The grouped (dim, level) columns of a node, in dimension order — the
  /// shape of its result rows.
  std::vector<std::pair<int, int>> GroupedColumns(schema::NodeId node) const;

  /// Re-encodes one shard's decoded rows and folds them into `merger`.
  Status MergeShardRows(int shard, const std::vector<std::string>& rows,
                        const std::vector<std::pair<int, int>>& columns,
                        PartialMerger* merger) const;

  /// Dictionary-decoded tab-separated lines for merged rows.
  std::string FormatRowsText(
      const std::vector<query::ResultSink::Row>& rows,
      const std::vector<std::pair<int, int>>& columns) const;

  /// Scatter + gather + post-merge iceberg for one node query; the merged,
  /// deterministic relation lands in `sink` (retained rows). With
  /// allow_partial, failover-class shard errors are skipped and
  /// `*shards_ok` reports how many shards were merged (== num_shards when
  /// complete); a query where EVERY shard failed still errors.
  Status ScatterGather(schema::NodeId node, const std::string& backend_line,
                       int64_t min_count, int64_t deadline_us,
                       query::ResultSink* sink,
                       std::vector<std::pair<int, int>>* columns,
                       int* shards_ok, ClusterProfile* profile = nullptr,
                       int64_t profile_base_us = 0);

  /// The query handlers optionally fill a ClusterProfile: a non-null
  /// `profile` switches the backend lines to `profile=1` and records the
  /// router's own stage timings alongside the attempt logs. The returned
  /// response text is unchanged — HandleProfile discards the rows and
  /// renders the profile instead.
  std::string HandleQuery(const std::vector<std::string>& tokens,
                          const std::string& cmd,
                          ClusterProfile* profile = nullptr);
  std::string HandleNavigate(const std::vector<std::string>& tokens,
                             const std::string& cmd,
                             ClusterProfile* profile = nullptr);
  std::string HandleTopK(const std::vector<std::string>& tokens,
                         ClusterProfile* profile = nullptr);
  std::string HandleBatch(const std::vector<std::string>& tokens);
  /// PROFILE <cmd>...: cluster-wide EXPLAIN ANALYZE (see HandleLine doc).
  std::string HandleProfile(const std::vector<std::string>& tokens);
  std::string HealthText();
  /// Records one finished query into the slow-query ring when it exceeded
  /// the configured threshold.
  void MaybeRecordSlow(const char* verb, uint64_t trace_id, int64_t total_us,
                       int shards_ok, const Status& status);
  void UpdateDerivedMetrics() const;
  /// Merges every per-backend latency histogram into `out` (stack-local
  /// cluster view; avoids double-accumulation in the registry).
  void MergeBackendLatency(LogHistogram* out) const;

  const schema::CubeSchema* schema_;
  schema::NodeIdCodec codec_;
  ShardMap map_;
  RouterOptions options_;
  ValueEncoder encoder_;
  ValueDecoder decoder_;
  BackendClient client_;
  int count_aggregate_ = -1;

  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mu_;
  std::vector<std::vector<ReplicaState>> replicas_;  ///< [shard][replica]
  std::vector<uint64_t> rr_;                         ///< round-robin cursors

  // mutable: StatsText()/PrometheusText() sample gauges before rendering.
  mutable MetricsRegistry metrics_;
  SlowQueryLog slowlog_;
  Counter* queries_total_;
  Counter* queries_errors_;
  Counter* backend_rpcs_total_;
  Counter* backend_retries_total_;
  Counter* replicas_ejected_total_;
  Counter* health_probes_total_;
  Counter* health_probe_failures_total_;
  Counter* hedges_total_;
  Counter* retries_total_;
  Counter* partial_total_;
  Counter* breaker_trips_total_;
  LogHistogram* query_latency_us_;
  /// Per-backend call latency, indexed like the shard map; registry-owned,
  /// named backend_s<shard>_r<replica>_latency.
  std::vector<std::vector<LogHistogram*>> backend_latency_;

  /// Detached attempt threads still in flight (hedges and abandoned
  /// deadline losers outlive their QueryShard call); the destructor waits
  /// for zero before tearing down members those threads touch.
  mutable std::mutex attempts_mu_;
  mutable std::condition_variable attempts_cv_;
  int outstanding_attempts_ = 0;
  std::atomic<uint64_t> jitter_state_{0x9e3779b97f4a7c15ull};

  std::thread health_thread_;
  std::mutex health_mu_;
  std::condition_variable health_cv_;
  bool stopping_ = false;
};

}  // namespace router
}  // namespace cure

#endif  // CURE_ROUTER_ROUTER_H_
