#ifndef CURE_ROUTER_BACKEND_CLIENT_H_
#define CURE_ROUTER_BACKEND_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "router/shard_map.h"

namespace cure {
namespace router {

/// One backend's answer to a QUERY/ICEBERG/SLICE line, parsed from the
/// protocol framing:
///   OK <count> <checksum-hex> <HIT|MISS> trace=<id>\n <rows...> .\n
///   ERR <CodeName> <message>\n .\n
struct BackendReply {
  /// OK, or the backend's error mapped back onto its StatusCode (an
  /// unrecognized code name maps to kInternal). Transport failures
  /// (connect/read/write/timeout) surface as kIoError from the caller's
  /// point of view, exactly like a backend-reported IOError — both mean
  /// "try another replica".
  Status status;
  uint64_t count = 0;
  uint64_t checksum = 0;
  uint64_t trace_id = 0;
  bool cache_hit = false;
  /// Tab-separated body rows, one per result row, dictionary-decoded by the
  /// backend (dims as strings, aggregates as decimal int64).
  std::vector<std::string> rows;
};

/// Freshness probe result parsed from a backend's STATS body.
struct BackendFreshness {
  /// maintain section's cube_version gauge; 0 for a static cube (which is
  /// never stale).
  uint64_t cube_version = 0;
  double staleness_seconds = 0;
};

/// Blocking one-shot line-protocol client for cure_serve backends. Each
/// call opens a fresh connection, sends one command followed by QUIT, and
/// reads until the ".\n" terminator. Connections are not pooled — the
/// router's scatter path opens one per (shard, attempt), which keeps
/// failover trivially correct (no half-dead pooled sockets) at loopback
/// latencies far below a query's execution cost.
class BackendClient {
 public:
  /// `timeout_seconds` bounds connect, each send and each receive
  /// individually (SO_SNDTIMEO/SO_RCVTIMEO); 0 = no timeout.
  explicit BackendClient(double timeout_seconds = 5.0)
      : timeout_seconds_(timeout_seconds) {}

  /// Sends `line` and returns the raw response text up to and excluding the
  /// ".\n" terminator. kIoError on any transport failure.
  Result<std::string> RoundTrip(const BackendAddress& addr,
                                const std::string& line) const;

  /// Sends a query verb line and parses the framed reply. The outer Result
  /// is the transport layer; reply.status is the backend's verdict.
  Result<BackendReply> Query(const BackendAddress& addr,
                             const std::string& line) const;

  /// STATS round trip, parsed into the freshness gauges the replica-pick
  /// policy needs. Doubles as the health probe: an error means the backend
  /// is unreachable.
  Result<BackendFreshness> ProbeStats(const BackendAddress& addr) const;

 private:
  double timeout_seconds_;
};

/// Parses "OK <count> <checksum-hex> <HIT|MISS> trace=<id>" + body rows or
/// "ERR <CodeName> <message>" into a BackendReply. Exposed for tests.
BackendReply ParseBackendReply(const std::string& response);

}  // namespace router
}  // namespace cure

#endif  // CURE_ROUTER_BACKEND_CLIENT_H_
