#ifndef CURE_ROUTER_BACKEND_CLIENT_H_
#define CURE_ROUTER_BACKEND_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "router/shard_map.h"

namespace cure {
namespace router {

/// One backend's answer to a query verb line, parsed from the protocol
/// framing:
///   OK <count> <checksum-hex> <token> trace=<id>\n <rows...> .\n
///   ERR <CodeName> <message>\n .\n
/// where <token> is HIT | SEMANTIC | MISS (cure_serve) or SCATTER / BATCH
/// (a downstream router).
struct BackendReply {
  /// OK, or the backend's error mapped back onto its StatusCode (an
  /// unrecognized code name maps to kInternal). Transport failures
  /// (connect/read/write/timeout) surface as kIoError from the caller's
  /// point of view, exactly like a backend-reported IOError — both mean
  /// "try another replica".
  Status status;
  uint64_t count = 0;
  uint64_t checksum = 0;
  uint64_t trace_id = 0;
  bool cache_hit = false;
  /// Tab-separated body rows, one per result row, dictionary-decoded by the
  /// backend (dims as strings, aggregates as decimal int64). For a BATCH
  /// reply this includes the "= ..." section header lines.
  std::vector<std::string> rows;
  /// Profile annotations the backend attached when the request carried
  /// `profile=1` — body lines prefixed "% " ("% profile ..." stage
  /// breakdown, "% span ..." tracer events), diverted out of `rows` so row
  /// merging and checksum verification never see them.
  std::vector<std::string> profile_lines;
};

/// Freshness probe result parsed from a backend's STATS body.
struct BackendFreshness {
  /// maintain section's cube_version gauge; 0 for a static cube (which is
  /// never stale).
  uint64_t cube_version = 0;
  double staleness_seconds = 0;
};

/// Blocking line-protocol client for cure_serve backends with per-address
/// connection pooling. A round trip checks the pool for an idle connection
/// to the address first; on miss it connects fresh. The command is sent
/// WITHOUT a trailing QUIT (the server keeps the connection open between
/// lines), the response is read up to the ".\n" terminator, and the healthy
/// connection is returned to the pool. Failover stays correct: any
/// transport error closes the connection instead of pooling it, and a
/// reused connection that dies before yielding a single response byte (the
/// server restarted or reaped it) is retried ONCE on a fresh connection —
/// a request that already produced bytes is never resent.
///
/// Timeout taxonomy (DESIGN.md §16): a connect or receive that runs out of
/// time — including a timeout striking mid-response — is classified
/// kDeadlineExceeded (with the endpoint and bytes-read in the message);
/// refused/reset/closed connections are kIoError. Both are failover-class
/// for the router, but only deadline errors should charge a caller's
/// deadline budget.
class BackendClient {
 public:
  /// `timeout_seconds` bounds connect, each send and each receive
  /// individually (connect via non-blocking connect + poll, send/receive
  /// via SO_SNDTIMEO/SO_RCVTIMEO); 0 = no timeout.
  /// `idle_timeout_seconds` discards pooled connections idle longer than
  /// this on acquire (they are likely server-side reaped); 0 = keep
  /// forever.
  explicit BackendClient(double timeout_seconds = 5.0,
                         double idle_timeout_seconds = 30.0)
      : timeout_seconds_(timeout_seconds),
        idle_timeout_seconds_(idle_timeout_seconds) {}

  /// Closes every pooled connection.
  ~BackendClient();

  BackendClient(const BackendClient&) = delete;
  BackendClient& operator=(const BackendClient&) = delete;

  /// Sends `line` and returns the raw response text up to and excluding the
  /// ".\n" terminator. kIoError on any transport failure, kDeadlineExceeded
  /// on a timeout. `deadline_seconds` > 0 tightens the per-op timeout to
  /// min(timeout, deadline) for this call only — how the router spends one
  /// client budget across retries instead of multiplying timeouts.
  Result<std::string> RoundTrip(const BackendAddress& addr,
                                const std::string& line,
                                double deadline_seconds = 0) const;

  /// Sends a query verb line and parses the framed reply. The outer Result
  /// is the transport layer; reply.status is the backend's verdict.
  Result<BackendReply> Query(const BackendAddress& addr,
                             const std::string& line,
                             double deadline_seconds = 0) const;

  /// STATS round trip, parsed into the freshness gauges the replica-pick
  /// policy needs. Doubles as the health probe: an error means the backend
  /// is unreachable.
  Result<BackendFreshness> ProbeStats(const BackendAddress& addr) const;

  struct PoolStats {
    uint64_t connects = 0;       ///< fresh TCP connects
    uint64_t reuses = 0;         ///< round trips served by a pooled connection
    uint64_t discards_idle = 0;  ///< pooled connections dropped as too idle
    uint64_t retries_stale = 0;  ///< reused connections found dead, retried
    uint64_t open = 0;           ///< connections sitting in the pool now
  };
  PoolStats pool_stats() const;

 private:
  struct PooledConn {
    int fd = -1;
    int64_t last_used_us = 0;
  };

  /// Pops a pooled connection for `key`, discarding idle-expired ones;
  /// -1 when the pool has none.
  int AcquirePooled(const std::string& key) const;
  /// Returns a healthy connection to the pool (bounded per backend; the
  /// oldest connection is closed when full).
  void ReleasePooled(const std::string& key, int fd) const;

  double timeout_seconds_;
  double idle_timeout_seconds_;

  // The pool is logically an optimization invisible to callers, so the
  // round-trip methods stay const.
  mutable std::mutex pool_mu_;
  mutable std::map<std::string, std::vector<PooledConn>> pool_;
  mutable std::atomic<uint64_t> connects_{0};
  mutable std::atomic<uint64_t> reuses_{0};
  mutable std::atomic<uint64_t> discards_idle_{0};
  mutable std::atomic<uint64_t> retries_stale_{0};
};

/// Parses "OK <count> <checksum-hex> <token> trace=<id>" + body rows or
/// "ERR <CodeName> <message>" into a BackendReply. Exposed for tests.
BackendReply ParseBackendReply(const std::string& response);

}  // namespace router
}  // namespace cure

#endif  // CURE_ROUTER_BACKEND_CLIENT_H_
