#include "router/federation.h"

#include <sstream>

#include "common/metrics.h"

namespace cure {
namespace router {

bool RelabelSampleLine(const std::string& line, int shard, int replica,
                       std::string* name, std::string* relabeled) {
  // Split off the value at the LAST space: label values may contain spaces,
  // the value never does.
  const size_t value_at = line.find_last_of(' ');
  if (value_at == std::string::npos || value_at == 0 ||
      value_at + 1 >= line.size()) {
    return false;
  }
  const std::string series = line.substr(0, value_at);
  const std::string value = line.substr(value_at + 1);
  const std::string inject = "shard=\"" + std::to_string(shard) +
                             "\",replica=\"" + std::to_string(replica) + "\"";
  const size_t brace = series.find('{');
  std::string parsed_name =
      brace == std::string::npos ? series : series.substr(0, brace);
  if (parsed_name.empty() || !IsValidMetricName(parsed_name)) return false;
  std::string out;
  if (brace == std::string::npos) {
    out = series + "{" + inject + "} " + value;
  } else {
    // Existing labels: splice ours in right after the '{'.
    out = series.substr(0, brace + 1) + inject + "," +
          series.substr(brace + 1) + " " + value;
  }
  if (name != nullptr) *name = std::move(parsed_name);
  if (relabeled != nullptr) *relabeled = std::move(out);
  return true;
}

void MetricsFederator::AddBackend(int shard, int replica,
                                  const std::string& exposition) {
  ++scraped_;
  std::istringstream in(exposition);
  std::string line;
  std::string pending_type_name, pending_type;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.rfind("# BUCKETS ", 0) == 0) {
      std::string bucket_name;
      LogHistogram::Snapshot snapshot;
      if (ParseHistogramBuckets(line, &bucket_name, &snapshot)) {
        auto [it, inserted] = merged_.try_emplace(bucket_name);
        if (inserted) it->second = std::make_unique<LogHistogram>();
        it->second->Merge(snapshot);
      }
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      fields >> pending_type_name >> pending_type;
      continue;
    }
    if (line[0] == '#') continue;
    std::string metric_name, relabeled;
    if (!RelabelSampleLine(line, shard, replica, &metric_name, &relabeled)) {
      continue;
    }
    MetricGroup& group = groups_[metric_name];
    if (group.type.empty() && metric_name == pending_type_name) {
      group.type = pending_type;
    }
    group.samples += relabeled;
    group.samples += '\n';
  }
}

void MetricsFederator::AddUnreachable(int shard, int replica,
                                      const std::string& address,
                                      const std::string& error) {
  ++failed_;
  std::string note = error;
  for (char& c : note) {
    if (c == '\n') c = ' ';
  }
  notes_ += "# backend shard=" + std::to_string(shard) +
            " replica=" + std::to_string(replica) + " " + address +
            " unreachable: " + note + "\n";
}

std::string MetricsFederator::Render() const {
  std::string out = "# cluster federation: scraped=" +
                    std::to_string(scraped_) +
                    " failed=" + std::to_string(failed_) + "\n";
  for (const auto& [name, group] : groups_) {
    if (!group.type.empty()) {
      out += "# TYPE " + name + " " + group.type + "\n";
    }
    out += group.samples;
  }
  for (const auto& [name, histogram] : merged_) {
    // cure_serve_query_latency_us -> cure_cluster_query_latency_us; a name
    // without the serve prefix keeps itself under the cluster namespace.
    static constexpr char kServePrefix[] = "cure_serve_";
    const std::string cluster_name =
        name.rfind(kServePrefix, 0) == 0
            ? "cure_cluster_" + name.substr(sizeof(kServePrefix) - 1)
            : "cure_cluster_" + name;
    AppendPrometheusHistogram(cluster_name, *histogram, &out);
  }
  out += notes_;
  return out;
}

}  // namespace router
}  // namespace cure
