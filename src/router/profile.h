#ifndef CURE_ROUTER_PROFILE_H_
#define CURE_ROUTER_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cure {
namespace router {

/// Cluster query profile model — the router-side half of distributed query
/// profiling (DESIGN.md §17). The PROFILE verb re-runs a wrapped query with
/// `profile=1` on every backend line, records every replica attempt against
/// the query's own timeline, and merges the backends' stage breakdowns with
/// the router's scatter/merge timings into one ClusterProfile. The profile
/// renders as machine-parseable text (the PROFILE reply body) and exports
/// as a Chrome/Perfetto trace with one track per backend, each aligned to
/// the router's attempt timeline.

/// One replica attempt inside a shard's scatter: when it launched and ended
/// relative to the query start, and how it fared.
struct AttemptRecord {
  int replica = 0;
  /// "primary" (first launch), "retry" (sequential relaunch after failure)
  /// or "hedge" (speculative duplicate of a slow primary).
  std::string kind = "primary";
  /// "won" (first OK answer), "failover" (failed, another replica tried),
  /// "data-loss" (ejected), "fail-fast" (deterministic error returned),
  /// "lost" (still in flight when the shard resolved — a hedge loser or a
  /// deadline-abandoned attempt) or "breaker-skip" (never launched because
  /// its breaker was open and a healthier replica answered first).
  std::string outcome = "lost";
  /// Microseconds from query start; end_us == 0 for attempts that never
  /// produced a result before the shard resolved (lost / breaker-skip).
  int64_t launch_us = 0;
  int64_t end_us = 0;
};

/// Per-shard view: the attempt log plus the winning backend's "% " profile
/// lines ("% profile ..." stage breakdown, "% span ..." tracer events).
struct ShardProfile {
  int shard = 0;
  bool ok = false;
  std::vector<AttemptRecord> attempts;
  std::vector<std::string> backend_lines;
};

/// The merged cluster-level profile for one routed query.
struct ClusterProfile {
  uint64_t trace_id = 0;
  /// The wrapped command as received (e.g. "QUERY city,sku").
  std::string command;
  uint64_t result_count = 0;
  uint64_t result_checksum = 0;
  int shards_total = 0;
  int shards_ok = 0;
  /// Router stage timings in microseconds: whole handler, the scatter
  /// (launch through last gather), and the row merge.
  int64_t total_us = 0;
  int64_t scatter_us = 0;
  int64_t merge_us = 0;
  std::vector<ShardProfile> shards;
};

/// Stage durations parsed out of a backend's "% profile ..." line.
struct BackendStageBreakdown {
  bool valid = false;
  int64_t queue_wait_us = 0;
  int64_t key_us = 0;
  int64_t cache_us = 0;
  int64_t execute_us = 0;
  int64_t encode_us = 0;
  int64_t total_us = 0;
  std::string cache;  ///< HIT | SEMANTIC | MISS
};
BackendStageBreakdown ParseBackendProfileLine(const std::string& line);

/// Renders the PROFILE reply body (everything between the OK header and the
/// "." terminator). Line-oriented and diff-stable:
///   command <cmd...>
///   cluster shards=<n> shards_ok=<k> total_us=<t> scatter_us=<s>
///           merge_us=<m> count=<c> checksum=<hex>      (one line)
///   shard <s> ok=<0|1> attempts=<n>
///   shard <s> attempt replica=<r> kind=<k> outcome=<o> launch_us=<l>
///           end_us=<e>                                 (one line each)
///   shard <s> % profile ... / shard <s> % span ...     (backend lines)
std::string FormatClusterProfile(const ClusterProfile& profile);

/// Parses a FormatClusterProfile body back into the model (how cure_tool
/// turns a PROFILE reply into a Chrome trace). Unknown lines are skipped;
/// returns false only when no "cluster" summary line is present.
bool ParseClusterProfile(const std::string& text, ClusterProfile* profile);

/// Serializes the profile as Chrome trace JSON (validates under
/// ValidateChromeTrace): a router track carrying the query/scatter/merge
/// spans, plus one track per shard carrying its attempt spans and the
/// winning backend's stage spans laid out from that attempt's launch
/// offset — every track shares the query-start origin, so backend work
/// lines up under the router timeline in the viewer.
std::string ClusterProfileToChromeTrace(const ClusterProfile& profile);

}  // namespace router
}  // namespace cure

#endif  // CURE_ROUTER_PROFILE_H_
