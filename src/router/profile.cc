#include "router/profile.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cure {
namespace router {

namespace {

/// Returns the value of `key=` in a space-tokenized line, or "" if absent.
/// Keys match whole tokens only, so `execute_us=` never matches a span name
/// that happens to contain the substring.
std::string TokenValue(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token.rfind(needle, 0) == 0) return token.substr(needle.size());
  }
  return std::string();
}

int64_t TokenInt64(const std::string& line, const std::string& key) {
  const std::string value = TokenValue(line, key);
  if (value.empty()) return 0;
  return std::strtoll(value.c_str(), nullptr, 10);
}

/// JSON string escaping for the Chrome trace export (quotes, backslash,
/// control characters).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendCompleteEvent(std::string* out, bool* first,
                         const std::string& name, int64_t ts_us,
                         int64_t dur_us, int tid, const std::string& args) {
  if (!*first) *out += ",\n";
  *first = false;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
                ",\"pid\":1,\"tid\":%d",
                ts_us, dur_us < 0 ? 0 : dur_us, tid);
  *out += "{\"name\":\"" + JsonEscape(name) + "\"," + buf;
  if (!args.empty()) *out += ",\"args\":{" + args + "}";
  *out += "}";
}

void AppendThreadName(std::string* out, bool* first, int tid,
                      const std::string& name) {
  if (!*first) *out += ",\n";
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"ts\":0,\"pid\":1,\"tid\":%d", tid);
  *out += "{\"name\":\"thread_name\",\"ph\":\"M\"," + std::string(buf) +
          ",\"args\":{\"name\":\"" + JsonEscape(name) + "\"}}";
}

}  // namespace

BackendStageBreakdown ParseBackendProfileLine(const std::string& line) {
  BackendStageBreakdown stages;
  if (line.find("% profile ") == std::string::npos) return stages;
  stages.valid = true;
  stages.queue_wait_us = TokenInt64(line, "queue_wait_us");
  stages.key_us = TokenInt64(line, "key_us");
  stages.cache_us = TokenInt64(line, "cache_us");
  stages.execute_us = TokenInt64(line, "execute_us");
  stages.encode_us = TokenInt64(line, "encode_us");
  stages.total_us = TokenInt64(line, "total_us");
  stages.cache = TokenValue(line, "cache");
  return stages;
}

std::string FormatClusterProfile(const ClusterProfile& profile) {
  std::string out = "command " + profile.command + "\n";
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "cluster shards=%d shards_ok=%d total_us=%" PRId64
                " scatter_us=%" PRId64 " merge_us=%" PRId64
                " count=%llu checksum=%016llx trace=%llu\n",
                profile.shards_total, profile.shards_ok, profile.total_us,
                profile.scatter_us, profile.merge_us,
                static_cast<unsigned long long>(profile.result_count),
                static_cast<unsigned long long>(profile.result_checksum),
                static_cast<unsigned long long>(profile.trace_id));
  out += buf;
  for (const ShardProfile& shard : profile.shards) {
    std::snprintf(buf, sizeof(buf), "shard %d ok=%d attempts=%zu\n",
                  shard.shard, shard.ok ? 1 : 0, shard.attempts.size());
    out += buf;
    for (const AttemptRecord& attempt : shard.attempts) {
      std::snprintf(buf, sizeof(buf),
                    "shard %d attempt replica=%d kind=%s outcome=%s "
                    "launch_us=%" PRId64 " end_us=%" PRId64 "\n",
                    shard.shard, attempt.replica, attempt.kind.c_str(),
                    attempt.outcome.c_str(), attempt.launch_us,
                    attempt.end_us);
      out += buf;
    }
    for (const std::string& line : shard.backend_lines) {
      out += "shard " + std::to_string(shard.shard) + " " + line + "\n";
    }
  }
  return out;
}

bool ParseClusterProfile(const std::string& text, ClusterProfile* profile) {
  ClusterProfile parsed;
  bool saw_cluster = false;
  std::istringstream in(text);
  std::string line;
  auto shard_at = [&parsed](int s) -> ShardProfile* {
    for (ShardProfile& shard : parsed.shards) {
      if (shard.shard == s) return &shard;
    }
    parsed.shards.emplace_back();
    parsed.shards.back().shard = s;
    return &parsed.shards.back();
  };
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.rfind("command ", 0) == 0) {
      parsed.command = line.substr(8);
      continue;
    }
    if (line.rfind("cluster ", 0) == 0) {
      saw_cluster = true;
      parsed.shards_total = static_cast<int>(TokenInt64(line, "shards"));
      parsed.shards_ok = static_cast<int>(TokenInt64(line, "shards_ok"));
      parsed.total_us = TokenInt64(line, "total_us");
      parsed.scatter_us = TokenInt64(line, "scatter_us");
      parsed.merge_us = TokenInt64(line, "merge_us");
      parsed.result_count =
          static_cast<uint64_t>(TokenInt64(line, "count"));
      parsed.result_checksum =
          std::strtoull(TokenValue(line, "checksum").c_str(), nullptr, 16);
      parsed.trace_id = static_cast<uint64_t>(TokenInt64(line, "trace"));
      continue;
    }
    if (line.rfind("shard ", 0) != 0) continue;
    std::istringstream fields(line);
    std::string marker, rest;
    int s = 0;
    if (!(fields >> marker >> s)) continue;
    ShardProfile* shard = shard_at(s);
    if (!(fields >> rest)) continue;
    if (rest == "attempt") {
      AttemptRecord attempt;
      attempt.replica = static_cast<int>(TokenInt64(line, "replica"));
      attempt.kind = TokenValue(line, "kind");
      attempt.outcome = TokenValue(line, "outcome");
      attempt.launch_us = TokenInt64(line, "launch_us");
      attempt.end_us = TokenInt64(line, "end_us");
      shard->attempts.push_back(std::move(attempt));
    } else if (rest == "%") {
      // Re-create the backend line without the "shard <s> " prefix.
      const size_t percent = line.find(" % ");
      if (percent != std::string::npos) {
        shard->backend_lines.push_back(line.substr(percent + 1));
      }
    } else if (rest.rfind("ok=", 0) == 0) {
      shard->ok = rest == "ok=1";
    }
  }
  if (!saw_cluster) return false;
  if (profile != nullptr) *profile = std::move(parsed);
  return true;
}

std::string ClusterProfileToChromeTrace(const ClusterProfile& profile) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  AppendThreadName(&out, &first, 0, "cure_router");
  const std::string query_args =
      "\"trace_id\":" + std::to_string(profile.trace_id) +
      ",\"shards_ok\":" + std::to_string(profile.shards_ok) +
      ",\"command\":\"" + JsonEscape(profile.command) + "\"";
  AppendCompleteEvent(&out, &first, "cure.router.profile_query", 0,
                      profile.total_us, 0, query_args);
  AppendCompleteEvent(&out, &first, "cure.router.scatter", 0,
                      profile.scatter_us, 0, "");
  AppendCompleteEvent(&out, &first, "cure.router.merge", profile.scatter_us,
                      profile.merge_us, 0, "");

  for (const ShardProfile& shard : profile.shards) {
    const int tid = 1 + shard.shard;
    AppendThreadName(&out, &first, tid,
                     "shard " + std::to_string(shard.shard));
    int64_t win_launch_us = 0;
    bool has_winner = false;
    for (const AttemptRecord& attempt : shard.attempts) {
      // A lost attempt has no recorded end; show it running until the
      // query resolved rather than as a zero-width sliver.
      const int64_t dur = attempt.end_us > attempt.launch_us
                              ? attempt.end_us - attempt.launch_us
                              : (attempt.outcome == "lost"
                                     ? profile.total_us - attempt.launch_us
                                     : 0);
      const std::string args =
          "\"replica\":" + std::to_string(attempt.replica) + ",\"kind\":\"" +
          JsonEscape(attempt.kind) + "\",\"outcome\":\"" +
          JsonEscape(attempt.outcome) + "\"";
      AppendCompleteEvent(&out, &first, "cure.router.attempt",
                          attempt.launch_us, dur, tid, args);
      if (attempt.outcome == "won" && !has_winner) {
        has_winner = true;
        win_launch_us = attempt.launch_us;
      }
    }
    if (!has_winner) continue;

    // The winning backend's stage spans, laid out sequentially from the
    // attempt's launch offset (the serve pipeline IS sequential:
    // queue wait -> key -> cache -> execute -> encode).
    for (const std::string& line : shard.backend_lines) {
      const BackendStageBreakdown stages = ParseBackendProfileLine(line);
      if (!stages.valid) continue;
      int64_t cursor = win_launch_us;
      const struct {
        const char* name;
        int64_t dur;
      } spans[] = {{"cure.serve.queue_wait", stages.queue_wait_us},
                   {"cure.serve.key", stages.key_us},
                   {"cure.serve.cache", stages.cache_us},
                   {"cure.serve.execute", stages.execute_us},
                   {"cure.serve.encode", stages.encode_us}};
      const std::string args =
          "\"replica\":0,\"cache\":\"" + JsonEscape(stages.cache) + "\"";
      for (const auto& span : spans) {
        AppendCompleteEvent(&out, &first, span.name, cursor, span.dur, tid,
                            span.name == std::string("cure.serve.cache")
                                ? args
                                : std::string());
        cursor += span.dur < 0 ? 0 : span.dur;
      }
      break;  // one stage breakdown per shard
    }

    // Raw backend tracer spans, re-based so the earliest one starts at the
    // winning attempt's launch offset (backend clocks share no epoch with
    // the router; relative alignment is the honest mapping).
    int64_t min_ts = 0;
    bool saw_span = false;
    for (const std::string& line : shard.backend_lines) {
      if (line.find("% span ") == std::string::npos) continue;
      const int64_t ts = TokenInt64(line, "ts_us");
      if (!saw_span || ts < min_ts) min_ts = ts;
      saw_span = true;
    }
    for (const std::string& line : shard.backend_lines) {
      if (line.find("% span ") == std::string::npos) continue;
      const std::string name = TokenValue(line, "name");
      if (name.empty()) continue;
      const int64_t ts = TokenInt64(line, "ts_us");
      const int64_t dur = TokenInt64(line, "dur_us");
      AppendCompleteEvent(&out, &first, name,
                          win_launch_us + (ts - min_ts), dur, tid,
                          std::string());
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace router
}  // namespace cure
