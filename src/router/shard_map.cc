#include "router/shard_map.h"

#include <cstdlib>
#include <set>
#include <sstream>

namespace cure {
namespace router {

Result<BackendAddress> ParseBackendAddress(const std::string& text) {
  BackendAddress addr;
  std::string port_text = text;
  const size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    if (colon == 0) {
      return Status::InvalidArgument("backend address '" + text +
                                     "' has an empty host");
    }
    addr.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == port_text.c_str() || *end != '\0' ||
      port <= 0 || port > 65535) {
    return Status::InvalidArgument("backend address '" + text +
                                   "' has an invalid port");
  }
  addr.port = static_cast<int>(port);
  return addr;
}

Status ShardMap::Validate() const {
  if (shards.empty()) {
    return Status::InvalidArgument("shard map has no shards");
  }
  std::set<std::string> seen;
  for (size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].empty()) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " has no replicas");
    }
    for (const BackendAddress& addr : shards[s]) {
      if (!seen.insert(addr.ToString()).second) {
        return Status::InvalidArgument("backend " + addr.ToString() +
                                       " appears twice in the shard map");
      }
    }
  }
  return Status::OK();
}

std::string ShardMap::Serialize() const {
  std::ostringstream out;
  out << "cure-cluster v1\n";
  for (const auto& replicas : shards) {
    out << "shard";
    for (const BackendAddress& addr : replicas) out << ' ' << addr.ToString();
    out << '\n';
  }
  return out.str();
}

Result<ShardMap> ShardMap::Parse(const std::string& text) {
  ShardMap map;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    if (!saw_header) {
      if (line.substr(start) != "cure-cluster v1") {
        return Status::InvalidArgument(
            "shard map must start with 'cure-cluster v1', got '" + line + "'");
      }
      saw_header = true;
      continue;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword != "shard") {
      return Status::InvalidArgument("unknown shard map line '" + line + "'");
    }
    std::vector<BackendAddress> replicas;
    std::string token;
    while (fields >> token) {
      auto addr = ParseBackendAddress(token);
      if (!addr.ok()) return addr.status();
      replicas.push_back(std::move(addr).value());
    }
    map.shards.push_back(std::move(replicas));
  }
  if (!saw_header) {
    return Status::InvalidArgument("shard map missing 'cure-cluster v1' header");
  }
  CURE_RETURN_IF_ERROR(map.Validate());
  return map;
}

}  // namespace router
}  // namespace cure
