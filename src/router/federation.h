#ifndef CURE_ROUTER_FEDERATION_H_
#define CURE_ROUTER_FEDERATION_H_

#include <map>
#include <memory>
#include <string>

#include "common/histogram.h"

namespace cure {
namespace router {

/// Merges per-backend Prometheus expositions into one cluster-wide view —
/// the text half of `METRICS cluster` (DESIGN.md §17). The router scrapes
/// every serving replica's METRICS body and folds each in here:
///
///  - every backend sample is re-emitted with `shard`/`replica` labels
///    added, grouped by metric name with its `# TYPE` header, so one scrape
///    of the router yields the whole cluster's series;
///  - `# BUCKETS` comment lines (AppendHistogramBuckets's wire format) are
///    parsed back into snapshots and merged bucket-exactly via
///    LogHistogram::Merge, then rendered as `cure_cluster_*` summary
///    blocks — cluster quantiles from true bucket merges, not averaged
///    per-backend percentiles;
///  - unreachable backends are recorded as comment lines instead of
///    silently vanishing from the output.
///
/// Pure text-in/text-out, no networking: the router owns the scraping.
class MetricsFederator {
 public:
  /// Folds one backend's Prometheus exposition body in.
  void AddBackend(int shard, int replica, const std::string& exposition);

  /// Records a backend that could not be scraped.
  void AddUnreachable(int shard, int replica, const std::string& address,
                      const std::string& error);

  int backends_scraped() const { return scraped_; }
  int backends_failed() const { return failed_; }

  /// Renders the federated exposition: scrape summary comment, re-labelled
  /// per-backend series grouped by metric, cluster-merged histogram
  /// summaries, unreachable-backend comments.
  std::string Render() const;

 private:
  struct MetricGroup {
    std::string type;     ///< from "# TYPE" (may stay empty)
    std::string samples;  ///< re-labelled sample lines, newline-terminated
  };

  std::map<std::string, MetricGroup> groups_;
  /// Cluster-merged histograms keyed by the backend-side metric name.
  std::map<std::string, std::unique_ptr<LogHistogram>> merged_;
  std::string notes_;
  int scraped_ = 0;
  int failed_ = 0;
};

/// Rewrites one sample line (`name value` or `name{labels} value`) with
/// `shard`/`replica` labels prepended to the label set. Returns false when
/// the line is not a well-formed sample. Exposed for tests.
bool RelabelSampleLine(const std::string& line, int shard, int replica,
                       std::string* name, std::string* relabeled);

}  // namespace router
}  // namespace cure

#endif  // CURE_ROUTER_FEDERATION_H_
