#ifndef CURE_ROUTER_SHARD_MAP_H_
#define CURE_ROUTER_SHARD_MAP_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cure {
namespace router {

/// One cure_serve backend endpoint.
struct BackendAddress {
  std::string host = "127.0.0.1";
  int port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
  bool operator==(const BackendAddress& other) const {
    return host == other.host && port == other.port;
  }
};

/// Parses "host:port" (or a bare port, defaulting the host to 127.0.0.1).
Result<BackendAddress> ParseBackendAddress(const std::string& text);

/// The router's cluster topology: the cube's fact table is split into
/// `num_shards()` disjoint row-range partitions (cure_tool shard), each
/// shard's cube served by one or more replica backends. Every replica of a
/// shard serves the *same* shard cube; replicas exist for read scaling and
/// failover, shards for data scaling.
struct ShardMap {
  /// shards[s] = the replica endpoints of shard s.
  std::vector<std::vector<BackendAddress>> shards;

  int num_shards() const { return static_cast<int>(shards.size()); }
  int num_replicas(int shard) const {
    return static_cast<int>(shards[shard].size());
  }

  /// Non-empty, every shard has at least one replica, no duplicate endpoint
  /// anywhere in the map (one process cannot be two replicas).
  Status Validate() const;

  /// Text form, one `shard <addr> <addr>...` line per shard:
  ///   cure-cluster v1
  ///   shard 127.0.0.1:7101 127.0.0.1:7102
  ///   shard 127.0.0.1:7103 127.0.0.1:7104
  std::string Serialize() const;

  /// Parses the Serialize() format ('#' comments and blank lines ignored)
  /// and validates the result.
  static Result<ShardMap> Parse(const std::string& text);
};

}  // namespace router
}  // namespace cure

#endif  // CURE_ROUTER_SHARD_MAP_H_
