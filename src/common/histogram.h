#ifndef CURE_COMMON_HISTOGRAM_H_
#define CURE_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace cure {

/// Log-bucketed histogram of non-negative int64 values (typically latencies
/// in microseconds). Values 0..15 land in exact buckets; larger values use
/// 16 linear sub-buckets per power-of-two octave, bounding the relative
/// quantile error at 1/16. Record() is wait-free (relaxed atomics, no
/// locks), so the histogram can sit on a concurrent serving hot path; the
/// same class also backs the single-threaded QRT measurements.
class LogHistogram {
 public:
  /// First octave covered by sub-bucketed ranges (values < 2^kExactBits are
  /// stored exactly).
  static constexpr int kExactBits = 4;
  static constexpr int kSubBuckets = 1 << kExactBits;
  /// Octaves 4..62 (values up to 2^63 - 1, clamped).
  static constexpr int kNumBuckets = kSubBuckets + kSubBuckets * (63 - kExactBits);

  LogHistogram() = default;

  /// Adds one observation. Negative values are clamped to 0.
  void Record(int64_t value) {
    if (value < 0) value = 0;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Folds another histogram's observations into this one, bucket by
  /// bucket — the distributed-aggregation analogue of Record(): a router
  /// merges per-backend latency histograms into one cluster-level
  /// distribution whose quantiles carry the same ≤1/16 relative error as
  /// any single histogram (identical bucket boundaries make the merge
  /// exact at the bucket level). Reads `other` with the same point-in-time
  /// semantics as TakeSnapshot(); exact once writers are quiescent.
  void Merge(const LogHistogram& other);

  /// Point-in-time view. Taken bucket by bucket, so a snapshot racing with
  /// concurrent Record() calls may be off by the in-flight observations —
  /// fine for monitoring; exact once writers are quiescent.
  struct Snapshot {
    uint64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    double avg = 0;
    int64_t p50 = 0;
    int64_t p95 = 0;
    int64_t p99 = 0;

    /// Quantile q in [0, 1] from the captured buckets (lower bound of the
    /// bucket holding the q-th observation).
    int64_t Percentile(double q) const;

    std::array<uint64_t, kNumBuckets> buckets{};
  };
  Snapshot TakeSnapshot() const;

  /// Merge(other) for a captured Snapshot — the federation path: a router
  /// reconstructing a backend's histogram from its `# BUCKETS` wire
  /// exposition folds the parsed snapshot in here. Count is derived from
  /// the snapshot's buckets; same bucket-exact merge semantics as
  /// Merge(const LogHistogram&).
  void Merge(const Snapshot& snapshot);

  /// Bucket of `value` (value >= 0).
  static int BucketIndex(int64_t value);
  /// Smallest value mapping to bucket `index` — the reported quantile value.
  static int64_t BucketLowerBound(int index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

}  // namespace cure

#endif  // CURE_COMMON_HISTOGRAM_H_
