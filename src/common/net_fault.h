#ifndef CURE_COMMON_NET_FAULT_H_
#define CURE_COMMON_NET_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace cure {
namespace net {

/// What an injected network fault does to the matched socket operation —
/// the failure modes a real cluster produces, not just cleanly closed
/// sockets (DESIGN.md §16).
enum class NetFaultKind {
  /// connect: fail with ECONNREFUSED without dialing (dead backend).
  /// read/write/accept: same errno, modeling a refused peer.
  kRefused,
  /// Fail with ECONNRESET — the peer dropped the connection mid-exchange.
  kReset,
  /// write only: shorten the requested length (the shim must write the
  /// shortened prefix and report its size, kernel-style). The op SUCCEEDS;
  /// correct callers loop and the exchange stays byte-identical.
  kShortWrite,
  /// Sleep delay_seconds, then proceed normally — a slow peer. Exercises
  /// hedging without breaking the exchange.
  kDelay,
  /// A peer that never answers: sleep delay_seconds (standing in for the
  /// caller's full timeout, so sweeps stay fast), then fail with ETIMEDOUT
  /// exactly as the socket timeout would.
  kStall,
};

/// A deterministic fault to inject into the socket shims of
/// serve::LineTransport (accept/read/write) and router::BackendClient
/// (connect/read/write).
///
/// Matching mirrors storage::FaultPlan: an operation matches when `op` is
/// empty or equals the shim's operation name AND `endpoint_substr` is empty
/// or a substring of the operation's endpoint ("host:port" — the backend
/// address on the client side, the listen address on the server side).
/// Matching operations are counted; the `fail_index`-th match (0-based)
/// trips the fault.
struct NetFaultPlan {
  /// "connect", "read", "write" or "accept"; empty matches every op.
  std::string op;
  /// Endpoint substring to match (e.g. ":7101"); empty matches everything.
  std::string endpoint_substr;
  /// 0-based index (among matching operations) of the op that fails.
  /// UINT64_MAX never fires — counting mode for enumerating a session's
  /// network ops before sweeping them.
  uint64_t fail_index = 0;
  NetFaultKind kind = NetFaultKind::kReset;
  /// Fail only the fail_index-th op (transient glitch) vs every op from
  /// fail_index on (sticky — a dead or wedged peer).
  bool once = false;
  /// Sleep applied by kDelay and kStall before returning.
  double delay_seconds = 0.02;
  /// For kShortWrite: fraction (0,1) of the requested length written.
  double short_fraction = 0.5;
};

/// Process-global, test-scoped deterministic network fault injector — the
/// network-edge sibling of storage::FaultInjector. Disarmed (the default)
/// it costs one relaxed atomic load per socket operation.
///
/// Thread-safe: scatter threads and server connection threads consult the
/// same plan; any sleep a fault calls for happens OUTSIDE the injector's
/// mutex so a stalled op never wedges unrelated connections.
class NetFaultInjector {
 public:
  static NetFaultInjector& Instance();

  /// Arms `plan`, resetting counters. Replaces any armed plan.
  void Arm(const NetFaultPlan& plan);

  /// Arms from the CURE_NET_FAULT environment variable when set — the CI
  /// chaos smoke's entry point. Format: semicolon-separated key=value
  /// pairs, e.g. "op=read;kind=delay;delay_ms=120;endpoint=:7101;index=0;
  /// once=0;frac=0.5". kind is one of refused|reset|shortwrite|delay|stall.
  /// Returns true when a plan was armed.
  static bool ArmFromEnv();

  /// Disarms and resets counters.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Number of operations that matched the plan since Arm().
  uint64_t ops_matched() const;
  /// Number of faults actually injected since Arm().
  uint64_t faults_injected() const;

  /// Shim hook for connect/read/accept: returns 0 (proceed) or the errno to
  /// inject. May sleep (kDelay/kStall) before returning.
  int Consult(const char* op, const std::string& endpoint);

  /// Shim hook for writes: like Consult, but kShortWrite instead reduces
  /// *len — the shim must then write only *len bytes and report that count
  /// as a successful partial write.
  int ConsultWrite(const std::string& endpoint, size_t* len);

 private:
  NetFaultInjector() = default;

  /// Decides under mu_; returns the errno (0 = proceed) and the sleep to
  /// apply after release.
  int Decide(const char* op, const std::string& endpoint, size_t* len,
             double* sleep_seconds);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  NetFaultPlan plan_;
  uint64_t ops_matched_ = 0;
  uint64_t faults_injected_ = 0;
  bool fired_once_ = false;
};

/// RAII arm/disarm for tests.
class ScopedNetFaultInjection {
 public:
  explicit ScopedNetFaultInjection(const NetFaultPlan& plan) {
    NetFaultInjector::Instance().Arm(plan);
  }
  ~ScopedNetFaultInjection() { NetFaultInjector::Instance().Disarm(); }

  ScopedNetFaultInjection(const ScopedNetFaultInjection&) = delete;
  ScopedNetFaultInjection& operator=(const ScopedNetFaultInjection&) = delete;

  uint64_t ops_matched() const {
    return NetFaultInjector::Instance().ops_matched();
  }
  uint64_t faults_injected() const {
    return NetFaultInjector::Instance().faults_injected();
  }
};

}  // namespace net
}  // namespace cure

#endif  // CURE_COMMON_NET_FAULT_H_
