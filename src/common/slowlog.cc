#include "common/slowlog.h"

namespace cure {

void SlowQueryLog::Record(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(line));
  } else {
    ring_[seq_ % capacity_] = std::move(line);
  }
  ++seq_;
}

std::string SlowQueryLog::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // seq_ - 1 is the newest entry; walk backwards over the held window.
  // Displayed numbers are 1-based ("#<n>" = the n-th entry ever recorded),
  // so the newest line's number always equals the `total` count.
  for (size_t i = 0; i < ring_.size(); ++i) {
    const uint64_t seq = seq_ - 1 - i;
    out += '#';
    out += std::to_string(seq + 1);
    out += ' ';
    out += ring_[seq % capacity_];
    out += '\n';
  }
  out += "total " + std::to_string(seq_) + " capacity " +
         std::to_string(capacity_) + "\n";
  return out;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace cure
