#include "common/env.h"

#include <cstdlib>

namespace cure {

int64_t EnvInt64(const char* name, int64_t def) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return def;
  char* end = nullptr;
  const int64_t value = std::strtoll(env, &end, 10);
  if (end == env) return def;
  return value;
}

double EnvDouble(const char* name, double def) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return def;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env) return def;
  return value;
}

std::string EnvString(const char* name, const std::string& def) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return def;
  return env;
}

}  // namespace cure
