#ifndef CURE_COMMON_ENV_H_
#define CURE_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace cure {

/// Reads an integer environment variable, returning `def` when unset or
/// unparsable. Used by benchmarks for scale knobs (CURE_BENCH_SCALE, ...).
int64_t EnvInt64(const char* name, int64_t def);

/// Reads a floating-point environment variable.
double EnvDouble(const char* name, double def);

/// Reads a string environment variable.
std::string EnvString(const char* name, const std::string& def);

}  // namespace cure

#endif  // CURE_COMMON_ENV_H_
