#include "common/histogram.h"

#include <bit>

namespace cure {

int LogHistogram::BucketIndex(int64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int exp = std::bit_width(static_cast<uint64_t>(value)) - 1;  // >= 4
  const int sub =
      static_cast<int>((static_cast<uint64_t>(value) >> (exp - kExactBits)) &
                       (kSubBuckets - 1));
  const int index = kSubBuckets + (exp - kExactBits) * kSubBuckets + sub;
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

int64_t LogHistogram::BucketLowerBound(int index) {
  if (index < kSubBuckets) return index;
  const int exp = kExactBits + (index - kSubBuckets) / kSubBuckets;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  return (int64_t{1} << exp) + (static_cast<int64_t>(sub) << (exp - kExactBits));
}

int64_t LogHistogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketLowerBound(i);
  }
  return max;
}

void LogHistogram::Merge(const LogHistogram& other) {
  uint64_t merged = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    buckets_[i].fetch_add(n, std::memory_order_relaxed);
    merged += n;
  }
  count_.fetch_add(merged, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const int64_t other_max = other.max_.load(std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (other_max > prev && !max_.compare_exchange_weak(
                                 prev, other_max, std::memory_order_relaxed)) {
  }
}

void LogHistogram::Merge(const Snapshot& snapshot) {
  uint64_t merged = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = snapshot.buckets[i];
    if (n == 0) continue;
    buckets_[i].fetch_add(n, std::memory_order_relaxed);
    merged += n;
  }
  count_.fetch_add(merged, std::memory_order_relaxed);
  sum_.fetch_add(snapshot.sum, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (snapshot.max > prev &&
         !max_.compare_exchange_weak(prev, snapshot.max,
                                     std::memory_order_relaxed)) {
  }
}

LogHistogram::Snapshot LogHistogram::TakeSnapshot() const {
  Snapshot snap;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.avg = snap.count > 0
                 ? static_cast<double>(snap.sum) / static_cast<double>(snap.count)
                 : 0.0;
  snap.p50 = snap.Percentile(0.50);
  snap.p95 = snap.Percentile(0.95);
  snap.p99 = snap.Percentile(0.99);
  return snap;
}

}  // namespace cure
