#ifndef CURE_COMMON_TRACE_H_
#define CURE_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace cure {

/// Low-overhead in-process span tracer.
///
/// The design mirrors storage/fault_injection.*: a process-global singleton
/// whose hot path is ONE relaxed atomic load while disabled, so
/// instrumentation can stay compiled into release binaries. When enabled,
/// every thread records fixed-size events into its own ring buffer (no
/// cross-thread contention on the record path; the per-buffer mutex is only
/// ever contended by an exporter). Buffers are registered globally through
/// shared_ptr so events survive thread exit until the next Reset().
///
/// Span names use the `cure.<layer>.<op>` convention (DESIGN.md §12) and
/// must be string literals (static storage duration) — the tracer stores the
/// pointer, not a copy.
///
/// Export writes Chrome trace_event JSON ("X" complete, "C" counter and "i"
/// instant events) loadable in Perfetto / chrome://tracing.

/// Phase codes, mirroring the Chrome trace_event `ph` field.
enum class TraceEventType : char {
  kComplete = 'X',
  kCounter = 'C',
  kInstant = 'i',
};

/// One fixed-size trace record. `name` / `arg*_name` must point at string
/// literals. Timestamps are microseconds on the tracer's steady clock.
struct TraceEvent {
  const char* name = nullptr;
  TraceEventType type = TraceEventType::kComplete;
  int64_t ts_us = 0;
  int64_t dur_us = 0;  // kComplete only
  const char* arg0_name = nullptr;
  const char* arg1_name = nullptr;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

class Tracer {
 public:
  static constexpr size_t kDefaultEventsPerThread = 1 << 16;

  static Tracer& Instance();

  /// The one hot-path check: a single relaxed atomic load.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts recording. Each thread that records gets its own ring buffer of
  /// `events_per_thread` slots (oldest events are overwritten on wrap and
  /// counted as dropped). Idempotent; capacity applies to buffers created
  /// after the call.
  void Enable(size_t events_per_thread = kDefaultEventsPerThread);

  /// Stops recording. Already-recorded events remain exportable.
  void Disable();

  /// Discards every recorded event and detaches all per-thread buffers
  /// (threads re-register on their next record). Does not change the
  /// enabled flag.
  void Reset();

  /// Appends one event to the calling thread's ring buffer. Callers should
  /// check enabled() first; Record() re-checks and drops when disabled.
  void Record(const TraceEvent& event);

  /// Microseconds since the process-wide trace epoch (steady clock).
  static int64_t NowMicros();

  /// Process-unique id for correlating a request across spans, logs and
  /// protocol responses. Never returns 0.
  uint64_t NextTraceId();

  /// Copies every recorded event carrying an integer arg named "trace_id"
  /// whose value equals `trace_id`, oldest first. Exporter-path cost (locks
  /// each thread buffer); empty when nothing matched. Lets a server attach
  /// the spans of one request to its profile reply without exporting the
  /// whole ring.
  std::vector<TraceEvent> EventsForTraceId(uint64_t trace_id) const;

  /// Total events currently held across all ring buffers.
  uint64_t recorded_events() const;
  /// Events overwritten by ring-buffer wrap since the last Reset().
  uint64_t dropped_events() const;

  /// Serializes all recorded events as Chrome trace_event JSON:
  /// `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
  std::string ExportChromeTraceJson() const;

  /// Writes ExportChromeTraceJson() to `path` (truncates).
  Status WriteChromeTrace(const std::string& path) const;

  /// Tool entry point: enables tracing when the CURE_TRACE environment
  /// variable is set to a positive value (ring capacity from
  /// CURE_TRACE_BUFFER when set). Returns true when tracing was enabled.
  static bool ArmFromEnv();

 private:
  struct ThreadBuffer;

  Tracer() = default;

  std::shared_ptr<ThreadBuffer> BufferForThisThread();

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  size_t events_per_thread_ = kDefaultEventsPerThread;
  // Bumped by Reset() so threads drop their cached buffer pointer.
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> next_trace_id_{1};
  int next_tid_ = 1;
};

/// Current nesting depth of live TraceSpans on this thread (0 outside any
/// span). Maintained only while the tracer is enabled.
int TraceDepth();

/// RAII scoped span: captures the start time at construction (when the
/// tracer is enabled) and records one complete event at destruction. Up to
/// two integer args; names must be string literals.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : armed_(Tracer::enabled()) {
    if (armed_) Start(name);
  }
  TraceSpan(const char* name, const char* arg0_name, uint64_t arg0)
      : armed_(Tracer::enabled()) {
    if (armed_) {
      Start(name);
      arg_names_[0] = arg0_name;
      args_[0] = arg0;
    }
  }
  TraceSpan(const char* name, const char* arg0_name, uint64_t arg0,
            const char* arg1_name, uint64_t arg1)
      : armed_(Tracer::enabled()) {
    if (armed_) {
      Start(name);
      arg_names_[0] = arg0_name;
      args_[0] = arg0;
      arg_names_[1] = arg1_name;
      args_[1] = arg1;
    }
  }
  ~TraceSpan() {
    if (armed_) Finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches (or overwrites) an arg after construction — e.g. a row count
  /// known only at scope exit. No-op when the tracer was disabled at
  /// construction.
  void AddArg(const char* arg_name, uint64_t value) {
    if (!armed_) return;
    const int slot = arg_names_[0] == nullptr || arg_names_[0] == arg_name ? 0 : 1;
    arg_names_[slot] = arg_name;
    args_[slot] = value;
  }

 private:
  void Start(const char* name);
  void Finish();

  bool armed_;
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
  const char* arg_names_[2] = {nullptr, nullptr};
  uint64_t args_[2] = {0, 0};
};

/// Records a counter sample (rendered as a counter track in Perfetto).
void TraceCounter(const char* name, uint64_t value);

/// Records an instant event.
void TraceInstant(const char* name);
void TraceInstant(const char* name, const char* arg0_name, uint64_t arg0);

#define CURE_TRACE_CONCAT_INNER(a, b) a##b
#define CURE_TRACE_CONCAT(a, b) CURE_TRACE_CONCAT_INNER(a, b)

/// Scoped span covering the rest of the enclosing scope.
/// Usage: CURE_TRACE_SPAN("cure.build.load");
///        CURE_TRACE_SPAN("cure.build.partition_construct", "partition", i);
#define CURE_TRACE_SPAN(...)                                        \
  ::cure::TraceSpan CURE_TRACE_CONCAT(cure_trace_span_, __LINE__)( \
      __VA_ARGS__)

/// ---- Chrome-trace validation (used by tests, `cure_tool tracecheck` and
/// CI) ----

/// What the validator learned about a trace.
struct ChromeTraceSummary {
  size_t total_events = 0;
  size_t complete_events = 0;
  size_t counter_events = 0;
  size_t instant_events = 0;
  /// Unique event names, sorted.
  std::vector<std::string> names;

  bool Contains(const std::string& name) const;
  /// Count of complete events with the given name.
  size_t CompleteCount(const std::string& name) const;
  /// Distinct values of integer arg `arg_name` across events named `name`.
  std::vector<uint64_t> ArgValues(const std::string& name,
                                  const std::string& arg_name) const;

  // (name, arg_name, value) triples for complete events carrying int args.
  std::vector<std::string> complete_names_;
  struct ArgSample {
    std::string event_name;
    std::string arg_name;
    uint64_t value;
  };
  std::vector<ArgSample> args_;
};

/// Strictly validates Chrome trace_event JSON: a top-level object with a
/// `traceEvents` array whose elements carry a string `name`, a known
/// one-char `ph`, finite numeric `ts`, integer `pid`/`tid`, a non-negative
/// `dur` for "X" events, and (when present) an object `args`. Rejects
/// malformed JSON, NaN/Infinity, and unknown phases.
Status ValidateChromeTrace(const std::string& json,
                           ChromeTraceSummary* summary);

/// Reads `path` and validates its contents.
Status ValidateChromeTraceFile(const std::string& path,
                               ChromeTraceSummary* summary);

}  // namespace cure

#endif  // CURE_COMMON_TRACE_H_
