#ifndef CURE_COMMON_SLOWLOG_H_
#define CURE_COMMON_SLOWLOG_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cure {

/// Bounded flight recorder for slow-query profiles: a mutex-guarded ring of
/// the last `capacity` over-threshold entries, each one pre-formatted line.
/// Both `cure_serve` and `cure_router` keep one and dump it through their
/// SLOWLOG protocol verb — the in-memory tail of the slow-query WARN log,
/// queryable without ssh'ing to the box. Entries are overwritten oldest
/// first; Dump() renders newest first so the incident you are chasing is on
/// top.
class SlowQueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit SlowQueryLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Appends one profile line (no trailing newline), evicting the oldest
  /// entry when full.
  void Record(std::string line);

  /// Newest-first dump, one entry per line, each prefixed with its 1-based
  /// recording sequence number (`#<seq> <line>`, so the newest number
  /// equals the total ever recorded); ends with a summary line
  /// `total <recorded> capacity <n>`. Empty ring renders just the summary.
  std::string Dump() const;

  /// Entries currently held (<= capacity).
  size_t size() const;
  /// Entries ever recorded (monotonic, not bounded by capacity).
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::string> ring_;  ///< ring_[seq % capacity_]
  uint64_t seq_ = 0;               ///< next sequence number to assign
};

}  // namespace cure

#endif  // CURE_COMMON_SLOWLOG_H_
