#ifndef CURE_COMMON_BYTES_H_
#define CURE_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace cure {

/// Formats a byte count with a binary-unit suffix, e.g. "1.50 MB".
std::string FormatBytes(uint64_t bytes);

/// Formats seconds adaptively ("420 us", "1.2 ms", "3.45 s").
std::string FormatSeconds(double seconds);

}  // namespace cure

#endif  // CURE_COMMON_BYTES_H_
