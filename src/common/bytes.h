#ifndef CURE_COMMON_BYTES_H_
#define CURE_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cure {

/// Formats a byte count with a binary-unit suffix, e.g. "1.50 MB".
std::string FormatBytes(uint64_t bytes);

/// Formats seconds adaptively ("420 us", "1.2 ms", "3.45 s").
std::string FormatSeconds(double seconds);

/// FNV-1a 64-bit hash. `seed` defaults to the standard offset basis;
/// pass a previous digest to chain incremental updates.
inline constexpr uint64_t kFnv1a64Offset = 0xCBF29CE484222325ull;

uint64_t Fnv1a64(const uint8_t* data, size_t len,
                 uint64_t seed = kFnv1a64Offset);

}  // namespace cure

#endif  // CURE_COMMON_BYTES_H_
