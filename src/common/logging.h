#ifndef CURE_COMMON_LOGGING_H_
#define CURE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cure {
namespace internal_logging {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level that is actually emitted; controlled by CURE_LOG_LEVEL
/// (0=debug .. 3=error). Defaults to Info.
LogLevel MinLogLevel();

/// Stream-style log sink that emits one line on destruction and aborts
/// the process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Null sink used when a message is below the minimum level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace cure

#define CURE_LOG_INTERNAL(level)                                          \
  ::cure::internal_logging::LogMessage(                                   \
      ::cure::internal_logging::LogLevel::level, __FILE__, __LINE__)      \
      .stream()

#define CURE_LOG(level)                                                   \
  if (::cure::internal_logging::LogLevel::level <                         \
      ::cure::internal_logging::MinLogLevel()) {                          \
  } else                                                                  \
    CURE_LOG_INTERNAL(level)

/// CHECK-style invariant macros: always on, abort with a message.
#define CURE_CHECK(cond)                                                  \
  if (cond) {                                                             \
  } else                                                                  \
    CURE_LOG_INTERNAL(kFatal) << "Check failed: " #cond " "

#define CURE_CHECK_EQ(a, b) CURE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CURE_CHECK_NE(a, b) CURE_CHECK((a) != (b))
#define CURE_CHECK_LT(a, b) CURE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CURE_CHECK_LE(a, b) CURE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CURE_CHECK_GT(a, b) CURE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CURE_CHECK_GE(a, b) CURE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts if a Status-returning expression fails. For use in examples,
/// benchmarks, and tests where errors are programming mistakes.
#define CURE_CHECK_OK(expr)                                               \
  do {                                                                    \
    ::cure::Status _cure_st = (expr);                                     \
    CURE_CHECK(_cure_st.ok()) << _cure_st.ToString();                     \
  } while (0)

#endif  // CURE_COMMON_LOGGING_H_
