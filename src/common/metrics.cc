#include "common/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cure {

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

LogHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) it->second = std::make_unique<LogHistogram>();
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

void AppendHistogramText(const std::string& name, const LogHistogram& histogram,
                         std::string* out) {
  const LogHistogram::Snapshot snap = histogram.TakeSnapshot();
  // Six lines, each repeating the name: size for long names (the router's
  // per-backend histograms) — a truncated dump would corrupt the line
  // protocol's framing.
  char line[512];
  std::snprintf(line, sizeof(line),
                "%s_count %" PRIu64 "\n%s_avg_us %.1f\n%s_p50_us %" PRId64
                "\n%s_p95_us %" PRId64 "\n%s_p99_us %" PRId64
                "\n%s_max_us %" PRId64 "\n",
                name.c_str(), snap.count, name.c_str(), snap.avg, name.c_str(),
                snap.p50, name.c_str(), snap.p95, name.c_str(), snap.p99,
                name.c_str(), snap.max);
  *out += line;
}

std::string FormatMetricValue(double value) {
  char buf[48];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[160];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name.c_str(),
                  counter->value());
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name;
    out += ' ';
    out += FormatMetricValue(gauge->value());
    out += '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    AppendHistogramText(name, *histogram, &out);
  }
  return out;
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!alpha && !(digit && i > 0)) return false;
  }
  return true;
}

std::string SanitizeMetricName(const std::string& name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusSampleLine(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value) {
  if (!std::isfinite(value)) return std::string();
  std::string out = SanitizeMetricName(name);
  if (!labels.empty()) {
    out += '{';
    bool first = true;
    for (const auto& [label_name, label_value] : labels) {
      if (!first) out += ',';
      first = false;
      out += SanitizeMetricName(label_name);
      out += "=\"";
      out += EscapeLabelValue(label_value);
      out += '"';
    }
    out += '}';
  }
  out += ' ';
  out += FormatMetricValue(value);
  out += '\n';
  return out;
}

void AppendPrometheusHistogram(const std::string& name,
                               const LogHistogram& histogram,
                               std::string* out) {
  const std::string base = SanitizeMetricName(name);
  const LogHistogram::Snapshot snap = histogram.TakeSnapshot();
  *out += "# TYPE " + base + " summary\n";
  *out += PrometheusSampleLine(base, {{"quantile", "0.5"}},
                               static_cast<double>(snap.p50));
  *out += PrometheusSampleLine(base, {{"quantile", "0.95"}},
                               static_cast<double>(snap.p95));
  *out += PrometheusSampleLine(base, {{"quantile", "0.99"}},
                               static_cast<double>(snap.p99));
  *out += PrometheusSampleLine(base + "_sum", {},
                               static_cast<double>(snap.sum));
  *out += PrometheusSampleLine(base + "_count", {},
                               static_cast<double>(snap.count));
}

void AppendHistogramBuckets(const std::string& name,
                            const LogHistogram& histogram, std::string* out) {
  const LogHistogram::Snapshot snap = histogram.TakeSnapshot();
  if (snap.count == 0) return;
  char buf[64];
  *out += "# BUCKETS " + SanitizeMetricName(name);
  std::snprintf(buf, sizeof(buf), " sum=%" PRId64 " max=%" PRId64, snap.sum,
                snap.max);
  *out += buf;
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    if (snap.buckets[i] == 0) continue;
    std::snprintf(buf, sizeof(buf), " %d:%" PRIu64, i, snap.buckets[i]);
    *out += buf;
  }
  *out += '\n';
}

bool ParseHistogramBuckets(const std::string& line, std::string* name,
                           LogHistogram::Snapshot* snapshot) {
  static constexpr char kPrefix[] = "# BUCKETS ";
  if (line.rfind(kPrefix, 0) != 0) return false;
  size_t pos = sizeof(kPrefix) - 1;
  const size_t name_end = line.find(' ', pos);
  if (name_end == std::string::npos || name_end == pos) return false;
  const std::string parsed_name = line.substr(pos, name_end - pos);
  pos = name_end;

  LogHistogram::Snapshot snap;
  bool saw_sum = false;
  bool saw_max = false;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    std::string token = line.substr(pos, end - pos);
    pos = end;
    if (!token.empty() && token.back() == '\n') token.pop_back();
    if (token.empty()) continue;
    char* parse_end = nullptr;
    if (token.rfind("sum=", 0) == 0) {
      snap.sum = std::strtoll(token.c_str() + 4, &parse_end, 10);
      if (parse_end == token.c_str() + 4 || *parse_end != '\0') return false;
      saw_sum = true;
      continue;
    }
    if (token.rfind("max=", 0) == 0) {
      snap.max = std::strtoll(token.c_str() + 4, &parse_end, 10);
      if (parse_end == token.c_str() + 4 || *parse_end != '\0') return false;
      saw_max = true;
      continue;
    }
    const size_t colon = token.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    const long long index = std::strtoll(token.c_str(), &parse_end, 10);
    if (parse_end != token.c_str() + colon || index < 0 ||
        index >= LogHistogram::kNumBuckets) {
      return false;
    }
    const char* count_start = token.c_str() + colon + 1;
    const unsigned long long bucket_count =
        std::strtoull(count_start, &parse_end, 10);
    if (parse_end == count_start || *parse_end != '\0') return false;
    snap.buckets[static_cast<size_t>(index)] += bucket_count;
    snap.count += bucket_count;
  }
  if (!saw_sum || !saw_max) return false;
  snap.avg = snap.count > 0 ? static_cast<double>(snap.sum) /
                                  static_cast<double>(snap.count)
                            : 0.0;
  snap.p50 = snap.Percentile(0.50);
  snap.p95 = snap.Percentile(0.95);
  snap.p99 = snap.Percentile(0.99);
  if (name != nullptr) *name = parsed_name;
  if (snapshot != nullptr) *snapshot = snap;
  return true;
}

std::string MetricsRegistry::PrometheusText(const std::string& prefix,
                                            bool include_buckets) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string full = SanitizeMetricName(prefix + name);
    out += "# TYPE " + full + " counter\n";
    out += PrometheusSampleLine(full, {},
                                static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    const double value = gauge->value();
    // The exposition format technically permits NaN, but a NaN gauge here
    // always means "never observed" — skip the whole block instead of
    // publishing a poisoned sample.
    if (!std::isfinite(value)) continue;
    const std::string full = SanitizeMetricName(prefix + name);
    out += "# TYPE " + full + " gauge\n";
    out += PrometheusSampleLine(full, {}, value);
  }
  for (const auto& [name, histogram] : histograms_) {
    AppendPrometheusHistogram(prefix + name + "_us", *histogram, &out);
    if (include_buckets) {
      AppendHistogramBuckets(prefix + name + "_us", *histogram, &out);
    }
  }
  return out;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

}  // namespace cure
