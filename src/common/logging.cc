#include "common/logging.h"

#include <cstdio>
#include <ctime>

namespace cure {
namespace internal_logging {

namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("CURE_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  switch (env[0]) {
    case '0':
      return LogLevel::kDebug;
    case '1':
      return LogLevel::kInfo;
    case '2':
      return LogLevel::kWarning;
    case '3':
      return LogLevel::kError;
    default:
      return LogLevel::kInfo;
  }
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() {
  static const LogLevel kLevel = ParseLevelFromEnv();
  return kLevel;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace cure
