#include "common/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/env.h"

namespace cure {

std::atomic<bool> Tracer::enabled_{false};

namespace {

thread_local int tls_span_depth = 0;

int64_t SteadyEpochMicros() {
  // One process-wide epoch so timestamps from every thread share an origin.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

}  // namespace

struct Tracer::ThreadBuffer {
  ThreadBuffer(size_t capacity, int tid_in) : ring(capacity), tid(tid_in) {}

  // Uncontended on the record path (only the owning thread records); an
  // exporter racing with live writers takes the same mutex so snapshots
  // are well-defined.
  std::mutex mu;
  std::vector<TraceEvent> ring;
  size_t next = 0;       // write cursor
  uint64_t written = 0;  // total events ever recorded
  int tid;
};

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();  // leaked: usable during atexit
  return *tracer;
}

int64_t Tracer::NowMicros() { return SteadyEpochMicros(); }

void Tracer::Enable(size_t events_per_thread) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_per_thread_ = std::max<size_t>(1, events_per_thread);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  next_tid_ = 1;
  // Release pairs with the acquire in BufferForThisThread so a thread that
  // observes the new epoch also observes the cleared registry.
  epoch_.fetch_add(1, std::memory_order_release);
}

uint64_t Tracer::NextTraceId() {
  const uint64_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  return id == 0 ? next_trace_id_.fetch_add(1, std::memory_order_relaxed) : id;
}

std::shared_ptr<Tracer::ThreadBuffer> Tracer::BufferForThisThread() {
  struct TlsSlot {
    uint64_t epoch = 0;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  thread_local TlsSlot slot;
  const uint64_t current = epoch_.load(std::memory_order_acquire);
  if (slot.buffer == nullptr || slot.epoch != current) {
    std::lock_guard<std::mutex> lock(mu_);
    slot.buffer = std::make_shared<ThreadBuffer>(events_per_thread_, next_tid_++);
    slot.epoch = epoch_.load(std::memory_order_relaxed);
    buffers_.push_back(slot.buffer);
  }
  return slot.buffer;
}

void Tracer::Record(const TraceEvent& event) {
  if (!enabled()) return;
  const std::shared_ptr<ThreadBuffer> buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->ring[buffer->next] = event;
  buffer->next = (buffer->next + 1) % buffer->ring.size();
  ++buffer->written;
}

std::vector<TraceEvent> Tracer::EventsForTraceId(uint64_t trace_id) const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> matched;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const size_t capacity = buffer->ring.size();
    const size_t count =
        static_cast<size_t>(std::min<uint64_t>(buffer->written, capacity));
    const size_t start = buffer->written > capacity ? buffer->next : 0;
    for (size_t i = 0; i < count; ++i) {
      const TraceEvent& event = buffer->ring[(start + i) % capacity];
      const bool hit =
          (event.arg0_name != nullptr &&
           std::strcmp(event.arg0_name, "trace_id") == 0 &&
           event.arg0 == trace_id) ||
          (event.arg1_name != nullptr &&
           std::strcmp(event.arg1_name, "trace_id") == 0 &&
           event.arg1 == trace_id);
      if (hit) matched.push_back(event);
    }
  }
  std::sort(matched.begin(), matched.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return matched;
}

uint64_t Tracer::recorded_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += std::min<uint64_t>(buffer->written, buffer->ring.size());
  }
  return total;
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (buffer->written > buffer->ring.size()) {
      dropped += buffer->written - buffer->ring.size();
    }
  }
  return dropped;
}

std::string Tracer::ExportChromeTraceJson() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  const long pid = static_cast<long>(::getpid());

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[192];
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const size_t capacity = buffer->ring.size();
    const size_t count =
        static_cast<size_t>(std::min<uint64_t>(buffer->written, capacity));
    // Oldest event first: when the ring has wrapped, the write cursor
    // points at the oldest slot.
    const size_t start = buffer->written > capacity ? buffer->next : 0;
    for (size_t i = 0; i < count; ++i) {
      const TraceEvent& event = buffer->ring[(start + i) % capacity];
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      AppendJsonEscaped(event.name != nullptr ? event.name : "(null)", &out);
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"%c\",\"ts\":%lld,\"pid\":%ld,\"tid\":%d",
                    static_cast<char>(event.type),
                    static_cast<long long>(event.ts_us), pid, buffer->tid);
      out += buf;
      if (event.type == TraceEventType::kComplete) {
        std::snprintf(buf, sizeof(buf), ",\"dur\":%lld",
                      static_cast<long long>(event.dur_us));
        out += buf;
      }
      if (event.type == TraceEventType::kInstant) out += ",\"s\":\"t\"";
      if (event.arg0_name != nullptr || event.arg1_name != nullptr) {
        out += ",\"args\":{";
        bool first_arg = true;
        const char* names[2] = {event.arg0_name, event.arg1_name};
        const uint64_t values[2] = {event.arg0, event.arg1};
        for (int a = 0; a < 2; ++a) {
          if (names[a] == nullptr) continue;
          if (!first_arg) out += ',';
          first_arg = false;
          out += '"';
          AppendJsonEscaped(names[a], &out);
          std::snprintf(buf, sizeof(buf), "\":%llu",
                        static_cast<unsigned long long>(values[a]));
          out += buf;
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ExportChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("trace export: open " + path + ": " +
                           std::strerror(errno));
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("trace export: short write to " + path);
  }
  return Status::OK();
}

bool Tracer::ArmFromEnv() {
  if (EnvInt64("CURE_TRACE", 0) <= 0) return false;
  const int64_t capacity =
      EnvInt64("CURE_TRACE_BUFFER",
               static_cast<int64_t>(kDefaultEventsPerThread));
  Instance().Enable(capacity > 0 ? static_cast<size_t>(capacity)
                                 : kDefaultEventsPerThread);
  static std::string* out_path = nullptr;
  const std::string path = EnvString("CURE_TRACE_OUT", "");
  if (!path.empty() && out_path == nullptr) {
    out_path = new std::string(path);
    std::atexit([] {
      const Status status = Tracer::Instance().WriteChromeTrace(*out_path);
      if (!status.ok()) {
        std::fprintf(stderr, "CURE_TRACE_OUT: %s\n",
                     status.ToString().c_str());
      }
    });
  }
  return true;
}

int TraceDepth() { return tls_span_depth; }

void TraceSpan::Start(const char* name) {
  name_ = name;
  start_us_ = Tracer::NowMicros();
  ++tls_span_depth;
}

void TraceSpan::Finish() {
  --tls_span_depth;
  TraceEvent event;
  event.name = name_;
  event.type = TraceEventType::kComplete;
  event.ts_us = start_us_;
  event.dur_us = Tracer::NowMicros() - start_us_;
  event.arg0_name = arg_names_[0];
  event.arg1_name = arg_names_[1];
  event.arg0 = args_[0];
  event.arg1 = args_[1];
  Tracer::Instance().Record(event);
}

void TraceCounter(const char* name, uint64_t value) {
  if (!Tracer::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.type = TraceEventType::kCounter;
  event.ts_us = Tracer::NowMicros();
  event.arg0_name = "value";
  event.arg0 = value;
  Tracer::Instance().Record(event);
}

void TraceInstant(const char* name) {
  if (!Tracer::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.type = TraceEventType::kInstant;
  event.ts_us = Tracer::NowMicros();
  Tracer::Instance().Record(event);
}

void TraceInstant(const char* name, const char* arg0_name, uint64_t arg0) {
  if (!Tracer::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.type = TraceEventType::kInstant;
  event.ts_us = Tracer::NowMicros();
  event.arg0_name = arg0_name;
  event.arg0 = arg0;
  Tracer::Instance().Record(event);
}

// ---------------------------------------------------------------------------
// Chrome-trace validation: a strict minimal JSON parser (objects, arrays,
// strings, numbers, booleans, null; no NaN/Infinity, bounded nesting)
// specialized for the trace_event schema.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  bool number_is_integer = false;
  int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  Status Parse(JsonValue* out) {
    CURE_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing data after top-level value");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("invalid JSON at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= input_.size()) return Error("unexpected end of input");
    const char c = input_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false", out);
      case 'n':
        return ParseKeyword("null", out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseKeyword(const char* keyword, JsonValue* out) {
    const size_t len = std::strlen(keyword);
    if (input_.compare(pos_, len, keyword) != 0) {
      return Error(std::string("expected '") + keyword + "'");
    }
    pos_ += len;
    if (keyword[0] == 'n') {
      out->kind = JsonValue::kNull;
    } else {
      out->kind = JsonValue::kBool;
      out->boolean = keyword[0] == 't';
    }
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < input_.size() && input_[pos_] == '-') ++pos_;
    bool saw_digit = false;
    bool integral = true;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c >= '0' && c <= '9') {
        saw_digit = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = integral && c != '.' && c != 'e' && c != 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (!saw_digit) return Error("malformed number");
    const std::string token = input_.substr(start, pos_ - start);
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(value)) {
      return Error("malformed or non-finite number '" + token + "'");
    }
    out->kind = JsonValue::kNumber;
    out->number = value;
    out->number_is_integer = integral;
    if (integral) out->integer = static_cast<int64_t>(value);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    // pos_ is at the opening quote.
    ++pos_;
    out->clear();
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= input_.size()) return Error("dangling escape");
        const char esc = input_[pos_];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= input_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = input_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape");
              }
            }
            pos_ += 4;
            // Validation only needs round-trippable bytes, not full UTF-8;
            // encode the code point minimally.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
        ++pos_;
      } else {
        *out += c;
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < input_.size() && input_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      JsonValue element;
      CURE_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (pos_ >= input_.size()) return Error("unterminated array");
      if (input_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (input_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < input_.size() && input_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      CURE_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != ':') {
        return Error("expected ':'");
      }
      ++pos_;
      JsonValue value;
      CURE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= input_.size()) return Error("unterminated object");
      if (input_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (input_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}'");
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
};

}  // namespace

bool ChromeTraceSummary::Contains(const std::string& name) const {
  return std::binary_search(names.begin(), names.end(), name);
}

size_t ChromeTraceSummary::CompleteCount(const std::string& name) const {
  return static_cast<size_t>(
      std::count(complete_names_.begin(), complete_names_.end(), name));
}

std::vector<uint64_t> ChromeTraceSummary::ArgValues(
    const std::string& name, const std::string& arg_name) const {
  std::vector<uint64_t> values;
  for (const ArgSample& sample : args_) {
    if (sample.event_name == name && sample.arg_name == arg_name) {
      values.push_back(sample.value);
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

Status ValidateChromeTrace(const std::string& json,
                           ChromeTraceSummary* summary) {
  JsonValue root;
  CURE_RETURN_IF_ERROR(JsonParser(json).Parse(&root));
  if (root.kind != JsonValue::kObject) {
    return Status::InvalidArgument("trace: top-level value is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::kArray) {
    return Status::InvalidArgument("trace: missing traceEvents array");
  }
  ChromeTraceSummary local;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    const std::string where = "trace event " + std::to_string(i) + ": ";
    if (event.kind != JsonValue::kObject) {
      return Status::InvalidArgument(where + "not an object");
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || name->kind != JsonValue::kString ||
        name->string.empty()) {
      return Status::InvalidArgument(where + "missing string name");
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->kind != JsonValue::kString ||
        ph->string.size() != 1) {
      return Status::InvalidArgument(where + "missing one-char ph");
    }
    const char phase = ph->string[0];
    if (std::strchr("XCiIMBEbens", phase) == nullptr) {
      return Status::InvalidArgument(where + "unknown phase '" + ph->string +
                                     "'");
    }
    const JsonValue* ts = event.Find("ts");
    if (ts == nullptr || ts->kind != JsonValue::kNumber) {
      return Status::InvalidArgument(where + "missing numeric ts");
    }
    for (const char* key : {"pid", "tid"}) {
      const JsonValue* id = event.Find(key);
      if (id == nullptr || id->kind != JsonValue::kNumber ||
          !id->number_is_integer) {
        return Status::InvalidArgument(where + "missing integer " + key);
      }
    }
    if (phase == 'X') {
      const JsonValue* dur = event.Find("dur");
      if (dur == nullptr || dur->kind != JsonValue::kNumber ||
          dur->number < 0) {
        return Status::InvalidArgument(where +
                                       "X event missing non-negative dur");
      }
    }
    const JsonValue* args = event.Find("args");
    if (args != nullptr) {
      if (args->kind != JsonValue::kObject) {
        return Status::InvalidArgument(where + "args is not an object");
      }
      for (const auto& [arg_name, arg_value] : args->object) {
        if (arg_value.kind == JsonValue::kNumber &&
            arg_value.number_is_integer && arg_value.integer >= 0) {
          local.args_.push_back(
              {name->string, arg_name,
               static_cast<uint64_t>(arg_value.integer)});
        }
      }
    }
    ++local.total_events;
    switch (phase) {
      case 'X':
        ++local.complete_events;
        local.complete_names_.push_back(name->string);
        break;
      case 'C':
        ++local.counter_events;
        break;
      case 'i':
      case 'I':
        ++local.instant_events;
        break;
      default:
        break;
    }
    local.names.push_back(name->string);
  }
  std::sort(local.names.begin(), local.names.end());
  local.names.erase(std::unique(local.names.begin(), local.names.end()),
                    local.names.end());
  if (summary != nullptr) *summary = std::move(local);
  return Status::OK();
}

Status ValidateChromeTraceFile(const std::string& path,
                               ChromeTraceSummary* summary) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("trace check: open " + path + ": " +
                           std::strerror(errno));
  }
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("trace check: read " + path);
  }
  return ValidateChromeTrace(contents, summary);
}

}  // namespace cure
