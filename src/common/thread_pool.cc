#include "common/thread_pool.h"

#include <algorithm>

#include "common/env.h"

namespace cure {

int ThreadPool::DefaultThreadCount() {
  const int64_t env = EnvInt64("CURE_THREADS", 0);
  if (env > 0) return static_cast<int>(std::min<int64_t>(env, 1024));
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::future<Status> ThreadPool::Submit(std::function<Status()> task) {
  std::packaged_task<Status()> wrapped(std::move(task));
  std::future<Status> future = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      // Resolve the future with an error instead of running the task.
      std::packaged_task<Status()> rejected(
          [] { return Status::Internal("ThreadPool is shut down"); });
      std::future<Status> f = rejected.get_future();
      rejected();
      return f;
    }
    queue_.push_back(std::move(wrapped));
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<Status()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    task();  // Status travels through the promise; tasks do not throw.
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace cure
