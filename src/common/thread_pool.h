#ifndef CURE_COMMON_THREAD_POOL_H_
#define CURE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace cure {

/// A fixed-size worker pool with a strict-FIFO task queue.
///
/// Tasks are `Status()` callables; failures propagate through the returned
/// future instead of exceptions (the library never throws). The FIFO
/// dispatch order is part of the contract: the build pipeline submits
/// per-partition construction tasks in partition order and relies on the
/// invariant that the set of started tasks is always a prefix of the
/// submission order (a task may block waiting on an earlier task, never on
/// a later one, so dispatch-in-order makes such waits deadlock-free).
class ThreadPool {
 public:
  /// Worker count used for `num_threads = 0`: the CURE_THREADS environment
  /// variable when set to a positive value, otherwise
  /// std::thread::hardware_concurrency(). Always >= 1.
  static int DefaultThreadCount();

  /// Starts `num_threads` workers (0 = DefaultThreadCount()).
  explicit ThreadPool(int num_threads = 0);

  /// Implies Shutdown(): drains queued tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. After Shutdown() the task is not run and the future
  /// resolves to an error Status instead.
  std::future<Status> Submit(std::function<Status()> task);

  /// Stops accepting new tasks, runs every task already queued to
  /// completion, and joins the workers. Idempotent.
  void Shutdown();

  /// ---- Observability (satellite: queue depth and worker utilization) ----
  /// Tasks currently waiting for a worker.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  /// Workers currently running a task.
  int busy_workers() const {
    return busy_workers_.load(std::memory_order_relaxed);
  }
  /// Tasks accepted by Submit() over the pool's lifetime.
  uint64_t tasks_submitted() const {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }
  /// Tasks that finished running.
  uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<Status()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
  std::atomic<int> busy_workers_{0};
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_completed_{0};
};

}  // namespace cure

#endif  // CURE_COMMON_THREAD_POOL_H_
