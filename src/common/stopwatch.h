#ifndef CURE_COMMON_STOPWATCH_H_
#define CURE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace cure {

/// Wall-clock stopwatch used for construction-time and query-response-time
/// measurements in the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU-time stopwatch for the *calling thread*. The build pipeline sums
/// per-worker CPU time into the per-stage statistics, so wall/CPU ratios
/// expose the achieved construction parallelism.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double start_;
};

}  // namespace cure

#endif  // CURE_COMMON_STOPWATCH_H_
