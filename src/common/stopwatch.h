#ifndef CURE_COMMON_STOPWATCH_H_
#define CURE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace cure {

/// Wall-clock stopwatch used for construction-time and query-response-time
/// measurements in the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cure

#endif  // CURE_COMMON_STOPWATCH_H_
