#include "common/net_fault.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace cure {
namespace net {

NetFaultInjector& NetFaultInjector::Instance() {
  static NetFaultInjector* injector = new NetFaultInjector();
  return *injector;
}

void NetFaultInjector::Arm(const NetFaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  ops_matched_ = 0;
  faults_injected_ = 0;
  fired_once_ = false;
  armed_.store(true, std::memory_order_release);
}

void NetFaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  plan_ = NetFaultPlan{};
  fired_once_ = false;
}

uint64_t NetFaultInjector::ops_matched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_matched_;
}

uint64_t NetFaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

int NetFaultInjector::Consult(const char* op, const std::string& endpoint) {
  if (!armed_.load(std::memory_order_relaxed)) return 0;
  double sleep_seconds = 0;
  int err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    err = Decide(op, endpoint, nullptr, &sleep_seconds);
  }
  if (sleep_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  return err;
}

int NetFaultInjector::ConsultWrite(const std::string& endpoint, size_t* len) {
  if (!armed_.load(std::memory_order_relaxed)) return 0;
  double sleep_seconds = 0;
  int err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    err = Decide("write", endpoint, len, &sleep_seconds);
  }
  if (sleep_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  return err;
}

int NetFaultInjector::Decide(const char* op, const std::string& endpoint,
                             size_t* len, double* sleep_seconds) {
  if (!armed_.load(std::memory_order_relaxed)) return 0;
  if (!plan_.op.empty() && plan_.op != op) return 0;
  if (!plan_.endpoint_substr.empty() &&
      endpoint.find(plan_.endpoint_substr) == std::string::npos) {
    return 0;
  }
  const uint64_t index = ops_matched_++;
  if (plan_.fail_index == UINT64_MAX) return 0;  // counting mode
  const bool fires =
      plan_.once ? (index == plan_.fail_index && !fired_once_)
                 : (index >= plan_.fail_index);
  if (!fires) return 0;
  fired_once_ = true;
  ++faults_injected_;
  switch (plan_.kind) {
    case NetFaultKind::kRefused:
      return ECONNREFUSED;
    case NetFaultKind::kReset:
      return ECONNRESET;
    case NetFaultKind::kShortWrite:
      if (len != nullptr && plan_.short_fraction > 0 &&
          plan_.short_fraction < 1 && *len > 1) {
        *len = static_cast<size_t>(static_cast<double>(*len) *
                                   plan_.short_fraction);
        if (*len == 0) *len = 1;
      }
      return 0;
    case NetFaultKind::kDelay:
      *sleep_seconds = plan_.delay_seconds;
      return 0;
    case NetFaultKind::kStall:
      // The stand-in sleep keeps sweeps fast; ETIMEDOUT is exactly what the
      // caller's SO_RCVTIMEO would produce on a peer that never answers.
      *sleep_seconds = plan_.delay_seconds;
      return ETIMEDOUT;
  }
  return 0;
}

bool NetFaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("CURE_NET_FAULT");
  if (spec == nullptr || spec[0] == '\0') return false;
  NetFaultPlan plan;
  plan.fail_index = 0;
  plan.once = false;
  std::string text(spec);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    const std::string pair = text.substr(start, end - start);
    start = end + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "op") {
      plan.op = value;
    } else if (key == "endpoint") {
      plan.endpoint_substr = value;
    } else if (key == "index") {
      plan.fail_index = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "once") {
      plan.once = value == "1" || value == "true";
    } else if (key == "delay_ms") {
      plan.delay_seconds = std::atof(value.c_str()) / 1000.0;
    } else if (key == "frac") {
      plan.short_fraction = std::atof(value.c_str());
    } else if (key == "kind") {
      if (value == "refused") plan.kind = NetFaultKind::kRefused;
      else if (value == "reset") plan.kind = NetFaultKind::kReset;
      else if (value == "shortwrite") plan.kind = NetFaultKind::kShortWrite;
      else if (value == "delay") plan.kind = NetFaultKind::kDelay;
      else if (value == "stall") plan.kind = NetFaultKind::kStall;
    }
  }
  Instance().Arm(plan);
  return true;
}

}  // namespace net
}  // namespace cure
