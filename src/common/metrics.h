#ifndef CURE_COMMON_METRICS_H_
#define CURE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace cure {

/// Unified metrics layer (promoted from serve/metrics.* so every layer —
/// storage, engine, serve, maintain, benches — reports through one
/// registry). Hot-path operations are single relaxed atomics; registration
/// and text snapshots take a mutex.

/// A monotonically increasing counter. Wait-free increments.
class Counter {
 public:
  void Inc() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time value (e.g. staleness seconds, pending WAL rows), set by
/// whoever observes it — typically right before a text snapshot.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Appends the standard histogram text lines
/// (`<name>_{count,avg_us,p50_us,p95_us,p99_us,max_us}`) for `histogram` to
/// `*out` — the same format MetricsRegistry::TextSnapshot uses, shared so
/// externally owned histograms (the maintenance layer's) render uniformly.
void AppendHistogramText(const std::string& name, const LogHistogram& histogram,
                         std::string* out);

/// ---- Prometheus text exposition helpers ----

/// True when `name` matches the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
bool IsValidMetricName(const std::string& name);

/// Maps an arbitrary string onto the metric-name grammar (invalid characters
/// become '_'; a leading digit gets a '_' prefix; empty becomes "_").
std::string SanitizeMetricName(const std::string& name);

/// Escapes a label value per the exposition format: backslash, double-quote
/// and newline are escaped; everything else passes through.
std::string EscapeLabelValue(const std::string& value);

/// Renders one sample line: `name{k1="v1",...} value\n`. The metric name is
/// sanitized, label names are sanitized, label values escaped. Non-finite
/// values render as nothing (returns an empty string) — the exposition
/// format forbids NaN samples from this producer.
std::string PrometheusSampleLine(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value);

/// Formats a metric value: integral doubles print without a decimal point
/// (`12`), everything else as `%.6g`. Shared by TextSnapshot and the
/// Prometheus renderer so both read identically.
std::string FormatMetricValue(double value);

/// Appends a Prometheus summary block for `histogram` (values are
/// microseconds): `# TYPE <name> summary`, quantile samples for
/// p50/p95/p99, `<name>_sum` and `<name>_count`.
void AppendPrometheusHistogram(const std::string& name,
                               const LogHistogram& histogram,
                               std::string* out);

/// Appends one exposition comment line carrying the histogram's raw bucket
/// counts (sparse; only non-zero buckets):
///   `# BUCKETS <name> sum=<sum> max=<max> <index>:<count> ...`
/// Prometheus scrapers ignore it (it is a comment); the router's METRICS
/// federation parses it back with ParseHistogramBuckets so cluster-level
/// quantiles come from a true bucket-exact LogHistogram::Merge instead of
/// averaging per-backend percentiles. Nothing is appended for an empty
/// histogram.
void AppendHistogramBuckets(const std::string& name,
                            const LogHistogram& histogram, std::string* out);

/// Parses one AppendHistogramBuckets line (with or without the trailing
/// newline) back into the metric name and a Snapshot whose count/avg/pXX
/// are derived from the parsed buckets. Returns false when `line` is not a
/// well-formed `# BUCKETS` line (wrong prefix, bad numbers, bucket index
/// out of range).
bool ParseHistogramBuckets(const std::string& line, std::string* name,
                           LogHistogram::Snapshot* snapshot);

/// Lock-cheap metrics registry: named atomic counters, gauges and
/// log-bucketed latency histograms (microseconds). Registration takes a
/// mutex; after that the hot path touches only relaxed atomics through the
/// returned pointers, which stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use.
  Counter* counter(const std::string& name);

  /// Returns the histogram named `name`, creating it on first use. Values
  /// are interpreted as microseconds in the text snapshot.
  LogHistogram* histogram(const std::string& name);

  /// Returns the gauge named `name`, creating it on first use.
  Gauge* gauge(const std::string& name);

  /// Plain-text dump, one `name value` pair per line, names sorted.
  /// Histograms expand into `<name>_{count,avg,p50,p95,p99,max}` lines.
  /// External gauges (e.g. cache occupancy sampled at dump time) can be
  /// appended by the caller.
  std::string TextSnapshot() const;

  /// Prometheus text exposition. `prefix` is prepended to every metric name
  /// (e.g. "cure_serve_"); names are sanitized to the metric-name grammar.
  /// Counters render as `counter`, gauges as `gauge` (non-finite gauge
  /// values are skipped entirely), histograms as `summary` blocks with
  /// quantile labels and `_sum`/`_count` children. `include_buckets` adds a
  /// `# BUCKETS` comment line per histogram (raw bucket counts, the METRICS
  /// federation wire format — see AppendHistogramBuckets).
  std::string PrometheusText(const std::string& prefix = std::string(),
                             bool include_buckets = false) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

/// Process-global registry for always-on cross-layer counters (storage I/O
/// bytes, fsyncs, external-sort spills, ...). Leaked on purpose so writers
/// running during static destruction stay safe.
MetricsRegistry& GlobalMetrics();

}  // namespace cure

#endif  // CURE_COMMON_METRICS_H_
