#ifndef CURE_COMMON_STATUS_H_
#define CURE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cure {

/// Error categories used across the library. The library never throws;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kDataLoss,
  kResourceExhausted,
  kDeadlineExceeded,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Human-readable name of a status code ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight status object carrying an error code and message.
///
/// Usage:
///   Status s = DoWork();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value of type T or an error Status.
///
/// Usage:
///   Result<Relation> r = Relation::OpenFile(path);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return value;` or `return Status::IoError(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Error status; Status::OK() when ok().
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace cure

/// Propagates a non-OK Status from an expression.
#define CURE_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::cure::Status _cure_status = (expr);           \
    if (!_cure_status.ok()) return _cure_status;    \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors, else assigning
/// the value to `lhs` (which may include a declaration).
#define CURE_ASSIGN_OR_RETURN(lhs, expr)            \
  CURE_ASSIGN_OR_RETURN_IMPL_(                      \
      CURE_STATUS_CONCAT_(_cure_result_, __LINE__), lhs, expr)

#define CURE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define CURE_STATUS_CONCAT_(a, b) CURE_STATUS_CONCAT_IMPL_(a, b)
#define CURE_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // CURE_COMMON_STATUS_H_
