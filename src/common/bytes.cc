#include "common/bytes.h"

#include <cstdio>

namespace cure {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

uint64_t Fnv1a64(const uint8_t* data, size_t len, uint64_t seed) {
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace cure
