#include "maintain/delta_wal.h"

#include <cstring>
#include <filesystem>

#include "common/stopwatch.h"
#include "common/trace.h"

namespace cure {
namespace maintain {

void RowBatch::Add(const uint32_t* dims, const int64_t* measures) {
  const size_t off = packed_.size();
  packed_.resize(off + record_size_);
  std::memcpy(packed_.data() + off, dims, 4ull * num_dims_);
  std::memcpy(packed_.data() + off + 4ull * num_dims_, measures,
              8ull * num_measures_);
  ++rows_;
}

uint64_t DeltaWal::Checksum(const uint8_t* data, size_t len) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

Result<std::unique_ptr<DeltaWal>> DeltaWal::Open(const std::string& path,
                                                 int num_dims, int num_measures,
                                                 const RowCallback& on_row,
                                                 WalRecoveryStats* stats) {
  auto wal =
      std::unique_ptr<DeltaWal>(new DeltaWal(path, num_dims, num_measures));

  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec);
  if (!exists) {
    // Fresh WAL: write and sync the file header so an immediate crash
    // leaves a replayable (empty) log.
    CURE_RETURN_IF_ERROR(wal->writer_.Open(path, 1 << 16));
    const uint64_t magic = kFileMagic;
    const uint32_t d = static_cast<uint32_t>(num_dims);
    const uint32_t m = static_cast<uint32_t>(num_measures);
    CURE_RETURN_IF_ERROR(wal->writer_.Append(&magic, 8));
    CURE_RETURN_IF_ERROR(wal->writer_.Append(&d, 4));
    CURE_RETURN_IF_ERROR(wal->writer_.Append(&m, 4));
    CURE_RETURN_IF_ERROR(wal->writer_.Sync());
    // fsync the parent directory too: Sync() made the header durable, but
    // without a durable directory entry a crash right after the first
    // commit could lose the *file*, not just its tail.
    CURE_RETURN_IF_ERROR(storage::SyncDir(storage::DirName(path)));
    wal->file_bytes_ = kFileHeaderSize;
    if (stats != nullptr) *stats = wal->recovery_;
    return wal;
  }

  // Replay: deliver committed frames, find the committed prefix length.
  Stopwatch watch;
  storage::FileReader reader;
  CURE_RETURN_IF_ERROR(reader.Open(path));
  const uint64_t file_size = reader.file_size();
  if (file_size < kFileHeaderSize) {
    // Torn header (crash during creation): recreate the file from scratch.
    reader.Close();
    CURE_RETURN_IF_ERROR(storage::RemoveFile(path));
    wal->recovery_.truncated_bytes = file_size;
    wal->recovery_.seconds = watch.ElapsedSeconds();
    CURE_ASSIGN_OR_RETURN(std::unique_ptr<DeltaWal> fresh,
                          Open(path, num_dims, num_measures, on_row, nullptr));
    fresh->recovery_ = wal->recovery_;
    if (stats != nullptr) *stats = fresh->recovery_;
    return fresh;
  }
  uint64_t magic = 0;
  uint32_t d = 0, m = 0;
  CURE_RETURN_IF_ERROR(reader.ReadAt(0, &magic, 8));
  CURE_RETURN_IF_ERROR(reader.ReadAt(8, &d, 4));
  CURE_RETURN_IF_ERROR(reader.ReadAt(12, &m, 4));
  if (magic != kFileMagic) {
    return Status::IoError("'" + path + "' is not a CURE delta WAL");
  }
  if (d != static_cast<uint32_t>(num_dims) ||
      m != static_cast<uint32_t>(num_measures)) {
    return Status::InvalidArgument(
        "WAL '" + path + "' was written for " + std::to_string(d) + " dims / " +
        std::to_string(m) + " measures, expected " + std::to_string(num_dims) +
        " / " + std::to_string(num_measures));
  }

  const size_t record_size = wal->record_size_;
  uint64_t committed = kFileHeaderSize;
  std::vector<uint8_t> payload;
  while (committed + kFrameHeaderSize <= file_size) {
    uint32_t frame_magic = 0, row_count = 0;
    uint64_t checksum = 0;
    CURE_RETURN_IF_ERROR(reader.ReadAt(committed, &frame_magic, 4));
    CURE_RETURN_IF_ERROR(reader.ReadAt(committed + 4, &row_count, 4));
    CURE_RETURN_IF_ERROR(reader.ReadAt(committed + 8, &checksum, 8));
    if (frame_magic != kFrameMagic || row_count == 0) break;
    const uint64_t payload_bytes = static_cast<uint64_t>(row_count) * record_size;
    if (committed + kFrameHeaderSize + payload_bytes > file_size) break;
    payload.resize(payload_bytes);
    CURE_RETURN_IF_ERROR(
        reader.ReadAt(committed + kFrameHeaderSize, payload.data(), payload_bytes));
    if (Checksum(payload.data(), payload_bytes) != checksum) break;
    if (on_row) {
      for (uint32_t r = 0; r < row_count; ++r) {
        on_row(payload.data() + static_cast<uint64_t>(r) * record_size);
      }
    }
    wal->total_rows_ += row_count;
    ++wal->total_batches_;
    committed += kFrameHeaderSize + payload_bytes;
  }
  CURE_RETURN_IF_ERROR(reader.Close());

  wal->recovery_.batches = wal->total_batches_;
  wal->recovery_.rows = wal->total_rows_;
  wal->recovery_.truncated_bytes = file_size - committed;
  if (committed < file_size) {
    CURE_RETURN_IF_ERROR(storage::TruncateFile(path, committed));
  }
  CURE_RETURN_IF_ERROR(
      wal->writer_.Open(path, 1 << 16, storage::FileWriter::OpenMode::kAppend));
  // Make the (possibly just-truncated) entry durable before accepting new
  // commits — recovery decisions must not be undone by a crash.
  CURE_RETURN_IF_ERROR(storage::SyncDir(storage::DirName(path)));
  wal->file_bytes_ = committed;
  wal->recovery_.seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = wal->recovery_;
  return wal;
}

Status DeltaWal::AppendBatch(const RowBatch& batch) {
  if (batch.record_size() != record_size_) {
    return Status::InvalidArgument("RowBatch record size does not match WAL");
  }
  if (batch.rows() == 0) return Status::OK();
  CURE_TRACE_SPAN("cure.maintain.wal_append", "rows", batch.rows(), "bytes",
                  batch.bytes());
  const uint32_t row_count = static_cast<uint32_t>(batch.rows());
  const uint64_t checksum = Checksum(batch.data(), batch.bytes());
  CURE_RETURN_IF_ERROR(writer_.Append(&kFrameMagic, 4));
  CURE_RETURN_IF_ERROR(writer_.Append(&row_count, 4));
  CURE_RETURN_IF_ERROR(writer_.Append(&checksum, 8));
  CURE_RETURN_IF_ERROR(writer_.Append(batch.data(), batch.bytes()));
  {
    CURE_TRACE_SPAN("cure.maintain.wal_fsync");
    CURE_RETURN_IF_ERROR(writer_.Sync());  // Commit point.
  }
  total_rows_ += batch.rows();
  ++total_batches_;
  file_bytes_ += kFrameHeaderSize + batch.bytes();
  return Status::OK();
}

}  // namespace maintain
}  // namespace cure
