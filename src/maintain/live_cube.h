#ifndef CURE_MAINTAIN_LIVE_CUBE_H_
#define CURE_MAINTAIN_LIVE_CUBE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/cure.h"
#include "maintain/delta_wal.h"
#include "query/node_query.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"
#include "schema/node_id.h"

namespace cure {
namespace maintain {

/// One immutable serving version: a cube and its query engine, identified by
/// a monotonically increasing version number (the serving layer's cache
/// epoch). Handed out as shared_ptr<const CubeSnapshot>; a query holds its
/// snapshot for the duration of execution, so a refresh never mutates a cube
/// a reader can still see.
struct CubeSnapshot {
  uint64_t version = 0;
  uint64_t rows = 0;  ///< fact rows reflected in this cube
  const engine::CureCube* cube = nullptr;  ///< owned by the replica
  std::unique_ptr<query::CureQueryEngine> engine;
};

/// Outcome of one refresh attempt.
struct RefreshStats {
  uint64_t version = 0;       ///< active version after the attempt
  uint64_t rows_applied = 0;  ///< rows newly visible vs the previous version
  bool refreshed = false;     ///< a new version was published
  bool used_delta = false;    ///< ApplyDelta path (else staged rebuild)
  bool skipped_busy = false;  ///< standby still pinned by in-flight queries
  double seconds = 0;
  /// Why the delta path was declined (ApplyDelta's kFailedPrecondition
  /// message), empty when the delta path ran or was not attempted.
  std::string fallback_reason;
};

/// Operator-facing staleness view.
struct Freshness {
  uint64_t version = 0;
  uint64_t snapshot_rows = 0;  ///< rows reflected in the served version
  uint64_t total_rows = 0;     ///< rows durably appended (base + WAL)
  uint64_t pending_rows = 0;   ///< total_rows - snapshot_rows
  uint64_t pending_bytes = 0;
  double staleness_seconds = 0;     ///< age of the oldest unapplied append
  double last_refresh_unix = 0;     ///< wall time of the last publish
  double last_refresh_seconds = 0;  ///< duration of the last refresh
};

struct MaintainOptions {
  /// Durable WAL file; replayed (and torn tails truncated) at Open.
  std::string wal_path;
  /// Refresh triggers: pending rows / pending bytes (either fires), and an
  /// optional periodic check (0 disables the timer thread).
  uint64_t refresh_rows = 4096;
  uint64_t refresh_bytes = 4ull << 20;
  double refresh_seconds = 0;
  /// Build options for the initial build and staged rebuilds. The delta
  /// path needs the defaults (tall plan, complete cube); a non-default
  /// configuration simply routes every refresh through the rebuild path.
  engine::CureOptions build;
  double fact_cache_fraction = 1.0;
  /// Force the staged-rebuild path even when ApplyDelta's preconditions
  /// hold (benchmarks compare the two).
  bool allow_delta = true;
  /// Transient-I/O resilience: a refresh attempt failing with kIoError is
  /// retried up to `io_retry_attempts` total attempts with exponential
  /// backoff starting at `io_retry_backoff_ms` and capped at
  /// `io_retry_backoff_cap_ms`. Non-I/O errors never retry. On persistent
  /// failure the published snapshot stays untouched and refresh_failed
  /// counts every failed attempt (surfaced in STATS).
  int io_retry_attempts = 3;
  uint64_t io_retry_backoff_ms = 1;
  uint64_t io_retry_backoff_cap_ms = 100;
};

/// A live, crash-safe CURE cube: durable row ingest through a delta WAL,
/// immutable versioned snapshots, and zero-downtime refresh.
///
/// Two replicas (fact table + cube) alternate between *active* (the
/// published snapshot queries run on) and *standby*. A refresh appends the
/// pending rows to the standby's table, applies `ApplyDelta` — falling back
/// to a staged rebuild (`BuildCure`, the build pipeline) when the delta
/// path returns kFailedPrecondition — builds a fresh engine, and atomically
/// publishes the standby as the new active version. In-flight queries keep
/// their snapshot; the previous version stays intact until its last reader
/// releases it (the manager checks the retired snapshot's refcount before
/// ever mutating that replica again). See DESIGN.md §10.
///
/// Thread-safe: Append/Flush/snapshot/freshness may be called from any
/// thread. Refreshes are serialized; background refreshes run on the
/// ThreadPool set via set_refresh_pool (the serving layer shares its query
/// pool) or inline on the appending thread when no pool is set.
///
/// Lifetime: outlive the CubeServer (and its pool) serving it.
class LiveCube {
 public:
  /// Opens a live cube: replays the WAL at `options.wal_path` into `base`
  /// (recovering every committed append from prior runs, truncating a torn
  /// tail), builds the initial cube version over the recovered table, and
  /// starts the optional refresh timer.
  static Result<std::unique_ptr<LiveCube>> Open(
      const schema::CubeSchema& schema, schema::FactTable base,
      const MaintainOptions& options);

  ~LiveCube();

  LiveCube(const LiveCube&) = delete;
  LiveCube& operator=(const LiveCube&) = delete;

  /// Durably appends a batch: one WAL frame, fsynced before return. Rows
  /// become queryable at the next refresh. Validates leaf codes against the
  /// schema before writing anything.
  Status Append(const RowBatch& batch);
  Status AppendRow(const uint32_t* dims, const int64_t* measures);

  /// Synchronous refresh: drains every row committed before the call into a
  /// new published version (waiting, briefly, for in-flight queries on the
  /// standby's previous version to finish). No-op when nothing is pending.
  Result<RefreshStats> Flush();

  /// The current serving version. Never null after Open.
  std::shared_ptr<const CubeSnapshot> snapshot() const;

  Freshness freshness() const;

  /// Background refreshes run on `pool` (null = inline on the trigger
  /// thread). The pool must outlive this object or stop accepting tasks
  /// before it is destroyed (ThreadPool::Shutdown does).
  void set_refresh_pool(ThreadPool* pool) { pool_ = pool; }

  /// Test seam: invoked at the start of every refresh attempt that has
  /// pending rows; a non-OK return fails the attempt with that status
  /// (counted in refresh_failed, subject to the kIoError retry policy).
  /// Lets fault tests exercise the retry/backoff path even when the cube
  /// itself rebuilds purely in memory. Set before concurrent use.
  void set_refresh_hook(std::function<Status()> hook) {
    refresh_hook_ = std::move(hook);
  }

  const schema::CubeSchema& schema() const { return schema_; }
  const schema::NodeIdCodec& codec() const { return codec_; }
  const MaintainOptions& options() const { return options_; }
  const WalRecoveryStats& wal_recovery() const { return wal_->recovery(); }
  uint64_t wal_rows() const;

  /// Monitoring: refresh counters and latency histograms (microseconds),
  /// rendered into the serving layer's STATS text.
  struct Counters {
    uint64_t refresh_total = 0;
    uint64_t refresh_delta = 0;
    uint64_t refresh_rebuild = 0;
    uint64_t refresh_failed = 0;
    uint64_t refresh_skipped = 0;
    uint64_t append_batches = 0;
    uint64_t append_rows = 0;
  };
  Counters counters() const;
  const LogHistogram& refresh_latency_us() const { return refresh_latency_us_; }
  const LogHistogram& wal_replay_us() const { return wal_replay_us_; }

 private:
  /// A fact table + cube pair. Fixed address (unique_ptr) — snapshots and
  /// cubes point into it.
  struct Replica {
    schema::FactTable table{0, 0};
    std::unique_ptr<engine::CureCube> cube;
  };

  LiveCube(const schema::CubeSchema& schema, const MaintainOptions& options);

  /// One refresh attempt (serialized). `wait_for_standby` blocks until the
  /// standby replica's previous version drains; otherwise a pinned standby
  /// returns skipped_busy and the next trigger retries.
  Result<RefreshStats> RefreshOnce(bool wait_for_standby);

  /// RefreshOnce wrapped in the kIoError retry policy (MaintainOptions'
  /// io_retry_* knobs): transient I/O failures back off exponentially and
  /// retry; anything else — and exhaustion — propagates.
  Result<RefreshStats> RefreshWithRetry(bool wait_for_standby);

  /// Schedules a background refresh if none is queued or running.
  void MaybeScheduleRefresh();
  void TimerLoop();
  uint64_t PendingRowsLocked() const;  // state_mu_ held

  schema::CubeSchema schema_;
  schema::NodeIdCodec codec_;
  MaintainOptions options_;
  std::unique_ptr<DeltaWal> wal_;
  size_t record_size_ = 0;

  // Durable-append state: the WAL and the in-memory row log (packed records
  // appended since Open; replicas re-read their unapplied suffix from it).
  mutable std::mutex state_mu_;
  std::vector<uint8_t> row_log_;
  uint64_t base_rows_ = 0;  ///< table rows at Open (incl. WAL recovery)
  uint64_t log_rows_ = 0;
  bool has_pending_ = false;
  std::chrono::steady_clock::time_point oldest_pending_{};
  double last_refresh_unix_ = 0;
  double last_refresh_seconds_ = 0;

  // Version state. active_ is the published snapshot; retired_ is the
  // previous one, kept so the refresh path can verify its readers drained
  // before mutating that replica again.
  mutable std::mutex snap_mu_;
  std::shared_ptr<const CubeSnapshot> active_;
  std::shared_ptr<const CubeSnapshot> retired_;

  // Refresh state (refresh_mu_ serializes refreshes; active_replica_ is
  // only touched under it).
  std::mutex refresh_mu_;
  std::unique_ptr<Replica> replicas_[2];
  int active_replica_ = 0;
  uint64_t next_version_ = 1;
  std::atomic<bool> refresh_scheduled_{false};
  ThreadPool* pool_ = nullptr;
  std::function<Status()> refresh_hook_;

  // Timer thread (refresh_seconds > 0 only).
  std::thread timer_;
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::atomic<bool> stopping_{false};

  // Monitoring.
  std::atomic<uint64_t> refresh_total_{0}, refresh_delta_{0},
      refresh_rebuild_{0}, refresh_failed_{0}, refresh_skipped_{0},
      append_batches_{0}, append_rows_{0};
  LogHistogram refresh_latency_us_;
  LogHistogram wal_replay_us_;
};

}  // namespace maintain
}  // namespace cure

#endif  // CURE_MAINTAIN_LIVE_CUBE_H_
