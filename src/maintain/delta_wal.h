#ifndef CURE_MAINTAIN_DELTA_WAL_H_
#define CURE_MAINTAIN_DELTA_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/file_io.h"

namespace cure {
namespace maintain {

/// A batch of fact rows in packed record form: each record is the fact
/// table's fixed-width binary layout, [D x u32 leaf codes][M x i64 raw
/// measures]. The unit of WAL commit and of refresh application.
class RowBatch {
 public:
  RowBatch(int num_dims, int num_measures)
      : num_dims_(num_dims),
        num_measures_(num_measures),
        record_size_(4ull * num_dims + 8ull * num_measures) {}

  void Add(const uint32_t* dims, const int64_t* measures);

  int num_dims() const { return num_dims_; }
  int num_measures() const { return num_measures_; }
  size_t record_size() const { return record_size_; }
  uint64_t rows() const { return rows_; }
  uint64_t bytes() const { return packed_.size(); }
  const uint8_t* data() const { return packed_.data(); }
  void Clear() {
    packed_.clear();
    rows_ = 0;
  }

 private:
  int num_dims_;
  int num_measures_;
  size_t record_size_;
  uint64_t rows_ = 0;
  std::vector<uint8_t> packed_;
};

/// Outcome of WAL replay at open: how much committed data was recovered and
/// whether a torn tail (a crash mid-append) had to be truncated away.
struct WalRecoveryStats {
  uint64_t batches = 0;
  uint64_t rows = 0;
  uint64_t truncated_bytes = 0;  ///< torn-tail bytes discarded
  double seconds = 0;
};

/// Durable write-ahead log of appended fact rows.
///
/// File layout:
///   [file header: u64 magic "CUREWAL1" | u32 num_dims | u32 num_measures]
///   [frame]*
/// Frame layout (one committed batch):
///   [u32 frame magic | u32 row_count | u64 FNV-1a checksum of the payload |
///    payload: row_count fixed-width records]
///
/// Append goes through storage::FileWriter (buffered) and commits with
/// Sync() (fsync) — a batch is durable exactly when AppendBatch returns OK.
/// Open replays the file front to back, stops at the first frame that is
/// incomplete or fails its checksum (a torn write), truncates the file to
/// the committed prefix, and re-opens for append. After `kill -9` at any
/// byte, replay recovers exactly the batches whose AppendBatch completed.
///
/// Not internally synchronized: callers (LiveCube) serialize AppendBatch.
class DeltaWal {
 public:
  static constexpr uint64_t kFileMagic = 0x3157414C45525543ull;  // "CUREWAL1"
  static constexpr uint32_t kFrameMagic = 0x43574652u;           // "CWFR"
  static constexpr size_t kFileHeaderSize = 8 + 4 + 4;
  static constexpr size_t kFrameHeaderSize = 4 + 4 + 8;

  /// Receives one recovered packed record during replay.
  using RowCallback = std::function<void(const uint8_t* record)>;

  /// Opens (creating if missing) the WAL at `path` for rows of `num_dims`
  /// dimensions and `num_measures` raw measures. An existing file is
  /// replayed: every committed record is delivered to `on_row` in append
  /// order and a torn tail is truncated. Fails if an existing header's
  /// shape does not match.
  static Result<std::unique_ptr<DeltaWal>> Open(const std::string& path,
                                                int num_dims, int num_measures,
                                                const RowCallback& on_row,
                                                WalRecoveryStats* stats = nullptr);

  /// Appends one batch as a single frame and fsyncs. Durable on OK return.
  /// Empty batches are a no-op.
  Status AppendBatch(const RowBatch& batch);

  uint64_t total_rows() const { return total_rows_; }        ///< committed rows
  uint64_t total_batches() const { return total_batches_; }  ///< committed frames
  uint64_t file_bytes() const { return file_bytes_; }
  size_t record_size() const { return record_size_; }
  const std::string& path() const { return path_; }
  const WalRecoveryStats& recovery() const { return recovery_; }

  /// FNV-1a 64-bit over `len` bytes — the frame checksum.
  static uint64_t Checksum(const uint8_t* data, size_t len);

 private:
  DeltaWal(std::string path, int num_dims, int num_measures)
      : path_(std::move(path)),
        num_dims_(num_dims),
        num_measures_(num_measures),
        record_size_(4ull * num_dims + 8ull * num_measures) {}

  std::string path_;
  int num_dims_;
  int num_measures_;
  size_t record_size_;
  storage::FileWriter writer_;
  uint64_t total_rows_ = 0;
  uint64_t total_batches_ = 0;
  uint64_t file_bytes_ = 0;
  WalRecoveryStats recovery_;
};

}  // namespace maintain
}  // namespace cure

#endif  // CURE_MAINTAIN_DELTA_WAL_H_
