#include "maintain/live_cube.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/stopwatch.h"
#include "common/trace.h"
#include "engine/incremental.h"

namespace cure {
namespace maintain {
namespace {

double UnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// How long a non-waiting refresh is allowed to poll for the standby's old
/// readers before giving up (skipped_busy); Flush() polls indefinitely.
constexpr int kBusyPollMicros = 200;
constexpr int kBusyPollLimit = 50;  // 10 ms

}  // namespace

LiveCube::LiveCube(const schema::CubeSchema& schema,
                   const MaintainOptions& options)
    : schema_(schema), codec_(schema), options_(options) {
  record_size_ = 4ull * schema.num_dims() + 8ull * schema.num_raw_measures();
}

Result<std::unique_ptr<LiveCube>> LiveCube::Open(
    const schema::CubeSchema& schema, schema::FactTable base,
    const MaintainOptions& options) {
  if (schema.num_dims() != base.num_dims() ||
      schema.num_raw_measures() != base.num_measures()) {
    return Status::InvalidArgument(
        "fact table shape does not match the cube schema");
  }
  if (options.wal_path.empty()) {
    return Status::InvalidArgument("MaintainOptions.wal_path is required");
  }
  auto live = std::unique_ptr<LiveCube>(new LiveCube(schema, options));

  // Replay the WAL straight into the base table: rows durably appended by
  // prior runs (possibly never refreshed before a crash) become part of the
  // initial build.
  auto replica = std::make_unique<Replica>();
  replica->table = std::move(base);
  schema::FactTable* table = &replica->table;
  const int num_dims = schema.num_dims();
  // Measures sit at offset 4*D inside a record, which is 8-byte aligned
  // only for even D — stage them through an aligned buffer.
  std::vector<int64_t> measures(schema.num_raw_measures());
  CURE_ASSIGN_OR_RETURN(
      live->wal_,
      DeltaWal::Open(options.wal_path, num_dims, schema.num_raw_measures(),
                     [table, num_dims, &measures](const uint8_t* record) {
                       std::memcpy(measures.data(), record + 4ull * num_dims,
                                   8ull * measures.size());
                       table->AppendRow(
                           reinterpret_cast<const uint32_t*>(record),
                           measures.data());
                     }));
  live->wal_replay_us_.Record(
      static_cast<int64_t>(live->wal_->recovery().seconds * 1e6));
  live->base_rows_ = replica->table.num_rows();

  // Initial version.
  Stopwatch build_watch;
  engine::FactInput input;
  input.table = &replica->table;
  CURE_ASSIGN_OR_RETURN(replica->cube,
                        engine::BuildCure(schema, input, options.build));
  auto snap = std::make_shared<CubeSnapshot>();
  snap->version = live->next_version_++;
  snap->rows = replica->table.num_rows();
  snap->cube = replica->cube.get();
  CURE_ASSIGN_OR_RETURN(
      snap->engine, query::CureQueryEngine::Create(replica->cube.get(),
                                                   options.fact_cache_fraction));
  live->replicas_[0] = std::move(replica);
  live->active_replica_ = 0;
  live->active_ = std::move(snap);
  live->last_refresh_unix_ = UnixSeconds();
  live->last_refresh_seconds_ = build_watch.ElapsedSeconds();

  if (options.refresh_seconds > 0) {
    live->timer_ = std::thread([raw = live.get()] { raw->TimerLoop(); });
  }
  return live;
}

LiveCube::~LiveCube() {
  stopping_.store(true);
  if (timer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      timer_cv_.notify_all();
    }
    timer_.join();
  }
  // Wait out any in-flight background refresh (it checks stopping_ and
  // bails early, but may be mid-build).
  std::lock_guard<std::mutex> lock(refresh_mu_);
}

Status LiveCube::Append(const RowBatch& batch) {
  if (batch.num_dims() != schema_.num_dims() ||
      batch.num_measures() != schema_.num_raw_measures()) {
    return Status::InvalidArgument("RowBatch shape does not match the schema");
  }
  if (batch.rows() == 0) return Status::OK();
  // Validate leaf codes before anything touches the WAL: a bad code must
  // not become durable.
  for (uint64_t r = 0; r < batch.rows(); ++r) {
    const uint8_t* record = batch.data() + r * record_size_;
    for (int d = 0; d < schema_.num_dims(); ++d) {
      uint32_t code;
      std::memcpy(&code, record + 4ull * d, 4);
      if (code >= schema_.dim(d).leaf_cardinality()) {
        return Status::InvalidArgument(
            "row " + std::to_string(r) + ": dimension '" +
            schema_.dim(d).name() + "' leaf code " + std::to_string(code) +
            " out of range (cardinality " +
            std::to_string(schema_.dim(d).leaf_cardinality()) + ")");
      }
    }
  }

  bool trigger = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    CURE_RETURN_IF_ERROR(wal_->AppendBatch(batch));
    const size_t off = row_log_.size();
    row_log_.resize(off + batch.bytes());
    std::memcpy(row_log_.data() + off, batch.data(), batch.bytes());
    log_rows_ += batch.rows();
    if (!has_pending_) {
      has_pending_ = true;
      oldest_pending_ = std::chrono::steady_clock::now();
    }
    const uint64_t pending = PendingRowsLocked();
    trigger = pending >= options_.refresh_rows ||
              pending * record_size_ >= options_.refresh_bytes;
  }
  append_batches_.fetch_add(1, std::memory_order_relaxed);
  append_rows_.fetch_add(batch.rows(), std::memory_order_relaxed);
  if (trigger) MaybeScheduleRefresh();
  return Status::OK();
}

Status LiveCube::AppendRow(const uint32_t* dims, const int64_t* measures) {
  RowBatch batch(schema_.num_dims(), schema_.num_raw_measures());
  batch.Add(dims, measures);
  return Append(batch);
}

std::shared_ptr<const CubeSnapshot> LiveCube::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return active_;
}

uint64_t LiveCube::PendingRowsLocked() const {
  uint64_t snapshot_rows = 0;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snapshot_rows = active_->rows;
  }
  return base_rows_ + log_rows_ - snapshot_rows;
}

Freshness LiveCube::freshness() const {
  Freshness f;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    f.version = active_->version;
    f.snapshot_rows = active_->rows;
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  f.total_rows = base_rows_ + log_rows_;
  f.pending_rows = f.total_rows - f.snapshot_rows;
  f.pending_bytes = f.pending_rows * record_size_;
  if (has_pending_ && f.pending_rows > 0) {
    f.staleness_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - oldest_pending_)
                              .count();
  }
  f.last_refresh_unix = last_refresh_unix_;
  f.last_refresh_seconds = last_refresh_seconds_;
  return f;
}

LiveCube::Counters LiveCube::counters() const {
  Counters c;
  c.refresh_total = refresh_total_.load(std::memory_order_relaxed);
  c.refresh_delta = refresh_delta_.load(std::memory_order_relaxed);
  c.refresh_rebuild = refresh_rebuild_.load(std::memory_order_relaxed);
  c.refresh_failed = refresh_failed_.load(std::memory_order_relaxed);
  c.refresh_skipped = refresh_skipped_.load(std::memory_order_relaxed);
  c.append_batches = append_batches_.load(std::memory_order_relaxed);
  c.append_rows = append_rows_.load(std::memory_order_relaxed);
  return c;
}

uint64_t LiveCube::wal_rows() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return wal_->total_rows();
}

Result<RefreshStats> LiveCube::Flush() { return RefreshWithRetry(true); }

Result<RefreshStats> LiveCube::RefreshWithRetry(bool wait_for_standby) {
  const int attempts = options_.io_retry_attempts > 0
                           ? options_.io_retry_attempts
                           : 1;
  uint64_t backoff_ms = std::max<uint64_t>(options_.io_retry_backoff_ms, 1);
  for (int attempt = 1;; ++attempt) {
    auto result = RefreshOnce(wait_for_standby);
    // Only transient I/O failures retry: the published snapshot is still
    // serving, so a capped backoff costs staleness, not availability.
    if (result.ok() || result.status().code() != StatusCode::kIoError ||
        attempt >= attempts || stopping_.load()) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, options_.io_retry_backoff_cap_ms);
  }
}

void LiveCube::MaybeScheduleRefresh() {
  if (stopping_.load()) return;
  if (refresh_scheduled_.exchange(true)) return;
  auto job = [this]() -> Status {
    auto result = RefreshWithRetry(false);
    refresh_scheduled_.store(false);
    if (!result.ok()) return result.status();
    // Rows that arrived while we were refreshing (or a busy skip) may have
    // re-crossed the threshold with no future append to re-trigger it.
    bool retrigger = false;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      const uint64_t pending = PendingRowsLocked();
      retrigger = pending >= options_.refresh_rows ||
                  pending * record_size_ >= options_.refresh_bytes;
    }
    if (retrigger) MaybeScheduleRefresh();
    return Status::OK();
  };
  if (pool_ != nullptr) {
    pool_->Submit(job);
  } else {
    job();
  }
}

void LiveCube::TimerLoop() {
  const auto period = std::chrono::duration<double>(options_.refresh_seconds);
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!stopping_.load()) {
    timer_cv_.wait_for(lock, period, [this] { return stopping_.load(); });
    if (stopping_.load()) return;
    bool pending = false;
    {
      std::lock_guard<std::mutex> state_lock(state_mu_);
      pending = PendingRowsLocked() > 0;
    }
    if (pending) MaybeScheduleRefresh();
  }
}

Result<RefreshStats> LiveCube::RefreshOnce(bool wait_for_standby) {
  std::lock_guard<std::mutex> refresh_lock(refresh_mu_);
  CURE_TRACE_SPAN("cure.maintain.refresh");
  Stopwatch watch;
  RefreshStats stats;
  if (stopping_.load() && !wait_for_standby) {
    std::lock_guard<std::mutex> lock(snap_mu_);
    stats.version = active_->version;
    return stats;
  }

  // Capture the refresh target: every row committed before this point.
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    target = base_rows_ + log_rows_;
  }
  uint64_t prev_rows = 0;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    stats.version = active_->version;
    prev_rows = active_->rows;
    if (prev_rows == target) return stats;  // Nothing pending.
  }

  // Fault-test seam: a failing hook is indistinguishable from an attempt
  // that died in real I/O — counted, retried per policy, snapshot intact.
  if (refresh_hook_) {
    Status hook_status = refresh_hook_();
    if (!hook_status.ok()) {
      refresh_failed_.fetch_add(1, std::memory_order_relaxed);
      return hook_status;
    }
  }

  // The standby replica may still be read by queries that started before
  // the *previous* swap (they hold retired_). Never mutate it under a
  // reader: wait for the refcount to drain (Flush) or skip and let the next
  // trigger retry (background refresh, which must not block a pool worker).
  const int standby_idx = 1 - active_replica_;
  for (int poll = 0;; ++poll) {
    {
      std::lock_guard<std::mutex> lock(snap_mu_);
      if (retired_ == nullptr) break;
      // Queries only ever copy active_, so once retired_'s count drops to
      // ours alone it cannot rise again: the standby has no readers left.
      if (retired_.use_count() == 1) {
        retired_.reset();  // Destroys the standby's old engine.
        break;
      }
    }
    if (!wait_for_standby && poll >= kBusyPollLimit) {
      refresh_skipped_.fetch_add(1, std::memory_order_relaxed);
      stats.skipped_busy = true;
      return stats;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(kBusyPollMicros));
  }

  // Materialize the standby replica at `target` rows: copy-on-first-use,
  // then append its unapplied row-log suffix.
  if (replicas_[standby_idx] == nullptr) {
    auto fresh = std::make_unique<Replica>();
    fresh->table = replicas_[active_replica_]->table;  // Deep copy.
    replicas_[standby_idx] = std::move(fresh);
  }
  Replica* standby = replicas_[standby_idx].get();
  const uint64_t old_rows = standby->table.num_rows();
  if (old_rows < target) {
    CURE_TRACE_SPAN("cure.maintain.refresh.catchup", "rows", target - old_rows);
    std::vector<uint8_t> slice((target - old_rows) * record_size_);
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      std::memcpy(slice.data(),
                  row_log_.data() + (old_rows - base_rows_) * record_size_,
                  slice.size());
    }
    standby->table.Reserve(target);
    std::vector<int64_t> measures(schema_.num_raw_measures());
    for (size_t off = 0; off < slice.size(); off += record_size_) {
      std::memcpy(measures.data(), slice.data() + off + 4ull * schema_.num_dims(),
                  8ull * schema_.num_raw_measures());
      standby->table.AppendRow(
          reinterpret_cast<const uint32_t*>(slice.data() + off),
          measures.data());
    }
  }
  // Operator-facing: rows newly visible relative to the previous published
  // version. (The standby's own catch-up, target - old_rows, also covers
  // rows already published by the refresh before this one.)
  stats.rows_applied = target - prev_rows;

  // Fold the delta in: ApplyDelta when its preconditions hold, the staged
  // rebuild pipeline otherwise (kFailedPrecondition is the arbitration
  // signal, any other error is real).
  bool delta_applied = false;
  if (standby->cube == nullptr && options_.allow_delta) {
    // The first refresh on each replica has no cube to update in place;
    // steady state (every later refresh) takes the delta path.
    stats.fallback_reason = "standby replica has no cube yet (first refresh)";
  }
  if (standby->cube != nullptr && options_.allow_delta) {
    CURE_TRACE_SPAN("cure.maintain.refresh.delta", "rows", target - old_rows);
    auto update =
        engine::ApplyDelta(standby->cube.get(), standby->table, old_rows);
    if (update.ok()) {
      delta_applied = true;
    } else if (update.status().code() == StatusCode::kFailedPrecondition) {
      stats.fallback_reason = update.status().message();
    } else {
      refresh_failed_.fetch_add(1, std::memory_order_relaxed);
      return update.status();
    }
  }
  if (!delta_applied) {
    CURE_TRACE_SPAN("cure.maintain.refresh.rebuild", "rows",
                    standby->table.num_rows());
    standby->cube.reset();  // Release before rebuilding (peak memory).
    engine::FactInput input;
    input.table = &standby->table;
    auto rebuilt = engine::BuildCure(schema_, input, options_.build);
    if (!rebuilt.ok()) {
      refresh_failed_.fetch_add(1, std::memory_order_relaxed);
      return rebuilt.status();
    }
    standby->cube = std::move(rebuilt).value();
  }

  auto snap = std::make_shared<CubeSnapshot>();
  snap->rows = standby->table.num_rows();
  snap->cube = standby->cube.get();
  auto engine = query::CureQueryEngine::Create(standby->cube.get(),
                                               options_.fact_cache_fraction);
  if (!engine.ok()) {
    refresh_failed_.fetch_add(1, std::memory_order_relaxed);
    return engine.status();
  }
  snap->engine = std::move(engine).value();
  snap->version = next_version_++;
  stats.version = snap->version;
  stats.refreshed = true;
  stats.used_delta = delta_applied;

  // Publish: swap the active snapshot; the old one becomes retired and pins
  // its replica until its readers drain.
  {
    CURE_TRACE_SPAN("cure.maintain.refresh.publish", "version", snap->version);
    std::lock_guard<std::mutex> lock(snap_mu_);
    retired_ = std::move(active_);
    active_ = std::move(snap);
  }
  active_replica_ = standby_idx;
  stats.seconds = watch.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    last_refresh_unix_ = UnixSeconds();
    last_refresh_seconds_ = stats.seconds;
    if (base_rows_ + log_rows_ == target) {
      has_pending_ = false;
    } else {
      // Rows arrived during the refresh; approximate their age from now.
      oldest_pending_ = std::chrono::steady_clock::now();
    }
  }
  refresh_total_.fetch_add(1, std::memory_order_relaxed);
  (delta_applied ? refresh_delta_ : refresh_rebuild_)
      .fetch_add(1, std::memory_order_relaxed);
  refresh_latency_us_.Record(static_cast<int64_t>(stats.seconds * 1e6));
  return stats;
}

}  // namespace maintain
}  // namespace cure
