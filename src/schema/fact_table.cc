#include "schema/fact_table.h"

#include <cstring>

namespace cure {
namespace schema {

Status FactTable::WriteTo(storage::Relation* out) const {
  if (out->record_size() != RecordSize()) {
    return Status::InvalidArgument("relation record size mismatch");
  }
  std::vector<uint8_t> rec(RecordSize());
  for (uint64_t r = 0; r < num_rows_; ++r) {
    uint8_t* p = rec.data();
    for (size_t d = 0; d < dims_.size(); ++d) {
      const uint32_t v = dims_[d][r];
      std::memcpy(p, &v, 4);
      p += 4;
    }
    for (size_t m = 0; m < measures_.size(); ++m) {
      const int64_t v = measures_[m][r];
      std::memcpy(p, &v, 8);
      p += 8;
    }
    CURE_RETURN_IF_ERROR(out->Append(rec.data()));
  }
  return Status::OK();
}

Result<FactTable> FactTable::ReadFrom(const storage::Relation& rel, int num_dims,
                                      int num_measures) {
  FactTable table(num_dims, num_measures);
  if (rel.record_size() != table.RecordSize()) {
    return Status::InvalidArgument("relation record size mismatch");
  }
  table.Reserve(rel.num_rows());
  storage::Relation::Scanner scan(rel);
  std::vector<uint32_t> dims(num_dims);
  std::vector<int64_t> measures(num_measures);
  while (const uint8_t* rec = scan.Next()) {
    const uint8_t* p = rec;
    for (int d = 0; d < num_dims; ++d) {
      std::memcpy(&dims[d], p, 4);
      p += 4;
    }
    for (int m = 0; m < num_measures; ++m) {
      std::memcpy(&measures[m], p, 8);
      p += 8;
    }
    table.AppendRow(dims.data(), measures.data());
  }
  CURE_RETURN_IF_ERROR(scan.status());
  return table;
}

}  // namespace schema
}  // namespace cure
