#include "schema/lattice.h"

namespace cure {
namespace schema {

bool Lattice::IsAncestorOf(NodeId detailed, NodeId coarse) const {
  std::vector<int> d_levels = codec_.Decode(detailed);
  std::vector<int> c_levels = codec_.Decode(coarse);
  for (int d = 0; d < schema_->num_dims(); ++d) {
    const int all = codec_.all_level(d);
    if (c_levels[d] == all) continue;  // ALL derivable from anything.
    if (d_levels[d] == all) return false;
    if (!schema_->dim(d).Derives(d_levels[d], c_levels[d])) return false;
  }
  return true;
}

std::vector<NodeId> Lattice::AllNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(codec_.num_nodes());
  for (NodeId id = 0; id < codec_.num_nodes(); ++id) nodes.push_back(id);
  return nodes;
}

int Lattice::NumGroupingDims(NodeId id) const {
  const std::vector<int> levels = codec_.Decode(id);
  int count = 0;
  for (int d = 0; d < schema_->num_dims(); ++d) {
    if (levels[d] != codec_.all_level(d)) ++count;
  }
  return count;
}

}  // namespace schema
}  // namespace cure
