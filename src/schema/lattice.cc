#include "schema/lattice.h"

#include <algorithm>

namespace cure {
namespace schema {

bool Lattice::IsAncestorOf(NodeId detailed, NodeId coarse) const {
  std::vector<int> d_levels = codec_.Decode(detailed);
  std::vector<int> c_levels = codec_.Decode(coarse);
  for (int d = 0; d < schema_->num_dims(); ++d) {
    const int all = codec_.all_level(d);
    if (c_levels[d] == all) continue;  // ALL derivable from anything.
    if (d_levels[d] == all) return false;
    if (!schema_->dim(d).Derives(d_levels[d], c_levels[d])) return false;
  }
  return true;
}

std::vector<NodeId> Lattice::AllNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(codec_.num_nodes());
  for (NodeId id = 0; id < codec_.num_nodes(); ++id) nodes.push_back(id);
  return nodes;
}

Result<NodeId> Lattice::RollUpDim(NodeId node, int dim) const {
  if (dim < 0 || dim >= schema_->num_dims()) {
    return Status::InvalidArgument("dimension index out of range");
  }
  std::vector<int> levels = codec_.Decode(node);
  const int all = codec_.all_level(dim);
  if (levels[dim] == all) {
    return Status::InvalidArgument("dimension " + schema_->dim(dim).name() +
                                   " is already at ALL");
  }
  const std::vector<int>& parents =
      schema_->dim(dim).level(levels[dim]).parents;
  if (parents.empty()) {
    levels[dim] = all;
  } else {
    levels[dim] = *std::min_element(parents.begin(), parents.end());
  }
  return codec_.Encode(levels);
}

Result<NodeId> Lattice::DrillDownDim(NodeId node, int dim) const {
  if (dim < 0 || dim >= schema_->num_dims()) {
    return Status::InvalidArgument("dimension index out of range");
  }
  std::vector<int> levels = codec_.Decode(node);
  const Dimension& dimension = schema_->dim(dim);
  if (levels[dim] == codec_.all_level(dim)) {
    levels[dim] = dimension.plan_roots().front();
    return codec_.Encode(levels);
  }
  int child = -1;
  for (int l = 0; l < dimension.num_levels(); ++l) {
    const std::vector<int>& parents = dimension.level(l).parents;
    if (std::find(parents.begin(), parents.end(), levels[dim]) !=
        parents.end()) {
      child = std::max(child, l);
    }
  }
  if (child < 0) {
    return Status::InvalidArgument("dimension " + dimension.name() +
                                   " is already at its leaf level");
  }
  levels[dim] = child;
  return codec_.Encode(levels);
}

int Lattice::NumGroupingDims(NodeId id) const {
  const std::vector<int> levels = codec_.Decode(id);
  int count = 0;
  for (int d = 0; d < schema_->num_dims(); ++d) {
    if (levels[d] != codec_.all_level(d)) ++count;
  }
  return count;
}

}  // namespace schema
}  // namespace cure
