#ifndef CURE_SCHEMA_HIERARCHY_H_
#define CURE_SCHEMA_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cure {
namespace schema {

/// One level of a dimension hierarchy.
///
/// Level 0 is the leaf (most detailed) level; the fact table stores leaf
/// codes. Every level carries a mapping from leaf codes to this level's
/// codes, so rolling a tuple up to any level is one array lookup.
/// `parents` lists the levels exactly one step less detailed (for a linear
/// hierarchy City -> Country -> Continent, Country's parents = {Continent}).
/// Complex (non-linear) hierarchies like day -> {week, month} give a level
/// several parents (day.parents = {week, month}); see Sec. 3.2 of the paper.
struct Level {
  std::string name;
  uint32_t cardinality = 0;
  /// leaf_to_code[leaf] = code of this level; identity (may be left empty)
  /// for level 0.
  std::vector<uint32_t> leaf_to_code;
  /// Indices of levels directly above (less detailed). Empty for maximal
  /// levels (the tops of the hierarchy).
  std::vector<int> parents;
};

/// A cube dimension with an arbitrary hierarchy of levels.
///
/// The implicit ALL level (single value) is *not* stored; its index is
/// `num_levels()` and is what the node-id codec uses for "dimension absent".
///
/// On construction the dimension derives the execution-plan metadata of
/// Sec. 3 of the paper:
///  * `plan_roots()` — levels entered via solid edges (the maximal levels;
///    exactly one for a linear hierarchy: the top).
///  * `plan_children(l)` — levels entered from `l` via dashed edges. For a
///    linear hierarchy these are {l-1}. For complex hierarchies the
///    *modified Rule 2* applies: a level with several parents is assigned to
///    the parent with maximum cardinality (ties to the lower level index),
///    so the execution plan stays a tree.
class Dimension {
 public:
  /// Validates and finalizes a dimension. Checks:
  ///  * level 0 mapping is identity (or empty),
  ///  * every parent edge is functionally consistent (same child code implies
  ///    same parent code for all leaves),
  ///  * parent levels have no greater cardinality than their children,
  ///  * the parent graph is acyclic and every non-leaf level is reachable
  ///    from level 0.
  static Result<Dimension> Create(std::string name, std::vector<Level> levels);

  /// Convenience: a linear hierarchy with proportional block roll-up maps.
  /// `cardinalities` are ordered leaf first, e.g. {10000, 1000, 10} for
  /// barcode -> brand -> economic_strength.
  static Dimension Linear(const std::string& name,
                          const std::vector<uint32_t>& cardinalities);

  /// Convenience: a flat dimension (single leaf level, no hierarchy).
  static Dimension Flat(const std::string& name, uint32_t cardinality);

  const std::string& name() const { return name_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  int all_level() const { return num_levels(); }
  const Level& level(int l) const { return levels_[l]; }
  uint32_t cardinality(int l) const { return levels_[l].cardinality; }
  uint32_t leaf_cardinality() const { return levels_[0].cardinality; }

  /// Rolls a leaf code up to `level` (< num_levels()).
  uint32_t CodeAt(uint32_t leaf_code, int level) const {
    if (level == 0) return leaf_code;
    return levels_[level].leaf_to_code[leaf_code];
  }

  /// True when codes at level `from` functionally determine codes at level
  /// `to` — i.e. `to` is reachable from `from` through parent edges (or
  /// equal, or the ALL level).
  bool Derives(int from, int to) const {
    if (to == all_level()) return true;
    if (from == all_level()) return from == to;
    return derives_[from][to];
  }

  /// Builds the code map from level `from` to a derivable level `to`
  /// (out[from_code] = to_code). Used when dereferencing tuples stored at a
  /// coarser-than-leaf granularity (the partition-pass node N of Sec. 4).
  Result<std::vector<uint32_t>> LevelToLevelMap(int from, int to) const;

  /// Levels introduced by solid edges in the execution plan.
  const std::vector<int>& plan_roots() const { return plan_roots_; }

  /// Levels reached from `l` by dashed edges in the execution plan.
  const std::vector<int>& plan_children(int l) const { return plan_children_[l]; }

  /// The dashed-edge parent of level `l` in the execution plan, or -1 for
  /// plan roots.
  int plan_parent(int l) const { return plan_parent_[l]; }

  bool is_linear() const { return is_linear_; }

 private:
  Dimension() = default;

  std::string name_;
  std::vector<Level> levels_;
  std::vector<int> plan_roots_;
  std::vector<std::vector<int>> plan_children_;
  std::vector<int> plan_parent_;
  std::vector<std::vector<bool>> derives_;  // derives_[from][to], levels only
  bool is_linear_ = true;
};

}  // namespace schema
}  // namespace cure

#endif  // CURE_SCHEMA_HIERARCHY_H_
