#ifndef CURE_SCHEMA_LATTICE_H_
#define CURE_SCHEMA_LATTICE_H_

#include <cstdint>
#include <vector>

#include "schema/cube_schema.h"
#include "schema/node_id.h"

namespace cure {
namespace schema {

/// The hierarchical cube lattice (Sec. 3 of the paper): one node per
/// combination of per-dimension hierarchy levels (including ALL).
///
/// Terminology follows the paper: node X is an *ancestor* of node Y when X
/// is at least as detailed as Y, i.e. Y's result can be computed from X's by
/// further aggregation. (The paper's Fig. 1 draws the most detailed node on
/// top; ancestors are "towards ABC".)
class Lattice {
 public:
  explicit Lattice(const CubeSchema* schema)
      : schema_(schema), codec_(*schema) {}

  const NodeIdCodec& codec() const { return codec_; }
  NodeId num_nodes() const { return codec_.num_nodes(); }

  /// True when `detailed` is an ancestor of `coarse` (can compute it):
  /// for every dimension, the coarse node's level is ALL or derivable from
  /// the detailed node's level (which must not be ALL unless equal).
  bool IsAncestorOf(NodeId detailed, NodeId coarse) const;

  /// All node ids, in id order.
  std::vector<NodeId> AllNodes() const;

  /// Number of grouping attributes (non-ALL dimensions) of a node.
  int NumGroupingDims(NodeId id) const;

  /// One roll-up step along `dim`: the node whose `dim` level moves to the
  /// lowest-indexed direct parent (for a linear hierarchy, one step
  /// coarser), or to ALL when the current level is maximal. Error when the
  /// dimension is already at ALL — there is nothing coarser. Powers the
  /// serving layer's ROLLUP verb.
  Result<NodeId> RollUpDim(NodeId node, int dim) const;

  /// One drill-down step along `dim`, the inverse walk: from ALL the
  /// dimension enters at its first plan root (the coarsest level); from any
  /// other level it moves to the highest-indexed level whose parents
  /// include the current one. Error at the leaf level — there is nothing
  /// finer. Powers the serving layer's DRILL verb. RollUpDim(DrillDownDim(
  /// n, d), d) == n along linear hierarchies.
  Result<NodeId> DrillDownDim(NodeId node, int dim) const;

  /// Exact number of result tuples of a node, by brute-force distinct
  /// counting over leaf-level rows provided by a callback. Test helper.
  const CubeSchema& schema() const { return *schema_; }

 private:
  const CubeSchema* schema_;
  NodeIdCodec codec_;
};

}  // namespace schema
}  // namespace cure

#endif  // CURE_SCHEMA_LATTICE_H_
