#include "schema/cube_schema.h"

#include <algorithm>
#include <numeric>

namespace cure {
namespace schema {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

Result<CubeSchema> CubeSchema::Create(std::vector<Dimension> dims,
                                      int num_raw_measures,
                                      std::vector<AggregateSpec> aggregates) {
  if (dims.empty()) return Status::InvalidArgument("cube needs >= 1 dimension");
  if (aggregates.empty()) return Status::InvalidArgument("cube needs >= 1 aggregate");
  for (const AggregateSpec& spec : aggregates) {
    if (spec.fn != AggFn::kCount &&
        (spec.measure_index < 0 || spec.measure_index >= num_raw_measures)) {
      return Status::InvalidArgument("aggregate '" + spec.name +
                                     "' references an out-of-range measure");
    }
  }
  CubeSchema schema;
  schema.dims_ = std::move(dims);
  schema.num_raw_measures_ = num_raw_measures;
  schema.aggregates_ = std::move(aggregates);
  return schema;
}

CubeSchema CubeSchema::Flattened() const {
  CubeSchema flat;
  flat.num_raw_measures_ = num_raw_measures_;
  flat.aggregates_ = aggregates_;
  flat.dims_.reserve(dims_.size());
  for (const Dimension& d : dims_) {
    flat.dims_.push_back(Dimension::Flat(d.name(), d.leaf_cardinality()));
  }
  return flat;
}

std::vector<int> CubeSchema::OrderByDecreasingCardinality() {
  std::vector<int> perm(dims_.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
    return dims_[a].leaf_cardinality() > dims_[b].leaf_cardinality();
  });
  std::vector<Dimension> reordered;
  reordered.reserve(dims_.size());
  for (int old : perm) reordered.push_back(std::move(dims_[old]));
  dims_ = std::move(reordered);
  return perm;
}

}  // namespace schema
}  // namespace cure
