#include "schema/node_id.h"

#include "common/logging.h"

namespace cure {
namespace schema {

NodeIdCodec::NodeIdCodec(const CubeSchema& schema) {
  const int d = schema.num_dims();
  radix_.resize(d);
  factor_.resize(d);
  NodeId factor = 1;
  for (int i = 0; i < d; ++i) {
    radix_[i] = schema.dim(i).num_levels() + 1;  // + ALL
    factor_[i] = factor;
    // Overflow guard: lattices beyond 2^63 nodes are not representable
    // (nor materializable); fail loudly.
    CURE_CHECK_LT(factor, (NodeId{1} << 62) / radix_[i])
        << "lattice too large for 64-bit node ids";
    factor *= radix_[i];
  }
  num_nodes_ = factor;
}

NodeId NodeIdCodec::Encode(const std::vector<int>& levels) const {
  CURE_CHECK_EQ(levels.size(), radix_.size());
  NodeId id = 0;
  for (size_t i = 0; i < radix_.size(); ++i) {
    CURE_CHECK_GE(levels[i], 0);
    CURE_CHECK_LT(levels[i], radix_[i]);
    id += factor_[i] * static_cast<NodeId>(levels[i]);
  }
  return id;
}

std::vector<int> NodeIdCodec::Decode(NodeId id) const {
  std::vector<int> levels(radix_.size());
  DecodeInto(id, &levels);
  return levels;
}

void NodeIdCodec::DecodeInto(NodeId id, std::vector<int>* levels) const {
  levels->resize(radix_.size());
  for (size_t i = 0; i < radix_.size(); ++i) {
    (*levels)[i] = static_cast<int>((id / factor_[i]) % radix_[i]);
  }
}

std::string NodeIdCodec::Name(NodeId id, const CubeSchema& schema) const {
  const std::vector<int> levels = Decode(id);
  std::string name;
  for (int d = 0; d < num_dims(); ++d) {
    if (levels[d] == all_level(d)) continue;
    name += schema.dim(d).name();
    name += std::to_string(levels[d]);
  }
  if (name.empty()) name = "ALL";
  return name;
}

}  // namespace schema
}  // namespace cure
