#ifndef CURE_SCHEMA_NODE_ID_H_
#define CURE_SCHEMA_NODE_ID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/cube_schema.h"

namespace cure {
namespace schema {

/// Unique identifier of a cube-lattice node (Sec. 3.3 of the paper).
using NodeId = uint64_t;

/// Mixed-radix codec implementing formulas (1) and (2) of the paper.
///
/// For a D-dimensional schema where dimension i has L_i levels *including
/// the implicit ALL level*, the factor F_1 = 1 and F_i = F_{i-1} * L_{i-1};
/// a node whose i-th dimension sits at level l_i (with l_i = L_i - 1 meaning
/// ALL) has id  Σ F_i * l_i . Decoding uses div/mod, exactly as in the
/// paper's example (id 21 -> node A1 for the A0→A1→A2, B0→B1, C0 hierarchy).
class NodeIdCodec {
 public:
  explicit NodeIdCodec(const CubeSchema& schema);
  NodeIdCodec() = default;

  int num_dims() const { return static_cast<int>(radix_.size()); }

  /// Total number of lattice nodes, Π (L_i + 1) in paper notation
  /// (their L_i excludes ALL).
  NodeId num_nodes() const { return num_nodes_; }

  /// Encodes per-dimension levels; levels[d] == all_level(d) means the
  /// dimension is absent (at ALL).
  NodeId Encode(const std::vector<int>& levels) const;

  /// Decodes a node id into per-dimension levels.
  std::vector<int> Decode(NodeId id) const;
  void DecodeInto(NodeId id, std::vector<int>* levels) const;

  /// Level count of dimension d including ALL (the codec's radix).
  int radix(int d) const { return radix_[d]; }

  /// The ALL level index for dimension d (= radix - 1).
  int all_level(int d) const { return radix_[d] - 1; }

  /// Human-readable node name like "A1B0" or "ALL" (paper's ∅).
  std::string Name(NodeId id, const CubeSchema& schema) const;

 private:
  std::vector<int> radix_;     // L_i including ALL
  std::vector<NodeId> factor_; // F_i
  NodeId num_nodes_ = 0;
};

}  // namespace schema
}  // namespace cure

#endif  // CURE_SCHEMA_NODE_ID_H_
