#ifndef CURE_SCHEMA_CUBE_SCHEMA_H_
#define CURE_SCHEMA_CUBE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/hierarchy.h"

namespace cure {
namespace schema {

/// Distributive aggregate functions supported by the engines. All of them
/// can be re-aggregated from partial results (paper Sec. 4, observation 3:
/// a detailed node can construct less detailed ones for non-holistic
/// functions), which the external path relies on.
enum class AggFn { kSum, kCount, kMin, kMax };

const char* AggFnName(AggFn fn);

/// One output aggregate of the cube: a function over a raw fact-table
/// measure. kCount ignores `measure_index`.
struct AggregateSpec {
  AggFn fn = AggFn::kSum;
  int measure_index = 0;
  std::string name;
};

/// Schema of a fact table and of the cube to be built over it: dimensions
/// with hierarchies, raw measure count, and the aggregate list.
class CubeSchema {
 public:
  static Result<CubeSchema> Create(std::vector<Dimension> dims, int num_raw_measures,
                                   std::vector<AggregateSpec> aggregates);

  CubeSchema() = default;

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const Dimension& dim(int d) const { return dims_[d]; }
  const std::vector<Dimension>& dims() const { return dims_; }

  int num_raw_measures() const { return num_raw_measures_; }
  int num_aggregates() const { return static_cast<int>(aggregates_.size()); }
  const AggregateSpec& aggregate(int y) const { return aggregates_[y]; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }

  /// A flat version of this schema: every dimension reduced to its leaf
  /// level. Used by FCURE and the flat baselines (BUC, BU-BST).
  CubeSchema Flattened() const;

  /// Sorts dimensions by decreasing leaf cardinality — BUC's heuristic,
  /// which also makes CURE's partitioning more effective (Sec. 4). Returns
  /// the permutation applied (new position -> old dimension index).
  std::vector<int> OrderByDecreasingCardinality();

 private:
  std::vector<Dimension> dims_;
  int num_raw_measures_ = 0;
  std::vector<AggregateSpec> aggregates_;
};

}  // namespace schema
}  // namespace cure

#endif  // CURE_SCHEMA_CUBE_SCHEMA_H_
