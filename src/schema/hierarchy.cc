#include "schema/hierarchy.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace cure {
namespace schema {

namespace {

// Functional consistency of the edge child -> parent: equal child codes must
// imply equal parent codes over all leaves. Returns OK and fills
// child_code -> parent_code into *map when consistent.
Status CheckEdge(const Dimension&, const Level& child, const Level& parent,
                 int child_idx, int parent_idx, uint32_t leaf_card,
                 std::vector<uint32_t>* map) {
  constexpr uint32_t kUnset = 0xFFFFFFFFu;
  map->assign(child.cardinality, kUnset);
  for (uint32_t leaf = 0; leaf < leaf_card; ++leaf) {
    const uint32_t c = child_idx == 0 ? leaf : child.leaf_to_code[leaf];
    const uint32_t p = parent.leaf_to_code[leaf];
    if (c >= child.cardinality) {
      return Status::InvalidArgument("level '" + child.name + "' code out of range");
    }
    if (p >= parent.cardinality) {
      return Status::InvalidArgument("level '" + parent.name + "' code out of range");
    }
    if ((*map)[c] == kUnset) {
      (*map)[c] = p;
    } else if ((*map)[c] != p) {
      return Status::InvalidArgument(
          "hierarchy edge " + child.name + " -> " + parent.name +
          " is not functional: child code " + std::to_string(c) +
          " maps to two parent codes");
    }
  }
  (void)parent_idx;
  return Status::OK();
}

}  // namespace

Result<Dimension> Dimension::Create(std::string name, std::vector<Level> levels) {
  if (levels.empty()) return Status::InvalidArgument("dimension needs >= 1 level");
  Dimension dim;
  dim.name_ = std::move(name);

  const uint32_t leaf_card = levels[0].cardinality;
  if (leaf_card == 0) return Status::InvalidArgument("leaf cardinality must be > 0");
  // Level 0 mapping must be identity; allow it to be empty and materialize it.
  if (!levels[0].leaf_to_code.empty()) {
    for (uint32_t i = 0; i < leaf_card; ++i) {
      if (levels[0].leaf_to_code[i] != i) {
        return Status::InvalidArgument("level 0 mapping must be the identity");
      }
    }
  }
  if (!levels[0].parents.empty() && levels.size() == 1) {
    return Status::InvalidArgument("leaf level of a flat dimension cannot have parents");
  }
  for (size_t l = 1; l < levels.size(); ++l) {
    if (levels[l].leaf_to_code.size() != leaf_card) {
      return Status::InvalidArgument("level '" + levels[l].name +
                                     "' mapping size mismatch");
    }
    if (levels[l].cardinality == 0 || levels[l].cardinality > leaf_card) {
      return Status::InvalidArgument("level '" + levels[l].name +
                                     "' cardinality out of range");
    }
  }

  const int n = static_cast<int>(levels.size());
  // Validate parent indices and acyclicity (parents must be "less detailed";
  // we require the DAG property via reachability, not index order, but indices
  // must be in range and not self).
  for (int l = 0; l < n; ++l) {
    for (int p : levels[l].parents) {
      if (p < 0 || p >= n || p == l) {
        return Status::InvalidArgument("level '" + levels[l].name +
                                       "' has invalid parent index");
      }
    }
  }

  // Reachability (derives): derives[from][to] = true when `to` is reachable
  // from `from` via parent edges or from == to.
  dim.derives_.assign(n, std::vector<bool>(n, false));
  // Topological-ish closure by fixpoint (n is tiny).
  for (int l = 0; l < n; ++l) dim.derives_[l][l] = true;
  bool changed = true;
  int iterations = 0;
  while (changed) {
    changed = false;
    if (++iterations > n + 1) {
      return Status::InvalidArgument("hierarchy parent graph has a cycle");
    }
    for (int l = 0; l < n; ++l) {
      for (int p : levels[l].parents) {
        for (int t = 0; t < n; ++t) {
          if (dim.derives_[p][t] && !dim.derives_[l][t]) {
            dim.derives_[l][t] = true;
            changed = true;
          }
        }
      }
    }
  }
  for (int l = 0; l < n; ++l) {
    if (dim.derives_[l][l]) {
      // Check for a real cycle: l derives l through a parent.
      for (int p : levels[l].parents) {
        if (dim.derives_[p][l]) {
          return Status::InvalidArgument("hierarchy parent graph has a cycle");
        }
      }
    }
  }
  // Every non-leaf level must be reachable from the leaf.
  for (int l = 1; l < n; ++l) {
    if (!dim.derives_[0][l]) {
      return Status::InvalidArgument("level '" + levels[l].name +
                                     "' unreachable from the leaf level");
    }
  }

  // Functional consistency of every edge.
  std::vector<uint32_t> scratch;
  for (int l = 0; l < n; ++l) {
    for (int p : levels[l].parents) {
      CURE_RETURN_IF_ERROR(
          CheckEdge(dim, levels[l], levels[p], l, p, leaf_card, &scratch));
    }
  }

  // Execution-plan metadata (modified Rule 2, Sec. 3.2): each level with
  // parents hangs off the parent with maximum cardinality.
  dim.plan_parent_.assign(n, -1);
  dim.plan_children_.assign(n, {});
  dim.plan_roots_.clear();
  dim.is_linear_ = true;
  for (int l = 0; l < n; ++l) {
    const Level& level = levels[l];
    if (level.parents.empty()) {
      dim.plan_roots_.push_back(l);
      continue;
    }
    if (level.parents.size() > 1) dim.is_linear_ = false;
    int best = level.parents[0];
    for (int p : level.parents) {
      if (levels[p].cardinality > levels[best].cardinality ||
          (levels[p].cardinality == levels[best].cardinality && p < best)) {
        best = p;
      }
    }
    dim.plan_parent_[l] = best;
  }
  for (int l = 0; l < n; ++l) {
    if (dim.plan_parent_[l] >= 0) dim.plan_children_[dim.plan_parent_[l]].push_back(l);
  }
  // Deterministic dashed-edge order: more detailed (lower index) first.
  for (auto& children : dim.plan_children_) std::sort(children.begin(), children.end());
  std::sort(dim.plan_roots_.begin(), dim.plan_roots_.end(), std::greater<int>());
  if (dim.plan_roots_.size() > 1) dim.is_linear_ = false;
  if (dim.is_linear_) {
    // A linear hierarchy must be the chain 0 <- 1 <- ... <- n-1.
    for (int l = 0; l + 1 < n; ++l) {
      if (dim.plan_parent_[l] != l + 1) {
        dim.is_linear_ = false;
        break;
      }
    }
  }

  dim.levels_ = std::move(levels);
  return dim;
}

Dimension Dimension::Linear(const std::string& name,
                            const std::vector<uint32_t>& cardinalities) {
  CURE_CHECK(!cardinalities.empty());
  const uint32_t leaf_card = cardinalities[0];
  std::vector<Level> levels(cardinalities.size());
  for (size_t l = 0; l < cardinalities.size(); ++l) {
    CURE_CHECK_LE(cardinalities[l], leaf_card);
    levels[l].name = name + "_L" + std::to_string(l);
    levels[l].cardinality = cardinalities[l];
    if (l > 0) {
      // Proportional block roll-up, derived level-from-level so that every
      // edge is functional even when cardinalities do not divide evenly.
      const uint32_t child_card = cardinalities[l - 1];
      levels[l].leaf_to_code.resize(leaf_card);
      for (uint32_t leaf = 0; leaf < leaf_card; ++leaf) {
        const uint32_t child_code =
            l == 1 ? leaf : levels[l - 1].leaf_to_code[leaf];
        levels[l].leaf_to_code[leaf] = static_cast<uint32_t>(
            static_cast<uint64_t>(child_code) * cardinalities[l] / child_card);
      }
    }
    if (l + 1 < cardinalities.size()) {
      levels[l].parents = {static_cast<int>(l) + 1};
    }
  }
  Result<Dimension> dim = Create(name, std::move(levels));
  CURE_CHECK(dim.ok()) << dim.status().ToString();
  return std::move(dim).value();
}

Dimension Dimension::Flat(const std::string& name, uint32_t cardinality) {
  return Linear(name, {cardinality});
}

Result<std::vector<uint32_t>> Dimension::LevelToLevelMap(int from, int to) const {
  if (from < 0 || from >= num_levels() || to < 0 || to >= num_levels()) {
    return Status::InvalidArgument("level index out of range");
  }
  if (!Derives(from, to)) {
    return Status::InvalidArgument("level " + std::to_string(to) +
                                   " not derivable from level " + std::to_string(from) +
                                   " in dimension '" + name_ + "'");
  }
  std::vector<uint32_t> map(cardinality(from));
  for (uint32_t leaf = 0; leaf < leaf_cardinality(); ++leaf) {
    map[CodeAt(leaf, from)] = CodeAt(leaf, to);
  }
  return map;
}

}  // namespace schema
}  // namespace cure
