#ifndef CURE_SCHEMA_FACT_TABLE_H_
#define CURE_SCHEMA_FACT_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace cure {
namespace schema {

/// In-memory fact table in struct-of-arrays layout: D uint32 leaf-level
/// dimension codes and M int64 raw measures per row. Row-ids are 0-based
/// ordinals, the same ids the cubes' row-id references (R-rowid) use.
class FactTable {
 public:
  FactTable(int num_dims, int num_measures)
      : dims_(num_dims), measures_(num_measures) {}

  int num_dims() const { return static_cast<int>(dims_.size()); }
  int num_measures() const { return static_cast<int>(measures_.size()); }
  uint64_t num_rows() const { return num_rows_; }

  void Reserve(uint64_t rows) {
    for (auto& col : dims_) col.reserve(rows);
    for (auto& col : measures_) col.reserve(rows);
  }

  void AppendRow(const uint32_t* dims, const int64_t* measures) {
    for (size_t d = 0; d < dims_.size(); ++d) dims_[d].push_back(dims[d]);
    for (size_t m = 0; m < measures_.size(); ++m) measures_[m].push_back(measures[m]);
    ++num_rows_;
  }

  uint32_t dim(int d, uint64_t row) const { return dims_[d][row]; }
  int64_t measure(int m, uint64_t row) const { return measures_[m][row]; }
  const std::vector<uint32_t>& dim_column(int d) const { return dims_[d]; }
  const std::vector<int64_t>& measure_column(int m) const { return measures_[m]; }

  /// Logical size: 4 bytes per dimension code plus 8 per measure, the
  /// binary footprint the paper's sizes refer to.
  uint64_t bytes() const {
    return num_rows_ * (4ull * dims_.size() + 8ull * measures_.size());
  }

  /// Record width of the binary relation form.
  size_t RecordSize() const { return 4 * dims_.size() + 8 * measures_.size(); }

  /// Writes all rows as fixed-width records [dims u32...][measures i64...]
  /// into `out` (caller seals).
  Status WriteTo(storage::Relation* out) const;

  /// Reads a fact table back from its binary relation form.
  static Result<FactTable> ReadFrom(const storage::Relation& rel, int num_dims,
                                    int num_measures);

 private:
  std::vector<std::vector<uint32_t>> dims_;
  std::vector<std::vector<int64_t>> measures_;
  uint64_t num_rows_ = 0;
};

}  // namespace schema
}  // namespace cure

#endif  // CURE_SCHEMA_FACT_TABLE_H_
