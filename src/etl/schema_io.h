#ifndef CURE_ETL_SCHEMA_IO_H_
#define CURE_ETL_SCHEMA_IO_H_

#include <string>

#include "common/status.h"
#include "schema/cube_schema.h"

namespace cure {
namespace etl {

/// Text serialization of a CubeSchema (dimensions with their hierarchy
/// roll-up maps, and the aggregate list), so cubes written by the CLI tool
/// can be reopened without the original CSV.
std::string SerializeSchema(const schema::CubeSchema& schema);
Result<schema::CubeSchema> DeserializeSchema(const std::string& text);

/// File helpers.
Status WriteStringToFile(const std::string& path, const std::string& content);
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace etl
}  // namespace cure

#endif  // CURE_ETL_SCHEMA_IO_H_
