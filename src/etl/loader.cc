#include "etl/loader.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace cure {
namespace etl {

using schema::AggFn;
using schema::AggregateSpec;
using schema::CubeSchema;
using schema::Dimension;
using schema::Level;

Result<LoadSpec> ParseLoadSpec(const std::string& text) {
  LoadSpec spec;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword) || keyword[0] == '#') continue;
    if (keyword == "dim") {
      DimensionSpec dim;
      tokens >> dim.name;
      std::string column;
      while (tokens >> column) dim.level_columns.push_back(column);
      if (dim.name.empty() || dim.level_columns.empty()) {
        return Status::InvalidArgument("spec line " + std::to_string(line_no) +
                                       ": dim needs a name and >= 1 column");
      }
      spec.dimensions.push_back(std::move(dim));
    } else if (keyword == "measure") {
      std::string column;
      if (!(tokens >> column)) {
        return Status::InvalidArgument("spec line " + std::to_string(line_no) +
                                       ": measure needs a column");
      }
      spec.measure_columns.push_back(column);
    } else if (keyword == "agg") {
      AggregateColumnSpec agg;
      if (!(tokens >> agg.function)) {
        return Status::InvalidArgument("spec line " + std::to_string(line_no) +
                                       ": agg needs a function");
      }
      tokens >> agg.column;  // optional for count
      if (agg.function != "count" && agg.column.empty()) {
        return Status::InvalidArgument("spec line " + std::to_string(line_no) +
                                       ": agg " + agg.function + " needs a column");
      }
      spec.aggregates.push_back(std::move(agg));
    } else {
      return Status::InvalidArgument("spec line " + std::to_string(line_no) +
                                     ": unknown keyword '" + keyword + "'");
    }
  }
  if (spec.dimensions.empty()) {
    return Status::InvalidArgument("spec defines no dimensions");
  }
  if (spec.aggregates.empty()) {
    // Default: count(*), plus sum of every declared measure.
    spec.aggregates.push_back({"count", ""});
    for (const std::string& m : spec.measure_columns) {
      spec.aggregates.push_back({"sum", m});
    }
  }
  return spec;
}

namespace {

Result<AggFn> ParseAggFn(const std::string& name) {
  if (name == "sum") return AggFn::kSum;
  if (name == "count") return AggFn::kCount;
  if (name == "min") return AggFn::kMin;
  if (name == "max") return AggFn::kMax;
  return Status::InvalidArgument("unknown aggregate function '" + name + "'");
}

}  // namespace

Result<LoadedDataset> LoadDataset(const CsvTable& csv, const LoadSpec& spec) {
  const int num_dims = static_cast<int>(spec.dimensions.size());
  const int num_measures = static_cast<int>(spec.measure_columns.size());

  // Resolve columns.
  std::vector<std::vector<size_t>> dim_columns(num_dims);
  for (int d = 0; d < num_dims; ++d) {
    for (const std::string& column : spec.dimensions[d].level_columns) {
      CURE_ASSIGN_OR_RETURN(size_t index, csv.Column(column));
      dim_columns[d].push_back(index);
    }
  }
  std::vector<size_t> measure_columns;
  for (const std::string& column : spec.measure_columns) {
    CURE_ASSIGN_OR_RETURN(size_t index, csv.Column(column));
    measure_columns.push_back(index);
  }

  // Pass 1: dictionary-encode every level column and record per-row codes.
  LoadedDataset out;
  out.dictionaries.resize(num_dims);
  std::vector<std::vector<std::vector<uint32_t>>> codes(num_dims);
  for (int d = 0; d < num_dims; ++d) {
    const size_t levels = dim_columns[d].size();
    out.dictionaries[d].resize(levels);
    codes[d].resize(levels);
    for (auto& col : codes[d]) col.reserve(csv.rows.size());
  }
  for (const std::vector<std::string>& row : csv.rows) {
    for (int d = 0; d < num_dims; ++d) {
      for (size_t l = 0; l < dim_columns[d].size(); ++l) {
        codes[d][l].push_back(out.dictionaries[d][l].Encode(row[dim_columns[d][l]]));
      }
    }
  }

  // Pass 2: infer the roll-up maps (leaf code -> level code) and check the
  // functional dependencies.
  std::vector<Dimension> dims;
  for (int d = 0; d < num_dims; ++d) {
    const size_t num_levels = dim_columns[d].size();
    const uint32_t leaf_card = out.dictionaries[d][0].size();
    if (leaf_card == 0) {
      return Status::InvalidArgument("dimension '" + spec.dimensions[d].name +
                                     "' has no values");
    }
    std::vector<Level> levels(num_levels);
    for (size_t l = 0; l < num_levels; ++l) {
      levels[l].name = spec.dimensions[d].level_columns[l];
      levels[l].cardinality = out.dictionaries[d][l].size();
      if (l + 1 < num_levels) levels[l].parents = {static_cast<int>(l) + 1};
      if (l == 0) continue;
      constexpr uint32_t kUnset = 0xFFFFFFFFu;
      levels[l].leaf_to_code.assign(leaf_card, kUnset);
      for (size_t r = 0; r < csv.rows.size(); ++r) {
        const uint32_t leaf = codes[d][0][r];
        const uint32_t code = codes[d][l][r];
        if (levels[l].leaf_to_code[leaf] == kUnset) {
          levels[l].leaf_to_code[leaf] = code;
        } else if (levels[l].leaf_to_code[leaf] != code) {
          return Status::InvalidArgument(
              "functional dependency violation in dimension '" +
              spec.dimensions[d].name + "': leaf value '" +
              out.dictionaries[d][0].Decode(leaf) + "' maps to both '" +
              out.dictionaries[d][l].Decode(levels[l].leaf_to_code[leaf]) +
              "' and '" + out.dictionaries[d][l].Decode(code) + "' at level " +
              levels[l].name);
        }
      }
      // Every leaf seen in the data has a mapping; unseen codes impossible
      // since dictionaries grow only from data.
    }
    CURE_ASSIGN_OR_RETURN(Dimension dim,
                          Dimension::Create(spec.dimensions[d].name,
                                            std::move(levels)));
    dims.push_back(std::move(dim));
  }

  // Aggregates.
  std::vector<AggregateSpec> aggs;
  for (const AggregateColumnSpec& agg : spec.aggregates) {
    CURE_ASSIGN_OR_RETURN(AggFn fn, ParseAggFn(agg.function));
    AggregateSpec out_spec;
    out_spec.fn = fn;
    out_spec.name = agg.function + (agg.column.empty() ? "" : "_" + agg.column);
    out_spec.measure_index = 0;
    if (fn != AggFn::kCount) {
      bool found = false;
      for (int m = 0; m < num_measures; ++m) {
        if (spec.measure_columns[m] == agg.column) {
          out_spec.measure_index = m;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("aggregate references undeclared measure '" +
                                       agg.column + "'");
      }
    }
    aggs.push_back(std::move(out_spec));
  }
  CURE_ASSIGN_OR_RETURN(out.schema, CubeSchema::Create(std::move(dims),
                                                       std::max(num_measures, 1),
                                                       std::move(aggs)));

  // Pass 3: build the fact table.
  out.table = schema::FactTable(num_dims, std::max(num_measures, 1));
  out.table.Reserve(csv.rows.size());
  std::vector<uint32_t> dim_row(num_dims);
  std::vector<int64_t> measures(std::max(num_measures, 1), 0);
  for (size_t r = 0; r < csv.rows.size(); ++r) {
    for (int d = 0; d < num_dims; ++d) dim_row[d] = codes[d][0][r];
    for (int m = 0; m < num_measures; ++m) {
      const std::string& text = csv.rows[r][measure_columns[m]];
      char* end = nullptr;
      measures[m] = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str()) {
        return Status::InvalidArgument("row " + std::to_string(r + 1) +
                                       ": measure '" + text + "' is not an integer");
      }
    }
    out.table.AppendRow(dim_row.data(), measures.data());
  }
  return out;
}

Result<LoadedDataset> LoadCsvFile(const std::string& csv_path,
                                  const std::string& spec_text) {
  CURE_ASSIGN_OR_RETURN(CsvTable csv, ReadCsvFile(csv_path));
  CURE_ASSIGN_OR_RETURN(LoadSpec spec, ParseLoadSpec(spec_text));
  return LoadDataset(csv, spec);
}

}  // namespace etl
}  // namespace cure
