#ifndef CURE_ETL_LOADER_H_
#define CURE_ETL_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "etl/csv.h"
#include "etl/dictionary.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"

namespace cure {
namespace etl {

/// How one cube dimension is derived from CSV columns: the leaf column
/// first, then its roll-up columns coarse-ward (e.g. {"city", "country",
/// "continent"}). The hierarchy maps are inferred from the data; rows that
/// give a leaf value two different parents fail the load (a functional
/// dependency violation).
struct DimensionSpec {
  std::string name;
  std::vector<std::string> level_columns;
};

/// One output aggregate: function name ("sum", "count", "min", "max") plus
/// the measure column ("count" takes none).
struct AggregateColumnSpec {
  std::string function;
  std::string column;
};

/// Full load specification.
struct LoadSpec {
  std::vector<DimensionSpec> dimensions;
  std::vector<std::string> measure_columns;
  std::vector<AggregateColumnSpec> aggregates;
};

/// The loaded dataset: engine-ready schema + fact table plus the
/// dictionaries needed to decode query results back into strings,
/// dictionaries[d][l] belonging to level l of dimension d.
struct LoadedDataset {
  schema::CubeSchema schema;
  schema::FactTable table{0, 0};
  std::vector<std::vector<Dictionary>> dictionaries;
};

/// Parses a plain-text spec file:
///   dim <name> <leaf_column> [<level2_column> ...]
///   measure <column>
///   agg <sum|min|max> <column>
///   agg count
/// Lines starting with '#' are comments.
Result<LoadSpec> ParseLoadSpec(const std::string& text);

/// Dictionary-encodes a parsed CSV into a fact table, inferring hierarchy
/// roll-up maps from the level columns.
Result<LoadedDataset> LoadDataset(const CsvTable& csv, const LoadSpec& spec);

/// Convenience: read + parse + load.
Result<LoadedDataset> LoadCsvFile(const std::string& csv_path,
                                  const std::string& spec_text);

}  // namespace etl
}  // namespace cure

#endif  // CURE_ETL_LOADER_H_
