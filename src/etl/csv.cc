#include "etl/csv.h"

#include <fstream>
#include <sstream>

namespace cure {
namespace etl {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"') {
        if (!field.empty()) {
          return Status::InvalidArgument("quote inside unquoted field: " + line);
        }
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(field));
        field.clear();
      } else {
        field += c;
      }
    }
    ++i;
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote: " + line);
  fields.push_back(std::move(field));
  return fields;
}

Result<CsvTable> ParseCsv(const std::string& content) {
  CsvTable table;
  size_t start = 0;
  bool first = true;
  while (start < content.size()) {
    // Find the record end, honoring quotes (records may contain newlines
    // only inside quotes; we keep it simple and disallow embedded newlines).
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    std::string line = content.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = end + 1;
    if (line.empty()) continue;
    CURE_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != table.header.size()) {
        return Status::InvalidArgument("row has " + std::to_string(fields.size()) +
                                       " fields, header has " +
                                       std::to_string(table.header.size()));
      }
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) return Status::InvalidArgument("empty CSV document");
  return table;
}

Result<size_t> CsvTable::Column(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return Status::NotFound("no CSV column named '" + name + "'");
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

}  // namespace etl
}  // namespace cure
