#include "etl/dictionary.h"

namespace cure {
namespace etl {

std::string Dictionary::Serialize() const {
  std::string out;
  for (const std::string& value : values_) {
    out += value;
    out += '\n';
  }
  return out;
}

Result<Dictionary> Dictionary::Deserialize(const std::string& data) {
  Dictionary dict;
  size_t start = 0;
  while (start < data.size()) {
    size_t end = data.find('\n', start);
    if (end == std::string::npos) {
      return Status::InvalidArgument("dictionary data not newline-terminated");
    }
    const std::string value = data.substr(start, end - start);
    const uint32_t size_before = dict.size();
    dict.Encode(value);
    if (dict.size() == size_before) {
      return Status::InvalidArgument("duplicate dictionary value '" + value + "'");
    }
    start = end + 1;
  }
  return dict;
}

}  // namespace etl
}  // namespace cure
