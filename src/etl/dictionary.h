#ifndef CURE_ETL_DICTIONARY_H_
#define CURE_ETL_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace cure {
namespace etl {

/// Order-of-appearance dictionary encoding string dimension values into the
/// dense uint32 codes the engines operate on.
class Dictionary {
 public:
  /// Returns the code of `value`, inserting it if new.
  uint32_t Encode(const std::string& value) {
    auto [it, inserted] = index_.try_emplace(value, values_.size());
    if (inserted) values_.push_back(value);
    return it->second;
  }

  /// Returns the code of `value` or an error when absent.
  Result<uint32_t> Lookup(const std::string& value) const {
    auto it = index_.find(value);
    if (it == index_.end()) return Status::NotFound("value '" + value + "'");
    return it->second;
  }

  const std::string& Decode(uint32_t code) const { return values_[code]; }
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }
  const std::vector<std::string>& values() const { return values_; }

  /// Serialization: one value per line (values must not contain newlines).
  std::string Serialize() const;
  static Result<Dictionary> Deserialize(const std::string& data);

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace etl
}  // namespace cure

#endif  // CURE_ETL_DICTIONARY_H_
