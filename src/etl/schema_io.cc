#include "etl/schema_io.h"

#include <fstream>
#include <sstream>

namespace cure {
namespace etl {

using schema::AggFn;
using schema::AggregateSpec;
using schema::CubeSchema;
using schema::Dimension;
using schema::Level;

std::string SerializeSchema(const CubeSchema& schema) {
  std::ostringstream out;
  out << "cure-schema 1\n";
  out << "dims " << schema.num_dims() << " raw_measures "
      << schema.num_raw_measures() << "\n";
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Dimension& dim = schema.dim(d);
    out << "dim " << dim.name() << " " << dim.num_levels() << "\n";
    for (int l = 0; l < dim.num_levels(); ++l) {
      const Level& level = dim.level(l);
      out << "level " << level.name << " " << level.cardinality << " parents";
      for (int p : level.parents) out << " " << p;
      out << "\n";
      if (l > 0) {
        out << "map";
        for (uint32_t leaf = 0; leaf < dim.leaf_cardinality(); ++leaf) {
          out << " " << dim.CodeAt(leaf, l);
        }
        out << "\n";
      }
    }
  }
  out << "aggregates " << schema.num_aggregates() << "\n";
  for (int y = 0; y < schema.num_aggregates(); ++y) {
    const AggregateSpec& spec = schema.aggregate(y);
    out << "agg " << schema::AggFnName(spec.fn) << " " << spec.measure_index
        << " " << spec.name << "\n";
  }
  return out.str();
}

namespace {

Result<AggFn> FnFromName(const std::string& name) {
  if (name == "SUM") return AggFn::kSum;
  if (name == "COUNT") return AggFn::kCount;
  if (name == "MIN") return AggFn::kMin;
  if (name == "MAX") return AggFn::kMax;
  return Status::InvalidArgument("unknown aggregate '" + name + "'");
}

}  // namespace

Result<CubeSchema> DeserializeSchema(const std::string& text) {
  std::istringstream in(text);
  std::string keyword;
  int version = 0;
  if (!(in >> keyword >> version) || keyword != "cure-schema" || version != 1) {
    return Status::InvalidArgument("not a cure-schema v1 document");
  }
  int num_dims = 0, raw_measures = 0;
  std::string kw2;
  if (!(in >> keyword >> num_dims >> kw2 >> raw_measures) || keyword != "dims") {
    return Status::InvalidArgument("bad dims header");
  }
  std::vector<Dimension> dims;
  for (int d = 0; d < num_dims; ++d) {
    std::string name;
    int num_levels = 0;
    if (!(in >> keyword >> name >> num_levels) || keyword != "dim") {
      return Status::InvalidArgument("bad dim header");
    }
    std::vector<Level> levels(num_levels);
    uint32_t leaf_card = 0;
    for (int l = 0; l < num_levels; ++l) {
      std::string parents_kw;
      if (!(in >> keyword >> levels[l].name >> levels[l].cardinality >>
            parents_kw) ||
          keyword != "level" || parents_kw != "parents") {
        return Status::InvalidArgument("bad level header");
      }
      // Parents until end of line.
      std::string rest;
      std::getline(in, rest);
      std::istringstream parents(rest);
      int p;
      while (parents >> p) levels[l].parents.push_back(p);
      if (l == 0) {
        leaf_card = levels[0].cardinality;
      } else {
        if (!(in >> keyword) || keyword != "map") {
          return Status::InvalidArgument("missing map for level " + levels[l].name);
        }
        levels[l].leaf_to_code.resize(leaf_card);
        for (uint32_t i = 0; i < leaf_card; ++i) {
          if (!(in >> levels[l].leaf_to_code[i])) {
            return Status::InvalidArgument("short map for level " + levels[l].name);
          }
        }
      }
    }
    CURE_ASSIGN_OR_RETURN(Dimension dim, Dimension::Create(name, std::move(levels)));
    dims.push_back(std::move(dim));
  }
  int num_aggs = 0;
  if (!(in >> keyword >> num_aggs) || keyword != "aggregates") {
    return Status::InvalidArgument("bad aggregates header");
  }
  std::vector<AggregateSpec> aggs(num_aggs);
  for (int y = 0; y < num_aggs; ++y) {
    std::string fn;
    if (!(in >> keyword >> fn >> aggs[y].measure_index >> aggs[y].name) ||
        keyword != "agg") {
      return Status::InvalidArgument("bad agg line");
    }
    CURE_ASSIGN_OR_RETURN(aggs[y].fn, FnFromName(fn));
  }
  return CubeSchema::Create(std::move(dims), raw_measures, std::move(aggs));
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << content;
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace etl
}  // namespace cure
