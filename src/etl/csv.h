#ifndef CURE_ETL_CSV_H_
#define CURE_ETL_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cure {
namespace etl {

/// Minimal RFC-4180-style CSV support: comma separators, double-quote
/// quoting with "" escapes, LF or CRLF line endings.

/// Splits one CSV record into fields.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// Parses a whole CSV document (header + data rows).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or error.
  Result<size_t> Column(const std::string& name) const;
};
Result<CsvTable> ParseCsv(const std::string& content);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);

}  // namespace etl
}  // namespace cure

#endif  // CURE_ETL_CSV_H_
