#ifndef CURE_CUBE_SOURCE_H_
#define CURE_CUBE_SOURCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "cube/measures.h"
#include "cube/rowid.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"
#include "storage/buffer_cache.h"
#include "storage/relation.h"

namespace cure {
namespace cube {

/// Native level marker for a dimension a source does not carry (projected
/// out, i.e. at ALL).
inline constexpr int kNativeAll = -1;

/// Read access to a relation that cube tuples reference by row-id: the
/// original fact table R (source tag kSourceFact) or the partition-pass node
/// N (kSourceNodeN). Rows are exposed uniformly as D dimension codes at the
/// source's *native* hierarchy levels plus Y lifted aggregate values, so
/// every consumer (query answering, TT projection, CURE_DR) aggregates with
/// plain combines.
class SourceAccessor {
 public:
  virtual ~SourceAccessor() = default;

  virtual uint64_t num_rows() const = 0;

  /// Hierarchy level of the codes this source stores for dimension d
  /// (0 = leaf), or kNativeAll when the dimension is projected out.
  virtual int native_level(int d) const = 0;

  /// Reads row `ordinal`: D native dimension codes and Y lifted aggregates.
  virtual Status GetRow(uint64_t ordinal, uint32_t* dims, int64_t* aggrs) const = 0;
};

/// Accessor over an in-memory FactTable (native level 0 everywhere).
class FactTableSource : public SourceAccessor {
 public:
  FactTableSource(const schema::FactTable* table, const schema::CubeSchema* schema)
      : table_(table), aggregator_(*schema) {}

  uint64_t num_rows() const override { return table_->num_rows(); }
  int native_level(int) const override { return 0; }
  Status GetRow(uint64_t ordinal, uint32_t* dims, int64_t* aggrs) const override;

 private:
  const schema::FactTable* table_;
  Aggregator aggregator_;
};

/// Accessor over a (typically file-backed) binary fact relation with record
/// layout [D x u32 dims][M x i64 raw measures], read through a pinned-prefix
/// BufferCache. This is the query-time path whose caching behaviour Fig. 17
/// studies.
class FactRelationSource : public SourceAccessor {
 public:
  /// `cached_fraction` of the relation's rows are pinned in memory.
  static Result<std::unique_ptr<FactRelationSource>> Create(
      const storage::Relation* relation, const schema::CubeSchema* schema,
      double cached_fraction);

  uint64_t num_rows() const override { return relation_->num_rows(); }
  int native_level(int) const override { return 0; }
  Status GetRow(uint64_t ordinal, uint32_t* dims, int64_t* aggrs) const override;

  const storage::BufferCache& cache() const { return cache_; }

 private:
  FactRelationSource(const storage::Relation* relation,
                     const schema::CubeSchema* schema)
      : relation_(relation),
        aggregator_(*schema),
        num_dims_(schema->num_dims()),
        num_raw_(schema->num_raw_measures()) {}

  const storage::Relation* relation_;
  Aggregator aggregator_;
  int num_dims_;
  int num_raw_;
  storage::BufferCache cache_;
};

/// An aggregated table: dimension codes at fixed native levels plus already
/// lifted aggregate columns. The partition-pass node N (Sec. 4) is stored as
/// an AggTable; it doubles as a cube node and as a row-id source.
struct AggTable {
  std::vector<int> native_levels;              // per dimension; kNativeAll allowed
  std::vector<std::vector<uint32_t>> dims;     // D columns
  std::vector<std::vector<int64_t>> aggrs;     // Y columns
  uint64_t num_rows = 0;

  /// Logical binary footprint (4 bytes per stored dim code, 8 per aggregate).
  uint64_t bytes() const {
    uint64_t per_row = 0;
    for (int nl : native_levels) {
      if (nl != kNativeAll) per_row += 4;
    }
    per_row += 8ull * aggrs.size();
    return per_row * num_rows;
  }
};

/// Accessor over an AggTable.
class AggTableSource : public SourceAccessor {
 public:
  explicit AggTableSource(const AggTable* table) : table_(table) {}

  uint64_t num_rows() const override { return table_->num_rows; }
  int native_level(int d) const override { return table_->native_levels[d]; }
  Status GetRow(uint64_t ordinal, uint32_t* dims, int64_t* aggrs) const override;

 private:
  const AggTable* table_;
};

/// The set of row-id sources of a cube, indexed by source tag, plus a cache
/// of level-to-level code maps for projecting native codes onto a node's
/// grouping levels.
///
/// Thread-safety: Register() prewarms every level map derivable from the
/// source's native levels, so once registration is done the set is
/// effectively immutable and ProjectDims/GetRow are safe to call from many
/// threads at once (the serving layer relies on this).
class SourceSet {
 public:
  explicit SourceSet(const schema::CubeSchema* schema) : schema_(schema) {}

  /// Registers an accessor and eagerly builds its projection maps. Not
  /// thread-safe; call before sharing the set across query workers.
  void Register(uint32_t source_tag, std::shared_ptr<SourceAccessor> accessor);
  const SourceAccessor* Get(uint32_t source_tag) const;
  const schema::CubeSchema& schema() const { return *schema_; }

  /// Dereferences a namespaced row-id into native dims + lifted aggregates.
  Status GetRow(RowId rowid, uint32_t* dims, int64_t* aggrs) const;

  /// Projects native codes of `source_tag` onto `node_levels` (ALL levels
  /// skipped); writes one code per grouping dimension, in dimension order.
  /// Fails if some grouping level is not derivable from the source's native
  /// level.
  Status ProjectDims(uint32_t source_tag, const uint32_t* native_dims,
                     const std::vector<int>& node_levels, uint32_t* out) const;

 private:
  const schema::CubeSchema* schema_;
  std::vector<std::shared_ptr<SourceAccessor>> accessors_;
  /// (dim, from_level, to_level) -> code map; built lazily.
  mutable std::map<std::tuple<int, int, int>, std::vector<uint32_t>> level_maps_;
};

}  // namespace cube
}  // namespace cure

#endif  // CURE_CUBE_SOURCE_H_
