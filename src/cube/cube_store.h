#ifndef CURE_CUBE_CUBE_STORE_H_
#define CURE_CUBE_CUBE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "cube/rowid.h"
#include "cube/source.h"
#include "schema/cube_schema.h"
#include "schema/node_id.h"
#include "storage/bitmap.h"
#include "storage/relation.h"

namespace cure {
namespace cube {

/// Storage format chosen for common-aggregate tuples (CATs), Sec. 5.1.
enum class CatFormat {
  kUndecided,
  /// Figure 10a: AGGREGATES rows are (R-rowid, Aggr...); per-node CAT rows
  /// hold just an A-rowid. Best when common-source CATs prevail.
  kFormatA,
  /// Figure 10b: AGGREGATES rows are (Aggr...); per-node CAT rows hold
  /// (R-rowid, A-rowid). Best when coincidental CATs prevail and Y > 1.
  kFormatB,
  /// Store CATs as NTs — optimal when Y = 1 and coincidental CATs prevail.
  kAsNT,
};

const char* CatFormatName(CatFormat format);

/// Statistics over CAT combos gathered during signature sorting (the k / n /
/// m quantities of the paper's cost model in Fig. 11). k̄ = cats / combos,
/// n̄ = source_groups / combos; format (a) wins when k̄ > (Y+1)·n̄.
struct CatStats {
  uint64_t cats = 0;           ///< Σ k: CAT signatures seen
  uint64_t source_groups = 0;  ///< Σ n: distinct (aggr, rowid) groups
  uint64_t combos = 0;         ///< m: distinct aggregate combinations
};

/// Relational cube container implementing CURE's storage schemes (Sec. 5):
/// up to three relations per node (NT, TT, CAT) plus one global AGGREGATES
/// relation, and a plain (uncondensed) per-node relation for the BUC
/// baseline. Tracks logical byte footprints, per-class tuple counts, and
/// the number of materialized relations.
class CubeStore {
 public:
  struct Options {
    /// CURE_DR: NT rows store the actual grouping-dimension codes instead of
    /// a row-id reference (trades space for query speed, Sec. 5.3).
    bool dims_in_nt = false;
    /// Test hook: force the CAT format instead of deciding from statistics.
    CatFormat forced_cat_format = CatFormat::kUndecided;
  };

  /// Per-node storage. NT/TT/CAT/plain relations are created lazily.
  struct NodeData {
    storage::Relation nt;
    storage::Relation tt;
    storage::Relation cat;
    storage::Relation plain;
    bool has_nt = false;
    bool has_tt = false;
    bool has_cat = false;
    bool has_plain = false;
    /// CURE+ bitmap replacement of the TT row-id list; when set, `tt` has
    /// been dropped and the bitmap is authoritative.
    std::unique_ptr<storage::Bitmap> tt_bitmap;
    /// Source tag of this node's TT row-ids (needed for the bitmap universe).
    uint32_t tt_source = kSourceFact;
    bool post_processed = false;
    /// Cached decode of the node id: grouping dims and their levels.
    std::vector<int> levels;
    std::vector<int> grouping_dims;
  };

  CubeStore(const schema::CubeSchema* schema, const Options& options);

  CubeStore(CubeStore&&) = default;
  CubeStore& operator=(CubeStore&&) = default;

  const schema::CubeSchema& schema() const { return *schema_; }
  const schema::NodeIdCodec& codec() const { return codec_; }
  const Options& options() const { return options_; }

  // ------- write path (engines + signature-pool flushes) -------

  /// Appends a trivial tuple: just the row-id (Fig. 8b).
  Status WriteTT(schema::NodeId node, RowId rowid);

  /// Appends a normal tuple (Fig. 8a): (R-rowid, Aggr...), or with
  /// dims_in_nt (CURE_DR) the grouping codes + aggregates. `full_dims` must
  /// then carry D projected codes (ALL positions ignored).
  Status WriteNT(schema::NodeId node, RowId rowid, const int64_t* aggrs,
                 const uint32_t* full_dims);

  /// Fixes the CAT format from first-flush statistics using the paper's
  /// rule; subsequent calls only accumulate reporting stats.
  void DecideCatFormat(const CatStats& stats);
  CatFormat cat_format() const { return cat_format_; }
  const CatStats& cat_stats() const { return cat_stats_; }

  /// The paper's Sec. 5.1 rule as a pure function: format (a) when common-
  /// source CATs prevail (k > (Y+1)·n), otherwise NT storage when Y = 1,
  /// else format (b). Requires stats.combos > 0.
  static CatFormat ChooseCatFormat(const CatStats& stats, int num_aggregates);

  /// Sets the CAT format from the outside (parallel shard builds receive the
  /// cube-wide decision through the CatFormatArbiter instead of deciding
  /// from their own flush statistics). Only valid while still undecided or
  /// when re-forcing the same format.
  void ForceCatFormat(CatFormat format);

  /// Adds flush statistics for reporting without touching the format
  /// decision (used together with ForceCatFormat).
  void AccumulateCatStats(const CatStats& stats);

  /// Appends every relation of `shard` — a per-partition store built over
  /// the same schema and options — into this store, in shard call order.
  /// Format A/B A-rowid references inside shard CAT relations are rebased
  /// past this store's current AGGREGATES rows, so merging shards in
  /// partition order reproduces byte-for-byte the store a serial build
  /// (flushing its pool at partition boundaries) would have produced.
  /// Adopts the shard's CAT format when this store is still undecided;
  /// decided shards must agree with each other. The shard must not be
  /// post-processed (no TT bitmaps).
  Status MergeShard(CubeStore&& shard);

  /// Format (a): appends (rowid, aggrs) to AGGREGATES, returns the A-rowid.
  Result<uint64_t> AppendAggregateA(RowId rowid, const int64_t* aggrs);
  Status WriteCatA(schema::NodeId node, uint64_t arowid);

  /// Format (b): appends (aggrs) to AGGREGATES, returns the A-rowid.
  Result<uint64_t> AppendAggregateB(const int64_t* aggrs);
  Status WriteCatB(schema::NodeId node, RowId rowid, uint64_t arowid);

  /// Uncondensed row (grouping codes + aggregates); the BUC baseline's
  /// storage format. `full_dims` carries D projected codes.
  Status WritePlain(schema::NodeId node, const uint32_t* full_dims,
                    const int64_t* aggrs);

  // ------- CURE+ post-processing (Sec. 5.3) -------

  struct PostProcessOptions {
    /// Replace a TT row-id list by a bitmap when the bitmap is smaller.
    bool use_bitmaps = true;
  };

  /// Sorts TT row-id lists (and CAT format-(a) A-rowid lists) into access
  /// order and optionally converts TT lists to bitmap indexes. `sources`
  /// provides the bitmap universes.
  Status PostProcess(const SourceSet& sources, const PostProcessOptions& options);

  // ------- persistence -------

  /// Writes every node relation, TT bitmap and the AGGREGATES relation into
  /// one packed file (single-file cube, checksummed manifest + data
  /// sections). Crash-consistent: the image is staged at `path + ".tmp"`,
  /// fsynced, atomically renamed onto `path`, and the parent directory is
  /// fsynced — a crash at any point leaves either the old cube or the
  /// complete new one, never a torn file. On failure the temp file is
  /// removed and `path` is untouched. See DESIGN.md §11.
  Status PersistPacked(const std::string& path) const;

  /// Opens a packed cube file; node relations become read-only views served
  /// by a shared pread-based reader, so node scans hit storage (bitmaps are
  /// loaded eagerly — they are small by construction). Verifies the
  /// manifest and every section checksum before returning: any mismatch,
  /// truncation, or garbage yields kDataLoss (legacy pre-manifest cubes get
  /// a distinct "legacy packed cube" kInvalidArgument), never a misread.
  static Result<CubeStore> OpenPacked(const std::string& path,
                                      const schema::CubeSchema* schema);

  /// One section's verification outcome (`cure_tool verify`).
  struct PackedSectionReport {
    uint64_t node_id = 0;   ///< ~0 for the AGGREGATES relation
    std::string kind;       ///< "NT", "TT", "CAT", "PLAIN", "TTBITMAP", "AGGREGATES"
    uint64_t rows = 0;
    uint64_t bytes = 0;
    uint64_t offset = 0;
    bool checksum_ok = false;
  };
  struct PackedVerifyReport {
    Status status;          ///< OK only when the whole file verified
    uint32_t version = 0;
    uint64_t file_size = 0;
    bool manifest_ok = false;
    std::vector<PackedSectionReport> sections;
  };

  /// Verifies a packed cube file without building a store: manifest
  /// structure + checksum, then every section checksum (unlike OpenPacked
  /// it keeps going after a bad section to report them all).
  static PackedVerifyReport VerifyPacked(const std::string& path);

  // ------- read path -------

  const NodeData* node(schema::NodeId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
  }
  /// Mutable access for maintenance (incremental updates rewrite node
  /// relations in place). Returns nullptr when the node has no storage.
  NodeData* mutable_node(schema::NodeId id) {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
  }
  const storage::Relation& aggregates() const { return aggregates_; }

  // ------- accounting -------

  /// Total logical bytes of all node relations, bitmaps and AGGREGATES.
  uint64_t TotalBytes() const;

  /// Number of materialized relations (the paper reports 88,932 for D=28).
  uint64_t NumRelations() const;

  struct ClassCounts {
    uint64_t nt = 0;
    uint64_t tt = 0;
    uint64_t cat = 0;
    uint64_t plain = 0;
    uint64_t aggregates = 0;
  };
  ClassCounts Counts() const;

  /// Number of nodes with at least one relation.
  uint64_t NumNonEmptyNodes() const { return nodes_.size(); }

  // Record widths.
  size_t NtRecordSize(int num_grouping) const;
  size_t TtRecordSize() const { return 8; }
  size_t CatRecordSize() const;
  size_t PlainRecordSize(int num_grouping) const;
  size_t AggregatesRecordSize(CatFormat format) const;

  int num_aggregates() const { return num_aggregates_; }

 private:
  NodeData* GetNode(schema::NodeId id);

  const schema::CubeSchema* schema_;
  schema::NodeIdCodec codec_;
  Options options_;
  int num_aggregates_ = 0;
  std::unordered_map<schema::NodeId, NodeData> nodes_;
  storage::Relation aggregates_;
  bool aggregates_init_ = false;
  CatFormat cat_format_ = CatFormat::kUndecided;
  CatStats cat_stats_;
};

}  // namespace cube
}  // namespace cure

#endif  // CURE_CUBE_CUBE_STORE_H_
