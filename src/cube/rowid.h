#ifndef CURE_CUBE_ROWID_H_
#define CURE_CUBE_ROWID_H_

#include <cstdint>

namespace cure {
namespace cube {

/// Namespaced row-id: the paper's R-rowid generalized so that references can
/// point into more than one source relation. CURE's external path (Sec. 4)
/// produces cube nodes whose tuples reference the fact table R *or* the
/// partition-pass node N; packing a source tag into the top bits keeps
/// common-source CAT detection exact (equal RowIds <=> same source tuple)
/// and lets query answering dereference through the right relation.
using RowId = uint64_t;

inline constexpr int kRowIdSourceShift = 48;
inline constexpr RowId kRowIdOrdinalMask = (RowId{1} << kRowIdSourceShift) - 1;

/// Source tags.
inline constexpr uint32_t kSourceFact = 0;   ///< the original fact table R
inline constexpr uint32_t kSourceNodeN = 1;  ///< the partition-pass node N

inline RowId MakeRowId(uint32_t source, uint64_t ordinal) {
  return (RowId{source} << kRowIdSourceShift) | ordinal;
}

inline uint32_t RowIdSource(RowId id) {
  return static_cast<uint32_t>(id >> kRowIdSourceShift);
}

inline uint64_t RowIdOrdinal(RowId id) { return id & kRowIdOrdinalMask; }

}  // namespace cube
}  // namespace cure

#endif  // CURE_CUBE_ROWID_H_
