#include "cube/cube_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/bytes.h"
#include "common/logging.h"
#include "storage/file_io.h"

namespace cure {
namespace cube {

using schema::NodeId;

const char* CatFormatName(CatFormat format) {
  switch (format) {
    case CatFormat::kUndecided:
      return "undecided";
    case CatFormat::kFormatA:
      return "format-a(common-source)";
    case CatFormat::kFormatB:
      return "format-b(coincidental)";
    case CatFormat::kAsNT:
      return "as-NT";
  }
  return "?";
}

CubeStore::CubeStore(const schema::CubeSchema* schema, const Options& options)
    : schema_(schema), options_(options) {
  // A null schema builds an empty placeholder store (move-assign target).
  if (schema != nullptr) {
    codec_ = schema::NodeIdCodec(*schema);
    num_aggregates_ = schema->num_aggregates();
  }
  if (options.forced_cat_format != CatFormat::kUndecided) {
    cat_format_ = options.forced_cat_format;
  }
}

CubeStore::NodeData* CubeStore::GetNode(NodeId id) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) return &it->second;
  NodeData& node = nodes_[id];
  node.levels = codec_.Decode(id);
  for (int d = 0; d < schema_->num_dims(); ++d) {
    if (node.levels[d] != codec_.all_level(d)) node.grouping_dims.push_back(d);
  }
  return &node;
}

size_t CubeStore::NtRecordSize(int num_grouping) const {
  if (options_.dims_in_nt) return 4ull * num_grouping + 8ull * num_aggregates_;
  return 8 + 8ull * num_aggregates_;
}

size_t CubeStore::CatRecordSize() const {
  return cat_format_ == CatFormat::kFormatB ? 16 : 8;
}

size_t CubeStore::PlainRecordSize(int num_grouping) const {
  return 4ull * num_grouping + 8ull * num_aggregates_;
}

size_t CubeStore::AggregatesRecordSize(CatFormat format) const {
  return (format == CatFormat::kFormatA ? 8 : 0) + 8ull * num_aggregates_;
}

Status CubeStore::WriteTT(NodeId id, RowId rowid) {
  NodeData* node = GetNode(id);
  if (!node->has_tt) {
    node->tt = storage::Relation::Memory(TtRecordSize());
    node->has_tt = true;
    node->tt_source = RowIdSource(rowid);
  } else {
    CURE_CHECK_EQ(node->tt_source, RowIdSource(rowid))
        << "TT source mismatch within a node";
  }
  return node->tt.Append(&rowid);
}

Status CubeStore::WriteNT(NodeId id, RowId rowid, const int64_t* aggrs,
                          const uint32_t* full_dims) {
  NodeData* node = GetNode(id);
  const int g = static_cast<int>(node->grouping_dims.size());
  if (!node->has_nt) {
    node->nt = storage::Relation::Memory(NtRecordSize(g));
    node->has_nt = true;
  }
  uint8_t rec[512];
  CURE_CHECK_LE(NtRecordSize(g), sizeof(rec));
  uint8_t* p = rec;
  if (options_.dims_in_nt) {
    CURE_CHECK(full_dims != nullptr) << "CURE_DR needs projected dims";
    for (int d : node->grouping_dims) {
      std::memcpy(p, &full_dims[d], 4);
      p += 4;
    }
  } else {
    std::memcpy(p, &rowid, 8);
    p += 8;
  }
  std::memcpy(p, aggrs, 8ull * num_aggregates_);
  return node->nt.Append(rec);
}

CatFormat CubeStore::ChooseCatFormat(const CatStats& stats, int num_aggregates) {
  // Paper's rule (Sec. 5.1): format (a) when k̄ > (Y+1)·n̄, i.e. common-source
  // CATs prevail; otherwise NTs when Y = 1, else format (b).
  const uint64_t y = static_cast<uint64_t>(num_aggregates);
  if (stats.cats > (y + 1) * stats.source_groups) return CatFormat::kFormatA;
  if (y == 1) return CatFormat::kAsNT;
  return CatFormat::kFormatB;
}

void CubeStore::DecideCatFormat(const CatStats& stats) {
  AccumulateCatStats(stats);
  if (cat_format_ != CatFormat::kUndecided) return;
  if (stats.combos == 0) return;  // No CATs yet; postpone.
  cat_format_ = ChooseCatFormat(stats, num_aggregates_);
  CURE_LOG(kDebug) << "CAT format decided: " << CatFormatName(cat_format_)
                   << " (k=" << stats.cats << " n=" << stats.source_groups
                   << " m=" << stats.combos << " Y=" << num_aggregates_ << ")";
}

void CubeStore::ForceCatFormat(CatFormat format) {
  CURE_CHECK(cat_format_ == CatFormat::kUndecided || cat_format_ == format)
      << "conflicting CAT format forcing";
  cat_format_ = format;
}

void CubeStore::AccumulateCatStats(const CatStats& stats) {
  cat_stats_.cats += stats.cats;
  cat_stats_.source_groups += stats.source_groups;
  cat_stats_.combos += stats.combos;
}

Result<uint64_t> CubeStore::AppendAggregateA(RowId rowid, const int64_t* aggrs) {
  CURE_CHECK(cat_format_ == CatFormat::kFormatA);
  if (!aggregates_init_) {
    aggregates_ = storage::Relation::Memory(AggregatesRecordSize(cat_format_));
    aggregates_init_ = true;
  }
  uint8_t rec[512];
  std::memcpy(rec, &rowid, 8);
  std::memcpy(rec + 8, aggrs, 8ull * num_aggregates_);
  const uint64_t arowid = aggregates_.num_rows();
  CURE_RETURN_IF_ERROR(aggregates_.Append(rec));
  return arowid;
}

Status CubeStore::WriteCatA(NodeId id, uint64_t arowid) {
  NodeData* node = GetNode(id);
  if (!node->has_cat) {
    node->cat = storage::Relation::Memory(CatRecordSize());
    node->has_cat = true;
  }
  return node->cat.Append(&arowid);
}

Result<uint64_t> CubeStore::AppendAggregateB(const int64_t* aggrs) {
  CURE_CHECK(cat_format_ == CatFormat::kFormatB);
  if (!aggregates_init_) {
    aggregates_ = storage::Relation::Memory(AggregatesRecordSize(cat_format_));
    aggregates_init_ = true;
  }
  const uint64_t arowid = aggregates_.num_rows();
  CURE_RETURN_IF_ERROR(aggregates_.Append(aggrs));
  return arowid;
}

Status CubeStore::WriteCatB(NodeId id, RowId rowid, uint64_t arowid) {
  NodeData* node = GetNode(id);
  if (!node->has_cat) {
    node->cat = storage::Relation::Memory(CatRecordSize());
    node->has_cat = true;
  }
  uint8_t rec[16];
  std::memcpy(rec, &rowid, 8);
  std::memcpy(rec + 8, &arowid, 8);
  return node->cat.Append(rec);
}

Status CubeStore::WritePlain(NodeId id, const uint32_t* full_dims,
                             const int64_t* aggrs) {
  NodeData* node = GetNode(id);
  const int g = static_cast<int>(node->grouping_dims.size());
  if (!node->has_plain) {
    node->plain = storage::Relation::Memory(PlainRecordSize(g));
    node->has_plain = true;
  }
  uint8_t rec[512];
  CURE_CHECK_LE(PlainRecordSize(g), sizeof(rec));
  uint8_t* p = rec;
  for (int d : node->grouping_dims) {
    std::memcpy(p, &full_dims[d], 4);
    p += 4;
  }
  std::memcpy(p, aggrs, 8ull * num_aggregates_);
  return node->plain.Append(rec);
}

namespace {

/// Appends every record of `from` to `to` (same record size).
Status AppendAllRecords(const storage::Relation& from, storage::Relation* to) {
  CURE_CHECK_EQ(from.record_size(), to->record_size());
  storage::Relation::Scanner scan(from);
  while (const uint8_t* rec = scan.Next()) {
    CURE_RETURN_IF_ERROR(to->Append(rec));
  }
  return scan.status();
}

}  // namespace

Status CubeStore::MergeShard(CubeStore&& shard) {
  CURE_CHECK_EQ(options_.dims_in_nt, shard.options_.dims_in_nt)
      << "shard/store option mismatch";
  if (shard.cat_format_ != CatFormat::kUndecided) {
    if (cat_format_ == CatFormat::kUndecided) {
      cat_format_ = shard.cat_format_;
    } else if (cat_format_ != shard.cat_format_) {
      return Status::Internal("CAT format mismatch between partition shards");
    }
  }
  AccumulateCatStats(shard.cat_stats_);

  // AGGREGATES rows append after ours; shard-local A-rowids shift by the
  // current row count.
  const uint64_t arowid_base = aggregates_init_ ? aggregates_.num_rows() : 0;
  if (shard.aggregates_init_ && shard.aggregates_.num_rows() > 0) {
    if (!aggregates_init_) {
      aggregates_ = storage::Relation::Memory(shard.aggregates_.record_size());
      aggregates_init_ = true;
    }
    CURE_RETURN_IF_ERROR(AppendAllRecords(shard.aggregates_, &aggregates_));
  }

  for (auto& [id, snode] : shard.nodes_) {
    if (snode.tt_bitmap != nullptr || snode.post_processed) {
      return Status::Internal("cannot merge a post-processed shard");
    }
    NodeData* node = GetNode(id);
    if (snode.has_nt) {
      if (!node->has_nt) {
        node->nt = storage::Relation::Memory(snode.nt.record_size());
        node->has_nt = true;
      }
      CURE_RETURN_IF_ERROR(AppendAllRecords(snode.nt, &node->nt));
    }
    if (snode.has_tt) {
      if (!node->has_tt) {
        node->tt = storage::Relation::Memory(snode.tt.record_size());
        node->has_tt = true;
        node->tt_source = snode.tt_source;
      } else {
        CURE_CHECK_EQ(node->tt_source, snode.tt_source)
            << "TT source mismatch across shards";
      }
      CURE_RETURN_IF_ERROR(AppendAllRecords(snode.tt, &node->tt));
    }
    if (snode.has_cat) {
      if (!node->has_cat) {
        node->cat = storage::Relation::Memory(snode.cat.record_size());
        node->has_cat = true;
      }
      // Rebase the A-rowid reference: format (a) rows are [arowid:u64],
      // format (b) rows are [R-rowid:u64][arowid:u64].
      const size_t arowid_offset = cat_format_ == CatFormat::kFormatB ? 8 : 0;
      uint8_t rec[16];
      CURE_CHECK_LE(snode.cat.record_size(), sizeof(rec));
      storage::Relation::Scanner scan(snode.cat);
      while (const uint8_t* src = scan.Next()) {
        std::memcpy(rec, src, snode.cat.record_size());
        uint64_t arowid;
        std::memcpy(&arowid, rec + arowid_offset, 8);
        arowid += arowid_base;
        std::memcpy(rec + arowid_offset, &arowid, 8);
        CURE_RETURN_IF_ERROR(node->cat.Append(rec));
      }
      CURE_RETURN_IF_ERROR(scan.status());
    }
    if (snode.has_plain) {
      if (!node->has_plain) {
        node->plain = storage::Relation::Memory(snode.plain.record_size());
        node->has_plain = true;
      }
      CURE_RETURN_IF_ERROR(AppendAllRecords(snode.plain, &node->plain));
    }
  }
  return Status::OK();
}

Status CubeStore::PostProcess(const SourceSet& sources,
                              const PostProcessOptions& options) {
  for (auto& [id, node] : nodes_) {
    (void)id;
    if (node.post_processed) continue;
    node.post_processed = true;
    if (node.has_tt) {
      const uint64_t count = node.tt.num_rows();
      std::vector<RowId> rowids;
      rowids.reserve(count);
      storage::Relation::Scanner scan(node.tt);
      while (const uint8_t* rec = scan.Next()) {
        RowId r;
        std::memcpy(&r, rec, 8);
        rowids.push_back(r);
      }
      CURE_RETURN_IF_ERROR(scan.status());
      std::sort(rowids.begin(), rowids.end());
      const SourceAccessor* src = sources.Get(node.tt_source);
      const uint64_t universe = src != nullptr ? src->num_rows() : 0;
      const bool bitmap_wins =
          options.use_bitmaps && universe > 0 && (universe + 7) / 8 < count * 8;
      if (bitmap_wins) {
        node.tt_bitmap = std::make_unique<storage::Bitmap>(universe);
        for (RowId r : rowids) node.tt_bitmap->Set(RowIdOrdinal(r));
        node.tt = storage::Relation();  // Dropped; the bitmap replaces it.
        node.has_tt = false;
      } else {
        storage::Relation sorted = storage::Relation::Memory(TtRecordSize());
        for (RowId r : rowids) CURE_RETURN_IF_ERROR(sorted.Append(&r));
        node.tt = std::move(sorted);
      }
    }
    if (node.has_cat && cat_format_ == CatFormat::kFormatA) {
      std::vector<uint64_t> arowids;
      arowids.reserve(node.cat.num_rows());
      storage::Relation::Scanner scan(node.cat);
      while (const uint8_t* rec = scan.Next()) {
        uint64_t a;
        std::memcpy(&a, rec, 8);
        arowids.push_back(a);
      }
      CURE_RETURN_IF_ERROR(scan.status());
      std::sort(arowids.begin(), arowids.end());
      storage::Relation sorted = storage::Relation::Memory(CatRecordSize());
      for (uint64_t a : arowids) CURE_RETURN_IF_ERROR(sorted.Append(&a));
      node.cat = std::move(sorted);
    }
  }
  return Status::OK();
}

namespace {

// Packed cube file layout: header, manifest (section table), data sections.
// Version 2 adds crash consistency: per-section FNV-1a checksums, a
// checksummed manifest, and the total file size, all verified at open.
constexpr uint64_t kPackedMagic = 0x4342554345525543ull;  // "CURECUBC"
constexpr uint32_t kPackedVersion = 2;
constexpr uint32_t kPackedVersionLegacy = 1;  // pre-manifest, no checksums

enum PackedKind : uint32_t {
  kPackedNt = 0,
  kPackedTt = 1,
  kPackedCat = 2,
  kPackedPlain = 3,
  kPackedTtBitmap = 4,
  kPackedAggregates = 5,
};

const char* PackedKindName(uint32_t kind) {
  switch (kind) {
    case kPackedNt: return "NT";
    case kPackedTt: return "TT";
    case kPackedCat: return "CAT";
    case kPackedPlain: return "PLAIN";
    case kPackedTtBitmap: return "TTBITMAP";
    case kPackedAggregates: return "AGGREGATES";
  }
  return "?";
}

// Both structs are padding-free (checked below): their raw bytes are the
// on-disk manifest, hashed as written.
struct PackedHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t dims_in_nt;
  uint32_t cat_format;
  uint32_t reserved;
  uint64_t num_entries;
  uint64_t total_size;         ///< whole-file byte length (truncation check)
  uint64_t manifest_checksum;  ///< FNV-1a of header (this field zeroed) + entries
};
static_assert(sizeof(PackedHeader) == 48, "PackedHeader must be packed");

struct PackedEntry {
  uint64_t node_id;
  uint32_t kind;
  uint32_t record_size;  // bitmap entries: unused (0)
  uint64_t rows;         // bitmap entries: number of 64-bit words
  uint64_t offset;
  uint64_t extra;        // bitmap universe / TT source tag packed
  uint64_t checksum;     // FNV-1a of the section's bytes
};
static_assert(sizeof(PackedEntry) == 48, "PackedEntry must be packed");

uint64_t EntryBytes(const PackedEntry& entry) {
  return entry.kind == kPackedTtBitmap ? entry.rows * 8
                                       : entry.rows * entry.record_size;
}

Status WriteRelationBlob(const storage::Relation& rel, storage::FileWriter* out) {
  if (rel.memory_backed() && rel.num_rows() > 0) {
    return out->Append(rel.RawRecord(0), rel.bytes());
  }
  storage::Relation::Scanner scan(rel);
  while (const uint8_t* rec = scan.Next()) {
    CURE_RETURN_IF_ERROR(out->Append(rec, rel.record_size()));
  }
  return scan.status();
}

Result<uint64_t> ChecksumRelation(const storage::Relation& rel) {
  if (rel.memory_backed() && rel.num_rows() > 0) {
    return Fnv1a64(rel.RawRecord(0), rel.bytes());
  }
  uint64_t h = kFnv1a64Offset;
  storage::Relation::Scanner scan(rel);
  while (const uint8_t* rec = scan.Next()) {
    h = Fnv1a64(rec, rel.record_size(), h);
  }
  CURE_RETURN_IF_ERROR(scan.status());
  return h;
}

/// FNV-1a over the manifest: the header with manifest_checksum zeroed,
/// then every entry, in file order.
uint64_t ManifestChecksum(PackedHeader header,
                          const std::vector<PackedEntry>& entries) {
  header.manifest_checksum = 0;
  uint64_t h = Fnv1a64(reinterpret_cast<const uint8_t*>(&header),
                       sizeof(header));
  if (!entries.empty()) {
    h = Fnv1a64(reinterpret_cast<const uint8_t*>(entries.data()),
                entries.size() * sizeof(PackedEntry), h);
  }
  return h;
}

/// Streams `len` bytes at `offset` through FNV-1a in bounded chunks.
Status ChecksumFileSection(const storage::FileReader& reader, uint64_t offset,
                           uint64_t len, uint64_t* out) {
  std::vector<uint8_t> buf(
      static_cast<size_t>(std::min<uint64_t>(std::max<uint64_t>(len, 1), 1 << 20)));
  uint64_t h = kFnv1a64Offset;
  while (len > 0) {
    const size_t chunk = static_cast<size_t>(std::min<uint64_t>(len, buf.size()));
    CURE_RETURN_IF_ERROR(reader.ReadAt(offset, buf.data(), chunk));
    h = Fnv1a64(buf.data(), chunk, h);
    offset += chunk;
    len -= chunk;
  }
  *out = h;
  return Status::OK();
}

Status DataLossAt(const std::string& path, const std::string& what) {
  return Status::DataLoss("packed cube '" + path + "': " + what);
}

/// Reads and structurally verifies the manifest: magic, version (legacy v1
/// gets a distinct actionable error), total size vs the real file size,
/// manifest checksum, and per-entry bounds. Section *data* checksums are
/// the caller's job (OpenPacked fails fast; VerifyPacked reports each).
Status ReadPackedManifest(const storage::FileReader& reader,
                          const std::string& path, PackedHeader* header,
                          std::vector<PackedEntry>* entries) {
  const uint64_t file_size = reader.file_size();
  // Magic + version first: they sit at the same offsets in every version,
  // so a legacy cube is told apart from garbage before the v2-sized header
  // read can fail.
  struct {
    uint64_t magic;
    uint32_t version;
  } prefix;
  if (file_size < sizeof(prefix)) {
    return DataLossAt(path, "file is " + std::to_string(file_size) +
                                " bytes, too small for a packed cube header");
  }
  CURE_RETURN_IF_ERROR(reader.ReadAt(0, &prefix, sizeof(prefix)));
  if (prefix.magic != kPackedMagic) {
    return DataLossAt(path, "bad magic: not a packed cube file or its header "
                            "was overwritten");
  }
  if (prefix.version == kPackedVersionLegacy) {
    return Status::InvalidArgument(
        "'" + path + "' is a legacy (v1) packed cube written before "
        "checksummed manifests; it cannot be verified — rebuild it with "
        "`cure_tool build` to upgrade");
  }
  if (prefix.version != kPackedVersion) {
    return DataLossAt(path, "unsupported format version " +
                                std::to_string(prefix.version));
  }
  if (file_size < sizeof(PackedHeader)) {
    return DataLossAt(path, "file truncated inside the header");
  }
  CURE_RETURN_IF_ERROR(reader.ReadAt(0, header, sizeof(PackedHeader)));
  if (header->total_size != file_size) {
    return DataLossAt(path, "file is " + std::to_string(file_size) +
                                " bytes but the manifest records " +
                                std::to_string(header->total_size) +
                                " (truncated or appended-to)");
  }
  const uint64_t manifest_end =
      sizeof(PackedHeader) + header->num_entries * sizeof(PackedEntry);
  if (header->num_entries > file_size / sizeof(PackedEntry) ||
      manifest_end > file_size) {
    return DataLossAt(path, "manifest section table exceeds the file");
  }
  entries->assign(header->num_entries, PackedEntry{});
  if (!entries->empty()) {
    CURE_RETURN_IF_ERROR(reader.ReadAt(sizeof(PackedHeader), entries->data(),
                                       entries->size() * sizeof(PackedEntry)));
  }
  if (ManifestChecksum(*header, *entries) != header->manifest_checksum) {
    return DataLossAt(path, "manifest checksum mismatch (header or section "
                            "table corrupted)");
  }
  // Entry bounds: every section must lie inside [manifest_end, total_size)
  // without arithmetic wrap-around.
  for (size_t i = 0; i < entries->size(); ++i) {
    const PackedEntry& entry = (*entries)[i];
    const std::string where = "section " + std::to_string(i) + " (" +
                              PackedKindName(entry.kind) + ")";
    if (entry.kind > kPackedAggregates) {
      return DataLossAt(path, where + ": unknown section kind");
    }
    if (entry.kind != kPackedTtBitmap && entry.rows > 0 &&
        entry.record_size == 0) {
      return DataLossAt(path, where + ": zero record size");
    }
    const uint64_t per_row =
        entry.kind == kPackedTtBitmap ? 8 : entry.record_size;
    if (entry.offset < manifest_end || entry.offset > file_size) {
      return DataLossAt(path, where + ": offset outside the file");
    }
    if (entry.rows > 0 && per_row > (file_size - entry.offset) / entry.rows) {
      return DataLossAt(path, where + ": section extends past end of file");
    }
  }
  return Status::OK();
}

}  // namespace

Status CubeStore::PersistPacked(const std::string& path) const {
  // Manifest first (sizes of everything are known up front).
  std::vector<PackedEntry> entries;
  std::vector<std::pair<const storage::Relation*, const storage::Bitmap*>> blobs;
  auto add_relation = [&](uint64_t node_id, PackedKind kind,
                          const storage::Relation& rel) {
    PackedEntry entry{};
    entry.node_id = node_id;
    entry.kind = kind;
    entry.record_size = static_cast<uint32_t>(rel.record_size());
    entry.rows = rel.num_rows();
    entries.push_back(entry);
    blobs.push_back({&rel, nullptr});
  };
  // Emit nodes in node-id order: the packed image must be a deterministic
  // function of the cube contents (unordered_map iteration depends on
  // insertion history, which differs between serial and shard-merged
  // builds of the very same cube).
  std::vector<std::pair<uint64_t, const NodeData*>> ordered;
  ordered.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ordered.emplace_back(id, &node);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [id, node_ptr] : ordered) {
    const NodeData& node = *node_ptr;
    if (node.has_nt) add_relation(id, kPackedNt, node.nt);
    if (node.has_tt) {
      add_relation(id, kPackedTt, node.tt);
      entries.back().extra = node.tt_source;
    }
    if (node.has_cat) add_relation(id, kPackedCat, node.cat);
    if (node.has_plain) add_relation(id, kPackedPlain, node.plain);
    if (node.tt_bitmap != nullptr) {
      PackedEntry entry{};
      entry.node_id = id;
      entry.kind = kPackedTtBitmap;
      entry.rows = node.tt_bitmap->words().size();
      entry.extra = (static_cast<uint64_t>(node.tt_source) << 48) |
                    node.tt_bitmap->universe();
      entries.push_back(entry);
      blobs.push_back({nullptr, node.tt_bitmap.get()});
    }
  }
  if (aggregates_init_) add_relation(~uint64_t{0}, kPackedAggregates, aggregates_);

  // Assign offsets and compute per-section checksums (for file-backed
  // relations this is a first streaming pass; the write below is the
  // second).
  uint64_t offset = sizeof(PackedHeader) + entries.size() * sizeof(PackedEntry);
  for (size_t i = 0; i < entries.size(); ++i) {
    PackedEntry& entry = entries[i];
    entry.offset = offset;
    offset += EntryBytes(entry);
    if (blobs[i].second != nullptr) {
      const auto& words = blobs[i].second->words();
      entry.checksum = Fnv1a64(reinterpret_cast<const uint8_t*>(words.data()),
                               words.size() * 8);
    } else {
      CURE_ASSIGN_OR_RETURN(entry.checksum, ChecksumRelation(*blobs[i].first));
    }
  }

  PackedHeader header{};
  header.magic = kPackedMagic;
  header.version = kPackedVersion;
  header.dims_in_nt = options_.dims_in_nt ? 1 : 0;
  header.cat_format = static_cast<uint32_t>(cat_format_);
  header.num_entries = entries.size();
  header.total_size = offset;
  header.manifest_checksum = ManifestChecksum(header, entries);

  // Crash-consistent publish: stage the complete image at a temp path,
  // fsync it, atomically rename onto `path`, then fsync the parent
  // directory so the new name itself is durable. Readers racing a crash
  // see either the old file or the complete new one.
  const std::string tmp = path + ".tmp";
  auto write_image = [&]() -> Status {
    storage::FileWriter writer;
    CURE_RETURN_IF_ERROR(writer.Open(tmp));
    CURE_RETURN_IF_ERROR(writer.Append(&header, sizeof(header)));
    for (const PackedEntry& entry : entries) {
      CURE_RETURN_IF_ERROR(writer.Append(&entry, sizeof(entry)));
    }
    for (size_t i = 0; i < blobs.size(); ++i) {
      if (blobs[i].second != nullptr) {
        const auto& words = blobs[i].second->words();
        CURE_RETURN_IF_ERROR(writer.Append(words.data(), words.size() * 8));
      } else {
        CURE_RETURN_IF_ERROR(WriteRelationBlob(*blobs[i].first, &writer));
      }
    }
    CURE_RETURN_IF_ERROR(writer.Sync());
    return writer.Close();
  };
  Status s = write_image();
  if (s.ok()) s = storage::RenameFile(tmp, path);
  if (s.ok()) s = storage::SyncDir(storage::DirName(path));
  if (!s.ok()) {
    // Leave no stale temp image behind. Deliberately not the (fault-
    // injectable) RemoveFile shim: cleanup must succeed even mid-sweep.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  }
  return s;
}

Result<CubeStore> CubeStore::OpenPacked(const std::string& path,
                                        const schema::CubeSchema* schema) {
  auto reader = std::make_shared<storage::FileReader>();
  CURE_RETURN_IF_ERROR(reader->Open(path));
  PackedHeader header;
  std::vector<PackedEntry> entries;
  CURE_RETURN_IF_ERROR(ReadPackedManifest(*reader, path, &header, &entries));
  // Verify every section's checksum before handing out views: a bit flip
  // or torn write must surface as kDataLoss at open, never as wrong rows
  // at query time.
  for (size_t i = 0; i < entries.size(); ++i) {
    uint64_t actual = 0;
    CURE_RETURN_IF_ERROR(ChecksumFileSection(*reader, entries[i].offset,
                                             EntryBytes(entries[i]), &actual));
    if (actual != entries[i].checksum) {
      return DataLossAt(path, "section " + std::to_string(i) + " (" +
                                  PackedKindName(entries[i].kind) +
                                  ") checksum mismatch: data corrupted");
    }
  }
  Options options;
  options.dims_in_nt = header.dims_in_nt != 0;
  CubeStore store(schema, options);
  store.cat_format_ = static_cast<CatFormat>(header.cat_format);
  for (const PackedEntry& entry : entries) {
    if (entry.kind == kPackedAggregates) {
      store.aggregates_ = storage::Relation::FileView(reader, entry.offset,
                                                      entry.rows,
                                                      entry.record_size);
      store.aggregates_init_ = true;
      continue;
    }
    NodeData* node = store.GetNode(entry.node_id);
    node->post_processed = true;  // Disk cubes are final.
    switch (entry.kind) {
      case kPackedNt:
        node->nt = storage::Relation::FileView(reader, entry.offset, entry.rows,
                                               entry.record_size);
        node->has_nt = true;
        break;
      case kPackedTt:
        node->tt = storage::Relation::FileView(reader, entry.offset, entry.rows,
                                               entry.record_size);
        node->has_tt = true;
        node->tt_source = static_cast<uint32_t>(entry.extra);
        break;
      case kPackedCat:
        node->cat = storage::Relation::FileView(reader, entry.offset, entry.rows,
                                                entry.record_size);
        node->has_cat = true;
        break;
      case kPackedPlain:
        node->plain = storage::Relation::FileView(reader, entry.offset,
                                                  entry.rows, entry.record_size);
        node->has_plain = true;
        break;
      case kPackedTtBitmap: {
        node->tt_bitmap = std::make_unique<storage::Bitmap>(
            entry.extra & ((uint64_t{1} << 48) - 1));
        node->tt_source = static_cast<uint32_t>(entry.extra >> 48);
        node->tt_bitmap->mutable_words().resize(entry.rows);
        CURE_RETURN_IF_ERROR(reader->ReadAt(entry.offset,
                                            node->tt_bitmap->mutable_words().data(),
                                            entry.rows * 8));
        break;
      }
      default:
        return Status::InvalidArgument("unknown packed entry kind");
    }
  }
  return store;
}

CubeStore::PackedVerifyReport CubeStore::VerifyPacked(const std::string& path) {
  PackedVerifyReport report;
  storage::FileReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) {
    report.status = s;
    return report;
  }
  report.file_size = reader.file_size();
  PackedHeader header;
  std::vector<PackedEntry> entries;
  s = ReadPackedManifest(reader, path, &header, &entries);
  if (!s.ok()) {
    report.status = s;
    return report;
  }
  report.version = header.version;
  report.manifest_ok = true;
  uint64_t bad_sections = 0;
  for (const PackedEntry& entry : entries) {
    PackedSectionReport section;
    section.node_id = entry.node_id;
    section.kind = PackedKindName(entry.kind);
    section.rows = entry.rows;
    section.bytes = EntryBytes(entry);
    section.offset = entry.offset;
    uint64_t actual = 0;
    s = ChecksumFileSection(reader, entry.offset, section.bytes, &actual);
    section.checksum_ok = s.ok() && actual == entry.checksum;
    if (!section.checksum_ok) ++bad_sections;
    report.sections.push_back(std::move(section));
  }
  report.status =
      bad_sections == 0
          ? Status::OK()
          : DataLossAt(path, std::to_string(bad_sections) + " of " +
                                 std::to_string(report.sections.size()) +
                                 " sections failed checksum verification");
  return report;
}

uint64_t CubeStore::TotalBytes() const {
  uint64_t total = aggregates_init_ ? aggregates_.bytes() : 0;
  for (const auto& [id, node] : nodes_) {
    (void)id;
    if (node.has_nt) total += node.nt.bytes();
    if (node.has_tt) total += node.tt.bytes();
    if (node.has_cat) total += node.cat.bytes();
    if (node.has_plain) total += node.plain.bytes();
    if (node.tt_bitmap != nullptr) total += node.tt_bitmap->SerializedBytes();
  }
  return total;
}

uint64_t CubeStore::NumRelations() const {
  uint64_t count = aggregates_init_ ? 1 : 0;
  for (const auto& [id, node] : nodes_) {
    (void)id;
    count += (node.has_nt ? 1 : 0) + (node.has_tt ? 1 : 0) + (node.has_cat ? 1 : 0) +
             (node.has_plain ? 1 : 0) + (node.tt_bitmap != nullptr ? 1 : 0);
  }
  return count;
}

CubeStore::ClassCounts CubeStore::Counts() const {
  ClassCounts counts;
  counts.aggregates = aggregates_init_ ? aggregates_.num_rows() : 0;
  for (const auto& [id, node] : nodes_) {
    (void)id;
    if (node.has_nt) counts.nt += node.nt.num_rows();
    if (node.has_tt) counts.tt += node.tt.num_rows();
    if (node.tt_bitmap != nullptr) counts.tt += node.tt_bitmap->Count();
    if (node.has_cat) counts.cat += node.cat.num_rows();
    if (node.has_plain) counts.plain += node.plain.num_rows();
  }
  return counts;
}

}  // namespace cube
}  // namespace cure
