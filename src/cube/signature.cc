#include "cube/signature.h"

#include <algorithm>

#include "common/logging.h"

namespace cure {
namespace cube {

CatFormatArbiter::CatFormatArbiter(size_t num_partitions)
    : state_(num_partitions, PartitionState::kRunning),
      proposal_(num_partitions, CatFormat::kUndecided) {}

void CatFormatArbiter::TryDecideLocked() {
  if (has_decided_) return;
  // Walk partitions in order: the first proposal not preceded by a still-
  // running partition is the one a serial build would have committed to.
  for (size_t p = 0; p < state_.size(); ++p) {
    if (state_[p] == PartitionState::kProposed) {
      decided_ = proposal_[p];
      has_decided_ = true;
      cv_.notify_all();
      return;
    }
    if (state_[p] == PartitionState::kRunning) return;  // Must wait for it.
  }
}

CatFormat CatFormatArbiter::Propose(size_t p, CatFormat candidate) {
  std::unique_lock<std::mutex> lock(mu_);
  CURE_CHECK_LT(p, state_.size());
  if (has_decided_) return decided_;
  state_[p] = PartitionState::kProposed;
  proposal_[p] = candidate;
  TryDecideLocked();
  cv_.wait(lock, [this] { return has_decided_; });
  return decided_;
}

void CatFormatArbiter::Finish(size_t p) {
  std::lock_guard<std::mutex> lock(mu_);
  CURE_CHECK_LT(p, state_.size());
  state_[p] = PartitionState::kDone;
  TryDecideLocked();
}

CatFormat CatFormatArbiter::format() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_decided_ ? decided_ : CatFormat::kUndecided;
}

SignaturePool::SignaturePool(int num_aggregates, int carry_dims, size_t capacity)
    : y_(num_aggregates), carry_dims_(carry_dims), capacity_(std::max<size_t>(capacity, 1)) {
  // Reserve lazily (geometric vector growth) instead of the full capacity up
  // front: parallel builds create one pool per partition task, and eagerly
  // reserving ~32 MB per task for a few thousand signatures costs more in
  // large allocations than the avoided reallocation copies. Small initial
  // reservation keeps tiny pools cheap; capacity_ still bounds size_.
  const size_t initial = std::min<size_t>(capacity_, 4096);
  aggrs_.reserve(initial * y_);
  rowids_.reserve(initial);
  nodes_.reserve(initial);
  if (carry_dims_ > 0) dims_.reserve(initial * carry_dims_);
}

uint64_t SignaturePool::FootprintBytes() const {
  return capacity_ * (8ull * y_ + 8 + 8 + 4ull * carry_dims_);
}

void SignaturePool::BindArbiter(CatFormatArbiter* arbiter, size_t partition) {
  arbiter_ = arbiter;
  partition_ = partition;
}

void SignaturePool::Add(const int64_t* aggrs, RowId rowid, schema::NodeId node,
                        const uint32_t* projected_dims) {
  CURE_CHECK_LT(size_, capacity_) << "pool overflow; caller must Flush first";
  aggrs_.insert(aggrs_.end(), aggrs, aggrs + y_);
  rowids_.push_back(rowid);
  nodes_.push_back(node);
  if (carry_dims_ > 0) {
    CURE_CHECK(projected_dims != nullptr);
    dims_.insert(dims_.end(), projected_dims, projected_dims + carry_dims_);
  }
  ++size_;
}

Status SignaturePool::Flush(CubeStore* store) {
  if (size_ == 0) return Status::OK();

  // Sort signature indices by (aggregates lexicographically, rowid) so that
  // CAT combos become adjacent and, within a combo, common-source groups
  // become adjacent.
  order_.resize(size_);
  for (size_t i = 0; i < size_; ++i) order_[i] = static_cast<uint32_t>(i);
  const int64_t* aggrs = aggrs_.data();
  const int y = y_;
  std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    const int64_t* pa = aggrs + static_cast<size_t>(a) * y;
    const int64_t* pb = aggrs + static_cast<size_t>(b) * y;
    for (int i = 0; i < y; ++i) {
      if (pa[i] != pb[i]) return pa[i] < pb[i];
    }
    return rowids_[a] < rowids_[b];
  });

  auto same_aggrs = [&](uint32_t a, uint32_t b) {
    const int64_t* pa = aggrs + static_cast<size_t>(a) * y;
    const int64_t* pb = aggrs + static_cast<size_t>(b) * y;
    for (int i = 0; i < y; ++i) {
      if (pa[i] != pb[i]) return false;
    }
    return true;
  };

  // Pass 1: statistics for the format decision (k, n, m over CAT combos).
  CatStats stats;
  for (size_t i = 0; i < size_;) {
    size_t j = i + 1;
    while (j < size_ && same_aggrs(order_[i], order_[j])) ++j;
    if (j - i > 1) {
      stats.combos += 1;
      stats.cats += j - i;
      // Count distinct rowids within the combo (sorted secondary key).
      uint64_t groups = 1;
      for (size_t t = i + 1; t < j; ++t) {
        if (rowids_[order_[t]] != rowids_[order_[t - 1]]) ++groups;
      }
      stats.source_groups += groups;
    }
    i = j;
  }
  if (arbiter_ != nullptr) {
    // Shard build: the format decision is cube-wide, arbitrated in
    // partition order; this flush only contributes reporting statistics
    // locally (the main store sums them at merge).
    if (store->cat_format() == CatFormat::kUndecided && stats.combos > 0) {
      store->ForceCatFormat(
          arbiter_->Propose(partition_, CubeStore::ChooseCatFormat(stats, y_)));
    }
    store->AccumulateCatStats(stats);
  } else {
    store->DecideCatFormat(stats);
  }
  // If the pool only ever saw NTs so far, the format may still be undecided;
  // CATs in this flush then fall back to NT storage only when there are none
  // (stats.combos == 0), so this is safe.
  const CatFormat format =
      store->cat_format() == CatFormat::kUndecided ? CatFormat::kAsNT
                                                   : store->cat_format();

  // Pass 2: write NTs and CATs.
  for (size_t i = 0; i < size_;) {
    size_t j = i + 1;
    while (j < size_ && same_aggrs(order_[i], order_[j])) ++j;
    if (j - i == 1) {
      const uint32_t s = order_[i];
      CURE_RETURN_IF_ERROR(store->WriteNT(
          nodes_[s], rowids_[s], aggrs + static_cast<size_t>(s) * y,
          carry_dims_ > 0 ? dims_.data() + static_cast<size_t>(s) * carry_dims_
                          : nullptr));
    } else {
      switch (format) {
        case CatFormat::kFormatA: {
          // One AGGREGATES tuple per common-source group (equal rowid).
          size_t g = i;
          while (g < j) {
            size_t h = g + 1;
            while (h < j && rowids_[order_[h]] == rowids_[order_[g]]) ++h;
            const uint32_t s0 = order_[g];
            CURE_ASSIGN_OR_RETURN(
                uint64_t arowid,
                store->AppendAggregateA(rowids_[s0],
                                        aggrs + static_cast<size_t>(s0) * y));
            for (size_t t = g; t < h; ++t) {
              CURE_RETURN_IF_ERROR(store->WriteCatA(nodes_[order_[t]], arowid));
            }
            g = h;
          }
          break;
        }
        case CatFormat::kFormatB: {
          const uint32_t s0 = order_[i];
          CURE_ASSIGN_OR_RETURN(
              uint64_t arowid,
              store->AppendAggregateB(aggrs + static_cast<size_t>(s0) * y));
          for (size_t t = i; t < j; ++t) {
            const uint32_t s = order_[t];
            CURE_RETURN_IF_ERROR(store->WriteCatB(nodes_[s], rowids_[s], arowid));
          }
          break;
        }
        case CatFormat::kAsNT:
        case CatFormat::kUndecided: {
          for (size_t t = i; t < j; ++t) {
            const uint32_t s = order_[t];
            CURE_RETURN_IF_ERROR(store->WriteNT(
                nodes_[s], rowids_[s], aggrs + static_cast<size_t>(s) * y,
                carry_dims_ > 0
                    ? dims_.data() + static_cast<size_t>(s) * carry_dims_
                    : nullptr));
          }
          break;
        }
      }
    }
    i = j;
  }

  aggrs_.clear();
  rowids_.clear();
  nodes_.clear();
  dims_.clear();
  size_ = 0;
  return Status::OK();
}

}  // namespace cube
}  // namespace cure
