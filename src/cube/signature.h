#ifndef CURE_CUBE_SIGNATURE_H_
#define CURE_CUBE_SIGNATURE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "cube/cube_store.h"
#include "cube/rowid.h"
#include "schema/node_id.h"

namespace cure {
namespace cube {

/// Serializes the CAT-format decision across concurrently-built partition
/// shards so a parallel build makes exactly the decision a serial build
/// would: the winning proposal is the one a serial pass over the partitions
/// *in partition order* would have seen first, i.e. the proposal of the
/// lowest-indexed partition that has a combo-bearing flush, taken from that
/// partition's first such flush.
///
/// Protocol: partition p's first combo-bearing flush calls
/// Propose(p, candidate) and blocks until every partition q < p has either
/// completed (Finish(q)) or proposed; the lowest pending proposal then fixes
/// the cube-wide format and every waiter adopts it. Blocking is
/// deadlock-free as long as construction tasks are dispatched in partition
/// order (ThreadPool FIFO): a running partition only ever waits on
/// lower-indexed partitions, which were dispatched earlier.
class CatFormatArbiter {
 public:
  explicit CatFormatArbiter(size_t num_partitions);

  /// Called by partition `p`'s first combo-bearing flush with the format the
  /// paper's rule picks from that flush's statistics. Blocks until the
  /// cube-wide format is determined; returns it.
  CatFormat Propose(size_t p, CatFormat candidate);

  /// Marks partition `p` complete. Must be called exactly once per
  /// partition, on success and error paths alike (later partitions may be
  /// blocked in Propose waiting for it).
  void Finish(size_t p);

  /// The decided format, or kUndecided when no partition saw a CAT combo.
  CatFormat format() const;

 private:
  enum class PartitionState : uint8_t { kRunning, kProposed, kDone };

  void TryDecideLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<PartitionState> state_;
  std::vector<CatFormat> proposal_;
  CatFormat decided_ = CatFormat::kUndecided;
  bool has_decided_ = false;
};

/// The bounded signature pool of Sec. 5.2 (Fig. 12).
///
/// Every non-trivial aggregated tuple deposits a *signature* —
/// (Aggr_1..Aggr_Y, R-rowid, NodeId) — instead of being written out
/// immediately. Flushing sorts the signatures by (aggregates, rowid),
/// classifies each group as NT (singleton) or CAT (|group| > 1), gathers the
/// k/n/m statistics that fix the CAT storage format on the first flush, and
/// writes through the CubeStore. A bounded pool trades a little redundant
/// CAT storage for bounded memory, exactly the paper's trade-off; capacity 0
/// disables CAT detection entirely (every flush handles one signature).
///
/// In CURE_DR mode the pool additionally carries the projected grouping
/// codes of each tuple so NTs can be materialized with dimension values
/// without dereferencing the source at flush time.
class SignaturePool {
 public:
  /// `capacity` = maximum number of signatures held (paper default 10^6).
  /// `carry_dims` > 0 enables CURE_DR dim storage (D slots per signature).
  SignaturePool(int num_aggregates, int carry_dims, size_t capacity);

  bool full() const { return size_ >= capacity_; }
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

  /// Memory footprint of a full pool (the paper quotes (Y+2)*4 bytes per
  /// signature for 10^6 signatures; ours is 8-byte fields).
  uint64_t FootprintBytes() const;

  /// Routes this pool's CAT-format decisions through `arbiter` as partition
  /// `partition` (shard builds). Flush then never decides the format from
  /// local statistics: it proposes to the arbiter instead and forces the
  /// returned cube-wide format on the target store.
  void BindArbiter(CatFormatArbiter* arbiter, size_t partition);

  /// Adds a signature. `projected_dims` must be non-null iff carry_dims > 0
  /// and then hold D codes projected onto the node's levels (ALL positions
  /// arbitrary).
  void Add(const int64_t* aggrs, RowId rowid, schema::NodeId node,
           const uint32_t* projected_dims);

  /// Sorts, classifies and writes all pooled signatures (Sec. 5.2), then
  /// empties the pool.
  Status Flush(CubeStore* store);

 private:
  int y_;
  int carry_dims_;
  size_t capacity_;
  size_t size_ = 0;
  CatFormatArbiter* arbiter_ = nullptr;
  size_t partition_ = 0;
  std::vector<int64_t> aggrs_;        // y_ per signature
  std::vector<RowId> rowids_;
  std::vector<schema::NodeId> nodes_;
  std::vector<uint32_t> dims_;        // carry_dims_ per signature (DR only)
  std::vector<uint32_t> order_;       // scratch
};

}  // namespace cube
}  // namespace cure

#endif  // CURE_CUBE_SIGNATURE_H_
