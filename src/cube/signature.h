#ifndef CURE_CUBE_SIGNATURE_H_
#define CURE_CUBE_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cube/cube_store.h"
#include "cube/rowid.h"
#include "schema/node_id.h"

namespace cure {
namespace cube {

/// The bounded signature pool of Sec. 5.2 (Fig. 12).
///
/// Every non-trivial aggregated tuple deposits a *signature* —
/// (Aggr_1..Aggr_Y, R-rowid, NodeId) — instead of being written out
/// immediately. Flushing sorts the signatures by (aggregates, rowid),
/// classifies each group as NT (singleton) or CAT (|group| > 1), gathers the
/// k/n/m statistics that fix the CAT storage format on the first flush, and
/// writes through the CubeStore. A bounded pool trades a little redundant
/// CAT storage for bounded memory, exactly the paper's trade-off; capacity 0
/// disables CAT detection entirely (every flush handles one signature).
///
/// In CURE_DR mode the pool additionally carries the projected grouping
/// codes of each tuple so NTs can be materialized with dimension values
/// without dereferencing the source at flush time.
class SignaturePool {
 public:
  /// `capacity` = maximum number of signatures held (paper default 10^6).
  /// `carry_dims` > 0 enables CURE_DR dim storage (D slots per signature).
  SignaturePool(int num_aggregates, int carry_dims, size_t capacity);

  bool full() const { return size_ >= capacity_; }
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

  /// Memory footprint of a full pool (the paper quotes (Y+2)*4 bytes per
  /// signature for 10^6 signatures; ours is 8-byte fields).
  uint64_t FootprintBytes() const;

  /// Adds a signature. `projected_dims` must be non-null iff carry_dims > 0
  /// and then hold D codes projected onto the node's levels (ALL positions
  /// arbitrary).
  void Add(const int64_t* aggrs, RowId rowid, schema::NodeId node,
           const uint32_t* projected_dims);

  /// Sorts, classifies and writes all pooled signatures (Sec. 5.2), then
  /// empties the pool.
  Status Flush(CubeStore* store);

 private:
  int y_;
  int carry_dims_;
  size_t capacity_;
  size_t size_ = 0;
  std::vector<int64_t> aggrs_;        // y_ per signature
  std::vector<RowId> rowids_;
  std::vector<schema::NodeId> nodes_;
  std::vector<uint32_t> dims_;        // carry_dims_ per signature (DR only)
  std::vector<uint32_t> order_;       // scratch
};

}  // namespace cube
}  // namespace cure

#endif  // CURE_CUBE_SIGNATURE_H_
