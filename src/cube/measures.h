#ifndef CURE_CUBE_MEASURES_H_
#define CURE_CUBE_MEASURES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "schema/cube_schema.h"

namespace cure {
namespace cube {

/// Executes the schema's aggregate list over int64 values.
///
/// Aggregation is phrased as lift + combine so that partial aggregates
/// re-aggregate exactly (the property CURE's external path needs, paper
/// Sec. 4 observation 3): a raw fact row is first *lifted* into aggregate
/// space (COUNT -> 1, SUM/MIN/MAX -> the measure), after which all further
/// aggregation — in-memory recursion, the partition-pass hash build of node
/// N, and re-aggregation of N — is the same associative combine.
class Aggregator {
 public:
  explicit Aggregator(const schema::CubeSchema& schema)
      : specs_(schema.aggregates()) {}

  int num_aggregates() const { return static_cast<int>(specs_.size()); }

  /// Lifts a raw measure vector into aggregate space.
  void Lift(const int64_t* raw_measures, int64_t* out) const {
    for (size_t y = 0; y < specs_.size(); ++y) {
      out[y] = specs_[y].fn == schema::AggFn::kCount
                   ? 1
                   : raw_measures[specs_[y].measure_index];
    }
  }

  /// Initializes an accumulator to the combine identity.
  void Init(int64_t* acc) const {
    for (size_t y = 0; y < specs_.size(); ++y) {
      switch (specs_[y].fn) {
        case schema::AggFn::kSum:
        case schema::AggFn::kCount:
          acc[y] = 0;
          break;
        case schema::AggFn::kMin:
          acc[y] = std::numeric_limits<int64_t>::max();
          break;
        case schema::AggFn::kMax:
          acc[y] = std::numeric_limits<int64_t>::min();
          break;
      }
    }
  }

  /// acc = acc ⊕ value, per aggregate.
  void Combine(int64_t* acc, const int64_t* value) const {
    for (size_t y = 0; y < specs_.size(); ++y) {
      switch (specs_[y].fn) {
        case schema::AggFn::kSum:
        case schema::AggFn::kCount:
          acc[y] += value[y];
          break;
        case schema::AggFn::kMin:
          if (value[y] < acc[y]) acc[y] = value[y];
          break;
        case schema::AggFn::kMax:
          if (value[y] > acc[y]) acc[y] = value[y];
          break;
      }
    }
  }

 private:
  std::vector<schema::AggregateSpec> specs_;
};

}  // namespace cube
}  // namespace cure

#endif  // CURE_CUBE_MEASURES_H_
