#include "cube/source.h"

#include <cstring>
#include <tuple>

#include "common/logging.h"

namespace cure {
namespace cube {

Status FactTableSource::GetRow(uint64_t ordinal, uint32_t* dims,
                               int64_t* aggrs) const {
  if (ordinal >= table_->num_rows()) {
    return Status::OutOfRange("fact row out of range");
  }
  for (int d = 0; d < table_->num_dims(); ++d) dims[d] = table_->dim(d, ordinal);
  // Lift through a small stack buffer; measure counts are tiny.
  int64_t raw[16];
  CURE_CHECK_LE(table_->num_measures(), 16);
  for (int m = 0; m < table_->num_measures(); ++m) raw[m] = table_->measure(m, ordinal);
  aggregator_.Lift(raw, aggrs);
  return Status::OK();
}

Result<std::unique_ptr<FactRelationSource>> FactRelationSource::Create(
    const storage::Relation* relation, const schema::CubeSchema* schema,
    double cached_fraction) {
  const size_t expected = 4ull * schema->num_dims() + 8ull * schema->num_raw_measures();
  if (relation->record_size() != expected) {
    return Status::InvalidArgument("fact relation record size mismatch");
  }
  std::unique_ptr<FactRelationSource> src(new FactRelationSource(relation, schema));
  CURE_RETURN_IF_ERROR(src->cache_.Init(relation, cached_fraction));
  return src;
}

Status FactRelationSource::GetRow(uint64_t ordinal, uint32_t* dims,
                                  int64_t* aggrs) const {
  uint8_t rec[256];
  const size_t width = relation_->record_size();
  CURE_CHECK_LE(width, sizeof(rec));
  const uint8_t* p = cache_.TryRaw(ordinal);
  if (p == nullptr) {
    CURE_RETURN_IF_ERROR(cache_.Read(ordinal, rec));
    p = rec;
  }
  std::memcpy(dims, p, 4ull * num_dims_);
  int64_t raw[16];
  CURE_CHECK_LE(num_raw_, 16);
  std::memcpy(raw, p + 4ull * num_dims_, 8ull * num_raw_);
  aggregator_.Lift(raw, aggrs);
  return Status::OK();
}

Status AggTableSource::GetRow(uint64_t ordinal, uint32_t* dims,
                              int64_t* aggrs) const {
  if (ordinal >= table_->num_rows) return Status::OutOfRange("agg row out of range");
  for (size_t d = 0; d < table_->dims.size(); ++d) {
    dims[d] = table_->native_levels[d] == kNativeAll ? 0 : table_->dims[d][ordinal];
  }
  for (size_t y = 0; y < table_->aggrs.size(); ++y) {
    aggrs[y] = table_->aggrs[y][ordinal];
  }
  return Status::OK();
}

void SourceSet::Register(uint32_t source_tag,
                         std::shared_ptr<SourceAccessor> accessor) {
  if (accessors_.size() <= source_tag) accessors_.resize(source_tag + 1);
  accessors_[source_tag] = std::move(accessor);
  // Eagerly build every level map reachable from this source's native
  // levels. The maps are small (one uint32 per code at the native level),
  // and after this prewarm ProjectDims never mutates level_maps_ — which is
  // what lets concurrent query workers share one SourceSet without locking.
  const SourceAccessor* src = accessors_[source_tag].get();
  for (int d = 0; d < schema_->num_dims(); ++d) {
    const int from = src->native_level(d);
    if (from == kNativeAll) continue;
    for (int target = 0; target < schema_->dim(d).num_levels(); ++target) {
      if (target == from || !schema_->dim(d).Derives(from, target)) continue;
      const auto key = std::make_tuple(d, from, target);
      if (level_maps_.find(key) != level_maps_.end()) continue;
      Result<std::vector<uint32_t>> map =
          schema_->dim(d).LevelToLevelMap(from, target);
      if (map.ok()) level_maps_.emplace(key, std::move(map).value());
    }
  }
}

const SourceAccessor* SourceSet::Get(uint32_t source_tag) const {
  if (source_tag >= accessors_.size()) return nullptr;
  return accessors_[source_tag].get();
}

Status SourceSet::GetRow(RowId rowid, uint32_t* dims, int64_t* aggrs) const {
  const SourceAccessor* src = Get(RowIdSource(rowid));
  if (src == nullptr) {
    return Status::NotFound("no source registered for tag " +
                            std::to_string(RowIdSource(rowid)));
  }
  return src->GetRow(RowIdOrdinal(rowid), dims, aggrs);
}

Status SourceSet::ProjectDims(uint32_t source_tag, const uint32_t* native_dims,
                              const std::vector<int>& node_levels,
                              uint32_t* out) const {
  const SourceAccessor* src = Get(source_tag);
  if (src == nullptr) {
    return Status::NotFound("no source registered for tag " +
                            std::to_string(source_tag));
  }
  int o = 0;
  for (int d = 0; d < schema_->num_dims(); ++d) {
    const int target = node_levels[d];
    if (target == schema_->dim(d).num_levels()) continue;  // ALL: skipped.
    const int from = src->native_level(d);
    if (from == kNativeAll) {
      return Status::Internal("node requires dimension the source projected out");
    }
    if (from == target) {
      out[o++] = native_dims[d];
      continue;
    }
    const auto key = std::make_tuple(d, from, target);
    auto it = level_maps_.find(key);
    if (it == level_maps_.end()) {
      CURE_ASSIGN_OR_RETURN(std::vector<uint32_t> map,
                            schema_->dim(d).LevelToLevelMap(from, target));
      it = level_maps_.emplace(key, std::move(map)).first;
    }
    out[o++] = it->second[native_dims[d]];
  }
  return Status::OK();
}

}  // namespace cube
}  // namespace cure
