#ifndef CURE_ENGINE_INCREMENTAL_H_
#define CURE_ENGINE_INCREMENTAL_H_

#include <cstdint>

#include "common/status.h"
#include "engine/cure.h"
#include "schema/fact_table.h"

namespace cure {
namespace engine {

/// Statistics of one incremental update.
struct UpdateStats {
  uint64_t delta_rows = 0;
  uint64_t new_tts = 0;            ///< TTs created for brand-new groups
  uint64_t absorbed_tts = 0;       ///< old TTs that became non-trivial
  uint64_t merged_tuples = 0;      ///< old NTs/CATs whose aggregates changed
  uint64_t new_signatures = 0;     ///< new non-trivial groups materialized
  double seconds = 0;
};

/// Incremental maintenance of a CURE cube (the paper's Sec. 8 future work:
/// "efficient methods for updating NTs and TTs", extended here to CATs by
/// rewriting affected CATs as NTs).
///
/// `table` must be the same fact table the cube was built from, with the
/// delta rows *already appended*; `old_rows` is the row count at build time
/// (delta = rows [old_rows, table.num_rows())). The algorithm re-runs the
/// plan traversal over the delta rows only, probing each visited node's
/// existing storage:
///  * a delta group matching nothing and of size one becomes a new TT at
///    its least detailed node (pruning the sub-tree, as in construction);
///  * a delta group matching an old TT absorbs the TT's source row — the
///    combined rows continue down the sub-tree, regenerating its storage;
///  * a delta group matching an old NT/CAT merges aggregates; the old tuple
///    is tombstoned and the merged tuple rewritten (as an NT).
///
/// Requirements: an in-memory (not spilled), complete (min_support == 1),
/// in-memory-built (non-partitioned) cube on the tall plan. A violated
/// requirement returns kFailedPrecondition naming it — callers (the
/// maintenance layer's refresh job) treat that code as "fall back to a
/// staged rebuild". Post-processed cubes are supported: affected
/// bitmaps/sorted lists are rebuilt as plain TT lists (re-run
/// CurePostProcess afterwards if desired).
Result<UpdateStats> ApplyDelta(CureCube* cube, const schema::FactTable& table,
                               uint64_t old_rows);

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_INCREMENTAL_H_
