#include "engine/cure.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "engine/build_pipeline.h"

namespace cure {
namespace engine {

using schema::CubeSchema;
using schema::NodeId;

Result<cube::SourceSet> CureCube::MakeSources(double fact_cache_fraction) const {
  cube::SourceSet sources(&schema_);
  if (fact_table_ != nullptr) {
    sources.Register(cube::kSourceFact, std::make_shared<cube::FactTableSource>(
                                            fact_table_, &schema_));
  } else if (fact_relation_ != nullptr) {
    CURE_ASSIGN_OR_RETURN(
        std::unique_ptr<cube::FactRelationSource> src,
        cube::FactRelationSource::Create(fact_relation_, &schema_,
                                         fact_cache_fraction));
    sources.Register(cube::kSourceFact, std::move(src));
  } else {
    return Status::Internal("cube has no fact source");
  }
  if (n_table_ != nullptr) {
    sources.Register(cube::kSourceNodeN,
                     std::make_shared<cube::AggTableSource>(n_table_.get()));
  }
  return sources;
}

Result<std::unique_ptr<CureCube>> CureCube::OpenPersisted(
    const CubeSchema& schema, const std::string& packed_path,
    const storage::Relation* fact_relation) {
  std::unique_ptr<CureCube> cube(new CureCube());
  cube->schema_ = schema;
  CURE_ASSIGN_OR_RETURN(cube->store_,
                        cube::CubeStore::OpenPacked(packed_path, &cube->schema_));
  cube->fact_relation_ = fact_relation;
  cube->spilled_ = true;
  const cube::CubeStore::ClassCounts counts = cube->store_.Counts();
  cube->stats_.tt = counts.tt;
  cube->stats_.nt = counts.nt;
  cube->stats_.cat = counts.cat;
  cube->stats_.aggregates_rows = counts.aggregates;
  cube->stats_.cube_bytes = cube->TotalBytes();
  cube->stats_.num_relations = cube->store_.NumRelations();
  cube->stats_.input_rows = fact_relation != nullptr ? fact_relation->num_rows() : 0;
  return cube;
}

Status CureCube::SpillStoreToDisk(const std::string& path) {
  CURE_RETURN_IF_ERROR(store_.PersistPacked(path));
  CURE_ASSIGN_OR_RETURN(store_, cube::CubeStore::OpenPacked(path, &schema_));
  spilled_ = true;
  return Status::OK();
}

int CureCube::NodeRegion(NodeId id) const {
  if (partition_level_ < 0) return 0;
  const schema::NodeIdCodec& codec = store_.codec();
  const int level0 = static_cast<int>((id / 1) % codec.radix(0));  // F_0 == 1
  return level0 <= partition_level_ ? 0 : 1;
}

Result<std::unique_ptr<CureCube>> BuildCure(const CubeSchema& schema,
                                            const FactInput& input,
                                            const CureOptions& options) {
  if (input.table == nullptr && input.relation == nullptr) {
    return Status::InvalidArgument("FactInput needs a table or a relation");
  }
  if (options.trace && !Tracer::enabled()) Tracer::Instance().Enable();
  std::unique_ptr<CureCube> cube(new CureCube());
  cube->schema_ = options.flat ? schema.Flattened() : schema;
  cube->store_ = cube::CubeStore(
      &cube->schema_,
      {.dims_in_nt = options.dims_in_nt,
       .forced_cat_format = options.forced_cat_format});
  cube->fact_table_ = input.table;
  cube->fact_relation_ = input.relation;
  cube->plan_style_ = options.plan_style;

  BuildStats& stats = cube->stats_;
  stats.input_rows = input.num_rows();
  stats.min_support = options.min_support;

  BuildContext ctx;
  ctx.schema = &cube->schema_;
  ctx.options = &options;
  ctx.input = &input;
  ctx.external =
      options.force_external || input.bytes() > options.memory_budget_bytes;
  ctx.num_threads = options.num_threads > 0 ? options.num_threads
                                            : ThreadPool::DefaultThreadCount();
  if (ctx.external) {
    CURE_ASSIGN_OR_RETURN(ctx.scratch_dir,
                          CreateBuildScratchDir(options.temp_dir));
  }

  BuildPipeline pipeline(ctx, &cube->store_, &stats);
  Status status = pipeline.Run();
  // The scratch directory is per-build, so it is removed wholesale on
  // success and error paths alike — no stale partition or sort-run files.
  if (ctx.external) RemoveBuildScratchDir(ctx.scratch_dir);
  CURE_RETURN_IF_ERROR(status);

  cube->partition_level_ = pipeline.partition_level();
  cube->n_table_ = pipeline.n_table();
  stats.cube_bytes = cube->TotalBytes();
  return cube;
}

Status CurePostProcess(CureCube* cube, bool use_bitmaps) {
  Stopwatch watch;
  CURE_ASSIGN_OR_RETURN(cube::SourceSet sources, cube->MakeSources(0.0));
  cube::CubeStore::PostProcessOptions options;
  options.use_bitmaps = use_bitmaps;
  CURE_RETURN_IF_ERROR(cube->store_.PostProcess(sources, options));
  cube->stats_.postprocess_seconds += watch.ElapsedSeconds();
  cube->stats_.cube_bytes = cube->TotalBytes();
  cube->stats_.num_relations = cube->store_.NumRelations();
  return Status::OK();
}

}  // namespace engine
}  // namespace cure
