#include "engine/cure.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "cube/measures.h"
#include "cube/rowid.h"
#include "cube/signature.h"
#include "engine/partition.h"

namespace cure {
namespace engine {

using cube::AggTable;
using cube::Aggregator;
using cube::RowId;
using cube::SignaturePool;
using schema::CubeSchema;
using schema::Dimension;
using schema::NodeId;

namespace {

/// Column-oriented view of one recursion input (the whole fact table, one
/// sound partition, or node N). Columns may alias caller-owned memory or be
/// owned by the Load.
struct Load {
  std::vector<const uint32_t*> native;  // D columns of native codes
  std::vector<const int64_t*> aggrs;    // Y columns of lifted aggregates
  std::vector<RowId> rowids;
  std::vector<int> native_level;        // per dimension; kNativeAll possible
  size_t n = 0;

  // Owned backing storage (when not aliasing).
  std::vector<std::vector<uint32_t>> own_dims;
  std::vector<std::vector<int64_t>> own_aggrs;
};

Load LoadFromTable(const schema::FactTable& table, const CubeSchema& schema) {
  const int d = schema.num_dims();
  const int y = schema.num_aggregates();
  Load load;
  load.n = table.num_rows();
  load.native_level.assign(d, 0);
  load.native.resize(d);
  for (int i = 0; i < d; ++i) load.native[i] = table.dim_column(i).data();
  load.aggrs.resize(y);
  for (int a = 0; a < y; ++a) {
    const schema::AggregateSpec& spec = schema.aggregate(a);
    if (spec.fn == schema::AggFn::kCount) {
      load.own_aggrs.emplace_back(load.n, 1);
      load.aggrs[a] = load.own_aggrs.back().data();
    } else {
      load.aggrs[a] = table.measure_column(spec.measure_index).data();
    }
  }
  load.rowids.resize(load.n);
  for (size_t i = 0; i < load.n; ++i) {
    load.rowids[i] = cube::MakeRowId(cube::kSourceFact, i);
  }
  return load;
}

Result<Load> LoadFromFactRelation(const storage::Relation& rel,
                                  const CubeSchema& schema) {
  const int d = schema.num_dims();
  const int y = schema.num_aggregates();
  const int raw = schema.num_raw_measures();
  Load load;
  load.n = rel.num_rows();
  load.native_level.assign(d, 0);
  load.own_dims.assign(d, {});
  load.own_aggrs.assign(y, {});
  for (auto& col : load.own_dims) col.reserve(load.n);
  for (auto& col : load.own_aggrs) col.reserve(load.n);
  load.rowids.resize(load.n);
  Aggregator aggregator(schema);
  std::vector<int64_t> raw_buf(std::max(raw, 1));
  std::vector<int64_t> lifted(y);
  storage::Relation::Scanner scan(rel);
  uint64_t i = 0;
  while (const uint8_t* rec = scan.Next()) {
    uint32_t code;
    for (int k = 0; k < d; ++k) {
      std::memcpy(&code, rec + 4ull * k, 4);
      load.own_dims[k].push_back(code);
    }
    std::memcpy(raw_buf.data(), rec + 4ull * d, 8ull * raw);
    aggregator.Lift(raw_buf.data(), lifted.data());
    for (int a = 0; a < y; ++a) load.own_aggrs[a].push_back(lifted[a]);
    load.rowids[i] = cube::MakeRowId(cube::kSourceFact, i);
    ++i;
  }
  load.native.resize(d);
  load.aggrs.resize(y);
  for (int k = 0; k < d; ++k) load.native[k] = load.own_dims[k].data();
  for (int a = 0; a < y; ++a) load.aggrs[a] = load.own_aggrs[a].data();
  return load;
}

Result<Load> LoadFromPartition(const storage::Relation& rel,
                               const CubeSchema& schema) {
  const int d = schema.num_dims();
  const int y = schema.num_aggregates();
  Load load;
  load.n = rel.num_rows();
  load.native_level.assign(d, 0);
  load.own_dims.assign(d, {});
  load.own_aggrs.assign(y, {});
  for (auto& col : load.own_dims) col.reserve(load.n);
  for (auto& col : load.own_aggrs) col.reserve(load.n);
  load.rowids.reserve(load.n);
  storage::Relation::Scanner scan(rel);
  while (const uint8_t* rec = scan.Next()) {
    const uint8_t* p = rec;
    uint32_t code;
    for (int k = 0; k < d; ++k) {
      std::memcpy(&code, p, 4);
      load.own_dims[k].push_back(code);
      p += 4;
    }
    int64_t v;
    for (int a = 0; a < y; ++a) {
      std::memcpy(&v, p, 8);
      load.own_aggrs[a].push_back(v);
      p += 8;
    }
    uint64_t rowid;
    std::memcpy(&rowid, p, 8);
    load.rowids.push_back(cube::MakeRowId(cube::kSourceFact, rowid));
  }
  load.native.resize(d);
  load.aggrs.resize(y);
  for (int k = 0; k < d; ++k) load.native[k] = load.own_dims[k].data();
  for (int a = 0; a < y; ++a) load.aggrs[a] = load.own_aggrs[a].data();
  return load;
}

Load LoadFromAggTable(const AggTable& table, const CubeSchema& schema) {
  const int d = schema.num_dims();
  const int y = schema.num_aggregates();
  Load load;
  load.n = table.num_rows;
  load.native_level = table.native_levels;
  load.native.resize(d);
  for (int k = 0; k < d; ++k) load.native[k] = table.dims[k].data();
  load.aggrs.resize(y);
  for (int a = 0; a < y; ++a) load.aggrs[a] = table.aggrs[a].data();
  load.rowids.resize(load.n);
  for (size_t i = 0; i < load.n; ++i) {
    load.rowids[i] = cube::MakeRowId(cube::kSourceNodeN, i);
  }
  return load;
}

/// The recursive BUC-style traversal of CURE's execution plan (the paper's
/// ExecutePlan / FollowEdge of Fig. 13), writing TTs eagerly and pooling
/// signatures for every non-trivial tuple.
class Executor {
 public:
  Executor(const CubeSchema* schema, const CureOptions* options,
           cube::CubeStore* store, SignaturePool* pool, BuildStats* stats)
      : schema_(schema),
        options_(options),
        store_(store),
        pool_(pool),
        stats_(stats),
        codec_(*schema),
        num_dims_(schema->num_dims()),
        y_(schema->num_aggregates()) {
    agg_buf_.resize(y_);
    dr_dims_.resize(num_dims_);
    node_levels_buf_.resize(num_dims_);
  }

  /// Full in-memory construction: ExecutePlan over the whole input.
  Status RunInMemory(const Load& load) {
    CURE_RETURN_IF_ERROR(PrepareRun(&load, std::vector<int>(num_dims_, 0)));
    return ExecutePlan(0, load.n, 0);
  }

  /// Per-partition construction: FollowEdge on dimension 0 at level L
  /// (builds only nodes with A at levels <= L).
  Status RunPartition(const Load& load, int level) {
    CURE_RETURN_IF_ERROR(PrepareRun(&load, std::vector<int>(num_dims_, 0)));
    levels_[0] = level;
    included_[0] = true;
    Status s = FollowEdge(0, load.n, 0);
    included_[0] = false;
    return s;
  }

  /// Node-N construction: ExecutePlan with dimension 0 bounded below by
  /// L+1 (or skipped entirely when A was projected out of N).
  Status RunNodeN(const Load& load, int level) {
    std::vector<int> base(num_dims_, 0);
    const bool projected = load.native_level[0] == cube::kNativeAll;
    base[0] = level + 1;
    CURE_RETURN_IF_ERROR(PrepareRun(&load, base));
    return ExecutePlan(0, load.n, projected ? 1 : 0);
  }

 private:
  Status PrepareRun(const Load* load, std::vector<int> base_levels) {
    load_ = load;
    base_levels_ = std::move(base_levels);
    levels_.assign(num_dims_, 0);
    included_.assign(num_dims_, false);
    idx_.resize(load->n);
    for (size_t i = 0; i < load->n; ++i) idx_[i] = static_cast<uint32_t>(i);
    // Build native-level -> target-level code maps for every level we may
    // sort on. Levels below a dimension's base level are never visited.
    maps_.assign(num_dims_, {});
    for (int d = 0; d < num_dims_; ++d) {
      const Dimension& dim = schema_->dim(d);
      maps_[d].resize(dim.num_levels());
      const int native = load->native_level[d];
      if (native == cube::kNativeAll) continue;  // Dimension never accessed.
      for (int l = base_levels_[d]; l < dim.num_levels(); ++l) {
        if (l == native) continue;  // Identity.
        CURE_ASSIGN_OR_RETURN(maps_[d][l], dim.LevelToLevelMap(native, l));
      }
    }
    return Status::OK();
  }

  uint32_t Key(uint32_t row, int d, int level) const {
    const uint32_t code = load_->native[d][row];
    const std::vector<uint32_t>& map = maps_[d][level];
    return map.empty() ? code : map[code];
  }

  NodeId CurrentNode() {
    for (int d = 0; d < num_dims_; ++d) {
      node_levels_buf_[d] = included_[d] ? levels_[d] : codec_.all_level(d);
    }
    return codec_.Encode(node_levels_buf_);
  }

  Status ExecutePlan(size_t begin, size_t end, int dim) {
    const size_t count = end - begin;
    if (count < options_->min_support || count == 0) return Status::OK();
    const NodeId node = CurrentNode();
    if (count == 1 && options_->min_support <= 1) {
      // Trivial tuple: store the row-id at this (least detailed) node and
      // prune — the whole sub-tree above shares it (Sec. 5.1).
      return store_->WriteTT(node, load_->rowids[idx_[begin]]);
    }

    // Aggregate the span and pool the signature.
    RowId min_rowid = std::numeric_limits<RowId>::max();
    for (size_t i = begin; i < end; ++i) {
      min_rowid = std::min(min_rowid, load_->rowids[idx_[i]]);
    }
    for (int a = 0; a < y_; ++a) {
      const int64_t* col = load_->aggrs[a];
      const schema::AggFn fn = schema_->aggregate(a).fn;
      int64_t acc;
      switch (fn) {
        case schema::AggFn::kSum:
        case schema::AggFn::kCount:
          acc = 0;
          for (size_t i = begin; i < end; ++i) acc += col[idx_[i]];
          break;
        case schema::AggFn::kMin:
          acc = std::numeric_limits<int64_t>::max();
          for (size_t i = begin; i < end; ++i) acc = std::min(acc, col[idx_[i]]);
          break;
        case schema::AggFn::kMax:
          acc = std::numeric_limits<int64_t>::min();
          for (size_t i = begin; i < end; ++i) acc = std::max(acc, col[idx_[i]]);
          break;
      }
      agg_buf_[a] = acc;
    }
    if (pool_->full()) {
      ++stats_->signature_flushes;
      CURE_RETURN_IF_ERROR(pool_->Flush(store_));
    }
    const uint32_t* dr = nullptr;
    if (options_->dims_in_nt) {
      const uint32_t first = idx_[begin];
      for (int d = 0; d < num_dims_; ++d) {
        dr_dims_[d] = included_[d] ? Key(first, d, levels_[d]) : 0;
      }
      dr = dr_dims_.data();
    }
    pool_->Add(agg_buf_.data(), min_rowid, node, dr);

    if (options_->plan_style == plan::ExecutionPlan::Style::kTall) {
      // Rule 1: solid edges introduce each remaining dimension at its
      // plan-root levels.
      for (int d = dim; d < num_dims_; ++d) {
        if (load_->native_level[d] == cube::kNativeAll) continue;
        for (int root : schema_->dim(d).plan_roots()) {
          levels_[d] = root;
          included_[d] = true;
          Status s = FollowEdge(begin, end, d);
          included_[d] = false;
          CURE_RETURN_IF_ERROR(s);
        }
      }
      // Rule 2: one dashed edge refining the rightmost grouping dimension.
      if (dim >= 1 && included_[dim - 1]) {
        const int cur = levels_[dim - 1];
        for (int child : schema_->dim(dim - 1).plan_children(cur)) {
          if (child < base_levels_[dim - 1]) continue;
          levels_[dim - 1] = child;
          CURE_RETURN_IF_ERROR(FollowEdge(begin, end, dim - 1));
        }
        levels_[dim - 1] = cur;
      }
    } else {
      // P2-style (plan ablation): every level via solid edges; no sort
      // sharing through dashed refinement.
      for (int d = dim; d < num_dims_; ++d) {
        if (load_->native_level[d] == cube::kNativeAll) continue;
        for (int level = base_levels_[d]; level < schema_->dim(d).num_levels();
             ++level) {
          levels_[d] = level;
          included_[d] = true;
          Status s = FollowEdge(begin, end, d);
          included_[d] = false;
          CURE_RETURN_IF_ERROR(s);
        }
      }
    }
    return Status::OK();
  }

  Status FollowEdge(size_t begin, size_t end, int d) {
    const int level = levels_[d];
    const uint32_t cardinality = schema_->dim(d).cardinality(level);
    SortSpan(
        idx_.data() + begin, end - begin, cardinality,
        [&](uint32_t row) { return Key(row, d, level); }, options_->sort_policy,
        &scratch_);
    size_t i = begin;
    while (i < end) {
      const uint32_t value = Key(idx_[i], d, level);
      size_t j = i + 1;
      while (j < end && Key(idx_[j], d, level) == value) ++j;
      CURE_RETURN_IF_ERROR(ExecutePlan(i, j, d + 1));
      i = j;
    }
    return Status::OK();
  }

  const CubeSchema* schema_;
  const CureOptions* options_;
  cube::CubeStore* store_;
  SignaturePool* pool_;
  BuildStats* stats_;
  schema::NodeIdCodec codec_;
  int num_dims_;
  int y_;

  // Per-run state.
  const Load* load_ = nullptr;
  std::vector<uint32_t> idx_;
  std::vector<int> levels_;
  std::vector<int> base_levels_;
  std::vector<bool> included_;
  std::vector<std::vector<std::vector<uint32_t>>> maps_;
  SortScratch scratch_;
  std::vector<int64_t> agg_buf_;
  std::vector<uint32_t> dr_dims_;
  std::vector<int> node_levels_buf_;
};

}  // namespace

Result<cube::SourceSet> CureCube::MakeSources(double fact_cache_fraction) const {
  cube::SourceSet sources(&schema_);
  if (fact_table_ != nullptr) {
    sources.Register(cube::kSourceFact, std::make_shared<cube::FactTableSource>(
                                            fact_table_, &schema_));
  } else if (fact_relation_ != nullptr) {
    CURE_ASSIGN_OR_RETURN(
        std::unique_ptr<cube::FactRelationSource> src,
        cube::FactRelationSource::Create(fact_relation_, &schema_,
                                         fact_cache_fraction));
    sources.Register(cube::kSourceFact, std::move(src));
  } else {
    return Status::Internal("cube has no fact source");
  }
  if (n_table_ != nullptr) {
    sources.Register(cube::kSourceNodeN,
                     std::make_shared<cube::AggTableSource>(n_table_.get()));
  }
  return sources;
}

Result<std::unique_ptr<CureCube>> CureCube::OpenPersisted(
    const CubeSchema& schema, const std::string& packed_path,
    const storage::Relation* fact_relation) {
  std::unique_ptr<CureCube> cube(new CureCube());
  cube->schema_ = schema;
  CURE_ASSIGN_OR_RETURN(cube->store_,
                        cube::CubeStore::OpenPacked(packed_path, &cube->schema_));
  cube->fact_relation_ = fact_relation;
  cube->spilled_ = true;
  const cube::CubeStore::ClassCounts counts = cube->store_.Counts();
  cube->stats_.tt = counts.tt;
  cube->stats_.nt = counts.nt;
  cube->stats_.cat = counts.cat;
  cube->stats_.aggregates_rows = counts.aggregates;
  cube->stats_.cube_bytes = cube->TotalBytes();
  cube->stats_.num_relations = cube->store_.NumRelations();
  cube->stats_.input_rows = fact_relation != nullptr ? fact_relation->num_rows() : 0;
  return cube;
}

Status CureCube::SpillStoreToDisk(const std::string& path) {
  CURE_RETURN_IF_ERROR(store_.PersistPacked(path));
  CURE_ASSIGN_OR_RETURN(store_, cube::CubeStore::OpenPacked(path, &schema_));
  spilled_ = true;
  return Status::OK();
}

int CureCube::NodeRegion(NodeId id) const {
  if (partition_level_ < 0) return 0;
  const schema::NodeIdCodec& codec = store_.codec();
  const int level0 = static_cast<int>((id / 1) % codec.radix(0));  // F_0 == 1
  return level0 <= partition_level_ ? 0 : 1;
}

Result<std::unique_ptr<CureCube>> BuildCure(const CubeSchema& schema,
                                            const FactInput& input,
                                            const CureOptions& options) {
  if (input.table == nullptr && input.relation == nullptr) {
    return Status::InvalidArgument("FactInput needs a table or a relation");
  }
  std::unique_ptr<CureCube> cube(new CureCube());
  cube->schema_ = options.flat ? schema.Flattened() : schema;
  cube->store_ = cube::CubeStore(
      &cube->schema_,
      {.dims_in_nt = options.dims_in_nt,
       .forced_cat_format = options.forced_cat_format});
  cube->fact_table_ = input.table;
  cube->fact_relation_ = input.relation;
  cube->plan_style_ = options.plan_style;

  BuildStats& stats = cube->stats_;
  stats.input_rows = input.num_rows();
  stats.min_support = options.min_support;

  Stopwatch watch;
  SignaturePool pool(cube->schema_.num_aggregates(),
                     options.dims_in_nt ? cube->schema_.num_dims() : 0,
                     options.signature_pool_capacity);
  Executor executor(&cube->schema_, &options, &cube->store_, &pool, &stats);

  const bool external =
      options.force_external || input.bytes() > options.memory_budget_bytes;
  if (!external) {
    if (input.table != nullptr) {
      Load load = LoadFromTable(*input.table, cube->schema_);
      CURE_RETURN_IF_ERROR(executor.RunInMemory(load));
    } else {
      CURE_ASSIGN_OR_RETURN(Load load,
                            LoadFromFactRelation(*input.relation, cube->schema_));
      CURE_RETURN_IF_ERROR(executor.RunInMemory(load));
    }
  } else {
    if (input.relation == nullptr) {
      return Status::InvalidArgument(
          "external construction needs the fact table in relation form");
    }
    if (options.plan_style != plan::ExecutionPlan::Style::kTall) {
      return Status::Unimplemented("external path requires the tall (P3) plan");
    }
    stats.external = true;
    PartitionOptions popts;
    popts.memory_budget_bytes = options.memory_budget_bytes;
    popts.temp_dir = options.temp_dir;
    CURE_ASSIGN_OR_RETURN(std::vector<std::vector<uint64_t>> hist,
                          ComputeLevelHistograms(*input.relation, cube->schema_));
    CURE_ASSIGN_OR_RETURN(LevelChoice choice,
                          SelectPartitionLevel(cube->schema_, hist,
                                               input.relation->num_rows(), popts));
    CURE_ASSIGN_OR_RETURN(
        PartitionOutcome outcome,
        PartitionFact(*input.relation, cube->schema_, choice, hist, popts));
    stats.partition_level = outcome.level;
    stats.num_partitions = outcome.partitions.size();
    stats.n_rows = outcome.n_table->num_rows;
    stats.n_bytes = outcome.n_table->bytes();
    stats.partition_write_bytes = outcome.write_bytes;
    cube->partition_level_ = outcome.level;
    cube->n_table_ = outcome.n_table;

    for (storage::Relation& part : outcome.partitions) {
      stats.partition_read_bytes += part.bytes();
      CURE_ASSIGN_OR_RETURN(Load load, LoadFromPartition(part, cube->schema_));
      CURE_RETURN_IF_ERROR(executor.RunPartition(load, outcome.level));
      const std::string path = part.path();
      part = storage::Relation();  // Close before removing.
      CURE_RETURN_IF_ERROR(storage::RemoveFile(path));
    }
    Load nload = LoadFromAggTable(*outcome.n_table, cube->schema_);
    CURE_RETURN_IF_ERROR(executor.RunNodeN(nload, outcome.level));
  }
  ++stats.signature_flushes;
  CURE_RETURN_IF_ERROR(pool.Flush(&cube->store_));

  stats.build_seconds = watch.ElapsedSeconds();
  const cube::CubeStore::ClassCounts counts = cube->store_.Counts();
  stats.tt = counts.tt;
  stats.nt = counts.nt;
  stats.cat = counts.cat;
  stats.aggregates_rows = counts.aggregates;
  stats.cube_bytes = cube->TotalBytes();
  stats.num_relations = cube->store_.NumRelations();
  return cube;
}

Status CurePostProcess(CureCube* cube, bool use_bitmaps) {
  Stopwatch watch;
  CURE_ASSIGN_OR_RETURN(cube::SourceSet sources, cube->MakeSources(0.0));
  cube::CubeStore::PostProcessOptions options;
  options.use_bitmaps = use_bitmaps;
  CURE_RETURN_IF_ERROR(cube->store_.PostProcess(sources, options));
  cube->stats_.postprocess_seconds += watch.ElapsedSeconds();
  cube->stats_.cube_bytes = cube->TotalBytes();
  cube->stats_.num_relations = cube->store_.NumRelations();
  return Status::OK();
}

}  // namespace engine
}  // namespace cure
