#ifndef CURE_ENGINE_CUBE_BUILD_H_
#define CURE_ENGINE_CUBE_BUILD_H_

#include <cstdint>
#include <string>

#include "schema/fact_table.h"
#include "storage/relation.h"

namespace cure {
namespace engine {

/// Input fact data: an in-memory table and/or its sealed binary relation
/// form (record layout [D x u32][M x i64]). At least one must be set; the
/// external path requires (or spills to) the relation form.
struct FactInput {
  const schema::FactTable* table = nullptr;
  const storage::Relation* relation = nullptr;

  uint64_t num_rows() const {
    return table != nullptr ? table->num_rows()
                            : (relation != nullptr ? relation->num_rows() : 0);
  }
  uint64_t bytes() const {
    return table != nullptr ? table->bytes()
                            : (relation != nullptr ? relation->bytes() : 0);
  }
};

/// Wall/CPU time of one build-pipeline stage. CPU time sums the consuming
/// thread's CPU across every worker that ran part of the stage, so
/// cpu_seconds / wall_seconds approximates the achieved parallelism.
struct StageStats {
  double wall_seconds = 0;
  double cpu_seconds = 0;

  void Add(const StageStats& other) {
    wall_seconds += other.wall_seconds;
    cpu_seconds += other.cpu_seconds;
  }
};

/// Construction statistics common to every engine.
struct BuildStats {
  double build_seconds = 0;
  double postprocess_seconds = 0;
  uint64_t input_rows = 0;

  // Per-stage pipeline timings (BuildCure only; the stage breakdown of
  // build_seconds). Construct covers the per-partition recursion; merge
  // covers shard stitching plus node-N construction.
  StageStats load_stage;
  StageStats partition_stage;
  StageStats construct_stage;
  StageStats merge_stage;
  StageStats persist_stage;

  // Concurrency actually used by the construct stage.
  int num_threads = 1;
  uint64_t max_in_flight_partitions = 1;

  // Tuple-class counts after construction.
  uint64_t tt = 0;
  uint64_t nt = 0;
  uint64_t cat = 0;
  uint64_t plain = 0;
  uint64_t aggregates_rows = 0;

  uint64_t cube_bytes = 0;
  uint64_t num_relations = 0;
  uint64_t signature_flushes = 0;
  uint64_t min_support = 1;

  // External path.
  bool external = false;
  int partition_level = -1;
  uint64_t num_partitions = 0;
  uint64_t n_rows = 0;            ///< rows of the partition-pass node N
  uint64_t n_bytes = 0;
  uint64_t partition_write_bytes = 0;
  uint64_t partition_read_bytes = 0;
};

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_CUBE_BUILD_H_
