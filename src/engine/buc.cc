#include "engine/buc.h"

#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "cube/measures.h"
#include "engine/kernels.h"

namespace cure {
namespace engine {

using schema::CubeSchema;
using schema::FactTable;
using schema::NodeId;

namespace {

class BucExecutor {
 public:
  BucExecutor(const CubeSchema* schema, const FactTable* table,
              const BucOptions* options, cube::CubeStore* store)
      : schema_(schema),
        table_(table),
        options_(options),
        store_(store),
        codec_(*schema),
        num_dims_(schema->num_dims()),
        y_(schema->num_aggregates()) {
    idx_.resize(table->num_rows());
    for (size_t i = 0; i < idx_.size(); ++i) idx_[i] = static_cast<uint32_t>(i);
    included_.assign(num_dims_, false);
    agg_buf_.resize(y_);
    dims_buf_.resize(num_dims_);
    node_levels_buf_.resize(num_dims_);
    batched_ = ResolveBatchRows(options->batch_rows) > 1;
    // Lift COUNT aggregates once; other aggregates read measure columns.
    for (int a = 0; a < y_; ++a) {
      if (schema->aggregate(a).fn == schema::AggFn::kCount) {
        count_ones_.assign(table->num_rows(), 1);
        break;
      }
    }
  }

  Status Run() { return Recurse(0, idx_.size(), 0); }

 private:
  const int64_t* AggColumn(int a) const {
    const schema::AggregateSpec& spec = schema_->aggregate(a);
    if (spec.fn == schema::AggFn::kCount) return count_ones_.data();
    return table_->measure_column(spec.measure_index).data();
  }

  Status Recurse(size_t begin, size_t end, int dim) {
    const size_t count = end - begin;
    if (count < options_->min_support || count == 0) return Status::OK();

    // Aggregate and write the current node's tuple (uncondensed).
    const uint32_t* span_idx = idx_.data() + begin;
    for (int a = 0; a < y_; ++a) {
      agg_buf_[a] = AggregateGather(schema_->aggregate(a).fn, AggColumn(a),
                                    span_idx, count);
    }
    const uint32_t first = idx_[begin];
    for (int d = 0; d < num_dims_; ++d) {
      dims_buf_[d] = included_[d] ? table_->dim(d, first) : 0;
      node_levels_buf_[d] = included_[d] ? 0 : codec_.all_level(d);
    }
    const NodeId node = codec_.Encode(node_levels_buf_);
    CURE_RETURN_IF_ERROR(store_->WritePlain(node, dims_buf_.data(), agg_buf_.data()));

    for (int d = dim; d < num_dims_; ++d) {
      const uint32_t cardinality = schema_->dim(d).leaf_cardinality();
      const std::vector<uint32_t>& col = table_->dim_column(d);
      included_[d] = true;
      Status status = Status::OK();
      if (batched_) {
        const size_t depth = static_cast<size_t>(edge_depth_++);
        if (segments_pool_.size() <= depth) segments_pool_.resize(depth + 1);
        SortSpanSegments(
            idx_.data() + begin, count, cardinality,
            [&](uint32_t row) { return col[row]; }, options_->sort_policy,
            &scratch_, &segments_pool_[depth]);
        for (size_t s = 0; status.ok(); ++s) {
          const std::vector<uint32_t>& segs = segments_pool_[depth];
          if (s >= segs.size()) break;
          const size_t i = begin + segs[s];
          const size_t j =
              s + 1 < segs.size() ? begin + segs[s + 1] : begin + count;
          status = Recurse(i, j, d + 1);
        }
        --edge_depth_;
      } else {
        SortSpan(
            idx_.data() + begin, count, cardinality,
            [&](uint32_t row) { return col[row]; }, options_->sort_policy,
            &scratch_);
        size_t i = begin;
        while (i < end) {
          const uint32_t value = col[idx_[i]];
          size_t j = i + 1;
          while (j < end && col[idx_[j]] == value) ++j;
          status = Recurse(i, j, d + 1);
          if (!status.ok()) break;
          i = j;
        }
      }
      included_[d] = false;
      CURE_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  }

  const CubeSchema* schema_;
  const FactTable* table_;
  const BucOptions* options_;
  cube::CubeStore* store_;
  schema::NodeIdCodec codec_;
  int num_dims_;
  int y_;

  std::vector<uint32_t> idx_;
  std::vector<bool> included_;
  std::vector<int64_t> agg_buf_;
  std::vector<uint32_t> dims_buf_;
  std::vector<int> node_levels_buf_;
  std::vector<int64_t> count_ones_;
  SortScratch scratch_;
  bool batched_ = true;
  int edge_depth_ = 0;
  std::vector<std::vector<uint32_t>> segments_pool_;
};

}  // namespace

Result<std::unique_ptr<BucCube>> BuildBuc(const CubeSchema& schema,
                                          const FactTable& table,
                                          const BucOptions& options) {
  std::unique_ptr<BucCube> cube(new BucCube());
  cube->schema_ = schema.Flattened();
  cube->store_ = cube::CubeStore(&cube->schema_, {});
  cube->stats_.input_rows = table.num_rows();

  Stopwatch watch;
  BucExecutor executor(&cube->schema_, &table, &options, &cube->store_);
  CURE_RETURN_IF_ERROR(executor.Run());
  cube->stats_.build_seconds = watch.ElapsedSeconds();
  cube->stats_.plain = cube->store_.Counts().plain;
  cube->stats_.cube_bytes = cube->store_.TotalBytes();
  cube->stats_.num_relations = cube->store_.NumRelations();
  return cube;
}

}  // namespace engine
}  // namespace cure
