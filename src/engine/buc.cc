#include "engine/buc.h"

#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "cube/measures.h"

namespace cure {
namespace engine {

using schema::CubeSchema;
using schema::FactTable;
using schema::NodeId;

namespace {

class BucExecutor {
 public:
  BucExecutor(const CubeSchema* schema, const FactTable* table,
              const BucOptions* options, cube::CubeStore* store)
      : schema_(schema),
        table_(table),
        options_(options),
        store_(store),
        codec_(*schema),
        num_dims_(schema->num_dims()),
        y_(schema->num_aggregates()) {
    idx_.resize(table->num_rows());
    for (size_t i = 0; i < idx_.size(); ++i) idx_[i] = static_cast<uint32_t>(i);
    included_.assign(num_dims_, false);
    agg_buf_.resize(y_);
    dims_buf_.resize(num_dims_);
    node_levels_buf_.resize(num_dims_);
    // Lift COUNT aggregates once; other aggregates read measure columns.
    for (int a = 0; a < y_; ++a) {
      if (schema->aggregate(a).fn == schema::AggFn::kCount) {
        count_ones_.assign(table->num_rows(), 1);
        break;
      }
    }
  }

  Status Run() { return Recurse(0, idx_.size(), 0); }

 private:
  const int64_t* AggColumn(int a) const {
    const schema::AggregateSpec& spec = schema_->aggregate(a);
    if (spec.fn == schema::AggFn::kCount) return count_ones_.data();
    return table_->measure_column(spec.measure_index).data();
  }

  Status Recurse(size_t begin, size_t end, int dim) {
    const size_t count = end - begin;
    if (count < options_->min_support || count == 0) return Status::OK();

    // Aggregate and write the current node's tuple (uncondensed).
    for (int a = 0; a < y_; ++a) {
      const int64_t* col = AggColumn(a);
      const schema::AggFn fn = schema_->aggregate(a).fn;
      int64_t acc;
      switch (fn) {
        case schema::AggFn::kSum:
        case schema::AggFn::kCount:
          acc = 0;
          for (size_t i = begin; i < end; ++i) acc += col[idx_[i]];
          break;
        case schema::AggFn::kMin:
          acc = std::numeric_limits<int64_t>::max();
          for (size_t i = begin; i < end; ++i)
            acc = std::min(acc, col[idx_[i]]);
          break;
        case schema::AggFn::kMax:
          acc = std::numeric_limits<int64_t>::min();
          for (size_t i = begin; i < end; ++i)
            acc = std::max(acc, col[idx_[i]]);
          break;
      }
      agg_buf_[a] = acc;
    }
    const uint32_t first = idx_[begin];
    for (int d = 0; d < num_dims_; ++d) {
      dims_buf_[d] = included_[d] ? table_->dim(d, first) : 0;
      node_levels_buf_[d] = included_[d] ? 0 : codec_.all_level(d);
    }
    const NodeId node = codec_.Encode(node_levels_buf_);
    CURE_RETURN_IF_ERROR(store_->WritePlain(node, dims_buf_.data(), agg_buf_.data()));

    for (int d = dim; d < num_dims_; ++d) {
      const uint32_t cardinality = schema_->dim(d).leaf_cardinality();
      const std::vector<uint32_t>& col = table_->dim_column(d);
      SortSpan(
          idx_.data() + begin, count, cardinality,
          [&](uint32_t row) { return col[row]; }, options_->sort_policy, &scratch_);
      included_[d] = true;
      size_t i = begin;
      Status status;
      while (i < end) {
        const uint32_t value = col[idx_[i]];
        size_t j = i + 1;
        while (j < end && col[idx_[j]] == value) ++j;
        status = Recurse(i, j, d + 1);
        if (!status.ok()) break;
        i = j;
      }
      included_[d] = false;
      CURE_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  }

  const CubeSchema* schema_;
  const FactTable* table_;
  const BucOptions* options_;
  cube::CubeStore* store_;
  schema::NodeIdCodec codec_;
  int num_dims_;
  int y_;

  std::vector<uint32_t> idx_;
  std::vector<bool> included_;
  std::vector<int64_t> agg_buf_;
  std::vector<uint32_t> dims_buf_;
  std::vector<int> node_levels_buf_;
  std::vector<int64_t> count_ones_;
  SortScratch scratch_;
};

}  // namespace

Result<std::unique_ptr<BucCube>> BuildBuc(const CubeSchema& schema,
                                          const FactTable& table,
                                          const BucOptions& options) {
  std::unique_ptr<BucCube> cube(new BucCube());
  cube->schema_ = schema.Flattened();
  cube->store_ = cube::CubeStore(&cube->schema_, {});
  cube->stats_.input_rows = table.num_rows();

  Stopwatch watch;
  BucExecutor executor(&cube->schema_, &table, &options, &cube->store_);
  CURE_RETURN_IF_ERROR(executor.Run());
  cube->stats_.build_seconds = watch.ElapsedSeconds();
  cube->stats_.plain = cube->store_.Counts().plain;
  cube->stats_.cube_bytes = cube->store_.TotalBytes();
  cube->stats_.num_relations = cube->store_.NumRelations();
  return cube;
}

}  // namespace engine
}  // namespace cure
