#ifndef CURE_ENGINE_BUILD_PIPELINE_H_
#define CURE_ENGINE_BUILD_PIPELINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "cube/cube_store.h"
#include "cube/signature.h"
#include "engine/construct.h"
#include "engine/cube_build.h"
#include "engine/partition.h"

namespace cure {
namespace engine {

struct CureOptions;  // engine/cure.h

/// Immutable inputs shared by every stage of one cube build (and by every
/// construction worker). All pointees outlive the pipeline.
struct BuildContext {
  const schema::CubeSchema* schema = nullptr;  // effective (flattened) schema
  const CureOptions* options = nullptr;
  const FactInput* input = nullptr;
  /// True when the build takes the external (partitioned) path.
  bool external = false;
  /// Resolved construction concurrency (>= 1). 1 = the serial reference
  /// path: one store, one signature pool, partitions in order.
  int num_threads = 1;
  /// Unique per-build scratch directory for partition files and sort runs.
  /// Created by the caller before Run() and removed afterwards on success
  /// and error paths alike (external builds only).
  std::string scratch_dir;
};

/// Creates a unique scratch directory under `base` (pid + sequence-number
/// suffix) for one build's temp files. Returns its path.
Result<std::string> CreateBuildScratchDir(const std::string& base);

/// Best-effort recursive removal of a build scratch directory.
void RemoveBuildScratchDir(const std::string& dir);

/// The staged CURE build (Fig. 13 restructured as an explicit pipeline):
///
///   LoadStage       -> in-memory input columns (in-memory path) or input
///                      validation (external path)
///   PartitionStage  -> histograms, level selection, the single
///                      partition-and-hash-N pass (external path)
///   ConstructStage  -> the BUC-style recursion; external builds run one
///                      task per sound partition, either inline (serial
///                      reference) or on a shared ThreadPool with private
///                      per-partition CubeStore shards and signature pools
///   MergeStage      -> stitches shards into the final store in partition
///                      order and constructs the node-N region
///   PersistStage    -> final signature flush and stats finalization
///
/// Parallel builds are byte-identical to the serial reference: partitions
/// are mutually sound (disjoint row sets, disjoint node regions per value),
/// shard relations are concatenated in partition order, A-rowids are rebased
/// at merge, and the CAT format decision is arbitrated in partition order
/// (cube::CatFormatArbiter). The serial path flushes the signature pool at
/// every partition boundary to keep CAT detection within partitions — the
/// property that makes per-partition construction independent.
///
/// The number of in-flight partitions is capped by the memory budget:
/// budget / (max_partition_rows * partition_record_size), clamped to
/// [1, num_threads].
class BuildPipeline {
 public:
  BuildPipeline(const BuildContext& ctx, cube::CubeStore* store,
                BuildStats* stats);
  ~BuildPipeline();

  BuildPipeline(const BuildPipeline&) = delete;
  BuildPipeline& operator=(const BuildPipeline&) = delete;

  /// Runs all stages. On success the target store holds the constructed
  /// cube and `stats` carries the per-stage breakdown.
  Status Run();

  // Outputs of the external path (unset for in-memory builds).
  int partition_level() const { return outcome_.level; }
  const std::shared_ptr<cube::AggTable>& n_table() const {
    return outcome_.n_table;
  }

 private:
  Status LoadStage();
  Status PartitionStage();
  Status ConstructStage();
  Status ConstructSerial();
  Status ConstructParallel();
  Status MergeStage();
  Status PersistStage();

  /// Builds one sound partition into `store` with `pool`, flushing the pool
  /// at the partition boundary, and deletes the partition file. Used by the
  /// serial path (shared store/pool) and by parallel workers (private
  /// shard/pool) alike.
  Status ConstructOnePartition(size_t index, cube::CubeStore* store,
                               cube::SignaturePool* pool, BuildStats* stats);

  const BuildContext ctx_;
  cube::CubeStore* store_;
  BuildStats* stats_;

  // Shared main-path signature pool (in-memory construction, serial
  // external construction, and the node-N region).
  cube::SignaturePool pool_;

  // LoadStage output (in-memory path).
  Load load_;
  bool load_ready_ = false;

  // PartitionStage output.
  PartitionOutcome outcome_;

  // ConstructStage output (parallel path): one shard per partition.
  std::vector<std::unique_ptr<cube::CubeStore>> shards_;

  // Guards aggregation of worker-local BuildStats into *stats_.
  std::mutex stats_mu_;
};

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_BUILD_PIPELINE_H_
