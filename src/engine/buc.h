#ifndef CURE_ENGINE_BUC_H_
#define CURE_ENGINE_BUC_H_

#include <memory>

#include "common/status.h"
#include "cube/cube_store.h"
#include "engine/cube_build.h"
#include "engine/sorters.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"

namespace cure {
namespace engine {

/// Options for the BUC baseline [Beyer & Ramakrishnan, SIGMOD'99].
struct BucOptions {
  /// Iceberg threshold (BUC's native capability); 1 = complete cube.
  uint64_t min_support = 1;
  SortPolicy sort_policy = SortPolicy::kAuto;
  /// Batch scan path: same contract as CureOptions::batch_rows (1 =
  /// scalar reference path, 0 = CURE_BATCH_ROWS env / default).
  size_t batch_rows = 0;
};

/// A cube built by BUC: per-node uncondensed relations of
/// (grouping codes..., aggregates...). BUC identifies no redundancy and
/// supports only flat cubes — the paper's point of comparison.
class BucCube {
 public:
  const schema::CubeSchema& schema() const { return schema_; }
  const cube::CubeStore& store() const { return store_; }
  const BuildStats& stats() const { return stats_; }

  /// Persists the cube to a packed file and reopens it from disk in place.
  Status SpillStoreToDisk(const std::string& path) {
    CURE_RETURN_IF_ERROR(store_.PersistPacked(path));
    CURE_ASSIGN_OR_RETURN(store_, cube::CubeStore::OpenPacked(path, &schema_));
    return Status::OK();
  }

 private:
  friend Result<std::unique_ptr<BucCube>> BuildBuc(const schema::CubeSchema&,
                                                   const schema::FactTable&,
                                                   const BucOptions&);
  BucCube() : store_(nullptr, {}) {}

  schema::CubeSchema schema_;
  cube::CubeStore store_;
  BuildStats stats_;
};

/// Runs BUC over the leaf levels of `schema` (hierarchies are ignored; the
/// schema is flattened). Bottom-up, depth-first, shared sorting — the P1
/// plan of Fig. 2.
Result<std::unique_ptr<BucCube>> BuildBuc(const schema::CubeSchema& schema,
                                          const schema::FactTable& table,
                                          const BucOptions& options);

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_BUC_H_
