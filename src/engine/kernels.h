#ifndef CURE_ENGINE_KERNELS_H_
#define CURE_ENGINE_KERNELS_H_

#include <cstdint>
#include <limits>

#include "common/env.h"
#include "schema/cube_schema.h"
#include "storage/row_block.h"

namespace cure {
namespace engine {

/// Vectorization-friendly batch kernels of the block-oriented scan path
/// (DESIGN.md §13). Every kernel is a tight loop over contiguous input —
/// no per-iteration Status checks, no virtual dispatch, local
/// restrict-qualified pointers — so the compiler can auto-vectorize.
///
/// Two families:
///  - *Slice kernels consume a contiguous column slice (a ColumnView
///    gather or a sorted key buffer).
///  - *Gather kernels fuse the index-vector indirection of the BUC-style
///    recursion (col[idx[i]]) with the accumulation; they cannot
///    vectorize the load but still beat the legacy loops by hoisting the
///    per-aggregate dispatch and bounds logic out of the loop.

/// counts[key + 1] += 1 for every key — the counting-sort histogram fill,
/// offset by one so the prefix sum yields start offsets in place.
inline void HistogramFill(const uint32_t* keys, size_t n, uint32_t* counts) {
  const uint32_t* CURE_RESTRICT k = keys;
  uint32_t* CURE_RESTRICT c = counts;
  for (size_t i = 0; i < n; ++i) ++c[k[i] + 1];
}

/// out[i] = col[idx[i]] — the dimension-key gather that turns an index
/// span into a contiguous slice.
inline void GatherU32(const uint32_t* col, const uint32_t* idx, size_t n,
                      uint32_t* out) {
  const uint32_t* CURE_RESTRICT c = col;
  const uint32_t* CURE_RESTRICT ix = idx;
  uint32_t* CURE_RESTRICT o = out;
  for (size_t i = 0; i < n; ++i) o[i] = c[ix[i]];
}

/// out[i] = map[col[idx[i]]] — gather through a level-to-level roll-up map.
inline void GatherMappedU32(const uint32_t* col, const uint32_t* map,
                            const uint32_t* idx, size_t n, uint32_t* out) {
  const uint32_t* CURE_RESTRICT c = col;
  const uint32_t* CURE_RESTRICT m = map;
  const uint32_t* CURE_RESTRICT ix = idx;
  uint32_t* CURE_RESTRICT o = out;
  for (size_t i = 0; i < n; ++i) o[i] = m[c[ix[i]]];
}

// ---- Contiguous-slice accumulators ----

inline int64_t SumSlice(const int64_t* v, size_t n) {
  const int64_t* CURE_RESTRICT p = v;
  int64_t acc = 0;
  for (size_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

inline int64_t MinSlice(const int64_t* v, size_t n) {
  const int64_t* CURE_RESTRICT p = v;
  int64_t acc = std::numeric_limits<int64_t>::max();
  for (size_t i = 0; i < n; ++i) acc = p[i] < acc ? p[i] : acc;
  return acc;
}

inline int64_t MaxSlice(const int64_t* v, size_t n) {
  const int64_t* CURE_RESTRICT p = v;
  int64_t acc = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < n; ++i) acc = p[i] > acc ? p[i] : acc;
  return acc;
}

inline int64_t AggregateSlice(schema::AggFn fn, const int64_t* v, size_t n) {
  switch (fn) {
    case schema::AggFn::kSum:
    case schema::AggFn::kCount:
      return SumSlice(v, n);
    case schema::AggFn::kMin:
      return MinSlice(v, n);
    case schema::AggFn::kMax:
      return MaxSlice(v, n);
  }
  return 0;
}

// ---- Fused gather + accumulate over an index span ----

inline int64_t SumGather(const int64_t* col, const uint32_t* idx, size_t n) {
  const int64_t* CURE_RESTRICT c = col;
  const uint32_t* CURE_RESTRICT ix = idx;
  int64_t acc = 0;
  for (size_t i = 0; i < n; ++i) acc += c[ix[i]];
  return acc;
}

inline int64_t MinGather(const int64_t* col, const uint32_t* idx, size_t n) {
  const int64_t* CURE_RESTRICT c = col;
  const uint32_t* CURE_RESTRICT ix = idx;
  int64_t acc = std::numeric_limits<int64_t>::max();
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = c[ix[i]];
    acc = v < acc ? v : acc;
  }
  return acc;
}

inline int64_t MaxGather(const int64_t* col, const uint32_t* idx, size_t n) {
  const int64_t* CURE_RESTRICT c = col;
  const uint32_t* CURE_RESTRICT ix = idx;
  int64_t acc = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = c[ix[i]];
    acc = v > acc ? v : acc;
  }
  return acc;
}

inline int64_t AggregateGather(schema::AggFn fn, const int64_t* col,
                               const uint32_t* idx, size_t n) {
  switch (fn) {
    case schema::AggFn::kSum:
    case schema::AggFn::kCount:
      return SumGather(col, idx, n);
    case schema::AggFn::kMin:
      return MinGather(col, idx, n);
    case schema::AggFn::kMax:
      return MaxGather(col, idx, n);
  }
  return 0;
}

/// min over col[idx[i]] for u64 values (row-id minima).
inline uint64_t MinU64Gather(const uint64_t* col, const uint32_t* idx,
                             size_t n) {
  const uint64_t* CURE_RESTRICT c = col;
  const uint32_t* CURE_RESTRICT ix = idx;
  uint64_t acc = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = c[ix[i]];
    acc = v < acc ? v : acc;
  }
  return acc;
}

// ---- Selection-vector kernels (block-local indices) ----

/// sel[j] = i for every i in [0, n) with v[i] >= threshold; returns the
/// selected count. The iceberg (HAVING count >= N) filter.
inline size_t SelectGeI64(const int64_t* v, size_t n, int64_t threshold,
                          uint32_t* sel) {
  const int64_t* CURE_RESTRICT p = v;
  uint32_t* CURE_RESTRICT s = sel;
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    s[out] = static_cast<uint32_t>(i);
    out += p[i] >= threshold ? 1 : 0;
  }
  return out;
}

/// Refines a selection in place: keeps sel entries whose column value
/// equals `code`. The slice-predicate filter at the node's own level.
inline size_t RefineEqU32(const uint32_t* v, uint32_t code, uint32_t* sel,
                          size_t sel_n) {
  const uint32_t* CURE_RESTRICT p = v;
  uint32_t* CURE_RESTRICT s = sel;
  size_t out = 0;
  for (size_t j = 0; j < sel_n; ++j) {
    const uint32_t i = s[j];
    s[out] = i;
    out += p[i] == code ? 1 : 0;
  }
  return out;
}

/// Refines a selection in place through a roll-up map: keeps sel entries
/// with map[v[i]] == code. The slice-predicate filter at a coarser level.
inline size_t RefineMappedEqU32(const uint32_t* v, const uint32_t* map,
                                uint32_t code, uint32_t* sel, size_t sel_n) {
  const uint32_t* CURE_RESTRICT p = v;
  const uint32_t* CURE_RESTRICT m = map;
  uint32_t* CURE_RESTRICT s = sel;
  size_t out = 0;
  for (size_t j = 0; j < sel_n; ++j) {
    const uint32_t i = s[j];
    s[out] = i;
    out += m[p[i]] == code ? 1 : 0;
  }
  return out;
}

/// sel[j] = i for every i with v[i] == value or (v[i] & flag) != 0; returns
/// the selected count. The BU-BST monolithic-scan prefilter: a row is a
/// candidate when its node tag matches the query exactly or it is a BST
/// (flagged) row, which needs the full sub-tree test.
inline size_t SelectEqOrFlagU64(const uint64_t* v, size_t n, uint64_t value,
                                uint64_t flag, uint32_t* sel) {
  const uint64_t* CURE_RESTRICT p = v;
  uint32_t* CURE_RESTRICT s = sel;
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    s[out] = static_cast<uint32_t>(i);
    out += (p[i] == value || (p[i] & flag) != 0) ? 1 : 0;
  }
  return out;
}

/// Resolves the effective block size of the batch scan path: an explicit
/// option wins; 0 defers to the CURE_BATCH_ROWS environment variable and
/// then the built-in default. A result of 1 selects the scalar
/// record-at-a-time reference path everywhere (differential testing).
inline size_t ResolveBatchRows(size_t option_value) {
  if (option_value != 0) return option_value;
  const int64_t env = EnvInt64("CURE_BATCH_ROWS", 0);
  if (env > 0) return static_cast<size_t>(env);
  return storage::kDefaultBlockRows;
}

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_KERNELS_H_
