#include "engine/partition.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/trace.h"
#include "cube/rowid.h"
#include "engine/kernels.h"
#include "storage/row_block.h"

namespace cure {
namespace engine {

using cube::AggTable;
using schema::CubeSchema;
using schema::Dimension;

size_t PartitionRecordSize(const CubeSchema& schema) {
  return 4ull * schema.num_dims() + 8ull * schema.num_aggregates() + 8;
}

namespace {

/// First-fit-decreasing packing of per-value row counts into bins of at most
/// `capacity_rows` rows. Returns the row total of each bin; when
/// `value_to_partition` is non-null it is resized to counts.size() and
/// records each value's bin index (zero-count values stay at bin 0 — they
/// never occur in the data). Shared by level selection (which only needs the
/// bin count) and the partitioning pass (which needs the assignment), so the
/// two always agree on the partition count.
std::vector<uint64_t> PackValuesFirstFitDecreasing(
    const std::vector<uint64_t>& counts, uint64_t capacity_rows,
    std::vector<uint32_t>* value_to_partition) {
  std::vector<uint32_t> value_order(counts.size());
  std::iota(value_order.begin(), value_order.end(), 0);
  std::sort(value_order.begin(), value_order.end(),
            [&](uint32_t a, uint32_t b) { return counts[a] > counts[b]; });
  if (value_to_partition != nullptr) {
    value_to_partition->assign(counts.size(), 0);
  }
  std::vector<uint64_t> bin_rows;
  for (uint32_t v : value_order) {
    if (counts[v] == 0) continue;
    bool placed = false;
    for (size_t b = 0; b < bin_rows.size(); ++b) {
      if (bin_rows[b] + counts[v] <= capacity_rows) {
        bin_rows[b] += counts[v];
        if (value_to_partition != nullptr) {
          (*value_to_partition)[v] = static_cast<uint32_t>(b);
        }
        placed = true;
        break;
      }
    }
    if (!placed) {
      if (value_to_partition != nullptr) {
        (*value_to_partition)[v] = static_cast<uint32_t>(bin_rows.size());
      }
      bin_rows.push_back(counts[v]);
    }
  }
  return bin_rows;
}

/// Packing capacity in rows: the budget subdivided for concurrent residency,
/// floored at the most frequent value of the level (a sound partition can
/// never split a value).
uint64_t PackCapacityRows(const std::vector<uint64_t>& counts,
                          uint64_t budget_bytes, size_t record_size,
                          const PartitionOptions& options) {
  const uint64_t full_rows = std::max<uint64_t>(1, budget_bytes / record_size);
  const uint64_t subdivided =
      full_rows / std::max(options.in_flight_subdivision, 1);
  uint64_t max_value = 0;
  for (uint64_t c : counts) max_value = std::max(max_value, c);
  return std::max<uint64_t>({1, subdivided, max_value});
}

}  // namespace

Result<std::vector<std::vector<uint64_t>>> ComputeLevelHistograms(
    const storage::Relation& fact, const CubeSchema& schema,
    size_t batch_rows) {
  const Dimension& dim0 = schema.dim(0);
  std::vector<std::vector<uint64_t>> hist(dim0.num_levels());
  for (int l = 0; l < dim0.num_levels(); ++l) hist[l].assign(dim0.cardinality(l), 0);

  const size_t block_rows = ResolveBatchRows(batch_rows);
  if (block_rows > 1) {
    // Block path: gather the leaf-code column of each block once, then fill
    // each level's histogram from the contiguous slice (a plain counting
    // loop over already-mapped codes for level 0; per-level CodeAt above).
    CURE_TRACE_SPAN("cure.engine.kernel.histogram", "rows", fact.num_rows(),
                    "levels", static_cast<uint64_t>(dim0.num_levels()));
    storage::Relation::BlockScanner scan(fact, block_rows);
    storage::RowBlock block;
    std::vector<uint32_t> leaves(block_rows);
    const uint32_t leaf_cardinality = dim0.leaf_cardinality();
    while (scan.Next(&block)) {
      storage::GatherBlockU32(block, 0, leaves.data());
      const uint32_t* CURE_RESTRICT codes = leaves.data();
      uint32_t max_code = 0;
      for (size_t i = 0; i < block.rows; ++i) {
        max_code = codes[i] > max_code ? codes[i] : max_code;
      }
      if (max_code >= leaf_cardinality) {
        return Status::InvalidArgument("dim0 code out of range in fact relation");
      }
      for (int l = 0; l < dim0.num_levels(); ++l) {
        uint64_t* CURE_RESTRICT h = hist[l].data();
        for (size_t i = 0; i < block.rows; ++i) ++h[dim0.CodeAt(codes[i], l)];
      }
    }
    CURE_RETURN_IF_ERROR(scan.status());
    return hist;
  }

  storage::Relation::Scanner scan(fact);
  while (const uint8_t* rec = scan.Next()) {
    uint32_t leaf;
    std::memcpy(&leaf, rec, 4);
    if (leaf >= dim0.leaf_cardinality()) {
      return Status::InvalidArgument("dim0 code out of range in fact relation");
    }
    for (int l = 0; l < dim0.num_levels(); ++l) ++hist[l][dim0.CodeAt(leaf, l)];
  }
  CURE_RETURN_IF_ERROR(scan.status());
  return hist;
}

Result<LevelChoice> SelectPartitionLevel(
    const CubeSchema& schema,
    const std::vector<std::vector<uint64_t>>& level_histograms, uint64_t num_rows,
    const PartitionOptions& options) {
  const Dimension& dim0 = schema.dim(0);
  if (!dim0.is_linear()) {
    return Status::Unimplemented(
        "external partitioning requires a linear hierarchy on the first "
        "dimension");
  }
  const size_t rec = PartitionRecordSize(schema);
  const uint64_t part_capacity_rows =
      std::max<uint64_t>(1, options.memory_budget_bytes / rec);
  const uint64_t n_row_bytes = 4ull * schema.num_dims() +
                               8ull * schema.num_aggregates();

  LevelChoice best;
  for (int l = dim0.num_levels() - 1; l >= 0; --l) {
    uint64_t max_count = 0;
    for (uint64_t c : level_histograms[l]) max_count = std::max(max_count, c);
    if (max_count > part_capacity_rows) continue;  // some partition too big

    // Observation 2: |N| ≈ |R| * |A_{L+1}| / |A_0|; at the top level A is
    // projected out of N, so the factor is 1 / |A_0|.
    const double card_above =
        l + 1 < dim0.num_levels() ? static_cast<double>(dim0.cardinality(l + 1)) : 1.0;
    const double est_n = static_cast<double>(num_rows) * card_above /
                         static_cast<double>(dim0.leaf_cardinality());
    const double est_n_bytes =
        est_n * static_cast<double>(n_row_bytes) * options.n_overhead_factor;
    if (est_n_bytes > static_cast<double>(options.memory_budget_bytes)) continue;

    best.level = l;
    best.max_value_rows = max_count;
    best.est_n_rows = static_cast<uint64_t>(est_n) + 1;
    best.num_partitions =
        PackValuesFirstFitDecreasing(
            level_histograms[l],
            PackCapacityRows(level_histograms[l], options.memory_budget_bytes,
                             rec, options),
            nullptr)
            .size();
    return best;
  }
  return Status::ResourceExhausted(
      "no hierarchy level of the first dimension yields memory-sized sound "
      "partitions with an in-memory N; partitioning on dimension pairs is "
      "not implemented (paper Sec. 4 omits it as well)");
}

Result<PartitionOutcome> PartitionFact(
    const storage::Relation& fact, const CubeSchema& schema,
    const LevelChoice& choice,
    const std::vector<std::vector<uint64_t>>& level_histograms,
    const PartitionOptions& options) {
  const Dimension& dim0 = schema.dim(0);
  const int num_dims = schema.num_dims();
  const int y = schema.num_aggregates();
  const int raw_measures = schema.num_raw_measures();
  const int level = choice.level;
  const bool top_level = level + 1 >= dim0.num_levels();
  const size_t fact_rec = 4ull * num_dims + 8ull * raw_measures;
  if (fact.record_size() != fact_rec) {
    return Status::InvalidArgument("fact relation record size mismatch");
  }
  const size_t part_rec = PartitionRecordSize(schema);

  // Assign values of A_level to partitions: first-fit-decreasing at the
  // subdivided (concurrency-ready) capacity.
  const std::vector<uint64_t>& counts = level_histograms[level];
  const uint64_t part_capacity_rows = PackCapacityRows(
      counts, options.memory_budget_bytes, part_rec, options);
  std::vector<uint32_t> value_to_partition;
  const std::vector<uint64_t> bin_rows = PackValuesFirstFitDecreasing(
      counts, part_capacity_rows, &value_to_partition);
  const size_t num_partitions = bin_rows.size();
  if (num_partitions == 0) {
    return Status::InvalidArgument("empty fact table cannot be partitioned");
  }

  PartitionOutcome outcome;
  outcome.level = level;
  outcome.max_partition_rows = *std::max_element(bin_rows.begin(), bin_rows.end());

  // Open one file-backed relation per partition (modest write buffers: many
  // writers may be open at once).
  outcome.partitions.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    const std::string path =
        options.temp_dir + "/cure_part_" + std::to_string(p) + ".bin";
    CURE_ASSIGN_OR_RETURN(storage::Relation rel,
                          storage::Relation::CreateFile(path, part_rec));
    outcome.partitions.push_back(std::move(rel));
  }

  // Node N: hash aggregation keyed by (A_{level+1}, leaf codes of the other
  // dimensions) — or without A when partitioning on the top level.
  // Keys are mixed-radix packed into 64 bits.
  uint64_t key_space = top_level ? 1 : dim0.cardinality(level + 1);
  for (int d = 1; d < num_dims; ++d) {
    const uint64_t card = schema.dim(d).leaf_cardinality();
    if (key_space > (uint64_t{1} << 62) / std::max<uint64_t>(card, 1)) {
      return Status::Unimplemented("node-N key space exceeds 2^62");
    }
    key_space *= card;
  }
  std::unordered_map<uint64_t, uint32_t> n_index;
  auto n_table = std::make_shared<AggTable>();
  n_table->native_levels.assign(num_dims, 0);
  n_table->native_levels[0] = top_level ? cube::kNativeAll : level + 1;
  n_table->dims.resize(num_dims);
  n_table->aggrs.resize(y);

  const cube::Aggregator aggregator(schema);
  storage::Relation::Scanner scan(fact);
  std::vector<uint8_t> out_rec(part_rec);
  std::vector<int64_t> lifted(y);
  std::vector<int64_t> raw(std::max(raw_measures, 1));
  uint64_t rowid = 0;
  while (const uint8_t* rec = scan.Next()) {
    uint32_t dims[64];
    CURE_CHECK_LE(num_dims, 64);
    std::memcpy(dims, rec, 4ull * num_dims);
    std::memcpy(raw.data(), rec + 4ull * num_dims, 8ull * raw_measures);
    aggregator.Lift(raw.data(), lifted.data());

    // Route to the sound partition.
    const uint32_t code = dim0.CodeAt(dims[0], level);
    storage::Relation& part = outcome.partitions[value_to_partition[code]];
    uint8_t* p = out_rec.data();
    std::memcpy(p, dims, 4ull * num_dims);
    p += 4ull * num_dims;
    std::memcpy(p, lifted.data(), 8ull * y);
    p += 8ull * y;
    std::memcpy(p, &rowid, 8);
    CURE_RETURN_IF_ERROR(part.Append(out_rec.data()));

    // Update node N.
    uint64_t key = top_level ? 0 : dim0.CodeAt(dims[0], level + 1);
    for (int d = 1; d < num_dims; ++d) {
      key = key * schema.dim(d).leaf_cardinality() + dims[d];
    }
    auto [it, inserted] = n_index.try_emplace(
        key, static_cast<uint32_t>(n_table->num_rows));
    if (inserted) {
      if (!top_level) {
        n_table->dims[0].push_back(dim0.CodeAt(dims[0], level + 1));
      } else {
        n_table->dims[0].push_back(0);
      }
      for (int d = 1; d < num_dims; ++d) n_table->dims[d].push_back(dims[d]);
      for (int a = 0; a < y; ++a) n_table->aggrs[a].push_back(lifted[a]);
      ++n_table->num_rows;
    } else {
      const uint32_t idx = it->second;
      int64_t acc[16];
      CURE_CHECK_LE(y, 16);
      for (int a = 0; a < y; ++a) acc[a] = n_table->aggrs[a][idx];
      aggregator.Combine(acc, lifted.data());
      for (int a = 0; a < y; ++a) n_table->aggrs[a][idx] = acc[a];
    }
    ++rowid;
  }
  CURE_RETURN_IF_ERROR(scan.status());

  for (storage::Relation& part : outcome.partitions) {
    CURE_RETURN_IF_ERROR(part.Seal());
    outcome.write_bytes += part.bytes();
  }
  outcome.n_table = std::move(n_table);
  if (outcome.n_table->bytes() > options.memory_budget_bytes) {
    // The paper's observation-2 estimate (|N| ≈ |R|·|A_{L+1}|/|A_0|) is an
    // under-estimate whenever the remaining dimensions nearly key the rows;
    // construction still succeeds, just beyond the nominal budget.
    CURE_LOG(kWarning) << "node N (" << outcome.n_table->bytes()
                       << " B) exceeds the memory budget ("
                       << options.memory_budget_bytes
                       << " B); the paper's size estimate was optimistic";
  }
  CURE_LOG(kDebug) << "partitioned " << rowid << " rows on level " << level
                   << " into " << num_partitions << " partitions; |N|="
                   << outcome.n_table->num_rows;
  return outcome;
}

}  // namespace engine
}  // namespace cure
