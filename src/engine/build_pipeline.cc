#include "engine/build_pipeline.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <future>
#include <semaphore>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "engine/cure.h"
#include "storage/file_io.h"

namespace cure {
namespace engine {

using cube::CatFormatArbiter;
using cube::CubeStore;
using cube::SignaturePool;

Result<std::string> CreateBuildScratchDir(const std::string& base) {
  static std::atomic<uint64_t> counter{0};
  const uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path dir =
      std::filesystem::path(base) / ("cure_build_" + std::to_string(::getpid()) +
                                     "_" + std::to_string(seq));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create build scratch dir " + dir.string() +
                           ": " + ec.message());
  }
  return dir.string();
}

void RemoveBuildScratchDir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // Best effort.
}

BuildPipeline::BuildPipeline(const BuildContext& ctx, cube::CubeStore* store,
                             BuildStats* stats)
    : ctx_(ctx),
      store_(store),
      stats_(stats),
      pool_(ctx.schema->num_aggregates(),
            ctx.options->dims_in_nt ? ctx.schema->num_dims() : 0,
            ctx.options->signature_pool_capacity) {}

BuildPipeline::~BuildPipeline() = default;

namespace {

/// Times one stage: wall on construction/destruction scope, CPU of the
/// calling thread. Parallel stages add worker CPU separately.
class StageTimer {
 public:
  explicit StageTimer(StageStats* out) : out_(out) {}
  ~StageTimer() {
    out_->wall_seconds += wall_.ElapsedSeconds();
    out_->cpu_seconds += cpu_.ElapsedSeconds();
  }

 private:
  StageStats* out_;
  Stopwatch wall_;
  ThreadCpuStopwatch cpu_;
};

}  // namespace

Status BuildPipeline::Run() {
  CURE_TRACE_SPAN("cure.build.run", "threads",
                  static_cast<uint64_t>(ctx_.external ? ctx_.num_threads : 1));
  Stopwatch watch;
  stats_->num_threads = ctx_.external ? ctx_.num_threads : 1;
  CURE_RETURN_IF_ERROR(LoadStage());
  if (ctx_.external) CURE_RETURN_IF_ERROR(PartitionStage());
  CURE_RETURN_IF_ERROR(ConstructStage());
  CURE_RETURN_IF_ERROR(MergeStage());
  CURE_RETURN_IF_ERROR(PersistStage());
  stats_->build_seconds = watch.ElapsedSeconds();
  const uint64_t input_rows = ctx_.input->table != nullptr
                                  ? ctx_.input->table->num_rows()
                                  : ctx_.input->relation->num_rows();
  if (stats_->build_seconds > 0) {
    GlobalMetrics().gauge("cure_build_rows_per_sec")
        ->Set(static_cast<double>(input_rows) / stats_->build_seconds);
  }
  return Status::OK();
}

Status BuildPipeline::LoadStage() {
  CURE_TRACE_SPAN("cure.build.load");
  StageTimer timer(&stats_->load_stage);
  if (!ctx_.external) {
    if (ctx_.input->table != nullptr) {
      load_ = LoadFromTable(*ctx_.input->table, *ctx_.schema);
    } else {
      CURE_ASSIGN_OR_RETURN(
          load_, LoadFromFactRelation(*ctx_.input->relation, *ctx_.schema,
                                      ctx_.options->batch_rows));
    }
    load_ready_ = true;
    return Status::OK();
  }
  // External path: partitions are loaded lazily by the construct stage, one
  // (or one per in-flight worker) at a time; here we only validate.
  if (ctx_.input->relation == nullptr) {
    return Status::InvalidArgument(
        "external construction needs the fact table in relation form");
  }
  if (ctx_.options->plan_style != plan::ExecutionPlan::Style::kTall) {
    return Status::Unimplemented("external path requires the tall (P3) plan");
  }
  stats_->external = true;
  return Status::OK();
}

Status BuildPipeline::PartitionStage() {
  CURE_TRACE_SPAN("cure.build.partition");
  StageTimer timer(&stats_->partition_stage);
  PartitionOptions popts;
  popts.memory_budget_bytes = ctx_.options->memory_budget_bytes;
  popts.temp_dir = ctx_.scratch_dir;
  CURE_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> hist,
      ComputeLevelHistograms(*ctx_.input->relation, *ctx_.schema,
                             ctx_.options->batch_rows));
  CURE_ASSIGN_OR_RETURN(
      LevelChoice choice,
      SelectPartitionLevel(*ctx_.schema, hist, ctx_.input->relation->num_rows(),
                           popts));
  CURE_ASSIGN_OR_RETURN(outcome_, PartitionFact(*ctx_.input->relation,
                                                *ctx_.schema, choice, hist,
                                                popts));
  stats_->partition_level = outcome_.level;
  stats_->num_partitions = outcome_.partitions.size();
  stats_->n_rows = outcome_.n_table->num_rows;
  stats_->n_bytes = outcome_.n_table->bytes();
  stats_->partition_write_bytes = outcome_.write_bytes;
  return Status::OK();
}

Status BuildPipeline::ConstructOnePartition(size_t index,
                                            cube::CubeStore* store,
                                            cube::SignaturePool* pool,
                                            BuildStats* stats) {
  storage::Relation& part = outcome_.partitions[index];
  CURE_TRACE_SPAN("cure.build.partition_construct", "partition",
                  static_cast<uint64_t>(index), "rows", part.num_rows());
  stats->partition_read_bytes += part.bytes();
  CURE_ASSIGN_OR_RETURN(Load load, LoadFromPartition(part, *ctx_.schema,
                                                     ctx_.options->batch_rows));
  Executor executor(ctx_.schema, ctx_.options, store, pool, stats);
  CURE_RETURN_IF_ERROR(executor.RunPartition(load, outcome_.level));
  // Partition-boundary flush: CAT detection never spans sound partitions,
  // which is what makes per-partition construction order-independent (and
  // the parallel build byte-identical to this serial reference).
  ++stats->signature_flushes;
  CURE_RETURN_IF_ERROR(pool->Flush(store));
  const std::string path = part.path();
  part = storage::Relation();  // Close before removing.
  return storage::RemoveFile(path);
}

Status BuildPipeline::ConstructStage() {
  CURE_TRACE_SPAN("cure.build.construct");
  StageTimer timer(&stats_->construct_stage);
  if (!ctx_.external) {
    CURE_CHECK(load_ready_);
    Executor executor(ctx_.schema, ctx_.options, store_, &pool_, stats_);
    return executor.RunInMemory(load_);
  }
  if (ctx_.num_threads <= 1 || outcome_.partitions.size() <= 1) {
    return ConstructSerial();
  }
  return ConstructParallel();
}

Status BuildPipeline::ConstructSerial() {
  for (size_t p = 0; p < outcome_.partitions.size(); ++p) {
    CURE_RETURN_IF_ERROR(ConstructOnePartition(p, store_, &pool_, stats_));
  }
  return Status::OK();
}

Status BuildPipeline::ConstructParallel() {
  const size_t num_partitions = outcome_.partitions.size();
  shards_.clear();
  shards_.resize(num_partitions);

  // Divide the memory budget across in-flight partitions: each worker holds
  // at most max_partition_rows * record_size bytes of loaded partition data.
  const uint64_t per_partition_bytes =
      std::max<uint64_t>(1, outcome_.max_partition_rows *
                                PartitionRecordSize(*ctx_.schema));
  const uint64_t cap = std::clamp<uint64_t>(
      ctx_.options->memory_budget_bytes / per_partition_bytes, 1,
      static_cast<uint64_t>(ctx_.num_threads));
  stats_->max_in_flight_partitions = cap;

  CatFormatArbiter arbiter(num_partitions);

  // The in-flight cap is taken by the *submitter* before each Submit, and the
  // pool dispatches strictly FIFO, so the set of started partitions is always
  // a prefix of 0..P-1 in partition order. That is what makes the arbiter
  // deadlock-free: a worker blocked in Propose(p) only ever waits on
  // partitions q < p, all of which have started and will reach Finish(q).
  std::counting_semaphore<> slots(static_cast<std::ptrdiff_t>(cap));

  ThreadPool pool(ctx_.num_threads);
  std::vector<std::future<Status>> futures;
  futures.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    slots.acquire();
    futures.push_back(pool.Submit([this, p, &arbiter, &slots]() -> Status {
      ThreadCpuStopwatch cpu;
      BuildStats local;
      auto shard = std::make_unique<CubeStore>(
          ctx_.schema, CubeStore::Options{
                           .dims_in_nt = ctx_.options->dims_in_nt,
                           .forced_cat_format = ctx_.options->forced_cat_format});
      SignaturePool shard_pool(ctx_.schema->num_aggregates(),
                               ctx_.options->dims_in_nt ? ctx_.schema->num_dims()
                                                        : 0,
                               ctx_.options->signature_pool_capacity);
      shard_pool.BindArbiter(&arbiter, p);
      Status status = ConstructOnePartition(p, shard.get(), &shard_pool, &local);
      // Always retire this partition from the arbiter — even on error —
      // so workers blocked in Propose() do not wait forever.
      arbiter.Finish(p);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_->signature_flushes += local.signature_flushes;
        stats_->partition_read_bytes += local.partition_read_bytes;
        stats_->construct_stage.cpu_seconds += cpu.ElapsedSeconds();
        if (status.ok()) shards_[p] = std::move(shard);
      }
      slots.release();
      return status;
    }));
  }

  Status first_error = Status::OK();
  for (std::future<Status>& f : futures) {
    Status s = f.get();
    if (first_error.ok() && !s.ok()) first_error = std::move(s);
  }
  pool.Shutdown();
  return first_error;
}

Status BuildPipeline::MergeStage() {
  if (!ctx_.external) return Status::OK();
  CURE_TRACE_SPAN("cure.build.merge");
  StageTimer timer(&stats_->merge_stage);
  // Stitch shards in partition order; with sound partitions this reproduces
  // the serial append order exactly (serial construction visits partitions
  // 0..P-1 and flushes at every boundary).
  for (std::unique_ptr<CubeStore>& shard : shards_) {
    if (shard == nullptr) continue;
    CURE_RETURN_IF_ERROR(store_->MergeShard(std::move(*shard)));
    shard.reset();
  }
  shards_.clear();
  // Node N's region (dimension 0 above level L) is disjoint from every
  // partition's region, so it is built after the merge into the main store
  // with the shared pool, same as the serial schedule.
  Load nload = LoadFromAggTable(*outcome_.n_table, *ctx_.schema);
  Executor executor(ctx_.schema, ctx_.options, store_, &pool_, stats_);
  return executor.RunNodeN(nload, outcome_.level);
}

Status BuildPipeline::PersistStage() {
  CURE_TRACE_SPAN("cure.build.persist");
  StageTimer timer(&stats_->persist_stage);
  ++stats_->signature_flushes;
  CURE_RETURN_IF_ERROR(pool_.Flush(store_));
  const CubeStore::ClassCounts counts = store_->Counts();
  stats_->tt = counts.tt;
  stats_->nt = counts.nt;
  stats_->cat = counts.cat;
  stats_->aggregates_rows = counts.aggregates;
  stats_->num_relations = store_->NumRelations();
  return Status::OK();
}

}  // namespace engine
}  // namespace cure
