#include "engine/construct.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/trace.h"
#include "engine/cure.h"
#include "engine/kernels.h"
#include "storage/row_block.h"

namespace cure {
namespace engine {

using cube::AggTable;
using cube::Aggregator;
using cube::RowId;
using schema::CubeSchema;
using schema::Dimension;
using schema::NodeId;

Load LoadFromTable(const schema::FactTable& table, const CubeSchema& schema) {
  const int d = schema.num_dims();
  const int y = schema.num_aggregates();
  Load load;
  load.n = table.num_rows();
  load.native_level.assign(d, 0);
  load.native.resize(d);
  for (int i = 0; i < d; ++i) load.native[i] = table.dim_column(i).data();
  load.aggrs.resize(y);
  for (int a = 0; a < y; ++a) {
    const schema::AggregateSpec& spec = schema.aggregate(a);
    if (spec.fn == schema::AggFn::kCount) {
      load.own_aggrs.emplace_back(load.n, 1);
      load.aggrs[a] = load.own_aggrs.back().data();
    } else {
      load.aggrs[a] = table.measure_column(spec.measure_index).data();
    }
  }
  load.rowids.resize(load.n);
  for (size_t i = 0; i < load.n; ++i) {
    load.rowids[i] = cube::MakeRowId(cube::kSourceFact, i);
  }
  return load;
}

Result<Load> LoadFromFactRelation(const storage::Relation& rel,
                                  const CubeSchema& schema, size_t batch_rows) {
  const int d = schema.num_dims();
  const int y = schema.num_aggregates();
  const int raw = schema.num_raw_measures();
  const size_t batch = ResolveBatchRows(batch_rows);
  Load load;
  load.n = rel.num_rows();
  load.native_level.assign(d, 0);
  load.own_dims.assign(d, {});
  load.own_aggrs.assign(y, {});
  load.rowids.resize(load.n);
  if (batch > 1) {
    // Block path: one contiguous gather per column per block; COUNT
    // aggregates lift to a constant fill, others to a measure-column
    // gather (the columnarized Aggregator::Lift).
    CURE_TRACE_SPAN("cure.engine.kernel.load_gather", "rows", load.n, "cols",
                    static_cast<uint64_t>(d + y));
    for (auto& col : load.own_dims) col.resize(load.n);
    for (auto& col : load.own_aggrs) col.resize(load.n);
    storage::Relation::BlockScanner scan(rel, batch);
    storage::RowBlock block;
    while (scan.Next(&block)) {
      const size_t base = block.first_row;
      for (int k = 0; k < d; ++k) {
        storage::GatherBlockU32(block, 4ull * k, load.own_dims[k].data() + base);
      }
      for (int a = 0; a < y; ++a) {
        const schema::AggregateSpec& spec = schema.aggregate(a);
        int64_t* out = load.own_aggrs[a].data() + base;
        if (spec.fn == schema::AggFn::kCount) {
          std::fill(out, out + block.rows, int64_t{1});
        } else {
          storage::GatherBlockI64(block, 4ull * d + 8ull * spec.measure_index,
                                  out);
        }
      }
    }
    CURE_RETURN_IF_ERROR(scan.status());
  } else {
    // Scalar reference path: record at a time through Scanner::Next().
    for (auto& col : load.own_dims) col.reserve(load.n);
    for (auto& col : load.own_aggrs) col.reserve(load.n);
    Aggregator aggregator(schema);
    std::vector<int64_t> raw_buf(std::max(raw, 1));
    std::vector<int64_t> lifted(y);
    storage::Relation::Scanner scan(rel);
    while (const uint8_t* rec = scan.Next()) {
      uint32_t code;
      for (int k = 0; k < d; ++k) {
        std::memcpy(&code, rec + 4ull * k, 4);
        load.own_dims[k].push_back(code);
      }
      std::memcpy(raw_buf.data(), rec + 4ull * d, 8ull * raw);
      aggregator.Lift(raw_buf.data(), lifted.data());
      for (int a = 0; a < y; ++a) load.own_aggrs[a].push_back(lifted[a]);
    }
    CURE_RETURN_IF_ERROR(scan.status());
  }
  for (size_t i = 0; i < load.n; ++i) {
    load.rowids[i] = cube::MakeRowId(cube::kSourceFact, i);
  }
  load.native.resize(d);
  load.aggrs.resize(y);
  for (int k = 0; k < d; ++k) load.native[k] = load.own_dims[k].data();
  for (int a = 0; a < y; ++a) load.aggrs[a] = load.own_aggrs[a].data();
  return load;
}

Result<Load> LoadFromPartition(const storage::Relation& rel,
                               const CubeSchema& schema, size_t batch_rows) {
  const int d = schema.num_dims();
  const int y = schema.num_aggregates();
  const size_t batch = ResolveBatchRows(batch_rows);
  Load load;
  load.n = rel.num_rows();
  load.native_level.assign(d, 0);
  load.own_dims.assign(d, {});
  load.own_aggrs.assign(y, {});
  if (batch > 1) {
    // Block path: partition records carry lifted aggregates and raw
    // fact-table ordinals, so every column is a straight gather.
    CURE_TRACE_SPAN("cure.engine.kernel.load_gather", "rows", load.n, "cols",
                    static_cast<uint64_t>(d + y + 1));
    for (auto& col : load.own_dims) col.resize(load.n);
    for (auto& col : load.own_aggrs) col.resize(load.n);
    load.rowids.resize(load.n);
    storage::Relation::BlockScanner scan(rel, batch);
    storage::RowBlock block;
    while (scan.Next(&block)) {
      const size_t base = block.first_row;
      for (int k = 0; k < d; ++k) {
        storage::GatherBlockU32(block, 4ull * k, load.own_dims[k].data() + base);
      }
      for (int a = 0; a < y; ++a) {
        storage::GatherBlockI64(block, 4ull * d + 8ull * a,
                                load.own_aggrs[a].data() + base);
      }
      storage::GatherBlockU64(block, 4ull * d + 8ull * y,
                              load.rowids.data() + base);
    }
    CURE_RETURN_IF_ERROR(scan.status());
    for (size_t i = 0; i < load.n; ++i) {
      load.rowids[i] = cube::MakeRowId(cube::kSourceFact, load.rowids[i]);
    }
  } else {
    for (auto& col : load.own_dims) col.reserve(load.n);
    for (auto& col : load.own_aggrs) col.reserve(load.n);
    load.rowids.reserve(load.n);
    storage::Relation::Scanner scan(rel);
    while (const uint8_t* rec = scan.Next()) {
      const uint8_t* p = rec;
      uint32_t code;
      for (int k = 0; k < d; ++k) {
        std::memcpy(&code, p, 4);
        load.own_dims[k].push_back(code);
        p += 4;
      }
      int64_t v;
      for (int a = 0; a < y; ++a) {
        std::memcpy(&v, p, 8);
        load.own_aggrs[a].push_back(v);
        p += 8;
      }
      uint64_t rowid;
      std::memcpy(&rowid, p, 8);
      load.rowids.push_back(cube::MakeRowId(cube::kSourceFact, rowid));
    }
    CURE_RETURN_IF_ERROR(scan.status());
  }
  load.native.resize(d);
  load.aggrs.resize(y);
  for (int k = 0; k < d; ++k) load.native[k] = load.own_dims[k].data();
  for (int a = 0; a < y; ++a) load.aggrs[a] = load.own_aggrs[a].data();
  return load;
}

Load LoadFromAggTable(const AggTable& table, const CubeSchema& schema) {
  const int d = schema.num_dims();
  const int y = schema.num_aggregates();
  Load load;
  load.n = table.num_rows;
  load.native_level = table.native_levels;
  load.native.resize(d);
  for (int k = 0; k < d; ++k) load.native[k] = table.dims[k].data();
  load.aggrs.resize(y);
  for (int a = 0; a < y; ++a) load.aggrs[a] = table.aggrs[a].data();
  load.rowids.resize(load.n);
  for (size_t i = 0; i < load.n; ++i) {
    load.rowids[i] = cube::MakeRowId(cube::kSourceNodeN, i);
  }
  return load;
}

Executor::Executor(const CubeSchema* schema, const CureOptions* options,
                   cube::CubeStore* store, cube::SignaturePool* pool,
                   BuildStats* stats)
    : schema_(schema),
      options_(options),
      store_(store),
      pool_(pool),
      stats_(stats),
      codec_(*schema),
      num_dims_(schema->num_dims()),
      y_(schema->num_aggregates()) {
  agg_buf_.resize(y_);
  dr_dims_.resize(num_dims_);
  node_levels_buf_.resize(num_dims_);
  batched_ = ResolveBatchRows(options->batch_rows) > 1;
}

Status Executor::RunInMemory(const Load& load) {
  CURE_RETURN_IF_ERROR(PrepareRun(&load, std::vector<int>(num_dims_, 0)));
  return ExecutePlan(0, load.n, 0);
}

Status Executor::RunPartition(const Load& load, int level) {
  CURE_RETURN_IF_ERROR(PrepareRun(&load, std::vector<int>(num_dims_, 0)));
  levels_[0] = level;
  included_[0] = true;
  Status s = FollowEdge(0, load.n, 0);
  included_[0] = false;
  return s;
}

Status Executor::RunNodeN(const Load& load, int level) {
  std::vector<int> base(num_dims_, 0);
  const bool projected = load.native_level[0] == cube::kNativeAll;
  base[0] = level + 1;
  CURE_RETURN_IF_ERROR(PrepareRun(&load, base));
  return ExecutePlan(0, load.n, projected ? 1 : 0);
}

Status Executor::PrepareRun(const Load* load, std::vector<int> base_levels) {
  load_ = load;
  base_levels_ = std::move(base_levels);
  levels_.assign(num_dims_, 0);
  included_.assign(num_dims_, false);
  idx_.resize(load->n);
  for (size_t i = 0; i < load->n; ++i) idx_[i] = static_cast<uint32_t>(i);
  // Build native-level -> target-level code maps for every level we may
  // sort on. Levels below a dimension's base level are never visited.
  maps_.assign(num_dims_, {});
  for (int d = 0; d < num_dims_; ++d) {
    const Dimension& dim = schema_->dim(d);
    maps_[d].resize(dim.num_levels());
    const int native = load->native_level[d];
    if (native == cube::kNativeAll) continue;  // Dimension never accessed.
    for (int l = base_levels_[d]; l < dim.num_levels(); ++l) {
      if (l == native) continue;  // Identity.
      CURE_ASSIGN_OR_RETURN(maps_[d][l], dim.LevelToLevelMap(native, l));
    }
  }
  return Status::OK();
}

uint32_t Executor::Key(uint32_t row, int d, int level) const {
  const uint32_t code = load_->native[d][row];
  const std::vector<uint32_t>& map = maps_[d][level];
  return map.empty() ? code : map[code];
}

NodeId Executor::CurrentNode() {
  for (int d = 0; d < num_dims_; ++d) {
    node_levels_buf_[d] = included_[d] ? levels_[d] : codec_.all_level(d);
  }
  return codec_.Encode(node_levels_buf_);
}

Status Executor::ExecutePlan(size_t begin, size_t end, int dim) {
  const size_t count = end - begin;
  if (count < options_->min_support || count == 0) return Status::OK();
  const NodeId node = CurrentNode();
  if (count == 1 && options_->min_support <= 1) {
    // Trivial tuple: store the row-id at this (least detailed) node and
    // prune — the whole sub-tree above shares it (Sec. 5.1).
    return store_->WriteTT(node, load_->rowids[idx_[begin]]);
  }

  // Aggregate the span and pool the signature — batch kernels over the
  // index span (engine/kernels.h): per-aggregate dispatch happens once per
  // span, the accumulation is a tight loop.
  const uint32_t* span_idx = idx_.data() + begin;
  const RowId min_rowid = MinU64Gather(load_->rowids.data(), span_idx, count);
  for (int a = 0; a < y_; ++a) {
    agg_buf_[a] = AggregateGather(schema_->aggregate(a).fn, load_->aggrs[a],
                                  span_idx, count);
  }
  if (pool_->full()) {
    ++stats_->signature_flushes;
    CURE_RETURN_IF_ERROR(pool_->Flush(store_));
  }
  const uint32_t* dr = nullptr;
  if (options_->dims_in_nt) {
    const uint32_t first = idx_[begin];
    for (int d = 0; d < num_dims_; ++d) {
      dr_dims_[d] = included_[d] ? Key(first, d, levels_[d]) : 0;
    }
    dr = dr_dims_.data();
  }
  pool_->Add(agg_buf_.data(), min_rowid, node, dr);

  if (options_->plan_style == plan::ExecutionPlan::Style::kTall) {
    // Rule 1: solid edges introduce each remaining dimension at its
    // plan-root levels.
    for (int d = dim; d < num_dims_; ++d) {
      if (load_->native_level[d] == cube::kNativeAll) continue;
      for (int root : schema_->dim(d).plan_roots()) {
        levels_[d] = root;
        included_[d] = true;
        Status s = FollowEdge(begin, end, d);
        included_[d] = false;
        CURE_RETURN_IF_ERROR(s);
      }
    }
    // Rule 2: one dashed edge refining the rightmost grouping dimension.
    if (dim >= 1 && included_[dim - 1]) {
      const int cur = levels_[dim - 1];
      for (int child : schema_->dim(dim - 1).plan_children(cur)) {
        if (child < base_levels_[dim - 1]) continue;
        levels_[dim - 1] = child;
        CURE_RETURN_IF_ERROR(FollowEdge(begin, end, dim - 1));
      }
      levels_[dim - 1] = cur;
    }
  } else {
    // P2-style (plan ablation): every level via solid edges; no sort
    // sharing through dashed refinement.
    for (int d = dim; d < num_dims_; ++d) {
      if (load_->native_level[d] == cube::kNativeAll) continue;
      for (int level = base_levels_[d]; level < schema_->dim(d).num_levels();
           ++level) {
        levels_[d] = level;
        included_[d] = true;
        Status s = FollowEdge(begin, end, d);
        included_[d] = false;
        CURE_RETURN_IF_ERROR(s);
      }
    }
  }
  return Status::OK();
}

Status Executor::FollowEdge(size_t begin, size_t end, int d) {
  // Per-node construction timing: each edge sorts its span and materializes
  // exactly the node CurrentNode() (d is already included), so the nested
  // spans render the whole construction tree in Perfetto. Disabled cost is
  // one relaxed load; args are only computed when armed.
  TraceSpan span("cure.build.edge");
  if (Tracer::enabled()) {
    span.AddArg("node", static_cast<uint64_t>(CurrentNode()));
    span.AddArg("rows", static_cast<uint64_t>(end - begin));
  }
  const int level = levels_[d];
  const uint32_t cardinality = schema_->dim(d).cardinality(level);
  if (batched_) {
    // Batch path: the sort gathers keys once and hands back the equal-key
    // segment boundaries, so no Key() re-evaluation happens here. One
    // segment buffer per recursion depth; re-index the pool on every
    // iteration because deeper edges may grow it (which moves elements).
    const size_t depth = static_cast<size_t>(edge_depth_++);
    if (segments_pool_.size() <= depth) segments_pool_.resize(depth + 1);
    SortSpanSegments(
        idx_.data() + begin, end - begin, cardinality,
        [&](uint32_t row) { return Key(row, d, level); }, options_->sort_policy,
        &scratch_, &segments_pool_[depth]);
    Status status = Status::OK();
    const size_t n = end - begin;
    for (size_t s = 0; status.ok(); ++s) {
      const std::vector<uint32_t>& segs = segments_pool_[depth];
      if (s >= segs.size()) break;
      const size_t i = begin + segs[s];
      const size_t j = s + 1 < segs.size() ? begin + segs[s + 1] : begin + n;
      status = ExecutePlan(i, j, d + 1);
    }
    --edge_depth_;
    return status;
  }
  // Scalar reference path (batch_rows = 1): per-row key evaluation.
  SortSpan(
      idx_.data() + begin, end - begin, cardinality,
      [&](uint32_t row) { return Key(row, d, level); }, options_->sort_policy,
      &scratch_);
  size_t i = begin;
  while (i < end) {
    const uint32_t value = Key(idx_[i], d, level);
    size_t j = i + 1;
    while (j < end && Key(idx_[j], d, level) == value) ++j;
    CURE_RETURN_IF_ERROR(ExecutePlan(i, j, d + 1));
    i = j;
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace cure
