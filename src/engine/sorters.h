#ifndef CURE_ENGINE_SORTERS_H_
#define CURE_ENGINE_SORTERS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cure {
namespace engine {

/// Sorting policy for the BUC-style recursion's segment re-sorts.
/// The paper (Sec. 7, citing [2]) notes that CountingSort instead of
/// QuickSort keeps BUC-based methods efficient under high skew; kAuto picks
/// counting sort whenever the key cardinality is small relative to the span.
enum class SortPolicy { kAuto, kCountingOnly, kComparisonOnly };

/// Reusable scratch buffers for counting sort.
struct SortScratch {
  std::vector<uint32_t> counts;
  std::vector<uint32_t> out;
};

/// Sorts idx[0, n) ascending by key(idx[i]); all keys are < cardinality.
/// KeyFn: uint32_t(uint32_t element).
template <typename KeyFn>
void SortSpan(uint32_t* idx, size_t n, uint32_t cardinality, const KeyFn& key,
              SortPolicy policy, SortScratch* scratch) {
  if (n <= 1) return;
  const bool counting_ok =
      cardinality > 0 &&
      (policy == SortPolicy::kCountingOnly ||
       (policy == SortPolicy::kAuto &&
        static_cast<uint64_t>(cardinality) <= 2 * static_cast<uint64_t>(n) + 1024));
  if (counting_ok && policy != SortPolicy::kComparisonOnly) {
    scratch->counts.assign(cardinality + 1, 0);
    for (size_t i = 0; i < n; ++i) ++scratch->counts[key(idx[i]) + 1];
    for (uint32_t c = 0; c < cardinality; ++c) {
      scratch->counts[c + 1] += scratch->counts[c];
    }
    scratch->out.resize(n);
    for (size_t i = 0; i < n; ++i) {
      scratch->out[scratch->counts[key(idx[i])]++] = idx[i];
    }
    std::copy(scratch->out.begin(), scratch->out.end(), idx);
    return;
  }
  std::sort(idx, idx + n,
            [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
}

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_SORTERS_H_
