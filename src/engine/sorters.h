#ifndef CURE_ENGINE_SORTERS_H_
#define CURE_ENGINE_SORTERS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/kernels.h"

namespace cure {
namespace engine {

/// Sorting policy for the BUC-style recursion's segment re-sorts.
/// The paper (Sec. 7, citing [2]) notes that CountingSort instead of
/// QuickSort keeps BUC-based methods efficient under high skew; kAuto picks
/// counting sort whenever the key cardinality is small relative to the span.
enum class SortPolicy { kAuto, kCountingOnly, kComparisonOnly };

/// Reusable scratch buffers for counting sort and the batched key gather.
struct SortScratch {
  std::vector<uint32_t> counts;
  std::vector<uint32_t> out;
  std::vector<uint32_t> keys;  // batched path: keys gathered once per sort
};

/// Sorts idx[0, n) ascending by key(idx[i]); all keys are < cardinality.
/// KeyFn: uint32_t(uint32_t element).
template <typename KeyFn>
void SortSpan(uint32_t* idx, size_t n, uint32_t cardinality, const KeyFn& key,
              SortPolicy policy, SortScratch* scratch) {
  if (n <= 1) return;
  const bool counting_ok =
      cardinality > 0 &&
      (policy == SortPolicy::kCountingOnly ||
       (policy == SortPolicy::kAuto &&
        static_cast<uint64_t>(cardinality) <= 2 * static_cast<uint64_t>(n) + 1024));
  if (counting_ok && policy != SortPolicy::kComparisonOnly) {
    scratch->counts.assign(cardinality + 1, 0);
    for (size_t i = 0; i < n; ++i) ++scratch->counts[key(idx[i]) + 1];
    for (uint32_t c = 0; c < cardinality; ++c) {
      scratch->counts[c + 1] += scratch->counts[c];
    }
    scratch->out.resize(n);
    for (size_t i = 0; i < n; ++i) {
      scratch->out[scratch->counts[key(idx[i])]++] = idx[i];
    }
    std::copy(scratch->out.begin(), scratch->out.end(), idx);
    return;
  }
  std::sort(idx, idx + n,
            [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
}

/// Batched variant of SortSpan that also emits the equal-key segment start
/// offsets (span-relative; the final segment ends at n). The batch kernels'
/// sort: keys are gathered ONCE into a contiguous slice (the legacy path
/// evaluates key() twice per element — once for the histogram, once for the
/// scatter — and the caller then re-evaluates it ~2n more times to find
/// segment boundaries), the counting-sort histogram fill and scatter run
/// over that slice, and segment boundaries fall out of the prefix-summed
/// histogram for free. Produces exactly the permutation of SortSpan with
/// the same policy (counting sort is stable in both; the comparison path is
/// the identical std::sort call), so build output is byte-identical.
template <typename KeyFn>
void SortSpanSegments(uint32_t* idx, size_t n, uint32_t cardinality,
                      const KeyFn& key, SortPolicy policy, SortScratch* scratch,
                      std::vector<uint32_t>* segments) {
  segments->clear();
  if (n == 0) return;
  if (n == 1) {
    segments->push_back(0);
    return;
  }
  const bool counting_ok =
      cardinality > 0 &&
      (policy == SortPolicy::kCountingOnly ||
       (policy == SortPolicy::kAuto &&
        static_cast<uint64_t>(cardinality) <= 2 * static_cast<uint64_t>(n) + 1024));
  scratch->keys.resize(n);
  uint32_t* CURE_RESTRICT keys = scratch->keys.data();
  if (counting_ok && policy != SortPolicy::kComparisonOnly) {
    for (size_t i = 0; i < n; ++i) keys[i] = key(idx[i]);
    scratch->counts.assign(cardinality + 1, 0);
    uint32_t* CURE_RESTRICT counts = scratch->counts.data();
    HistogramFill(keys, n, counts);
    for (uint32_t c = 0; c < cardinality; ++c) counts[c + 1] += counts[c];
    // Before the scatter consumes the offsets: every key with a non-empty
    // range starts a segment at its prefix offset.
    for (uint32_t c = 0; c < cardinality; ++c) {
      if (counts[c + 1] > counts[c]) segments->push_back(counts[c]);
    }
    scratch->out.resize(n);
    uint32_t* CURE_RESTRICT out = scratch->out.data();
    for (size_t i = 0; i < n; ++i) out[counts[keys[i]]++] = idx[i];
    std::copy(scratch->out.begin(), scratch->out.end(), idx);
    return;
  }
  std::sort(idx, idx + n,
            [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
  // Gather the now-sorted keys once, then find boundaries contiguously.
  for (size_t i = 0; i < n; ++i) keys[i] = key(idx[i]);
  segments->push_back(0);
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] != keys[i - 1]) segments->push_back(static_cast<uint32_t>(i));
  }
}

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_SORTERS_H_
