#include "engine/incremental.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "cube/measures.h"
#include "cube/signature.h"

namespace cure {
namespace engine {

namespace {

using cube::CubeStore;
using cube::RowId;
using schema::CubeSchema;
using schema::Dimension;
using schema::FactTable;
using schema::NodeId;

/// One pre-existing cube tuple of a node, indexed by its grouping codes.
struct OldTuple {
  enum Kind { kNt, kTt, kCat } kind = kNt;
  std::vector<int64_t> aggrs;  // NT/CAT only
  RowId rowid_ref = 0;
  uint64_t relation_row = 0;  // index within its relation, for tombstoning
  bool consumed = false;
};

/// Lazily loaded probe structure over one node's existing storage. Keys are
/// the raw bytes of the grouping codes (small-string optimized: up to three
/// grouping dims allocate nothing).
struct NodeProbe {
  std::unordered_map<std::string, OldTuple> tuples;
  std::set<uint64_t> consumed_nt;
  std::set<uint64_t> consumed_tt;  // relation rows (or bitmap ordinals)
  std::set<uint64_t> consumed_cat;
  bool tt_was_bitmap = false;
};

std::string PackKey(const uint32_t* codes, size_t n) {
  return std::string(reinterpret_cast<const char*>(codes), n * 4);
}

struct PendingSignature {
  NodeId node;
  std::vector<int64_t> aggrs;
  RowId rowid;
  std::vector<uint32_t> dr_dims;  // D projected codes (DR mode only)
};

class DeltaUpdater {
 public:
  DeltaUpdater(CureCube* cube, CubeStore* store, const FactTable& table,
               uint64_t old_rows)
      : store_(store),
        schema_(cube->schema()),
        codec_(store->codec()),
        table_(table),
        old_rows_(old_rows),
        num_dims_(schema_.num_dims()),
        y_(schema_.num_aggregates()),
        aggregator_(schema_) {
    levels_.assign(num_dims_, 0);
    included_.assign(num_dims_, false);
  }

  Result<UpdateStats> Run() {
    delta_rows_.resize(table_.num_rows() - old_rows_);
    for (size_t i = 0; i < delta_rows_.size(); ++i) delta_rows_[i] = old_rows_ + i;
    stats_.delta_rows = delta_rows_.size();
    CURE_RETURN_IF_ERROR(Visit(delta_rows_, 0));
    CURE_RETURN_IF_ERROR(RewriteTombstonedRelations());
    // Materialize new TTs and re-classify pending signatures.
    for (const auto& [node, rowid] : pending_tts_) {
      CURE_RETURN_IF_ERROR(store_->WriteTT(node, rowid));
    }
    if (!pending_sigs_.empty()) {
      const bool dr = store_->options().dims_in_nt;
      cube::SignaturePool pool(y_, dr ? num_dims_ : 0, pending_sigs_.size());
      for (const PendingSignature& sig : pending_sigs_) {
        pool.Add(sig.aggrs.data(), sig.rowid, sig.node,
                 dr ? sig.dr_dims.data() : nullptr);
      }
      CURE_RETURN_IF_ERROR(pool.Flush(store_));
    }
    return stats_;
  }

 private:
  NodeId CurrentNode() {
    std::vector<int> node_levels(num_dims_);
    for (int d = 0; d < num_dims_; ++d) {
      node_levels[d] = included_[d] ? levels_[d] : codec_.all_level(d);
    }
    return codec_.Encode(node_levels);
  }

  std::string KeyOf(uint64_t row) const {
    uint32_t codes[64];
    size_t n = 0;
    for (int d = 0; d < num_dims_; ++d) {
      if (!included_[d]) continue;
      codes[n++] = schema_.dim(d).CodeAt(table_.dim(d, row), levels_[d]);
    }
    return PackKey(codes, n);
  }

  /// Lifts one fact row's measures into aggregate space on demand.
  void LiftRow(uint64_t row, int64_t* out) const {
    int64_t raw[16];
    CURE_CHECK_LE(schema_.num_raw_measures(), 16);
    for (int m = 0; m < schema_.num_raw_measures(); ++m) {
      raw[m] = table_.measure(m, row);
    }
    aggregator_.Lift(raw, out);
  }

  /// Builds (once) the probe for `node` from its existing storage. Only
  /// tuples whose grouping codes match some *delta* row are indexed: groups
  /// that contain no delta row are never looked up (a group consisting only
  /// of an absorbed old TT row is provably unmatched — the TT's sub-tree
  /// holds no other storage for its codes), which keeps the probe O(delta)
  /// instead of O(node).
  Result<NodeProbe*> Probe(NodeId node) {
    auto it = probes_.find(node);
    if (it != probes_.end()) return &it->second;
    NodeProbe& probe = probes_[node];
    const CubeStore::NodeData* data = store_->node(node);
    if (data == nullptr) return &probe;
    const std::vector<int> node_levels = codec_.Decode(node);
    std::vector<int> grouping;
    for (int d = 0; d < num_dims_; ++d) {
      if (node_levels[d] != codec_.all_level(d)) grouping.push_back(d);
    }
    // Candidate keys from the delta rows (Probe is first called while the
    // traversal sits at `node`, so levels_/included_ match node_levels).
    std::unordered_set<std::string> candidates;
    candidates.reserve(delta_rows_.size());
    for (uint64_t r : delta_rows_) candidates.insert(KeyOf(r));
    auto relevant = [&](const std::string& key) {
      return candidates.count(key) != 0;
    };
    auto key_of_rowid = [&](RowId rowid) {
      uint32_t codes[64];
      size_t n = 0;
      const uint64_t row = cube::RowIdOrdinal(rowid);
      for (int d : grouping) {
        codes[n++] = schema_.dim(d).CodeAt(table_.dim(d, row), node_levels[d]);
      }
      return PackKey(codes, n);
    };

    if (data->has_nt) {
      storage::Relation::Scanner scan(data->nt);
      const bool dr = store_->options().dims_in_nt;
      while (const uint8_t* rec = scan.Next()) {
        OldTuple tuple;
        tuple.kind = OldTuple::kNt;
        tuple.relation_row = scan.row();
        tuple.aggrs.resize(y_);
        std::string key;
        if (dr) {
          key.assign(reinterpret_cast<const char*>(rec), 4 * grouping.size());
          std::memcpy(tuple.aggrs.data(), rec + 4 * grouping.size(), 8ull * y_);
          tuple.rowid_ref = std::numeric_limits<RowId>::max();
        } else {
          std::memcpy(&tuple.rowid_ref, rec, 8);
          std::memcpy(tuple.aggrs.data(), rec + 8, 8ull * y_);
          key = key_of_rowid(tuple.rowid_ref);
        }
        if (!relevant(key)) continue;
        probe.tuples.emplace(std::move(key), std::move(tuple));
      }
      CURE_RETURN_IF_ERROR(scan.status());
    }
    if (data->has_cat) {
      const storage::Relation& aggregates = store_->aggregates();
      storage::Relation::Scanner scan(data->cat);
      std::vector<uint8_t> agg_rec(aggregates.record_size());
      while (const uint8_t* rec = scan.Next()) {
        OldTuple tuple;
        tuple.kind = OldTuple::kCat;
        tuple.relation_row = scan.row();
        tuple.aggrs.resize(y_);
        uint64_t arowid = 0;
        if (store_->cat_format() == cube::CatFormat::kFormatA) {
          std::memcpy(&arowid, rec, 8);
          CURE_RETURN_IF_ERROR(aggregates.Read(arowid, agg_rec.data()));
          std::memcpy(&tuple.rowid_ref, agg_rec.data(), 8);
          std::memcpy(tuple.aggrs.data(), agg_rec.data() + 8, 8ull * y_);
        } else {
          std::memcpy(&tuple.rowid_ref, rec, 8);
          std::memcpy(&arowid, rec + 8, 8);
          CURE_RETURN_IF_ERROR(aggregates.Read(arowid, agg_rec.data()));
          std::memcpy(tuple.aggrs.data(), agg_rec.data(), 8ull * y_);
        }
        std::string key = key_of_rowid(tuple.rowid_ref);
        if (!relevant(key)) continue;
        probe.tuples.emplace(std::move(key), std::move(tuple));
      }
      CURE_RETURN_IF_ERROR(scan.status());
    }
    if (data->tt_bitmap != nullptr) {
      probe.tt_was_bitmap = true;
      data->tt_bitmap->ForEach([&](uint64_t ordinal) {
        OldTuple tuple;
        tuple.kind = OldTuple::kTt;
        tuple.relation_row = ordinal;  // bitmap: identify by ordinal
        tuple.rowid_ref = cube::MakeRowId(data->tt_source, ordinal);
        std::string key = key_of_rowid(tuple.rowid_ref);
        if (!relevant(key)) return;
        probe.tuples.emplace(std::move(key), std::move(tuple));
      });
    } else if (data->has_tt) {
      storage::Relation::Scanner scan(data->tt);
      while (const uint8_t* rec = scan.Next()) {
        OldTuple tuple;
        tuple.kind = OldTuple::kTt;
        tuple.relation_row = scan.row();
        std::memcpy(&tuple.rowid_ref, rec, 8);
        std::string key = key_of_rowid(tuple.rowid_ref);
        if (!relevant(key)) continue;
        probe.tuples.emplace(std::move(key), std::move(tuple));
      }
      CURE_RETURN_IF_ERROR(scan.status());
    }
    return &probe;
  }

  Status Visit(std::vector<uint64_t> rows, int dim) {
    const NodeId node = CurrentNode();
    CURE_ASSIGN_OR_RETURN(NodeProbe * probe, Probe(node));
    const std::string key = KeyOf(rows[0]);
    auto it = probe->tuples.find(key);
    OldTuple* old = it == probe->tuples.end() || it->second.consumed
                        ? nullptr
                        : &it->second;

    if (old == nullptr && rows.size() == 1) {
      // Brand-new trivial tuple at its least detailed node; prune.
      pending_tts_.push_back({node, cube::MakeRowId(cube::kSourceFact, rows[0])});
      ++stats_.new_tts;
      return Status::OK();
    }

    if (old != nullptr && old->kind == OldTuple::kTt) {
      // The old TT's group grows: absorb its source row; the combined rows
      // regenerate this node and the whole sub-tree above it.
      old->consumed = true;
      switch (old->kind) {
        case OldTuple::kTt:
          probe->consumed_tt.insert(old->relation_row);
          break;
        default:
          break;
      }
      rows.push_back(cube::RowIdOrdinal(old->rowid_ref));
      old = nullptr;
      ++stats_.absorbed_tts;
    }

    // Aggregate the (possibly extended) row set.
    PendingSignature sig;
    sig.node = node;
    sig.aggrs.resize(y_);
    aggregator_.Init(sig.aggrs.data());
    RowId min_rowid = std::numeric_limits<RowId>::max();
    int64_t lifted[16];
    CURE_CHECK_LE(y_, 16);
    for (uint64_t r : rows) {
      LiftRow(r, lifted);
      aggregator_.Combine(sig.aggrs.data(), lifted);
      min_rowid = std::min(min_rowid, cube::MakeRowId(cube::kSourceFact, r));
    }
    if (old != nullptr) {
      // Merge with the existing NT/CAT tuple and tombstone it.
      aggregator_.Combine(sig.aggrs.data(), old->aggrs.data());
      min_rowid = std::min(min_rowid, old->rowid_ref);
      old->consumed = true;
      if (old->kind == OldTuple::kNt) {
        probe->consumed_nt.insert(old->relation_row);
      } else {
        probe->consumed_cat.insert(old->relation_row);
      }
      ++stats_.merged_tuples;
    }
    sig.rowid = min_rowid;
    if (store_->options().dims_in_nt) {
      sig.dr_dims.resize(num_dims_, 0);
      for (int d = 0; d < num_dims_; ++d) {
        if (included_[d]) {
          sig.dr_dims[d] = schema_.dim(d).CodeAt(table_.dim(d, rows[0]), levels_[d]);
        }
      }
    }
    pending_sigs_.push_back(std::move(sig));
    ++stats_.new_signatures;

    // Descend the tall plan exactly like construction.
    for (int d = dim; d < num_dims_; ++d) {
      for (int root : schema_.dim(d).plan_roots()) {
        levels_[d] = root;
        included_[d] = true;
        Status s = Partition(rows, d);
        included_[d] = false;
        CURE_RETURN_IF_ERROR(s);
      }
    }
    if (dim >= 1 && included_[dim - 1]) {
      const int cur = levels_[dim - 1];
      for (int child : schema_.dim(dim - 1).plan_children(cur)) {
        levels_[dim - 1] = child;
        CURE_RETURN_IF_ERROR(Partition(rows, dim - 1));
      }
      levels_[dim - 1] = cur;
    }
    return Status::OK();
  }

  /// FollowEdge equivalent: groups `rows` by dimension d at levels_[d] and
  /// visits each group.
  Status Partition(const std::vector<uint64_t>& rows, int d) {
    std::map<uint32_t, std::vector<uint64_t>> groups;
    for (uint64_t r : rows) {
      groups[schema_.dim(d).CodeAt(table_.dim(d, r), levels_[d])].push_back(r);
    }
    for (auto& [code, group] : groups) {
      (void)code;
      CURE_RETURN_IF_ERROR(Visit(std::move(group), d + 1));
    }
    return Status::OK();
  }

  Status RewriteTombstonedRelations() {
    for (auto& [node_id, probe] : probes_) {
      if (probe.consumed_nt.empty() && probe.consumed_tt.empty() &&
          probe.consumed_cat.empty()) {
        continue;
      }
      CubeStore::NodeData* data = store_->mutable_node(node_id);
      CURE_CHECK(data != nullptr);
      if (!probe.consumed_nt.empty()) {
        storage::Relation rebuilt =
            storage::Relation::Memory(data->nt.record_size());
        storage::Relation::Scanner scan(data->nt);
        while (const uint8_t* rec = scan.Next()) {
          if (probe.consumed_nt.count(scan.row()) != 0) continue;
          CURE_RETURN_IF_ERROR(rebuilt.Append(rec));
        }
        CURE_RETURN_IF_ERROR(scan.status());
        data->has_nt = rebuilt.num_rows() > 0;
        data->nt = std::move(rebuilt);
      }
      if (!probe.consumed_cat.empty()) {
        storage::Relation rebuilt =
            storage::Relation::Memory(data->cat.record_size());
        storage::Relation::Scanner scan(data->cat);
        while (const uint8_t* rec = scan.Next()) {
          if (probe.consumed_cat.count(scan.row()) != 0) continue;
          CURE_RETURN_IF_ERROR(rebuilt.Append(rec));
        }
        CURE_RETURN_IF_ERROR(scan.status());
        data->has_cat = rebuilt.num_rows() > 0;
        data->cat = std::move(rebuilt);
      }
      if (!probe.consumed_tt.empty()) {
        storage::Relation rebuilt = storage::Relation::Memory(8);
        if (probe.tt_was_bitmap) {
          Status status = Status::OK();
          data->tt_bitmap->ForEach([&](uint64_t ordinal) {
            if (!status.ok() || probe.consumed_tt.count(ordinal) != 0) return;
            const RowId rowid = cube::MakeRowId(data->tt_source, ordinal);
            status = rebuilt.Append(&rowid);
          });
          CURE_RETURN_IF_ERROR(status);
          data->tt_bitmap.reset();
        } else {
          storage::Relation::Scanner scan(data->tt);
          while (const uint8_t* rec = scan.Next()) {
            if (probe.consumed_tt.count(scan.row()) != 0) continue;
            CURE_RETURN_IF_ERROR(rebuilt.Append(rec));
          }
          CURE_RETURN_IF_ERROR(scan.status());
        }
        data->has_tt = rebuilt.num_rows() > 0;
        data->tt = std::move(rebuilt);
      }
    }
    return Status::OK();
  }

  CubeStore* store_;
  const CubeSchema& schema_;
  const schema::NodeIdCodec& codec_;
  const FactTable& table_;
  uint64_t old_rows_;
  int num_dims_;
  int y_;
  cube::Aggregator aggregator_;

  std::vector<int> levels_;
  std::vector<bool> included_;
  std::vector<uint64_t> delta_rows_;
  std::unordered_map<NodeId, NodeProbe> probes_;
  std::vector<std::pair<NodeId, RowId>> pending_tts_;
  std::vector<PendingSignature> pending_sigs_;
  UpdateStats stats_;
};

}  // namespace

Result<UpdateStats> ApplyDelta(CureCube* cube, const FactTable& table,
                               uint64_t old_rows) {
  if (cube->fact_table() != &table) {
    return Status::InvalidArgument(
        "ApplyDelta requires the fact table the cube was built from (with "
        "delta rows appended)");
  }
  // Precondition failures are distinct (kFailedPrecondition) from argument
  // errors: the serving layer's refresh path keys its delta-vs-rebuild
  // decision on this code (a violated precondition means "rebuild instead",
  // a bad argument means "fail the refresh").
  if (cube->spilled()) {
    return Status::FailedPrecondition(
        "ApplyDelta requires an in-memory cube: this cube is spilled "
        "(disk-resident) and cannot be updated in place");
  }
  if (cube->partition_level() >= 0) {
    return Status::FailedPrecondition(
        "ApplyDelta requires an in-memory-built cube: this cube was built "
        "externally (partitioned, partition_level >= 0)");
  }
  if (cube->stats().min_support > 1) {
    return Status::FailedPrecondition(
        "ApplyDelta requires a complete cube: this cube is an iceberg cube "
        "(min_support > 1)");
  }
  if (cube->plan_style() != plan::ExecutionPlan::Style::kTall) {
    return Status::FailedPrecondition(
        "ApplyDelta requires the tall execution plan: this cube was built "
        "with the short plan");
  }
  if (table.num_rows() < old_rows) {
    return Status::InvalidArgument("old_rows exceeds the table size");
  }
  if (table.num_rows() == old_rows) return UpdateStats{};

  Stopwatch watch;
  DeltaUpdater updater(cube, &cube->mutable_store(), table, old_rows);
  CURE_ASSIGN_OR_RETURN(UpdateStats stats, updater.Run());
  stats.seconds = watch.ElapsedSeconds();
  // Refresh cube statistics (ApplyDelta is a friend of CureCube).
  BuildStats& build_stats = cube->stats_;
  build_stats.input_rows = table.num_rows();
  const cube::CubeStore::ClassCounts counts = cube->store().Counts();
  build_stats.tt = counts.tt;
  build_stats.nt = counts.nt;
  build_stats.cat = counts.cat;
  build_stats.aggregates_rows = counts.aggregates;
  build_stats.cube_bytes = cube->TotalBytes();
  build_stats.num_relations = cube->store().NumRelations();
  return stats;
}

}  // namespace engine
}  // namespace cure
