#ifndef CURE_ENGINE_PARTITION_H_
#define CURE_ENGINE_PARTITION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/measures.h"
#include "cube/source.h"
#include "schema/cube_schema.h"
#include "storage/relation.h"

namespace cure {
namespace engine {

/// Options of the external partitioning pass (Sec. 4 of the paper).
struct PartitionOptions {
  /// Memory available for loading a partition (and for node N).
  uint64_t memory_budget_bytes = 256ull << 20;
  std::string temp_dir = "/tmp";
  /// Safety factor applied to the estimated in-memory footprint of N
  /// (hash-table overhead).
  double n_overhead_factor = 2.0;
  /// Partitions are packed to memory_budget_bytes / in_flight_subdivision
  /// (floored at the largest single-value row count, a soundness lower
  /// bound), so up to this many partitions can be resident concurrently
  /// within the budget. Deliberately a constant independent of the build's
  /// thread count: the partition layout — and therefore the cube bytes —
  /// must be identical for every num_threads setting. Level selection still
  /// checks value fit against the full budget.
  int in_flight_subdivision = 8;
};

/// Outcome of SelectPartitionLevel: the maximum level L of the first
/// dimension such that (a) every value of A_L fits a memory-sized sound
/// partition and (b) the node N = A_{L+1} B_0 C_0 ... is estimated to fit in
/// memory (observations 1-2 of the paper).
struct LevelChoice {
  int level = -1;
  uint64_t max_value_rows = 0;  ///< rows of the most frequent A_L value
  uint64_t est_n_rows = 0;
  uint64_t num_partitions = 0;  ///< after first-fit packing of values
};

/// Result of the single partitioning pass: sound partitions on A_L (packed
/// file relations of records [D x u32 dims][Y x i64 lifted][u64 rowid]) plus
/// the node N built in memory by hashing during the same scan — the paper's
/// "2 reads, 1 write" property (one histogram read + one partition read;
/// partitions are then each read once more by the construction phase).
struct PartitionOutcome {
  int level = -1;
  std::vector<storage::Relation> partitions;
  std::shared_ptr<cube::AggTable> n_table;
  uint64_t write_bytes = 0;
  uint64_t max_partition_rows = 0;
};

/// Record width of a partition file for a given schema.
size_t PartitionRecordSize(const schema::CubeSchema& schema);

/// Chooses L from exact per-level value histograms of the first dimension.
/// `level_histograms[l][code]` = number of fact rows with A_l = code.
/// Fails when no level satisfies both constraints (the paper's rare case
/// that requires partitioning on dimension pairs, which is out of scope).
Result<LevelChoice> SelectPartitionLevel(
    const schema::CubeSchema& schema,
    const std::vector<std::vector<uint64_t>>& level_histograms,
    uint64_t num_rows, const PartitionOptions& options);

/// Computes the per-level histograms of dimension 0 with one sequential
/// scan of the fact relation. `batch_rows` follows the CureOptions contract
/// (1 = record-at-a-time reference path; 0 = CURE_BATCH_ROWS env / default);
/// > 1 scans in blocks and fills the histograms from a gathered leaf-code
/// slice. Identical histograms either way.
Result<std::vector<std::vector<uint64_t>>> ComputeLevelHistograms(
    const storage::Relation& fact, const schema::CubeSchema& schema,
    size_t batch_rows = 0);

/// Runs the partitioning pass: scans `fact` once, routes each row to its
/// sound partition file, and simultaneously hash-builds node N.
/// Requires dimension 0 to have a linear hierarchy (the paper's setting).
Result<PartitionOutcome> PartitionFact(const storage::Relation& fact,
                                       const schema::CubeSchema& schema,
                                       const LevelChoice& choice,
                                       const std::vector<std::vector<uint64_t>>&
                                           level_histograms,
                                       const PartitionOptions& options);

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_PARTITION_H_
