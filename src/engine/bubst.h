#ifndef CURE_ENGINE_BUBST_H_
#define CURE_ENGINE_BUBST_H_

#include <memory>

#include "common/status.h"
#include "engine/cube_build.h"
#include "engine/sorters.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"
#include "schema/node_id.h"
#include "storage/relation.h"

namespace cure {
namespace engine {

/// Options for the BU-BST baseline [Wang et al., ICDE'02].
struct BubstOptions {
  uint64_t min_support = 1;
  SortPolicy sort_policy = SortPolicy::kAuto;
  /// Batch scan path: same contract as CureOptions::batch_rows (1 =
  /// scalar reference path, 0 = CURE_BATCH_ROWS env / default).
  size_t batch_rows = 0;
};

/// Monolithic record of the condensed cube: all D leaf/grouping codes (ALL
/// marker for absent dimensions of non-BST rows), Y aggregates, and a
/// node-id word whose top bit flags a BST (base single tuple).
struct BubstRecord {
  static constexpr uint32_t kAllCode = 0xFFFFFFFFu;
  static constexpr uint64_t kBstFlag = uint64_t{1} << 63;

  static size_t Size(int num_dims, int num_aggregates) {
    return 4ull * num_dims + 8ull * num_aggregates + 8;
  }
};

/// A cube built by BU-BST: BSTs are detected (our TTs) and stored once, but
/// everything lives in one monolithic D-wide relation — the storage scheme
/// whose query cost the paper's Fig. 16 exposes (every query scans the whole
/// cube).
class BubstCube {
 public:
  const schema::CubeSchema& schema() const { return schema_; }
  const storage::Relation& monolithic() const { return monolithic_; }
  const BuildStats& stats() const { return stats_; }
  uint64_t TotalBytes() const { return monolithic_.bytes(); }

  /// Persists the monolithic relation to disk and reopens it in place, so
  /// every query's full scan really reads storage.
  Status SpillToDisk(const std::string& path) {
    CURE_ASSIGN_OR_RETURN(storage::Relation file, storage::Relation::CreateFile(
                                                      path, monolithic_.record_size()));
    storage::Relation::Scanner scan(monolithic_);
    while (const uint8_t* rec = scan.Next()) {
      CURE_RETURN_IF_ERROR(file.Append(rec));
    }
    CURE_RETURN_IF_ERROR(scan.status());
    CURE_RETURN_IF_ERROR(file.Seal());
    monolithic_ = std::move(file);
    return Status::OK();
  }

 private:
  friend Result<std::unique_ptr<BubstCube>> BuildBubst(const schema::CubeSchema&,
                                                       const schema::FactTable&,
                                                       const BubstOptions&);
  BubstCube() = default;

  schema::CubeSchema schema_;
  storage::Relation monolithic_;
  BuildStats stats_;
};

/// Runs BU-BST over the leaf levels of `schema` (flat cubes only, like BUC).
Result<std::unique_ptr<BubstCube>> BuildBubst(const schema::CubeSchema& schema,
                                              const schema::FactTable& table,
                                              const BubstOptions& options);

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_BUBST_H_
