#ifndef CURE_ENGINE_CURE_H_
#define CURE_ENGINE_CURE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "cube/cube_store.h"
#include "cube/source.h"
#include "engine/cube_build.h"
#include "engine/sorters.h"
#include "plan/execution_plan.h"
#include "schema/cube_schema.h"

namespace cure {
namespace engine {

/// Options of the CURE algorithm (Fig. 13 of the paper) and its variants.
struct CureOptions {
  /// Bounded signature pool capacity (paper default: 10^6 signatures).
  size_t signature_pool_capacity = 1 << 20;

  /// Memory budget that decides in-memory vs external construction, sizes
  /// partitions, and bounds node N.
  uint64_t memory_budget_bytes = 256ull << 20;

  /// CURE_DR: materialize dimension values in NTs (space for query speed).
  bool dims_in_nt = false;

  /// FCURE: build a flat cube (leaf levels only) over hierarchical data.
  bool flat = false;

  /// Iceberg threshold: groups of fewer source tuples are not materialized
  /// (HAVING count(*) >= min_support). 1 = complete cube.
  uint64_t min_support = 1;

  /// P3 (kTall, the paper's plan) or P2 (kShort) traversal; kShort exists
  /// for the plan ablation and does not support the external path.
  plan::ExecutionPlan::Style plan_style = plan::ExecutionPlan::Style::kTall;

  /// Segment sort policy (counting sort matters under skew).
  SortPolicy sort_policy = SortPolicy::kAuto;

  /// Rows per block of the columnar batch scan path (DESIGN.md §13):
  /// relation scans run through Relation::BlockScanner in blocks of this
  /// many rows and the aggregation kernels run over contiguous column
  /// slices. 1 selects the record-at-a-time scalar reference path
  /// (differential testing); 0 defers to the CURE_BATCH_ROWS environment
  /// variable, then to storage::kDefaultBlockRows. Every setting produces
  /// byte-identical cubes and query results.
  size_t batch_rows = 0;

  /// Buffered-read size, in records, of legacy record-at-a-time scans
  /// (Relation::Scanner) issued by the build. Blocks and legacy scans
  /// share this one tuning surface; 0 defers to
  /// storage::kDefaultScanBufferRecords.
  size_t scan_buffer_records = 0;

  /// Base directory for build scratch files. Every build creates (and
  /// removes, on success and error alike) its own unique subdirectory here,
  /// so concurrent builds sharing a temp_dir never collide.
  std::string temp_dir = "/tmp";

  /// Construction threads for the external path's per-partition stage.
  /// 0 = auto (the CURE_THREADS environment variable if set, otherwise
  /// hardware concurrency); 1 = the serial reference path. Any setting
  /// produces byte-identical cubes.
  int num_threads = 0;

  /// Force the external path even when the input fits in memory (tests).
  bool force_external = false;

  /// Test hook for the CAT storage format.
  cube::CatFormat forced_cat_format = cube::CatFormat::kUndecided;

  /// Arms the process-global span tracer (common/trace.h) for this build
  /// when it is not already enabled: per-stage, per-partition and per-node
  /// spans become recordable, exportable via Tracer::WriteChromeTrace().
  /// Equivalent to the CURE_TRACE environment toggle; leaves the tracer
  /// enabled afterwards so the caller can export.
  bool trace = false;
};

struct UpdateStats;  // engine/incremental.h

/// A constructed CURE cube: the condensed store, the effective schema (the
/// flattened one for FCURE), the partition-pass node N (external builds),
/// and everything needed to dereference row-ids at query time.
/// Heap-pinned: the store and sources point into this object.
class CureCube {
 public:
  /// Reopens a cube persisted by SpillStoreToDisk / PersistPacked: `schema`
  /// is copied, the packed store is opened read-only, and row-ids resolve
  /// through `fact_relation` (binary fact form, sealed; must outlive the
  /// cube). Only in-memory-built cubes (no node N) can be reopened this way.
  static Result<std::unique_ptr<CureCube>> OpenPersisted(
      const schema::CubeSchema& schema, const std::string& packed_path,
      const storage::Relation* fact_relation);

  const schema::CubeSchema& schema() const { return schema_; }
  const cube::CubeStore& store() const { return store_; }
  cube::CubeStore& mutable_store() { return store_; }
  const BuildStats& stats() const { return stats_; }
  int partition_level() const { return partition_level_; }
  plan::ExecutionPlan::Style plan_style() const { return plan_style_; }
  const std::shared_ptr<cube::AggTable>& n_table() const { return n_table_; }

  /// Builds the row-id source set for this cube: the fact table (through a
  /// pinned-prefix cache holding `fact_cache_fraction` of it when the cube
  /// was built from a file relation) and node N when present.
  Result<cube::SourceSet> MakeSources(double fact_cache_fraction) const;

  /// Region of a node in a partitioned build: nodes whose first-dimension
  /// level is <= partition_level were built from the sound partitions
  /// (row-ids reference R); the rest were built from node N. In-memory
  /// builds have a single region. TT collection must not cross regions.
  int NodeRegion(schema::NodeId id) const;

  /// Total cube size, including node N (it is both a cube node and a row-id
  /// source, so its bytes are part of the materialized cube).
  uint64_t TotalBytes() const {
    return store_.TotalBytes() + (n_table_ != nullptr ? n_table_->bytes() : 0);
  }

  /// Writes the cube store into a packed file at `path` and reopens it from
  /// disk in place: subsequent queries read node relations via pread instead
  /// of memory. Gives benchmarks the paper's disk-resident cube behaviour.
  Status SpillStoreToDisk(const std::string& path);

  /// The fact table the cube was built from (null for relation-built cubes).
  const schema::FactTable* fact_table() const { return fact_table_; }
  /// True once the store has been spilled to a packed file.
  bool spilled() const { return spilled_; }

 private:
  friend Result<std::unique_ptr<CureCube>> BuildCure(const schema::CubeSchema&,
                                                     const FactInput&,
                                                     const CureOptions&);
  friend Status CurePostProcess(CureCube* cube, bool use_bitmaps);
  friend Result<UpdateStats> ApplyDelta(CureCube* cube,
                                        const schema::FactTable& table,
                                        uint64_t old_rows);

  CureCube() : store_(nullptr, {}) {}

  schema::CubeSchema schema_;
  cube::CubeStore store_;
  std::shared_ptr<cube::AggTable> n_table_;
  const schema::FactTable* fact_table_ = nullptr;
  const storage::Relation* fact_relation_ = nullptr;
  int partition_level_ = -1;
  plan::ExecutionPlan::Style plan_style_ = plan::ExecutionPlan::Style::kTall;
  bool spilled_ = false;
  BuildStats stats_;
};

/// Runs Algorithm CURE (Fig. 13): in-memory when the input fits the budget,
/// otherwise partition + per-partition construction + node-N construction.
Result<std::unique_ptr<CureCube>> BuildCure(const schema::CubeSchema& schema,
                                            const FactInput& input,
                                            const CureOptions& options);

/// The CURE+ post-processing step (Sec. 5.3): sorts TT row-id lists (and CAT
/// format-(a) lists) and replaces them with bitmap indexes where smaller.
/// Updates the cube's stats (postprocess_seconds, sizes).
Status CurePostProcess(CureCube* cube, bool use_bitmaps = true);

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_CURE_H_
