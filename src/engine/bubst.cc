#include "engine/bubst.h"

#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "engine/kernels.h"

namespace cure {
namespace engine {

using schema::CubeSchema;
using schema::FactTable;
using schema::NodeId;

namespace {

class BubstExecutor {
 public:
  BubstExecutor(const CubeSchema* schema, const FactTable* table,
                const BubstOptions* options, storage::Relation* out,
                BuildStats* stats)
      : schema_(schema),
        table_(table),
        options_(options),
        out_(out),
        stats_(stats),
        codec_(*schema),
        num_dims_(schema->num_dims()),
        y_(schema->num_aggregates()),
        record_(BubstRecord::Size(num_dims_, y_)) {
    idx_.resize(table->num_rows());
    for (size_t i = 0; i < idx_.size(); ++i) idx_[i] = static_cast<uint32_t>(i);
    included_.assign(num_dims_, false);
    node_levels_buf_.resize(num_dims_);
    batched_ = ResolveBatchRows(options->batch_rows) > 1;
    for (int a = 0; a < y_; ++a) {
      if (schema->aggregate(a).fn == schema::AggFn::kCount) {
        count_ones_.assign(table->num_rows(), 1);
        break;
      }
    }
  }

  Status Run() { return Recurse(0, idx_.size(), 0); }

 private:
  const int64_t* AggColumn(int a) const {
    const schema::AggregateSpec& spec = schema_->aggregate(a);
    if (spec.fn == schema::AggFn::kCount) return count_ones_.data();
    return table_->measure_column(spec.measure_index).data();
  }

  NodeId CurrentNode() {
    for (int d = 0; d < num_dims_; ++d) {
      node_levels_buf_[d] = included_[d] ? 0 : codec_.all_level(d);
    }
    return codec_.Encode(node_levels_buf_);
  }

  Status WriteRow(uint32_t exemplar_row, bool bst, const int64_t* aggrs) {
    uint8_t* p = record_.data();
    for (int d = 0; d < num_dims_; ++d) {
      // BSTs keep all leaf codes (they stand for tuples of every ancestor
      // node); normal rows mark absent dimensions with the ALL code.
      const uint32_t code = (bst || included_[d]) ? table_->dim(d, exemplar_row)
                                                  : BubstRecord::kAllCode;
      std::memcpy(p, &code, 4);
      p += 4;
    }
    std::memcpy(p, aggrs, 8ull * y_);
    p += 8ull * y_;
    const uint64_t tag = CurrentNode() | (bst ? BubstRecord::kBstFlag : 0);
    std::memcpy(p, &tag, 8);
    if (bst) {
      ++stats_->tt;
    } else {
      ++stats_->plain;
    }
    return out_->Append(record_.data());
  }

  Status Recurse(size_t begin, size_t end, int dim) {
    const size_t count = end - begin;
    if (count < options_->min_support || count == 0) return Status::OK();
    if (count == 1 && options_->min_support <= 1) {
      // BST: store once at the least detailed node it belongs to; prune.
      const uint32_t row = idx_[begin];
      int64_t aggrs[16];
      CURE_CHECK_LE(y_, 16);
      for (int a = 0; a < y_; ++a) aggrs[a] = AggColumn(a)[row];
      return WriteRow(row, /*bst=*/true, aggrs);
    }

    int64_t aggrs[16];
    CURE_CHECK_LE(y_, 16);
    const uint32_t* span_idx = idx_.data() + begin;
    for (int a = 0; a < y_; ++a) {
      aggrs[a] = AggregateGather(schema_->aggregate(a).fn, AggColumn(a),
                                 span_idx, count);
    }
    CURE_RETURN_IF_ERROR(WriteRow(idx_[begin], /*bst=*/false, aggrs));

    for (int d = dim; d < num_dims_; ++d) {
      // Per-node timing, mirroring construct.cc: this edge sorts the span
      // on dimension d and materializes the node with d newly included.
      TraceSpan span("cure.baseline.edge");
      if (Tracer::enabled()) {
        span.AddArg("dim", static_cast<uint64_t>(d));
        span.AddArg("rows", static_cast<uint64_t>(count));
      }
      const uint32_t cardinality = schema_->dim(d).leaf_cardinality();
      const std::vector<uint32_t>& col = table_->dim_column(d);
      included_[d] = true;
      Status status = Status::OK();
      if (batched_) {
        const size_t depth = static_cast<size_t>(edge_depth_++);
        if (segments_pool_.size() <= depth) segments_pool_.resize(depth + 1);
        SortSpanSegments(
            idx_.data() + begin, count, cardinality,
            [&](uint32_t row) { return col[row]; }, options_->sort_policy,
            &scratch_, &segments_pool_[depth]);
        for (size_t s = 0; status.ok(); ++s) {
          const std::vector<uint32_t>& segs = segments_pool_[depth];
          if (s >= segs.size()) break;
          const size_t i = begin + segs[s];
          const size_t j =
              s + 1 < segs.size() ? begin + segs[s + 1] : begin + count;
          status = Recurse(i, j, d + 1);
        }
        --edge_depth_;
      } else {
        SortSpan(
            idx_.data() + begin, count, cardinality,
            [&](uint32_t row) { return col[row]; }, options_->sort_policy,
            &scratch_);
        size_t i = begin;
        while (i < end) {
          const uint32_t value = col[idx_[i]];
          size_t j = i + 1;
          while (j < end && col[idx_[j]] == value) ++j;
          status = Recurse(i, j, d + 1);
          if (!status.ok()) break;
          i = j;
        }
      }
      included_[d] = false;
      CURE_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  }

  const CubeSchema* schema_;
  const FactTable* table_;
  const BubstOptions* options_;
  storage::Relation* out_;
  BuildStats* stats_;
  schema::NodeIdCodec codec_;
  int num_dims_;
  int y_;
  std::vector<uint8_t> record_;
  std::vector<uint32_t> idx_;
  std::vector<bool> included_;
  std::vector<int> node_levels_buf_;
  std::vector<int64_t> count_ones_;
  SortScratch scratch_;
  bool batched_ = true;
  int edge_depth_ = 0;
  std::vector<std::vector<uint32_t>> segments_pool_;
};

}  // namespace

Result<std::unique_ptr<BubstCube>> BuildBubst(const CubeSchema& schema,
                                              const FactTable& table,
                                              const BubstOptions& options) {
  std::unique_ptr<BubstCube> cube(new BubstCube());
  cube->schema_ = schema.Flattened();
  cube->monolithic_ = storage::Relation::Memory(
      BubstRecord::Size(cube->schema_.num_dims(), cube->schema_.num_aggregates()));
  cube->stats_.input_rows = table.num_rows();

  Stopwatch watch;
  CURE_TRACE_SPAN("cure.baseline.bubst_build", "rows", table.num_rows());
  BubstExecutor executor(&cube->schema_, &table, &options, &cube->monolithic_,
                         &cube->stats_);
  CURE_RETURN_IF_ERROR(executor.Run());
  cube->stats_.build_seconds = watch.ElapsedSeconds();
  cube->stats_.cube_bytes = cube->TotalBytes();
  cube->stats_.num_relations = 1;
  return cube;
}

}  // namespace engine
}  // namespace cure
