#ifndef CURE_ENGINE_CONSTRUCT_H_
#define CURE_ENGINE_CONSTRUCT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cube/cube_store.h"
#include "cube/measures.h"
#include "cube/rowid.h"
#include "cube/signature.h"
#include "engine/cube_build.h"
#include "engine/sorters.h"
#include "schema/cube_schema.h"
#include "schema/fact_table.h"
#include "storage/relation.h"

namespace cure {
namespace engine {

struct CureOptions;  // engine/cure.h

/// Column-oriented view of one recursion input (the whole fact table, one
/// sound partition, or node N). Columns may alias caller-owned memory or be
/// owned by the Load.
struct Load {
  std::vector<const uint32_t*> native;  // D columns of native codes
  std::vector<const int64_t*> aggrs;    // Y columns of lifted aggregates
  std::vector<cube::RowId> rowids;
  std::vector<int> native_level;        // per dimension; kNativeAll possible
  size_t n = 0;

  // Owned backing storage (when not aliasing).
  std::vector<std::vector<uint32_t>> own_dims;
  std::vector<std::vector<int64_t>> own_aggrs;
};

/// Aliases the in-memory fact table's columns (COUNT aggregates get an
/// owned all-ones column).
Load LoadFromTable(const schema::FactTable& table,
                   const schema::CubeSchema& schema);

/// Scans a sealed binary fact relation ([D x u32][M x i64] records), lifting
/// raw measures into aggregate space. `batch_rows` > 1 runs the block-
/// oriented column-gather path (one contiguous gather per column per
/// block); 1 the record-at-a-time reference path; 0 defers to
/// CURE_BATCH_ROWS / the built-in default. Identical Loads either way.
Result<Load> LoadFromFactRelation(const storage::Relation& rel,
                                  const schema::CubeSchema& schema,
                                  size_t batch_rows = 0);

/// Scans a sound-partition relation ([D x u32][Y x i64 lifted][u64 rowid]
/// records) written by PartitionFact. Same `batch_rows` contract as
/// LoadFromFactRelation.
Result<Load> LoadFromPartition(const storage::Relation& rel,
                               const schema::CubeSchema& schema,
                               size_t batch_rows = 0);

/// Aliases the partition-pass node N (already aggregated; row-ids reference
/// N itself).
Load LoadFromAggTable(const cube::AggTable& table,
                      const schema::CubeSchema& schema);

/// The recursive BUC-style traversal of CURE's execution plan (the paper's
/// ExecutePlan / FollowEdge of Fig. 13), writing TTs eagerly and pooling
/// signatures for every non-trivial tuple.
///
/// An Executor instance is single-threaded; parallel builds give each worker
/// its own Executor over a private per-partition store, pool, and stats
/// sink. The schema and options are shared read-only.
class Executor {
 public:
  Executor(const schema::CubeSchema* schema, const CureOptions* options,
           cube::CubeStore* store, cube::SignaturePool* pool,
           BuildStats* stats);

  /// Full in-memory construction: ExecutePlan over the whole input.
  Status RunInMemory(const Load& load);

  /// Per-partition construction: FollowEdge on dimension 0 at level L
  /// (builds only nodes with A at levels <= L).
  Status RunPartition(const Load& load, int level);

  /// Node-N construction: ExecutePlan with dimension 0 bounded below by
  /// L+1 (or skipped entirely when A was projected out of N).
  Status RunNodeN(const Load& load, int level);

 private:
  Status PrepareRun(const Load* load, std::vector<int> base_levels);
  uint32_t Key(uint32_t row, int d, int level) const;
  schema::NodeId CurrentNode();
  Status ExecutePlan(size_t begin, size_t end, int dim);
  Status FollowEdge(size_t begin, size_t end, int d);

  const schema::CubeSchema* schema_;
  const CureOptions* options_;
  cube::CubeStore* store_;
  cube::SignaturePool* pool_;
  BuildStats* stats_;
  schema::NodeIdCodec codec_;
  int num_dims_;
  int y_;

  // Per-run state.
  const Load* load_ = nullptr;
  std::vector<uint32_t> idx_;
  std::vector<int> levels_;
  std::vector<int> base_levels_;
  std::vector<bool> included_;
  std::vector<std::vector<std::vector<uint32_t>>> maps_;
  SortScratch scratch_;
  std::vector<int64_t> agg_buf_;
  std::vector<uint32_t> dr_dims_;
  std::vector<int> node_levels_buf_;

  // Batch path (batched_ = resolved batch_rows > 1): FollowEdge takes
  // segment boundaries straight from the batched counting sort instead of
  // re-evaluating Key() per row. One segment buffer per recursion depth —
  // an edge iterates its segments while deeper edges fill their own.
  bool batched_ = true;
  int edge_depth_ = 0;
  std::vector<std::vector<uint32_t>> segments_pool_;
};

}  // namespace engine
}  // namespace cure

#endif  // CURE_ENGINE_CONSTRUCT_H_
