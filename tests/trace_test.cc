#include "common/trace.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "engine/cure.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "query/node_query.h"
#include "schema/fact_table.h"
#include "storage/file_io.h"
#include "storage/relation.h"

namespace cure {
namespace {

// Every test owns the process-global tracer: start from a clean slate and
// leave it disabled for the next test.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Disable();
    Tracer::Instance().Reset();
  }
  void TearDown() override {
    Tracer::Instance().Disable();
    Tracer::Instance().Reset();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    CURE_TRACE_SPAN("cure.test.disabled");
    CURE_TRACE_SPAN("cure.test.disabled_args", "rows", 7);
    EXPECT_EQ(TraceDepth(), 0);  // Spans are unarmed while disabled.
    TraceCounter("cure.test.counter", 1);
    TraceInstant("cure.test.instant");
  }
  EXPECT_EQ(Tracer::Instance().recorded_events(), 0u);
  EXPECT_EQ(Tracer::Instance().dropped_events(), 0u);

  ChromeTraceSummary summary;
  ASSERT_TRUE(
      ValidateChromeTrace(Tracer::Instance().ExportChromeTraceJson(), &summary)
          .ok());
  EXPECT_EQ(summary.total_events, 0u);
}

TEST_F(TraceTest, NestedSpansTrackDepthAndExport) {
  Tracer::Instance().Enable();
  EXPECT_EQ(TraceDepth(), 0);
  {
    CURE_TRACE_SPAN("cure.test.outer", "level", 1);
    EXPECT_EQ(TraceDepth(), 1);
    {
      CURE_TRACE_SPAN("cure.test.inner", "level", 2);
      EXPECT_EQ(TraceDepth(), 2);
      {
        CURE_TRACE_SPAN("cure.test.leaf");
        EXPECT_EQ(TraceDepth(), 3);
      }
      EXPECT_EQ(TraceDepth(), 2);
    }
    EXPECT_EQ(TraceDepth(), 1);
  }
  EXPECT_EQ(TraceDepth(), 0);
  EXPECT_EQ(Tracer::Instance().recorded_events(), 3u);

  ChromeTraceSummary summary;
  const std::string json = Tracer::Instance().ExportChromeTraceJson();
  ASSERT_TRUE(ValidateChromeTrace(json, &summary).ok()) << json;
  EXPECT_EQ(summary.complete_events, 3u);
  EXPECT_EQ(summary.CompleteCount("cure.test.outer"), 1u);
  EXPECT_EQ(summary.CompleteCount("cure.test.inner"), 1u);
  EXPECT_EQ(summary.CompleteCount("cure.test.leaf"), 1u);
  EXPECT_EQ(summary.ArgValues("cure.test.outer", "level"),
            (std::vector<uint64_t>{1}));
  EXPECT_EQ(summary.ArgValues("cure.test.inner", "level"),
            (std::vector<uint64_t>{2}));
}

TEST_F(TraceTest, AddArgAttachesLateValues) {
  Tracer::Instance().Enable();
  // The tracer stores arg-name *pointers*; reusing the same pointer
  // overwrites the slot (literal merging is not guaranteed, so callers that
  // overwrite use one named constant — as here).
  static constexpr const char* kRows = "rows";
  {
    TraceSpan span("cure.test.late");
    span.AddArg(kRows, 5);
    span.AddArg(kRows, 9);  // Same pointer: overwrites in place.
    span.AddArg("bytes", 640);
  }
  ChromeTraceSummary summary;
  ASSERT_TRUE(
      ValidateChromeTrace(Tracer::Instance().ExportChromeTraceJson(), &summary)
          .ok());
  EXPECT_EQ(summary.ArgValues("cure.test.late", "rows"),
            (std::vector<uint64_t>{9}));
  EXPECT_EQ(summary.ArgValues("cure.test.late", "bytes"),
            (std::vector<uint64_t>{640}));
}

TEST_F(TraceTest, CounterAndInstantEvents) {
  Tracer::Instance().Enable();
  TraceCounter("cure.test.queue_depth", 3);
  TraceCounter("cure.test.queue_depth", 5);
  TraceInstant("cure.test.tick");
  TraceInstant("cure.test.tock", "seq", 11);

  ChromeTraceSummary summary;
  const std::string json = Tracer::Instance().ExportChromeTraceJson();
  ASSERT_TRUE(ValidateChromeTrace(json, &summary).ok()) << json;
  EXPECT_EQ(summary.counter_events, 2u);
  EXPECT_EQ(summary.instant_events, 2u);
  EXPECT_EQ(summary.ArgValues("cure.test.queue_depth", "value"),
            (std::vector<uint64_t>{3, 5}));
  EXPECT_EQ(summary.ArgValues("cure.test.tock", "seq"),
            (std::vector<uint64_t>{11}));
}

TEST_F(TraceTest, CrossThreadSpansLandInSeparateBuffers) {
  Tracer::Instance().Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        CURE_TRACE_SPAN("cure.test.worker", "iteration",
                        static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(Tracer::Instance().recorded_events(),
            static_cast<uint64_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(Tracer::Instance().dropped_events(), 0u);

  ChromeTraceSummary summary;
  const std::string json = Tracer::Instance().ExportChromeTraceJson();
  ASSERT_TRUE(ValidateChromeTrace(json, &summary).ok());
  EXPECT_EQ(summary.CompleteCount("cure.test.worker"),
            static_cast<size_t>(kThreads * kSpansPerThread));
  // Each recording thread got its own tid (assigned 1..kThreads in
  // registration order after the Reset in SetUp).
  EXPECT_NE(json.find("\"tid\":" + std::to_string(kThreads)),
            std::string::npos);
}

TEST_F(TraceTest, RingWrapKeepsNewestAndCountsDropped) {
  constexpr size_t kCapacity = 8;
  constexpr uint64_t kEvents = 20;
  Tracer::Instance().Enable(kCapacity);
  for (uint64_t i = 0; i < kEvents; ++i) {
    TraceCounter("cure.test.wrap", i);
  }
  EXPECT_EQ(Tracer::Instance().recorded_events(), kCapacity);
  EXPECT_EQ(Tracer::Instance().dropped_events(), kEvents - kCapacity);

  ChromeTraceSummary summary;
  const std::string json = Tracer::Instance().ExportChromeTraceJson();
  ASSERT_TRUE(ValidateChromeTrace(json, &summary).ok()) << json;
  EXPECT_EQ(summary.total_events, kCapacity);
  // Oldest events were overwritten: only the last kCapacity values remain.
  std::vector<uint64_t> expected;
  for (uint64_t i = kEvents - kCapacity; i < kEvents; ++i) {
    expected.push_back(i);
  }
  EXPECT_EQ(summary.ArgValues("cure.test.wrap", "value"), expected);
}

TEST_F(TraceTest, ResetDiscardsEverything) {
  Tracer::Instance().Enable();
  { CURE_TRACE_SPAN("cure.test.before_reset"); }
  ASSERT_EQ(Tracer::Instance().recorded_events(), 1u);
  Tracer::Instance().Reset();
  EXPECT_EQ(Tracer::Instance().recorded_events(), 0u);
  // Still enabled: the thread re-registers a fresh buffer on next record.
  { CURE_TRACE_SPAN("cure.test.after_reset"); }
  ChromeTraceSummary summary;
  ASSERT_TRUE(
      ValidateChromeTrace(Tracer::Instance().ExportChromeTraceJson(), &summary)
          .ok());
  EXPECT_FALSE(summary.Contains("cure.test.before_reset"));
  EXPECT_TRUE(summary.Contains("cure.test.after_reset"));
}

TEST_F(TraceTest, WriteChromeTraceRoundTripsThroughFile) {
  Tracer::Instance().Enable();
  {
    CURE_TRACE_SPAN("cure.test.file", "rows", 42);
  }
  const std::string path =
      "/tmp/cure_trace_test_" + std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(Tracer::Instance().WriteChromeTrace(path).ok());
  ChromeTraceSummary summary;
  ASSERT_TRUE(ValidateChromeTraceFile(path, &summary).ok());
  EXPECT_EQ(summary.CompleteCount("cure.test.file"), 1u);
  EXPECT_EQ(summary.ArgValues("cure.test.file", "rows"),
            (std::vector<uint64_t>{42}));
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

TEST_F(TraceTest, NextTraceIdIsUniqueAndNonZero) {
  uint64_t previous = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = Tracer::Instance().NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, previous);
    previous = id;
  }
}

// ---- Validator strictness ----

TEST(ChromeTraceValidatorTest, AcceptsHandWrittenTrace) {
  const std::string json =
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"dur\":2,"
      "\"pid\":1,\"tid\":1,\"args\":{\"rows\":3}}],"
      "\"displayTimeUnit\":\"ms\"}";
  ChromeTraceSummary summary;
  ASSERT_TRUE(ValidateChromeTrace(json, &summary).ok());
  EXPECT_EQ(summary.complete_events, 1u);
  EXPECT_EQ(summary.ArgValues("a", "rows"), (std::vector<uint64_t>{3}));
}

TEST(ChromeTraceValidatorTest, RejectsMalformedInput) {
  // Truncated JSON.
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\":[", nullptr).ok());
  // Trailing garbage after the top-level object.
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\":[]} x", nullptr).ok());
  // NaN is not JSON.
  EXPECT_FALSE(
      ValidateChromeTrace("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
                          "\"ts\":NaN,\"dur\":1,\"pid\":1,\"tid\":1}]}",
                          nullptr)
          .ok());
  // Missing traceEvents.
  EXPECT_FALSE(ValidateChromeTrace("{}", nullptr).ok());
  // Unknown phase.
  EXPECT_FALSE(
      ValidateChromeTrace("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"Z\","
                          "\"ts\":1,\"pid\":1,\"tid\":1}]}",
                          nullptr)
          .ok());
  // "X" event without dur.
  EXPECT_FALSE(
      ValidateChromeTrace("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
                          "\"ts\":1,\"pid\":1,\"tid\":1}]}",
                          nullptr)
          .ok());
  // Negative dur.
  EXPECT_FALSE(
      ValidateChromeTrace("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
                          "\"ts\":1,\"dur\":-1,\"pid\":1,\"tid\":1}]}",
                          nullptr)
          .ok());
  // Non-integer tid.
  EXPECT_FALSE(
      ValidateChromeTrace("{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\","
                          "\"ts\":1,\"dur\":1,\"pid\":1,\"tid\":1.5}]}",
                          nullptr)
          .ok());
  // Empty name.
  EXPECT_FALSE(
      ValidateChromeTrace("{\"traceEvents\":[{\"name\":\"\",\"ph\":\"X\","
                          "\"ts\":1,\"dur\":1,\"pid\":1,\"tid\":1}]}",
                          nullptr)
          .ok());
  // Unescaped control character inside a string.
  EXPECT_FALSE(
      ValidateChromeTrace("{\"traceEvents\":[{\"name\":\"a\nb\",\"ph\":\"i\","
                          "\"ts\":1,\"pid\":1,\"tid\":1}]}",
                          nullptr)
          .ok());
}

// ---- End-to-end: a traced external build covers every stage and every
// partition (the ISSUE acceptance bar for `cure_tool build --trace-out`). ----

TEST(TraceBuildSmokeTest, ExternalBuildEmitsAllStagesAndPartitions) {
  Tracer::Instance().Disable();
  Tracer::Instance().Reset();

  // Hierarchical Zipf dataset sized so the external path produces several
  // partitions (same shape as parallel_build_test).
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {48, 4, 2}));
  dims.push_back(schema::Dimension::Linear("B", {10, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  Result<schema::CubeSchema> schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  ASSERT_TRUE(schema.ok());
  schema::FactTable table(3, 1);
  gen::Rng rng(4242);
  gen::ZipfSampler zipf_a(48, 0.5);
  gen::ZipfSampler zipf_b(10, 0.3);
  for (uint64_t t = 0; t < 4000; ++t) {
    const uint32_t row[3] = {zipf_a.Sample(&rng), zipf_b.Sample(&rng),
                             static_cast<uint32_t>(rng.NextRange(5))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(40));
    table.AppendRow(row, &m);
  }

  // External construction reads the fact table in relation form.
  storage::Relation rel = storage::Relation::Memory(table.RecordSize());
  ASSERT_TRUE(table.WriteTo(&rel).ok());
  const uint64_t write_bytes_before =
      GlobalMetrics().counter("cure_storage_write_bytes_total")->value();

  engine::CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 24576;
  options.signature_pool_capacity = 256;
  options.trace = true;  // CureOptions toggle enables the global tracer.
  engine::FactInput input{.relation = &rel};
  Result<std::unique_ptr<engine::CureCube>> cube =
      engine::BuildCure(*schema, input, options);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ASSERT_TRUE((*cube)->stats().external);
  const uint64_t num_partitions = (*cube)->stats().num_partitions;
  ASSERT_GT(num_partitions, 1u);
  Tracer::Instance().Disable();

  ChromeTraceSummary summary;
  const std::string json = Tracer::Instance().ExportChromeTraceJson();
  ASSERT_TRUE(ValidateChromeTrace(json, &summary).ok());
  for (const char* stage :
       {"cure.build.run", "cure.build.load", "cure.build.partition",
        "cure.build.construct", "cure.build.merge", "cure.build.persist"}) {
    EXPECT_TRUE(summary.Contains(stage)) << stage;
    EXPECT_EQ(summary.CompleteCount(stage), 1u) << stage;
  }
  // One construction span per partition, carrying its index.
  EXPECT_EQ(summary.CompleteCount("cure.build.partition_construct"),
            static_cast<size_t>(num_partitions));
  const std::vector<uint64_t> indices =
      summary.ArgValues("cure.build.partition_construct", "partition");
  ASSERT_EQ(indices.size(), static_cast<size_t>(num_partitions));
  for (uint64_t p = 0; p < num_partitions; ++p) EXPECT_EQ(indices[p], p);
  // Per-node construction spans exist too.
  EXPECT_TRUE(summary.Contains("cure.build.edge"));
  // Storage instrumentation rode along: spilling partitions to temp files
  // moved the file-layer byte counters in the shared metrics registry.
  EXPECT_GT(GlobalMetrics().counter("cure_storage_write_bytes_total")->value(),
            write_bytes_before);

  Tracer::Instance().Reset();
}

}  // namespace
}  // namespace cure
