// Fault-sweep torture tests: enumerate every I/O operation in a
// build→persist→open workload (and the WAL append/refresh path), then
// re-run the workload once per operation with that operation failing.
// Every run must either fail cleanly — correct status code, no partial
// cube published at the target path, scratch directory removed — or
// succeed with a byte-identical cube. Serial (num_threads = 1) so the op
// ordering, and therefore the sweep, is deterministic.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cube/cube_store.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "maintain/live_cube.h"
#include "storage/fault_injection.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using cube::CubeStore;
using engine::BuildCure;
using engine::CureCube;
using engine::CureOptions;
using engine::FactInput;
using maintain::LiveCube;
using maintain::MaintainOptions;
using maintain::RowBatch;
using storage::FaultInjector;
using storage::FaultPlan;
using storage::ScopedFaultInjection;

std::string SweepDir(const char* tag) {
  return "/tmp/cure_fault_sweep_" + std::to_string(::getpid()) + "_" + tag;
}

gen::Dataset MakeDataset(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {20, 4, 2}));
  dims.push_back(schema::Dimension::Linear("B", {8, 2}));
  dims.push_back(schema::Dimension::Flat("C", 4));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(20)),
                             static_cast<uint32_t>(rng.NextRange(8)),
                             static_cast<uint32_t>(rng.NextRange(4))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(30));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The swept workload: external serial build into `temp_dir` scratch,
// persist packed to `out_path`, reopen + verify. Everything it touches
// lives under /tmp/cure_fault_sweep_*, so the sweep's path_substr scopes
// faults away from unrelated test I/O.
Status BuildPersistOpen(const gen::Dataset& ds, const storage::Relation& rel,
                        const std::string& temp_dir,
                        const std::string& out_path) {
  CureOptions options;
  options.force_external = true;
  options.memory_budget_bytes = 16384;
  options.signature_pool_capacity = 256;
  options.num_threads = 1;
  options.temp_dir = temp_dir;
  FactInput input{.relation = &rel};
  CURE_ASSIGN_OR_RETURN(std::unique_ptr<CureCube> cube,
                        BuildCure(ds.schema, input, options));
  CURE_RETURN_IF_ERROR(cube->store().PersistPacked(out_path));
  CURE_ASSIGN_OR_RETURN(CubeStore reopened,
                        CubeStore::OpenPacked(out_path, &ds.schema));
  return Status::OK();
}

// Clean-failure invariants shared by every sweep iteration: the scratch
// base holds no leftover build directories, and the published path either
// does not exist or contains a complete, verifiable cube (the atomic
// rename guarantee — a reader never sees a torn file).
void ExpectCleanOutcome(const Status& status, const std::string& temp_dir,
                        const std::string& out_path,
                        const std::string& reference, uint64_t index) {
  std::error_code ec;
  EXPECT_TRUE(std::filesystem::is_empty(temp_dir, ec))
      << "scratch leak at op " << index;
  const bool exists = std::filesystem::exists(out_path, ec);
  if (status.ok()) {
    ASSERT_TRUE(exists) << "op " << index;
    EXPECT_EQ(ReadBytes(out_path), reference)
        << "published cube differs at op " << index;
  } else if (exists) {
    // A failure after the rename is allowed; the published file must then
    // be the complete image, never a torn one.
    EXPECT_EQ(ReadBytes(out_path), reference)
        << "torn cube published at op " << index << ": "
        << status.ToString();
  }
  (void)storage::RemoveFile(out_path);
}

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = SweepDir("scratch");
    ASSERT_TRUE(storage::EnsureDir(temp_dir_).ok());
    ds_ = MakeDataset(500, 4711);
    rel_ = storage::Relation::Memory(ds_.table.RecordSize());
    ASSERT_TRUE(ds_.table.WriteTo(&rel_).ok());
    reference_path_ = SweepDir("ref") + ".bin";
    const Status ref_status = BuildPersistOpen(ds_, rel_, temp_dir_, reference_path_);
    ASSERT_TRUE(ref_status.ok()) << ref_status.ToString();
    reference_ = ReadBytes(reference_path_);
    ASSERT_FALSE(reference_.empty());

    // Enumerate the workload's I/O points (counting mode never fires).
    FaultPlan counter;
    counter.path_substr = "cure_fault_sweep_";
    counter.fail_index = UINT64_MAX;
    {
      ScopedFaultInjection count(counter);
      const std::string path = SweepDir("count") + ".bin";
      ASSERT_TRUE(BuildPersistOpen(ds_, rel_, temp_dir_, path).ok());
      num_ops_ = count.ops_matched();
      ASSERT_TRUE(storage::RemoveFile(path).ok());
    }
    ASSERT_GT(num_ops_, 20u) << "workload shrank; the sweep lost coverage";
  }

  void TearDown() override {
    (void)storage::RemoveFile(reference_path_);
    std::error_code ec;
    std::filesystem::remove_all(temp_dir_, ec);
  }

  // Sweeps a sticky `error` across every I/O index of the workload.
  void SweepErrno(int error, const char* tag) {
    const std::string out_path = SweepDir(tag) + ".bin";
    uint64_t failures = 0;
    for (uint64_t i = 0; i < num_ops_; ++i) {
      FaultPlan plan;
      plan.path_substr = "cure_fault_sweep_";
      plan.fail_index = i;
      plan.error = error;
      Status status;
      {
        ScopedFaultInjection fault(plan);
        status = BuildPersistOpen(ds_, rel_, temp_dir_, out_path);
      }
      if (!status.ok()) {
        ++failures;
        EXPECT_TRUE(status.code() == StatusCode::kIoError ||
                    status.code() == StatusCode::kDataLoss)
            << "op " << i << ": " << status.ToString();
      }
      ExpectCleanOutcome(status, temp_dir_, out_path, reference_, i);
    }
    // A sticky fault at index 0 kills the very first open: the sweep must
    // actually have been failing runs, not sliding past them.
    EXPECT_GT(failures, num_ops_ / 2) << "sweep failed to inject";
  }

  gen::Dataset ds_;
  storage::Relation rel_;
  std::string temp_dir_;
  std::string reference_path_;
  std::string reference_;
  uint64_t num_ops_ = 0;
};

TEST_F(FaultSweepTest, StickyEioAtEveryOpFailsCleanOrByteIdentical) {
  SweepErrno(EIO, "eio");
}

TEST_F(FaultSweepTest, StickyEnospcAtEveryOpFailsCleanOrByteIdentical) {
  SweepErrno(ENOSPC, "enospc");
}

TEST_F(FaultSweepTest, ShortWritesAtEveryIndexStayByteIdentical) {
  // Count the write ops, then shorten every write from index i on: short
  // writes are not errors, so every run must succeed byte-identically.
  FaultPlan counter;
  counter.op = "write";
  counter.path_substr = "cure_fault_sweep_";
  counter.fail_index = UINT64_MAX;
  uint64_t num_writes = 0;
  {
    ScopedFaultInjection count(counter);
    const std::string path = SweepDir("wcount") + ".bin";
    ASSERT_TRUE(BuildPersistOpen(ds_, rel_, temp_dir_, path).ok());
    num_writes = count.ops_matched();
    ASSERT_TRUE(storage::RemoveFile(path).ok());
  }
  // The writers buffer 64 KB, so a small cube needs only a handful of
  // write() calls; the sweep still covers every one of them.
  ASSERT_GE(num_writes, 2u);
  const std::string out_path = SweepDir("short") + ".bin";
  for (uint64_t i = 0; i < num_writes; ++i) {
    FaultPlan plan;
    plan.op = "write";
    plan.path_substr = "cure_fault_sweep_";
    plan.fail_index = i;
    plan.short_fraction = 0.3;
    Status status;
    {
      ScopedFaultInjection fault(plan);
      status = BuildPersistOpen(ds_, rel_, temp_dir_, out_path);
    }
    ASSERT_TRUE(status.ok()) << "op " << i << ": " << status.ToString();
    EXPECT_EQ(ReadBytes(out_path), reference_) << "op " << i;
    ASSERT_TRUE(storage::RemoveFile(out_path).ok());
  }
}

TEST_F(FaultSweepTest, TransientFaultAtEveryOpRecoversOnRetry) {
  // `once` faults model a transient hiccup: the run fails (or survives, if
  // the op's caller retries), and the very next run must always succeed.
  const std::string out_path = SweepDir("transient") + ".bin";
  for (uint64_t i = 0; i < num_ops_; i += 7) {
    FaultPlan plan;
    plan.path_substr = "cure_fault_sweep_";
    plan.fail_index = i;
    plan.error = EIO;
    plan.once = true;
    {
      ScopedFaultInjection fault(plan);
      const Status status = BuildPersistOpen(ds_, rel_, temp_dir_, out_path);
      ExpectCleanOutcome(status, temp_dir_, out_path, reference_, i);
    }
    const Status retry = BuildPersistOpen(ds_, rel_, temp_dir_, out_path);
    ASSERT_TRUE(retry.ok()) << "op " << i << ": " << retry.ToString();
    EXPECT_EQ(ReadBytes(out_path), reference_) << "op " << i;
    ASSERT_TRUE(storage::RemoveFile(out_path).ok());
  }
}

// ------------------------------------------------------ WAL / refresh sweep

constexpr int kDims = 3;
constexpr int kMeasures = 1;

RowBatch MakeBatch(uint64_t count, uint64_t seed) {
  RowBatch batch(kDims, kMeasures);
  gen::Rng rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t row[kDims] = {static_cast<uint32_t>(rng.NextRange(20)),
                                 static_cast<uint32_t>(rng.NextRange(8)),
                                 static_cast<uint32_t>(rng.NextRange(4))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(30));
    batch.Add(row, &m);
  }
  return batch;
}

// Open → Append×2 → Flush against a WAL under the sweep prefix. Appends
// that fail must not corrupt the log; a failed Flush must leave the
// published snapshot serving.
TEST(FaultSweepWalTest, StickyEioAtEveryWalOpFailsCleanly) {
  gen::Dataset ds = MakeDataset(300, 4712);
  const std::string wal_path = SweepDir("wal") + ".wal";

  MaintainOptions options;
  options.wal_path = wal_path;
  options.refresh_rows = ~0ull;
  options.refresh_bytes = ~0ull;
  options.io_retry_attempts = 1;  // the sweep wants raw failures

  auto workload = [&]() -> Status {
    schema::FactTable base = ds.table;  // copy; LiveCube consumes it
    CURE_ASSIGN_OR_RETURN(std::unique_ptr<LiveCube> live,
                          LiveCube::Open(ds.schema, std::move(base), options));
    CURE_RETURN_IF_ERROR(live->Append(MakeBatch(40, 1)));
    CURE_RETURN_IF_ERROR(live->Append(MakeBatch(40, 2)));
    CURE_ASSIGN_OR_RETURN(maintain::RefreshStats stats, live->Flush());
    if (!stats.refreshed) return Status::Internal("refresh did not publish");
    // The published snapshot answers after the refresh.
    const auto snapshot = live->snapshot();
    query::ResultSink sink;
    CURE_RETURN_IF_ERROR(snapshot->engine->QueryNode(0, &sink));
    return Status::OK();
  };

  // Enumerate, then sweep.
  uint64_t num_ops = 0;
  {
    FaultPlan counter;
    counter.path_substr = "cure_fault_sweep_";
    counter.fail_index = UINT64_MAX;
    ScopedFaultInjection count(counter);
    (void)storage::RemoveFile(wal_path);
    ASSERT_TRUE(workload().ok());
    num_ops = count.ops_matched();
  }
  ASSERT_GT(num_ops, 4u);

  uint64_t failures = 0;
  for (uint64_t i = 0; i < num_ops; ++i) {
    FaultPlan plan;
    plan.path_substr = "cure_fault_sweep_";
    plan.fail_index = i;
    plan.error = EIO;
    (void)storage::RemoveFile(wal_path);
    Status status;
    {
      ScopedFaultInjection fault(plan);
      status = workload();
    }
    if (!status.ok()) {
      ++failures;
      EXPECT_EQ(status.code(), StatusCode::kIoError)
          << "op " << i << ": " << status.ToString();
      // After a mid-run fault the WAL must still be recoverable: a clean
      // reopen replays the committed prefix and can take new appends.
      schema::FactTable base = ds.table;
      auto live = LiveCube::Open(ds.schema, std::move(base), options);
      ASSERT_TRUE(live.ok()) << "op " << i << ": " << live.status().ToString();
      EXPECT_TRUE((*live)->Append(MakeBatch(10, 3)).ok()) << "op " << i;
    }
  }
  EXPECT_GT(failures, 0u) << "sweep failed to inject";
  (void)storage::RemoveFile(wal_path);
}

// ----------------------------------------------------- refresh retry policy

TEST(RefreshRetryTest, TransientIoErrorIsRetriedAndSucceeds) {
  gen::Dataset ds = MakeDataset(300, 4713);
  MaintainOptions options;
  options.wal_path = SweepDir("retry_ok") + ".wal";
  (void)storage::RemoveFile(options.wal_path);
  options.refresh_rows = ~0ull;
  options.refresh_bytes = ~0ull;
  options.io_retry_attempts = 3;
  options.io_retry_backoff_ms = 1;

  schema::FactTable base = ds.table;
  auto live = LiveCube::Open(ds.schema, std::move(base), options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  int calls = 0;
  (*live)->set_refresh_hook([&calls]() -> Status {
    return ++calls <= 2 ? Status::IoError("transient disk hiccup")
                        : Status::OK();
  });
  ASSERT_TRUE((*live)->Append(MakeBatch(30, 5)).ok());
  auto stats = (*live)->Flush();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->refreshed);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ((*live)->counters().refresh_failed, 2u);
  EXPECT_EQ((*live)->snapshot()->version, 2u);
  ASSERT_TRUE(storage::RemoveFile(options.wal_path).ok());
}

TEST(RefreshRetryTest, PersistentIoErrorLeavesSnapshotUntouched) {
  gen::Dataset ds = MakeDataset(300, 4714);
  MaintainOptions options;
  options.wal_path = SweepDir("retry_fail") + ".wal";
  (void)storage::RemoveFile(options.wal_path);
  options.refresh_rows = ~0ull;
  options.refresh_bytes = ~0ull;
  options.io_retry_attempts = 3;
  options.io_retry_backoff_ms = 1;

  schema::FactTable base = ds.table;
  auto live = LiveCube::Open(ds.schema, std::move(base), options);
  ASSERT_TRUE(live.ok());
  int calls = 0;
  (*live)->set_refresh_hook([&calls]() -> Status {
    ++calls;
    return Status::IoError("disk is gone");
  });
  ASSERT_TRUE((*live)->Append(MakeBatch(30, 6)).ok());
  auto stats = (*live)->Flush();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);  // attempts exhausted
  EXPECT_EQ((*live)->counters().refresh_failed, 3u);

  // Degradation, not an outage: the published snapshot still serves, and
  // once the fault clears the same pending rows flush successfully.
  const auto snapshot = (*live)->snapshot();
  EXPECT_EQ(snapshot->version, 1u);
  query::ResultSink sink;
  EXPECT_TRUE(snapshot->engine->QueryNode(0, &sink).ok());
  (*live)->set_refresh_hook(nullptr);
  auto retry = (*live)->Flush();
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(retry->refreshed);
  EXPECT_EQ((*live)->snapshot()->version, 2u);
  ASSERT_TRUE(storage::RemoveFile(options.wal_path).ok());
}

TEST(RefreshRetryTest, NonIoErrorsNeverRetry) {
  gen::Dataset ds = MakeDataset(300, 4715);
  MaintainOptions options;
  options.wal_path = SweepDir("retry_nonio") + ".wal";
  (void)storage::RemoveFile(options.wal_path);
  options.refresh_rows = ~0ull;
  options.refresh_bytes = ~0ull;
  options.io_retry_attempts = 5;
  options.io_retry_backoff_ms = 1;

  schema::FactTable base = ds.table;
  auto live = LiveCube::Open(ds.schema, std::move(base), options);
  ASSERT_TRUE(live.ok());
  int calls = 0;
  (*live)->set_refresh_hook([&calls]() -> Status {
    ++calls;
    return Status::Internal("logic bug, not a disk fault");
  });
  ASSERT_TRUE((*live)->Append(MakeBatch(30, 7)).ok());
  auto stats = (*live)->Flush();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);  // no retry for non-I/O failures
  ASSERT_TRUE(storage::RemoveFile(options.wal_path).ok());
}

}  // namespace
}  // namespace cure
