#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/histogram.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"
#include "serve/cube_server.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/query_cache.h"
#include "serve/tcp_server.h"
#include "storage/fault_injection.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::CureQueryEngine;
using query::ResultSink;
using schema::NodeId;
using serve::CubeServer;
using serve::CubeServerOptions;
using serve::QueryCache;
using serve::QueryKey;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::QueryResult;
using serve::TcpLineServer;
using serve::TcpServerOptions;

gen::Dataset MakeHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {24, 6, 2}));
  dims.push_back(schema::Dimension::Linear("B", {9, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(24)),
                             static_cast<uint32_t>(rng.NextRange(9)),
                             static_cast<uint32_t>(rng.NextRange(5))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

// ---------------------------------------------------------------- histogram

TEST(LogHistogramTest, SmallValuesAreExact) {
  LogHistogram h;
  for (int64_t v = 0; v < 16; ++v) h.Record(v);
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 16u);
  EXPECT_EQ(snap.sum, 120);
  EXPECT_EQ(snap.max, 15);
  for (int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(snap.buckets[LogHistogram::BucketIndex(v)], 1u);
    EXPECT_EQ(LogHistogram::BucketLowerBound(LogHistogram::BucketIndex(v)), v);
  }
}

TEST(LogHistogramTest, BucketBoundsAreMonotone) {
  int64_t prev = -1;
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    const int64_t lower = LogHistogram::BucketLowerBound(i);
    EXPECT_GT(lower, prev);
    EXPECT_EQ(LogHistogram::BucketIndex(lower), i);
    prev = lower;
  }
}

TEST(LogHistogramTest, PercentilesWithinRelativeError) {
  LogHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.max, 1000);
  EXPECT_NEAR(static_cast<double>(snap.p50), 500.0, 500.0 / 16);
  EXPECT_NEAR(static_cast<double>(snap.p95), 950.0, 950.0 / 16);
  EXPECT_NEAR(static_cast<double>(snap.p99), 990.0, 990.0 / 16);
  EXPECT_DOUBLE_EQ(snap.avg, 500.5);
}

TEST(LogHistogramTest, NegativeValuesClampToZero) {
  LogHistogram h;
  h.Record(-5);
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.buckets[0], 1u);
}

TEST(LogHistogramTest, MergeCombinesBucketsCountSumAndMax) {
  // A merged histogram must equal one that recorded every observation
  // directly — the property the router relies on when it folds per-backend
  // latency histograms into a cluster-level distribution.
  LogHistogram a, b, reference;
  for (int64_t v = 1; v <= 700; ++v) {
    a.Record(v);
    reference.Record(v);
  }
  for (int64_t v = 701; v <= 1000; ++v) {
    b.Record(v);
    reference.Record(v);
  }
  a.Merge(b);
  const LogHistogram::Snapshot merged = a.TakeSnapshot();
  const LogHistogram::Snapshot expected = reference.TakeSnapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_EQ(merged.p50, expected.p50);
  EXPECT_EQ(merged.p95, expected.p95);
  EXPECT_EQ(merged.p99, expected.p99);

  // Merging an empty histogram is a no-op; merging into an empty one copies.
  LogHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.TakeSnapshot().count, expected.count);
  LogHistogram fresh;
  fresh.Merge(a);
  EXPECT_EQ(fresh.TakeSnapshot().buckets, expected.buckets);
  EXPECT_EQ(fresh.TakeSnapshot().max, expected.max);
}

TEST(LogHistogramTest, PercentileOfEmptySnapshotIsZero) {
  const LogHistogram::Snapshot snap = LogHistogram().TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(0.0), 0);
  EXPECT_EQ(snap.Percentile(0.5), 0);
  EXPECT_EQ(snap.Percentile(1.0), 0);
  EXPECT_EQ(snap.p50, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_DOUBLE_EQ(snap.avg, 0.0);
}

TEST(LogHistogramTest, SingleBucketPercentilesAllLandOnIt) {
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(7);
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(snap.Percentile(q), 7) << "q=" << q;
  }
  EXPECT_EQ(snap.max, 7);
  EXPECT_DOUBLE_EQ(snap.avg, 7.0);
}

TEST(LogHistogramTest, PercentileClampsOutOfRangeQuantiles) {
  LogHistogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  const LogHistogram::Snapshot snap = h.TakeSnapshot();
  // Quantiles outside [0, 1] clamp to p0/p100 instead of misbehaving.
  EXPECT_EQ(snap.Percentile(-3.0), snap.Percentile(0.0));
  EXPECT_EQ(snap.Percentile(17.0), snap.Percentile(1.0));
  // p0 is the smallest observation's bucket; p100 lands in the bucket of
  // the maximum (its lower bound, so ≤ max within one sub-bucket).
  EXPECT_EQ(snap.Percentile(0.0), 1);
  const int64_t p100 = snap.Percentile(1.0);
  EXPECT_LE(p100, snap.max);
  EXPECT_EQ(LogHistogram::BucketIndex(p100),
            LogHistogram::BucketIndex(snap.max));
}

TEST(LogHistogramTest, SnapshotMergeMatchesLiveMerge) {
  // The federation path reconstructs a backend histogram from its wire
  // buckets and folds the snapshot in; that must be bucket-identical to
  // merging the live histogram.
  LogHistogram via_live, via_snapshot, b;
  for (int64_t v = 1; v <= 500; ++v) {
    via_live.Record(v * 3);
    via_snapshot.Record(v * 3);
  }
  for (int64_t v = 1; v <= 400; ++v) b.Record(v * 7);
  via_live.Merge(b);
  via_snapshot.Merge(b.TakeSnapshot());
  const LogHistogram::Snapshot live = via_live.TakeSnapshot();
  const LogHistogram::Snapshot snap = via_snapshot.TakeSnapshot();
  EXPECT_EQ(live.buckets, snap.buckets);
  EXPECT_EQ(live.count, snap.count);
  EXPECT_EQ(live.sum, snap.sum);
  EXPECT_EQ(live.max, snap.max);
  EXPECT_EQ(live.p50, snap.p50);
  EXPECT_EQ(live.p99, snap.p99);
  // Percentiles after the merge reflect the combined distribution: the
  // maximum came from b (400 * 7), beyond either input's own median.
  EXPECT_EQ(snap.max, 2800);
  EXPECT_EQ(LogHistogram::BucketIndex(snap.Percentile(1.0)),
            LogHistogram::BucketIndex(2800));

  // Merging an empty snapshot is a no-op.
  via_snapshot.Merge(LogHistogram().TakeSnapshot());
  const LogHistogram::Snapshot after = via_snapshot.TakeSnapshot();
  EXPECT_EQ(after.buckets, snap.buckets);
  EXPECT_EQ(after.count, snap.count);
  EXPECT_EQ(after.sum, snap.sum);
}

TEST(LogHistogramTest, ConcurrentRecordsAllLand) {
  LogHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(i % 512);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------------ metrics

TEST(MetricsRegistryTest, CountersAndHistogramsAreStable) {
  serve::MetricsRegistry registry;
  serve::Counter* a = registry.counter("a");
  a->Inc();
  a->Add(4);
  EXPECT_EQ(registry.counter("a"), a);  // Same instance on re-lookup.
  EXPECT_EQ(a->value(), 5u);
  LogHistogram* h = registry.histogram("lat");
  h->Record(100);
  EXPECT_EQ(registry.histogram("lat"), h);

  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("a 5\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_count 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_p50_us"), std::string::npos) << text;
}

// -------------------------------------------------------------- query cache

QueryKey Key(NodeId node, int64_t min_count = 0) {
  QueryKey key;
  key.node = node;
  key.min_count = min_count;
  if (min_count > 1) key.count_aggregate = 1;
  key.Canonicalize();
  return key;
}

std::shared_ptr<const QueryResult> MakeResult(uint64_t count, size_t rows) {
  auto result = std::make_shared<QueryResult>();
  result->count = count;
  result->checksum = count * 0x9E3779B97F4A7C15ull;
  result->rows.resize(rows);
  for (auto& row : result->rows) {
    row.dims.assign(4, 7);
    row.aggrs.assign(2, 42);
  }
  return result;
}

TEST(QueryCacheTest, KeyCanonicalization) {
  QueryKey a, b;
  a.node = b.node = 9;
  a.slices = {{0, 1, 2}, {2, 0, 3}};
  b.slices = {{2, 0, 3}, {0, 1, 2}};  // Same predicates, different order.
  a.Canonicalize();
  b.Canonicalize();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  // Non-iceberg thresholds collapse: min_count 0 and 1 are the same query.
  QueryKey c = Key(9, 0), d = Key(9, 1);
  EXPECT_TRUE(c == d);
  QueryKey e = Key(9, 5);
  EXPECT_FALSE(c == e);
}

TEST(QueryCacheTest, HitMissAndLru) {
  QueryCache cache(/*capacity_bytes=*/1 << 20, /*num_shards=*/1);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(1), MakeResult(10, 4));
  std::shared_ptr<const QueryResult> hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->count, 10u);
  const QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  const uint64_t entry_bytes = MakeResult(1, 8)->ByteSize();
  // Budget for ~3 entries in one shard.
  QueryCache cache(3 * entry_bytes + entry_bytes / 2, 1);
  cache.Insert(Key(1), MakeResult(1, 8));
  cache.Insert(Key(2), MakeResult(2, 8));
  cache.Insert(Key(3), MakeResult(3, 8));
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);  // Promote 1; LRU is now 2.
  cache.Insert(Key(4), MakeResult(4, 8));    // Evicts 2.
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_NE(cache.Lookup(Key(3)), nullptr);
  EXPECT_NE(cache.Lookup(Key(4)), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, cache.capacity_bytes());
}

TEST(QueryCacheTest, OversizedEntriesAreNotCached) {
  QueryCache cache(/*capacity_bytes=*/256, 1);
  cache.Insert(Key(1), MakeResult(1, 1000));  // Far larger than the budget.
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryCacheTest, ZeroCapacityDisablesCache) {
  QueryCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(Key(1), MakeResult(1, 1));
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryCacheTest, ReplacingAnEntryUpdatesBytes) {
  QueryCache cache(1 << 20, 1);
  cache.Insert(Key(1), MakeResult(1, 4));
  const uint64_t bytes_small = cache.stats().bytes;
  cache.Insert(Key(1), MakeResult(2, 64));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GT(cache.stats().bytes, bytes_small);
  std::shared_ptr<const QueryResult> hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->count, 2u);
}

// -------------------------------------------------------------- cube server

struct ServerFixture {
  gen::Dataset ds;
  std::unique_ptr<engine::CureCube> cube;

  explicit ServerFixture(uint64_t tuples = 800, uint64_t seed = 21) {
    ds = MakeHier(tuples, seed);
    CureOptions options;
    FactInput input{.table = &ds.table};
    auto built = BuildCure(ds.schema, input, options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    cube = std::move(built).value();
  }

  std::unique_ptr<CubeServer> MakeServer(CubeServerOptions options = {}) {
    auto server = CubeServer::Create(cube.get(), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }
};

TEST(CubeServerTest, MatchesDirectEngineAcrossNodes) {
  ServerFixture fx;
  CubeServerOptions options;
  options.num_threads = 4;
  options.cache_bytes = 1 << 20;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);

  auto direct = CureQueryEngine::Create(fx.cube.get(), 1.0);
  ASSERT_TRUE(direct.ok());
  const schema::NodeIdCodec& codec = server->codec();
  for (NodeId node = 0; node < codec.num_nodes(); ++node) {
    ResultSink expected;
    ASSERT_TRUE((*direct)->QueryNode(node, &expected).ok());
    QueryRequest request;
    request.node = node;
    QueryResponse response = server->Submit(request).get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.count, expected.count()) << "node " << node;
    EXPECT_EQ(response.checksum, expected.checksum()) << "node " << node;
  }
}

TEST(CubeServerTest, CacheHitsServeIdenticalResults) {
  ServerFixture fx;
  CubeServerOptions options;
  options.cache_bytes = 4 << 20;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);

  QueryRequest request;
  request.node = server->codec().Encode({0, 0, 1});
  request.retain_rows = true;
  QueryResponse miss = server->Submit(request).get();
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.cache_hit);
  QueryResponse hit = server->Submit(request).get();
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.count, miss.count);
  EXPECT_EQ(hit.checksum, miss.checksum);
  ASSERT_NE(hit.result, nullptr);
  ASSERT_NE(miss.result, nullptr);
  EXPECT_TRUE(query::SameResults(
      std::vector<ResultSink::Row>(miss.result->rows),
      std::vector<ResultSink::Row>(hit.result->rows)));
  EXPECT_EQ(server->cache()->stats().hits, 1u);
}

TEST(CubeServerTest, IcebergLocatesCountAggregateAutomatically) {
  ServerFixture fx;
  std::unique_ptr<CubeServer> server = fx.MakeServer();
  QueryRequest request;
  request.node = server->codec().Encode({1, 0, 0});
  request.min_count = 3;  // count_aggregate left at -1.
  QueryResponse response = server->Submit(request).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();

  auto direct = CureQueryEngine::Create(fx.cube.get(), 1.0);
  ASSERT_TRUE(direct.ok());
  ResultSink expected;
  ASSERT_TRUE(
      (*direct)->QueryNodeCountIceberg(request.node, 1, 3, &expected).ok());
  EXPECT_EQ(response.count, expected.count());
  EXPECT_EQ(response.checksum, expected.checksum());
}

TEST(CubeServerTest, AdmissionControlRejectsOverflowAndRecovers) {
  ServerFixture fx(300, 22);
  CubeServerOptions options;
  options.num_threads = 1;
  options.max_inflight = 2;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);

  // Hold the single worker so submitted queries stay in flight.
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  server->set_worker_hook([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_open; });
  });

  QueryRequest request;
  request.node = server->codec().Encode({0, 0, 0});
  std::future<QueryResponse> a = server->Submit(request);  // Running (held).
  std::future<QueryResponse> b = server->Submit(request);  // Queued.
  EXPECT_EQ(server->in_flight(), 2);
  std::future<QueryResponse> c = server->Submit(request);  // Over capacity.
  QueryResponse rejected = c.get();  // Fails fast, no worker involved.
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server->metrics()->counter("rejected_total")->value(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  EXPECT_TRUE(a.get().status.ok());
  EXPECT_TRUE(b.get().status.ok());

  // The server is healthy after rejecting: capacity freed, queries succeed.
  QueryResponse after = server->Submit(request).get();
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(server->in_flight(), 0);
}

TEST(CubeServerTest, QueuedQueryPastDeadlineFails) {
  ServerFixture fx(300, 23);
  CubeServerOptions options;
  options.num_threads = 1;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);

  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  server->set_worker_hook([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_open; });
  });

  QueryRequest blocker;
  blocker.node = server->codec().Encode({0, 0, 0});
  std::future<QueryResponse> held = server->Submit(blocker);

  QueryRequest victim = blocker;
  victim.deadline_seconds = 0.02;
  std::future<QueryResponse> late = server->Submit(victim);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  EXPECT_TRUE(held.get().status.ok());
  QueryResponse response = late.get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server->metrics()->counter("deadline_exceeded_total")->value(), 1u);
}

TEST(CubeServerTest, StatsTextReportsAllSections) {
  ServerFixture fx(300, 24);
  CubeServerOptions options;
  options.cache_bytes = 1 << 20;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);
  QueryRequest request;
  request.node = server->codec().Encode({1, 1, 1});
  ASSERT_TRUE(server->Submit(request).get().status.ok());
  ASSERT_TRUE(server->Submit(request).get().status.ok());  // Cache hit.

  const std::string stats = server->StatsText();
  EXPECT_NE(stats.find("queries_total 2\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("rejected_total 0\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("cache_hits 1\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("cache_misses 1\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("query_latency_count 2\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("query_latency_p50_us"), std::string::npos) << stats;
  EXPECT_NE(stats.find("query_latency_p95_us"), std::string::npos) << stats;
  EXPECT_NE(stats.find("query_latency_p99_us"), std::string::npos) << stats;
  EXPECT_NE(stats.find("in_flight 0\n"), std::string::npos) << stats;
}

TEST(CubeServerTest, InvalidRequestsAreErrorsNotCrashes) {
  ServerFixture fx(200, 25);
  std::unique_ptr<CubeServer> server = fx.MakeServer();
  // Slicing an ungrouped dimension is rejected by the engine.
  QueryRequest bad;
  bad.node = server->codec().Encode({server->codec().all_level(0), 0, 0});
  bad.slices = {{0, 0, 1}};
  QueryResponse response = server->Submit(bad).get();
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(server->metrics()->counter("queries_errors")->value(), 1u);
}

TEST(CubeServerTest, StorageFaultsAreClassifiedAndRecoverable) {
  ServerFixture fx(300, 26);
  // Spill the store so queries actually read the packed file via pread —
  // the path an injected disk fault can hit.
  const std::string path = "/tmp/cure_serve_fault_" +
                           std::to_string(::getpid()) + ".bin";
  ASSERT_TRUE(fx.cube->SpillStoreToDisk(path).ok());
  std::unique_ptr<CubeServer> server = fx.MakeServer();
  QueryRequest request;
  request.node = server->codec().Encode({0, 0, 1});

  {
    storage::FaultPlan plan;
    plan.op = "read";
    plan.path_substr = path;
    plan.error = EIO;
    storage::ScopedFaultInjection fault(plan);
    QueryResponse faulted = server->Execute(request);
    ASSERT_FALSE(faulted.status.ok());
    EXPECT_EQ(faulted.status.code(), StatusCode::kIoError)
        << faulted.status.ToString();
    EXPECT_GE(fault.faults_injected(), 1u);
  }
  // The failure class is surfaced as its own counter in STATS.
  EXPECT_EQ(server->metrics()->counter("io_errors_total")->value(), 1u);
  EXPECT_EQ(server->metrics()->counter("queries_errors")->value(), 1u);
  const std::string stats = server->StatsText();
  EXPECT_NE(stats.find("io_errors_total 1\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("data_loss_total 0\n"), std::string::npos) << stats;

  // Degradation, not an outage: the fault cleared, the same query works.
  QueryResponse recovered = server->Execute(request);
  ASSERT_TRUE(recovered.status.ok()) << recovered.status.ToString();
  EXPECT_GT(recovered.count, 0u);
  ASSERT_TRUE(storage::RemoveFile(path).ok());
}

// ----------------------------------------------------------------- protocol

TEST(ProtocolTest, ParseNodeSpec) {
  ServerFixture fx(100, 26);
  const schema::NodeIdCodec codec(fx.ds.schema);
  auto all = serve::ParseNodeSpec(fx.ds.schema, codec, "ALL");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, codec.Encode({3, 2, 1}));
  auto node = serve::ParseNodeSpec(fx.ds.schema, codec, "A_L1,C_L0");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, codec.Encode({1, 2, 0}));
  EXPECT_FALSE(serve::ParseNodeSpec(fx.ds.schema, codec, "bogus").ok());
}

TEST(ProtocolTest, ParseSliceSpec) {
  ServerFixture fx(100, 27);
  auto slice = serve::ParseSliceSpec(fx.ds.schema, "A_L2=1");
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->dim, 0);
  EXPECT_EQ(slice->level, 2);
  EXPECT_EQ(slice->code, 1u);
  auto scoped = serve::ParseSliceSpec(fx.ds.schema, "B:B_L1=2");
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(scoped->dim, 1);
  EXPECT_EQ(scoped->level, 1);
  EXPECT_FALSE(serve::ParseSliceSpec(fx.ds.schema, "A_L2=99").ok());  // Range.
  EXPECT_FALSE(serve::ParseSliceSpec(fx.ds.schema, "nope=1").ok());
  EXPECT_FALSE(serve::ParseSliceSpec(fx.ds.schema, "A_L2").ok());
  // A resolver takes over value translation.
  auto resolved = serve::ParseSliceSpec(
      fx.ds.schema, "A_L2=one",
      [](int, int, const std::string& value) -> Result<uint32_t> {
        return value == "one" ? Result<uint32_t>(1u)
                              : Result<uint32_t>(Status::NotFound(value));
      });
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->code, 1u);
}

TEST(ProtocolTest, TakeRequestTokensPeelsControlTokens) {
  std::vector<std::string> tokens = {"QUERY", "A_L0", "profile=1"};
  uint64_t trace_id = 0;
  double deadline = 0;
  std::string error;
  bool profile = false;
  ASSERT_TRUE(serve::TakeRequestTokens(&tokens, &trace_id, &deadline, &error,
                                       &profile));
  EXPECT_TRUE(profile);
  EXPECT_EQ(tokens, (std::vector<std::string>{"QUERY", "A_L0"}));

  // All three control tokens peel in any order.
  tokens = {"QUERY", "A_L0", "profile=1", "deadline=250", "trace=9"};
  profile = false;
  ASSERT_TRUE(serve::TakeRequestTokens(&tokens, &trace_id, &deadline, &error,
                                       &profile));
  EXPECT_TRUE(profile);
  EXPECT_EQ(trace_id, 9u);
  EXPECT_DOUBLE_EQ(deadline, 0.25);
  EXPECT_EQ(tokens, (std::vector<std::string>{"QUERY", "A_L0"}));

  // Only profile=1 is valid — anything else is a hard error, not silence.
  tokens = {"QUERY", "A_L0", "profile=2"};
  EXPECT_FALSE(serve::TakeRequestTokens(&tokens, &trace_id, &deadline, &error,
                                        &profile));
  EXPECT_NE(error.find("profile"), std::string::npos) << error;

  // Absent token leaves the caller's default untouched; a null out-param
  // (callers that don't support profiling) is tolerated.
  tokens = {"QUERY", "A_L0"};
  profile = false;
  ASSERT_TRUE(serve::TakeRequestTokens(&tokens, &trace_id, &deadline, &error,
                                       &profile));
  EXPECT_FALSE(profile);
  tokens = {"QUERY", "A_L0", "profile=1"};
  ASSERT_TRUE(
      serve::TakeRequestTokens(&tokens, &trace_id, &deadline, &error));
  EXPECT_EQ(tokens.size(), 2u);
}

// --------------------------------------------------------------- tcp server

/// Minimal blocking line-protocol client for loopback tests.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  /// Sends one command; returns the response lines up to (excluding) ".".
  std::vector<std::string> Roundtrip(const std::string& command) {
    const std::string out = command + "\n";
    EXPECT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
    std::vector<std::string> lines;
    std::string line;
    char c;
    while (true) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n <= 0) break;
      if (c != '\n') {
        line += c;
        continue;
      }
      if (line == ".") return lines;
      lines.push_back(line);
      line.clear();
    }
    ADD_FAILURE() << "connection closed before '.' terminator";
    return lines;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(TcpLineServerTest, ServesQueriesOverLoopback) {
  ServerFixture fx(600, 28);
  CubeServerOptions options;
  options.cache_bytes = 1 << 20;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
  ASSERT_GT((*tcp)->port(), 0);

  LineClient client((*tcp)->port());
  ASSERT_TRUE(client.connected());

  // Plain query: header row count must match the reported count.
  std::vector<std::string> lines = client.Roundtrip("QUERY A_L1,B_L1");
  ASSERT_FALSE(lines.empty());
  ASSERT_EQ(lines[0].rfind("OK ", 0), 0u) << lines[0];
  unsigned long long count = 0;
  char hitmiss[8] = {0};
  ASSERT_EQ(std::sscanf(lines[0].c_str(), "OK %llu %*s %7s", &count, hitmiss),
            2);
  EXPECT_EQ(std::string(hitmiss), "MISS");
  EXPECT_EQ(lines.size() - 1, count);
  {
    ResultSink expected;
    auto direct = CureQueryEngine::Create(fx.cube.get(), 1.0);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(
        (*direct)->QueryNode(server->codec().Encode({1, 1, 1}), &expected).ok());
    EXPECT_EQ(count, expected.count());
  }

  // Same query again: served from cache.
  lines = client.Roundtrip("QUERY A_L1,B_L1");
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("HIT"), std::string::npos) << lines[0];

  // Iceberg and slice commands.
  lines = client.Roundtrip("ICEBERG A_L0 4");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].rfind("OK ", 0), 0u) << lines[0];
  lines = client.Roundtrip("SLICE A_L0,B_L0 A_L2=1 MINSUP 2");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].rfind("OK ", 0), 0u) << lines[0];

  // STATS reports the protocol traffic so far.
  lines = client.Roundtrip("STATS");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "OK");
  std::string stats;
  for (const std::string& l : lines) stats += l + "\n";
  EXPECT_NE(stats.find("queries_total 4"), std::string::npos) << stats;
  EXPECT_NE(stats.find("cache_hits 1"), std::string::npos) << stats;

  // Errors keep the connection alive.
  lines = client.Roundtrip("FROBNICATE");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].rfind("ERR InvalidArgument", 0), 0u) << lines[0];
  lines = client.Roundtrip("QUERY bogus_level");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].rfind("ERR NotFound", 0), 0u) << lines[0];
  lines = client.Roundtrip("ICEBERG A_L0 nope");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].rfind("ERR InvalidArgument", 0), 0u) << lines[0];
  lines = client.Roundtrip("QUERY A_L0,B_L0");  // Still serving.
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].rfind("OK ", 0), 0u) << lines[0];

  (*tcp)->Stop();
}

TEST(TcpLineServerTest, EchoesClientSuppliedTraceId) {
  ServerFixture fx(150, 30);
  std::unique_ptr<CubeServer> server = fx.MakeServer();
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  // A client-supplied trace=<id> is adopted and echoed verbatim — the
  // contract a scatter–gather router relies on so one trace id spans the
  // whole fan-out. All three query verbs take the token.
  std::string response = (*tcp)->HandleLine("QUERY A_L2 trace=424242");
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
  EXPECT_NE(response.find(" trace=424242\n"), std::string::npos) << response;
  response = (*tcp)->HandleLine("ICEBERG A_L0 2 trace=777");
  EXPECT_NE(response.find(" trace=777\n"), std::string::npos) << response;
  response = (*tcp)->HandleLine("SLICE A_L0 A_L2=1 trace=778");
  EXPECT_NE(response.find(" trace=778\n"), std::string::npos) << response;
  response = (*tcp)->HandleLine("SLICE A_L0 A_L2=1 MINSUP 2 trace=779");
  EXPECT_NE(response.find(" trace=779\n"), std::string::npos) << response;

  // Without the token the server mints its own (non-zero) id.
  response = (*tcp)->HandleLine("QUERY A_L2");
  const size_t at = response.find(" trace=");
  ASSERT_NE(at, std::string::npos) << response;
  EXPECT_NE(response.substr(at, response.find('\n', at) - at), " trace=0");

  // Malformed ids are rejected, not silently ignored.
  EXPECT_EQ((*tcp)->HandleLine("QUERY A_L2 trace=abc")
                .rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ((*tcp)->HandleLine("QUERY A_L2 trace=0")
                .rfind("ERR InvalidArgument", 0),
            0u);
}

TEST(TcpLineServerTest, ProfileTokenAppendsStageBreakdown) {
  ServerFixture fx(300, 31);
  CubeServerOptions options;
  options.cache_bytes = 1 << 20;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  const std::string response =
      (*tcp)->HandleLine("QUERY A_L1 trace=31337 profile=1");
  ASSERT_EQ(response.rfind("OK ", 0), 0u) << response;
  unsigned long long count = 0;
  ASSERT_EQ(std::sscanf(response.c_str(), "OK %llu", &count), 1);
  const size_t at = response.find("\n% profile stage=serve trace=31337 ");
  ASSERT_NE(at, std::string::npos) << response;
  for (const char* field :
       {"queue_wait_us=", "key_us=", "cache_us=", "execute_us=", "encode_us=",
        "total_us=", "cache=MISS", "version="}) {
    EXPECT_NE(response.find(field, at), std::string::npos) << field;
  }
  // The profile section rides BEHIND the rows: the header count must match
  // the non-"% " body lines exactly (a row-merging router skips "% " lines).
  std::istringstream in(response);
  std::string line;
  size_t rows = 0, profile_lines = 0;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));  // header
  while (std::getline(in, line) && line != ".") {
    if (line.rfind("% ", 0) == 0) {
      ++profile_lines;
    } else {
      ++rows;
    }
  }
  EXPECT_EQ(rows, count);
  EXPECT_GE(profile_lines, 1u);

  // A repeat is a cache hit, and the profile says so.
  const std::string hit = (*tcp)->HandleLine("QUERY A_L1 profile=1");
  EXPECT_NE(hit.find("% profile"), std::string::npos) << hit;
  EXPECT_NE(hit.find("cache=HIT"), std::string::npos) << hit;

  // Without the token nothing profile-shaped is attached.
  EXPECT_EQ((*tcp)->HandleLine("QUERY A_L1").find("% profile"),
            std::string::npos);
}

TEST(TcpLineServerTest, SlowlogRecordsOverThresholdQueries) {
  ServerFixture fx(300, 32);
  CubeServerOptions options;
  options.slow_query_seconds = 1e-9;  // Everything is over threshold.
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  // Empty flight recorder: just the summary line.
  std::string dump = (*tcp)->HandleLine("SLOWLOG");
  ASSERT_EQ(dump.rfind("OK\n", 0), 0u) << dump;
  EXPECT_NE(dump.find("total 0 capacity "), std::string::npos) << dump;

  ASSERT_EQ((*tcp)->HandleLine("QUERY A_L1 trace=606").rfind("OK ", 0), 0u);
  dump = (*tcp)->HandleLine("SLOWLOG");
  EXPECT_NE(dump.find("#1 "), std::string::npos) << dump;
  EXPECT_NE(dump.find("trace=606"), std::string::npos) << dump;
  EXPECT_NE(dump.find("total_us="), std::string::npos) << dump;
  EXPECT_NE(dump.find("execute_us="), std::string::npos) << dump;

  EXPECT_EQ((*tcp)->HandleLine("SLOWLOG now").rfind("ERR InvalidArgument", 0),
            0u);
}

TEST(TcpLineServerTest, HandleLineRejectsMalformedCommands) {
  ServerFixture fx(100, 29);
  std::unique_ptr<CubeServer> server = fx.MakeServer();
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ((*tcp)->HandleLine("").rfind("ERR InvalidArgument", 0), 0u);
  EXPECT_EQ((*tcp)->HandleLine("QUERY").rfind("ERR InvalidArgument", 0), 0u);
  EXPECT_EQ((*tcp)->HandleLine("ICEBERG A_L0").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(
      (*tcp)->HandleLine("ICEBERG A_L0 0").rfind("ERR InvalidArgument", 0), 0u);
  EXPECT_EQ((*tcp)->HandleLine("SLICE A_L0").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(
      (*tcp)->HandleLine("SLICE A_L0 MINSUP 2").rfind("ERR InvalidArgument", 0),
      0u);
  EXPECT_EQ((*tcp)
                ->HandleLine("QUERY A_L0 trailing")
                .rfind("ERR InvalidArgument", 0),
            0u);
  // A well-formed line still works through the same entry point.
  EXPECT_EQ((*tcp)->HandleLine("QUERY A_L2").rfind("OK ", 0), 0u);
}

// ------------------------------------------------- semantic cache serving

namespace {

/// Response body (everything after the header line).
std::string Body(const std::string& response) {
  return response.substr(response.find('\n') + 1);
}

/// Parses "OK <count> <checksum-hex> ..." from a response header.
bool ParseOkHeader(const std::string& response, unsigned long long* count,
                   std::string* checksum) {
  char checksum_buf[32] = {0};
  if (std::sscanf(response.c_str(), "OK %llu %31s", count, checksum_buf) != 2) {
    return false;
  }
  *checksum = checksum_buf;
  return true;
}

}  // namespace

TEST(TcpLineServerTest, NavigationVerbsResolveOnTheLattice) {
  ServerFixture fx(400, 33);
  CubeServerOptions options;
  options.cache_bytes = 1 << 20;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  // DRILL from the apex enters dimension A at its coarsest level, and the
  // header announces where the navigation landed.
  std::string response = (*tcp)->HandleLine("DRILL ALL A");
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
  EXPECT_NE(response.find(" node=A_L2\n"), std::string::npos) << response;

  // ROLLUP one step up from A_L0 lands on A_L1 with rows byte-identical to
  // querying the landed node directly.
  const std::string direct = (*tcp)->HandleLine("QUERY A_L1");
  response = (*tcp)->HandleLine("ROLLUP A_L0 A");
  EXPECT_NE(response.find(" node=A_L1"), std::string::npos) << response;
  EXPECT_EQ(Body(response), Body(direct));

  // Slices and MINSUP ride along and are applied at the landed node.
  const std::string expected =
      (*tcp)->HandleLine("SLICE A_L0,B_L1 B_L1=1 MINSUP 2");
  response = (*tcp)->HandleLine("ROLLUP A_L0,B_L0 B B_L1=1 MINSUP 2");
  EXPECT_NE(response.find(" node=A_L0,B_L1"), std::string::npos) << response;
  EXPECT_EQ(Body(response), Body(expected));

  // Navigation off the lattice edge and unknown dimensions are errors.
  EXPECT_EQ((*tcp)->HandleLine("ROLLUP ALL A").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ((*tcp)->HandleLine("DRILL A_L0 A").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ((*tcp)->HandleLine("ROLLUP A_L0 Z").rfind("ERR NotFound", 0), 0u);
  EXPECT_EQ((*tcp)->HandleLine("ROLLUP A_L0").rfind("ERR InvalidArgument", 0),
            0u);
}

TEST(TcpLineServerTest, TopKSelectsDeterministically) {
  ServerFixture fx(500, 34);
  CubeServerOptions options;
  options.cache_bytes = 1 << 20;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  const std::string response = (*tcp)->HandleLine("TOPK A_L0,B_L0 5");
  ASSERT_EQ(response.rfind("OK 5 ", 0), 0u) << response;
  // 5 rows + "." terminator line.
  EXPECT_EQ(std::count(response.begin(), response.end(), '\n'), 7);

  // The second run is served from the cache (exact or semantic); selection
  // over the full deterministic result makes the response body identical.
  const std::string again = (*tcp)->HandleLine("TOPK A_L0,B_L0 5");
  EXPECT_EQ(Body(again), Body(response));

  // k larger than the result returns everything.
  unsigned long long full_count = 0;
  std::string checksum;
  ASSERT_TRUE(
      ParseOkHeader((*tcp)->HandleLine("QUERY B_L0"), &full_count, &checksum));
  unsigned long long top_count = 0;
  ASSERT_TRUE(ParseOkHeader((*tcp)->HandleLine("TOPK B_L0 1000000"), &top_count,
                            &checksum));
  EXPECT_EQ(top_count, full_count);

  EXPECT_EQ((*tcp)->HandleLine("TOPK A_L0 0").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ((*tcp)
                ->HandleLine("TOPK A_L0 3 MINSUP 2")
                .rfind("ERR InvalidArgument", 0),
            0u);
}

TEST(TcpLineServerTest, BatchRunsSectionsInInputOrder) {
  ServerFixture fx(400, 35);
  CubeServerOptions options;
  options.cache_bytes = 4 << 20;
  // The fixture cube is tiny; without this the probe-skip threshold would
  // route every member to the (cheap) engine instead of deriving.
  options.semantic_min_scan_rows = 0;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  const std::string response =
      (*tcp)->HandleLine("BATCH A_L1 A_L0,B_L0 ALL");
  ASSERT_EQ(response.rfind("OK 3 ", 0), 0u) << response;
  EXPECT_NE(response.find(" BATCH trace="), std::string::npos) << response;

  // Sections appear in input order; their checksums XOR to the top header's.
  std::istringstream in(response);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  unsigned long long combined = 0;
  {
    char checksum_buf[32] = {0};
    unsigned long long n = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "OK %llu %31s", &n, checksum_buf), 2);
    combined = std::strtoull(checksum_buf, nullptr, 16);
  }
  std::vector<std::string> specs;
  unsigned long long xor_sections = 0, section_rows = 0, seen_rows = 0;
  while (std::getline(in, line)) {
    if (line == ".") break;
    if (line.rfind("= ", 0) == 0) {
      EXPECT_EQ(seen_rows, section_rows) << line;
      char spec[64] = {0}, checksum_buf[32] = {0}, token[16] = {0};
      ASSERT_EQ(std::sscanf(line.c_str(), "= %63s %llu %31s %15s", spec,
                            &section_rows, checksum_buf, token),
                4);
      specs.push_back(spec);
      xor_sections ^= std::strtoull(checksum_buf, nullptr, 16);
      seen_rows = 0;
    } else {
      ++seen_rows;
    }
  }
  EXPECT_EQ(seen_rows, section_rows);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0], "A_L1");
  EXPECT_EQ(specs[1], "A_L0,B_L0");
  EXPECT_EQ(specs[2], "ALL");
  EXPECT_EQ(xor_sections, combined);

  // The batch executed most-detailed-first, so the coarse members were
  // answered from the fine one's just-cached result.
  EXPECT_GT(server->semantic_cache()->stats().semantic_hits, 0u);

  EXPECT_EQ((*tcp)->HandleLine("BATCH").rfind("ERR InvalidArgument", 0), 0u);
  EXPECT_EQ((*tcp)->HandleLine("BATCH bogus").rfind("ERR NotFound", 0), 0u);
}

/// The ISSUE's core soundness bar: every semantically-answered response must
/// be byte-identical (rows AND order-independent checksum) to the cache-off
/// engine path.
TEST(TcpLineServerTest, DrillDownSessionIsByteIdenticalToCacheOff) {
  ServerFixture fx(700, 36);
  CubeServerOptions semantic_options;
  semantic_options.cache_bytes = 8 << 20;
  // Small fixture cube: disable the probe-skip threshold so derivations
  // fire (production sizes clear it naturally).
  semantic_options.semantic_min_scan_rows = 0;
  std::unique_ptr<CubeServer> semantic_server = fx.MakeServer(semantic_options);
  auto semantic_tcp =
      TcpLineServer::Start(semantic_server.get(), TcpServerOptions{});
  ASSERT_TRUE(semantic_tcp.ok());
  CubeServerOptions off_options;
  off_options.cache_bytes = 0;  // every query runs the engine
  std::unique_ptr<CubeServer> off_server = fx.MakeServer(off_options);
  auto off_tcp = TcpLineServer::Start(off_server.get(), TcpServerOptions{});
  ASSERT_TRUE(off_tcp.ok());

  // An analyst drill-down session: start coarse, drill in, narrow, roll
  // back up, revisit. Later steps are derivable from earlier, finer ones.
  const char* kSession[] = {
      "QUERY A_L0,B_L0,C_L0",  // the fine anchor lands in the cache first
      "QUERY ALL",
      "DRILL ALL A",
      "DRILL A_L2 B",
      "SLICE A_L2,B_L1 B_L1=1",
      "DRILL A_L2,B_L1 A",
      "ROLLUP A_L1,B_L1 B",
      "QUERY A_L1,B_L1,C_L0",
      "ROLLUP A_L1,B_L1,C_L0 C",
      "SLICE A_L1,B_L0 A_L2=1 MINSUP 2",
      "TOPK A_L1,C_L0 4",
      "BATCH A_L0 A_L1 A_L2 ALL",
  };
  // The response rows as a sorted multiset, with the HIT|SEMANTIC|MISS
  // token stripped from BATCH section headers — exactly the normalization
  // the CI smoke test applies before diffing. Row ORDER may differ between
  // the engine and derivation paths; the row SET and the
  // order-independent checksums must not.
  auto sorted_rows = [](const std::string& response) {
    std::vector<std::string> rows;
    std::istringstream in(Body(response));
    std::string line;
    while (std::getline(in, line)) {
      if (line == ".") continue;
      if (line.rfind("= ", 0) == 0) {
        line.erase(line.find_last_of(' '));  // cache token
      }
      rows.push_back(line);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  for (const char* command : kSession) {
    const std::string with = (*semantic_tcp)->HandleLine(command);
    const std::string without = (*off_tcp)->HandleLine(command);
    ASSERT_EQ(with.rfind("OK ", 0), 0u) << command << " -> " << with;
    EXPECT_EQ(sorted_rows(with), sorted_rows(without)) << command;
    unsigned long long count_with = 0, count_without = 0;
    std::string checksum_with, checksum_without;
    ASSERT_TRUE(ParseOkHeader(with, &count_with, &checksum_with));
    ASSERT_TRUE(ParseOkHeader(without, &count_without, &checksum_without));
    EXPECT_EQ(count_with, count_without) << command;
    EXPECT_EQ(checksum_with, checksum_without) << command;
  }

  // The session genuinely exercised the semantic path on the cached server
  // and never on the cache-off one.
  EXPECT_GT(semantic_server->semantic_cache()->stats().semantic_hits, 0u);
  EXPECT_EQ(off_server->semantic_cache()->stats().semantic_hits, 0u);

  // METRICS exports the semantic series.
  const std::string metrics = (*semantic_tcp)->HandleLine("METRICS");
  EXPECT_NE(metrics.find("cure_serve_cache_semantic_hits"), std::string::npos);
  EXPECT_NE(metrics.find("cure_serve_cache_rollup_rows"), std::string::npos);
}

/// --no-semantic (semantic_cache = false) degrades to the exact-key cache:
/// still correct, never derives.
TEST(TcpLineServerTest, SemanticDisabledStillServesExactly) {
  ServerFixture fx(300, 37);
  CubeServerOptions options;
  options.cache_bytes = 4 << 20;
  options.semantic_cache = false;
  std::unique_ptr<CubeServer> server = fx.MakeServer(options);
  auto tcp = TcpLineServer::Start(server.get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  const std::string fine = (*tcp)->HandleLine("QUERY A_L0,B_L0");
  ASSERT_EQ(fine.rfind("OK ", 0), 0u);
  const std::string coarse = (*tcp)->HandleLine("QUERY A_L1");
  ASSERT_EQ(coarse.rfind("OK ", 0), 0u);
  EXPECT_NE(coarse.find(" MISS "), std::string::npos) << coarse;
  const std::string again = (*tcp)->HandleLine("QUERY A_L1");
  EXPECT_NE(again.find(" HIT "), std::string::npos) << again;
  EXPECT_EQ(server->semantic_cache()->stats().semantic_hits, 0u);
  EXPECT_EQ(server->semantic_cache()->stats().semantic_misses, 0u);
}

// A response far larger than the socket buffer must arrive complete: the
// server's WriteAll loop has to survive partial send(2) returns while the
// client's tiny receive window keeps the kernel buffers full.
TEST(TcpLineServerTest, StreamsResponsesLargerThanTheSocketBuffer) {
  gen::Dataset ds;
  {
    std::vector<schema::Dimension> dims;
    dims.push_back(schema::Dimension::Flat("A", 4000));
    dims.push_back(schema::Dimension::Flat("B", 32));
    auto schema = schema::CubeSchema::Create(
        std::move(dims), 1,
        {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
    ASSERT_TRUE(schema.ok());
    ds.schema = std::move(schema).value();
    ds.table = schema::FactTable(2, 1);
    gen::Rng rng(31);
    for (uint64_t t = 0; t < 50000; ++t) {
      const uint32_t row[2] = {static_cast<uint32_t>(rng.NextRange(4000)),
                               static_cast<uint32_t>(rng.NextRange(32))};
      const int64_t m = static_cast<int64_t>(rng.NextRange(100));
      ds.table.AppendRow(row, &m);
    }
  }
  CureOptions build;
  FactInput input{.table = &ds.table};
  auto cube = BuildCure(ds.schema, input, build);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  CubeServerOptions options;
  options.num_threads = 2;
  auto server = CubeServer::Create(cube->get(), options);
  ASSERT_TRUE(server.ok());
  auto tcp = TcpLineServer::Start(server->get(), TcpServerOptions{});
  ASSERT_TRUE(tcp.ok());

  // Shrink the client's receive buffer *before* connect so the advertised
  // window is small and the server cannot hand the whole response to the
  // kernel in one call.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 2048;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)),
            0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>((*tcp)->port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  const std::string request = "QUERY A_L0,B_L0\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  while (response.rfind("\n.\n") == std::string::npos ||
         response.rfind("\n.\n") != response.size() - 3) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection closed after " << response.size()
                    << " bytes";
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  // The full tab-separated result set arrived intact.
  unsigned long long count = 0;
  ASSERT_EQ(std::sscanf(response.c_str(), "OK %llu", &count), 1)
      << response.substr(0, 64);
  uint64_t newlines = 0;
  for (char c : response) newlines += c == '\n';
  EXPECT_EQ(newlines, count + 2);  // header + rows + "." terminator
  {
    ResultSink expected;
    auto direct = CureQueryEngine::Create(cube->get(), 1.0);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(
        (*direct)->QueryNode(server->get()->codec().Encode({0, 0}), &expected)
            .ok());
    EXPECT_EQ(count, expected.count());
  }
  EXPECT_GT(response.size(), 256u * 1024);  // genuinely bigger than a buffer
  (*tcp)->Stop();
}

}  // namespace
}  // namespace cure
