#include "schema/node_id.h"

#include <gtest/gtest.h>

#include <set>

#include "schema/lattice.h"

namespace cure {
namespace schema {
namespace {

// The running example of the paper (Sec. 3.3): hierarchies A0->A1->A2,
// B0->B1, C0; with ALL included the level counts are L1=4, L2=3, L3=2 and
// the factors F1=1, F2=4, F3=12.
CubeSchema PaperSchema() {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("A", {8, 4, 2}));
  dims.push_back(Dimension::Linear("B", {6, 2}));
  dims.push_back(Dimension::Flat("C", 4));
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "m"}});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

TEST(NodeIdTest, PaperFactorsAndNodeCount) {
  CubeSchema schema = PaperSchema();
  NodeIdCodec codec(schema);
  EXPECT_EQ(codec.num_dims(), 3);
  EXPECT_EQ(codec.radix(0), 4);
  EXPECT_EQ(codec.radix(1), 3);
  EXPECT_EQ(codec.radix(2), 2);
  // (3+1) * (2+1) * (1+1) = 24 nodes, as the paper computes.
  EXPECT_EQ(codec.num_nodes(), 24u);
}

TEST(NodeIdTest, PaperFigure6Enumeration) {
  CubeSchema schema = PaperSchema();
  NodeIdCodec codec(schema);
  // Fig. 6 rows: (L1, L2, L3) -> id.
  struct Case {
    int l1, l2, l3;
    NodeId id;
    const char* name;
  };
  const Case cases[] = {
      {0, 0, 0, 0, "A0B0C0"}, {1, 0, 0, 1, "A1B0C0"}, {2, 0, 0, 2, "A2B0C0"},
      {3, 0, 0, 3, "B0C0"},   {0, 1, 0, 4, "A0B1C0"}, {1, 1, 0, 5, "A1B1C0"},
      {2, 1, 0, 6, "A2B1C0"}, {3, 1, 0, 7, "B1C0"},   {0, 2, 0, 8, "A0C0"},
      {1, 2, 0, 9, "A1C0"},   {2, 2, 0, 10, "A2C0"},  {3, 2, 0, 11, "C0"},
      {0, 0, 1, 12, "A0B0"},  {1, 0, 1, 13, "A1B0"},  {2, 0, 1, 14, "A2B0"},
      {3, 0, 1, 15, "B0"},    {0, 1, 1, 16, "A0B1"},  {1, 1, 1, 17, "A1B1"},
      {2, 1, 1, 18, "A2B1"},  {3, 1, 1, 19, "B1"},    {0, 2, 1, 20, "A0"},
      {1, 2, 1, 21, "A1"},    {2, 2, 1, 22, "A2"},    {3, 2, 1, 23, "ALL"},
  };
  for (const Case& c : cases) {
    const NodeId id = codec.Encode({c.l1, c.l2, c.l3});
    EXPECT_EQ(id, c.id) << c.name;
    EXPECT_EQ(codec.Name(id, schema),
              std::string(c.name) == "ALL"
                  ? "ALL"
                  : codec.Name(id, schema));  // round-trip below
    const std::vector<int> levels = codec.Decode(id);
    EXPECT_EQ(levels[0], c.l1);
    EXPECT_EQ(levels[1], c.l2);
    EXPECT_EQ(levels[2], c.l3);
  }
  // The paper's decode example: id 21 denotes node A1.
  const std::vector<int> levels = codec.Decode(21);
  EXPECT_EQ(levels[0], 1);  // A at level 1
  EXPECT_EQ(levels[1], 2);  // B at ALL
  EXPECT_EQ(levels[2], 1);  // C at ALL
  EXPECT_EQ(codec.Name(21, schema), "A1");
  EXPECT_EQ(codec.Name(23, schema), "ALL");
  EXPECT_EQ(codec.Name(0, schema), "A0B0C0");
}

TEST(NodeIdTest, EncodeDecodeRoundTripAllNodes) {
  CubeSchema schema = PaperSchema();
  NodeIdCodec codec(schema);
  std::set<NodeId> seen;
  for (int l1 = 0; l1 < 4; ++l1) {
    for (int l2 = 0; l2 < 3; ++l2) {
      for (int l3 = 0; l3 < 2; ++l3) {
        const NodeId id = codec.Encode({l1, l2, l3});
        EXPECT_LT(id, codec.num_nodes());
        EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
        EXPECT_EQ(codec.Decode(id), (std::vector<int>{l1, l2, l3}));
      }
    }
  }
  EXPECT_EQ(seen.size(), 24u);
}

TEST(LatticeTest, AncestorRelation) {
  CubeSchema schema = PaperSchema();
  Lattice lattice(&schema);
  const NodeIdCodec& codec = lattice.codec();
  const NodeId a0b0c0 = codec.Encode({0, 0, 0});
  const NodeId a1 = codec.Encode({1, 2, 1});
  const NodeId a2 = codec.Encode({2, 2, 1});
  const NodeId b1 = codec.Encode({3, 1, 1});
  const NodeId all = codec.Encode({3, 2, 1});
  // The base node is an ancestor (can compute) of everything.
  EXPECT_TRUE(lattice.IsAncestorOf(a0b0c0, a1));
  EXPECT_TRUE(lattice.IsAncestorOf(a0b0c0, all));
  EXPECT_TRUE(lattice.IsAncestorOf(a1, a2));
  EXPECT_FALSE(lattice.IsAncestorOf(a2, a1));
  // A nodes cannot compute B nodes.
  EXPECT_FALSE(lattice.IsAncestorOf(a1, b1));
  EXPECT_TRUE(lattice.IsAncestorOf(b1, all));
  EXPECT_TRUE(lattice.IsAncestorOf(a1, a1));
}

TEST(LatticeTest, NumGroupingDims) {
  CubeSchema schema = PaperSchema();
  Lattice lattice(&schema);
  const NodeIdCodec& codec = lattice.codec();
  EXPECT_EQ(lattice.NumGroupingDims(codec.Encode({0, 0, 0})), 3);
  EXPECT_EQ(lattice.NumGroupingDims(codec.Encode({1, 2, 1})), 1);
  EXPECT_EQ(lattice.NumGroupingDims(codec.Encode({3, 2, 1})), 0);
  EXPECT_EQ(lattice.AllNodes().size(), 24u);
}

TEST(NodeIdTest, FlatSchemaMatchesPowerOfTwo) {
  std::vector<Dimension> dims;
  for (int d = 0; d < 10; ++d) dims.push_back(Dimension::Flat("D", 5));
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "m"}});
  ASSERT_TRUE(schema.ok());
  NodeIdCodec codec(*schema);
  EXPECT_EQ(codec.num_nodes(), 1024u);  // 2^10
}

}  // namespace
}  // namespace schema
}  // namespace cure
