#include "plan/execution_plan.h"

#include <gtest/gtest.h>

#include "schema/lattice.h"

namespace cure {
namespace plan {
namespace {

using schema::AggFn;
using schema::CubeSchema;
using schema::Dimension;
using schema::Level;
using schema::NodeId;

CubeSchema PaperSchema() {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("A", {8, 4, 2}));
  dims.push_back(Dimension::Linear("B", {6, 2}));
  dims.push_back(Dimension::Flat("C", 4));
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "m"}});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

CubeSchema FlatSchema(int d) {
  std::vector<Dimension> dims;
  for (int i = 0; i < d; ++i) {
    dims.push_back(Dimension::Flat(std::string(1, static_cast<char>('A' + i)), 4));
  }
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "m"}});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

TEST(ExecutionPlanTest, TallPlanCoversPaperLattice) {
  CubeSchema schema = PaperSchema();
  ExecutionPlan plan = ExecutionPlan::Build(schema, ExecutionPlan::Style::kTall);
  EXPECT_EQ(plan.num_nodes(), 24u);
  EXPECT_TRUE(plan.Validate().ok()) << plan.Validate().ToString();
  // P3 is the tallest extension: height 6 in the paper's running example
  // (Fig. 4), versus height 3 for P2 (Fig. 3).
  EXPECT_EQ(plan.height(), 6);
}

TEST(ExecutionPlanTest, ShortPlanCoversPaperLattice) {
  CubeSchema schema = PaperSchema();
  ExecutionPlan plan = ExecutionPlan::Build(schema, ExecutionPlan::Style::kShort);
  EXPECT_EQ(plan.num_nodes(), 24u);
  EXPECT_EQ(plan.height(), 3);  // P2: one solid edge per dimension.
  // Every node present exactly once.
  for (NodeId id = 0; id < plan.codec().num_nodes(); ++id) {
    EXPECT_TRUE(plan.Contains(id));
  }
}

TEST(ExecutionPlanTest, FlatTallEqualsBucPlan) {
  CubeSchema schema = FlatSchema(3);
  ExecutionPlan plan = ExecutionPlan::Build(schema, ExecutionPlan::Style::kTall);
  EXPECT_EQ(plan.num_nodes(), 8u);
  EXPECT_EQ(plan.height(), 3);  // P1: flat BUC plan.
  EXPECT_TRUE(plan.Validate().ok());
}

TEST(ExecutionPlanTest, RootIsAllNode) {
  CubeSchema schema = PaperSchema();
  ExecutionPlan plan = ExecutionPlan::Build(schema, ExecutionPlan::Style::kTall);
  const schema::NodeIdCodec& codec = plan.codec();
  EXPECT_EQ(plan.root(), codec.Encode({3, 2, 1}));  // ALL everywhere.
  EXPECT_EQ(plan.node(plan.root()).edge, EdgeType::kRoot);
}

TEST(ExecutionPlanTest, PathFromRootFollowsPaperChains) {
  CubeSchema schema = PaperSchema();
  ExecutionPlan plan = ExecutionPlan::Build(schema, ExecutionPlan::Style::kTall);
  const schema::NodeIdCodec& codec = plan.codec();
  // Fig. 4: the path to A0B1C0 is ALL -> A2 -> A1 -> A0 -> A0B1 -> A0B1C0.
  const NodeId target = codec.Encode({0, 1, 0});
  const std::vector<NodeId> path = plan.PathFromRoot(target);
  std::vector<std::string> names;
  names.reserve(path.size());
  for (NodeId id : path) names.push_back(codec.Name(id, schema));
  EXPECT_EQ(names, (std::vector<std::string>{"ALL", "A2", "A1", "A0", "A0B1",
                                             "A0B1C0"}));
}

TEST(ExecutionPlanTest, DashedEdgesOnlyRefineRightmostDimension) {
  CubeSchema schema = PaperSchema();
  ExecutionPlan plan = ExecutionPlan::Build(schema, ExecutionPlan::Style::kTall);
  EXPECT_TRUE(plan.Validate().ok());
  // A2B1 -> A2B0 must be a dashed edge.
  const schema::NodeIdCodec& codec = plan.codec();
  const PlanNode& a2b0 = plan.node(codec.Encode({2, 0, 1}));
  EXPECT_EQ(a2b0.edge, EdgeType::kDashed);
  EXPECT_EQ(a2b0.parent, codec.Encode({2, 1, 1}));
}

TEST(ExecutionPlanTest, LargerFlatLattices) {
  for (int d = 2; d <= 8; ++d) {
    CubeSchema schema = FlatSchema(d);
    ExecutionPlan plan = ExecutionPlan::Build(schema, ExecutionPlan::Style::kTall);
    EXPECT_EQ(plan.num_nodes(), uint64_t{1} << d);
    EXPECT_TRUE(plan.Validate().ok()) << "d=" << d;
    EXPECT_EQ(plan.height(), d);
  }
}

TEST(ExecutionPlanTest, DeepHierarchiesValidate) {
  std::vector<Dimension> dims;
  dims.push_back(Dimension::Linear("P", {100, 50, 25, 12, 6, 3}));
  dims.push_back(Dimension::Linear("Q", {40, 8}));
  dims.push_back(Dimension::Linear("R", {30, 10, 2}));
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "m"}});
  ASSERT_TRUE(schema.ok());
  ExecutionPlan plan = ExecutionPlan::Build(*schema, ExecutionPlan::Style::kTall);
  EXPECT_EQ(plan.num_nodes(), 7u * 3 * 4);
  EXPECT_TRUE(plan.Validate().ok()) << plan.Validate().ToString();
  // Tall plan height: sum over dims of num_levels.
  EXPECT_EQ(plan.height(), 6 + 2 + 3);
}

// Complex hierarchy: the paper's Fig. 5 time dimension.
Dimension MakeTimeDimension() {
  const uint32_t days = 364;
  std::vector<Level> levels(4);
  levels[0].name = "day";
  levels[0].cardinality = days;
  levels[0].parents = {1, 2};
  levels[1].name = "week";
  levels[1].cardinality = 52;
  levels[1].leaf_to_code.resize(days);
  for (uint32_t d = 0; d < days; ++d) levels[1].leaf_to_code[d] = d / 7;
  levels[2].name = "month";
  levels[2].cardinality = 13;
  levels[2].leaf_to_code.resize(days);
  for (uint32_t d = 0; d < days; ++d) levels[2].leaf_to_code[d] = d / 28;
  levels[2].parents = {3};
  levels[3].name = "year";
  levels[3].cardinality = 1;
  levels[3].leaf_to_code.assign(days, 0);
  Result<Dimension> dim = Dimension::Create("time", std::move(levels));
  EXPECT_TRUE(dim.ok());
  return std::move(dim).value();
}

TEST(ExecutionPlanTest, ComplexHierarchyOneDimensionalCube) {
  std::vector<Dimension> dims;
  dims.push_back(MakeTimeDimension());
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "m"}});
  ASSERT_TRUE(schema.ok());
  ExecutionPlan plan = ExecutionPlan::Build(*schema, ExecutionPlan::Style::kTall);
  // Nodes: day, week, month, year, ALL — Fig. 5b.
  EXPECT_EQ(plan.num_nodes(), 5u);
  EXPECT_TRUE(plan.Validate().ok()) << plan.Validate().ToString();
  const schema::NodeIdCodec& codec = plan.codec();
  // day is entered from week (max cardinality sibling), not month.
  const PlanNode& day = plan.node(codec.Encode({0}));
  EXPECT_EQ(day.parent, codec.Encode({1}));  // week
  EXPECT_EQ(day.edge, EdgeType::kDashed);
  // month is entered from year.
  const PlanNode& month = plan.node(codec.Encode({2}));
  EXPECT_EQ(month.parent, codec.Encode({3}));
  // week and year enter via solid edges from ALL.
  EXPECT_EQ(plan.node(codec.Encode({1})).edge, EdgeType::kSolid);
  EXPECT_EQ(plan.node(codec.Encode({3})).edge, EdgeType::kSolid);
}

TEST(ExecutionPlanTest, ComplexHierarchyWithSecondDimension) {
  std::vector<Dimension> dims;
  dims.push_back(MakeTimeDimension());
  dims.push_back(Dimension::Flat("X", 10));
  Result<CubeSchema> schema =
      CubeSchema::Create(std::move(dims), 1, {{AggFn::kSum, 0, "m"}});
  ASSERT_TRUE(schema.ok());
  ExecutionPlan plan = ExecutionPlan::Build(*schema, ExecutionPlan::Style::kTall);
  EXPECT_EQ(plan.num_nodes(), 5u * 2);
  EXPECT_TRUE(plan.Validate().ok()) << plan.Validate().ToString();
}

TEST(ExecutionPlanTest, ToStringRendersEveryNode) {
  CubeSchema schema = PaperSchema();
  ExecutionPlan plan = ExecutionPlan::Build(schema, ExecutionPlan::Style::kTall);
  const std::string rendered = plan.ToString();
  EXPECT_NE(rendered.find("A2B1C0"), std::string::npos);
  EXPECT_NE(rendered.find("ALL"), std::string::npos);
  // 24 lines, one per node.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 24);
}

}  // namespace
}  // namespace plan
}  // namespace cure
