#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "algebra/query_desc.h"
#include "algebra/result_cache.h"
#include "algebra/rollup.h"
#include "algebra/semantic_cache.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "gen/zipf.h"
#include "query/node_query.h"
#include "query/workload.h"
#include "schema/lattice.h"

namespace cure {
namespace {

using algebra::Classify;
using algebra::Containment;
using algebra::QueryDesc;
using algebra::QueryKey;
using algebra::QueryResult;
using algebra::RollupExecutor;
using algebra::SelectTopK;
using algebra::SemanticCache;
using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;
using query::CureQueryEngine;
using query::ResultSink;
using schema::NodeId;

/// Same shape as the serve tests: A is a 3-level linear hierarchy
/// (24 -> 6 -> 2), B a 2-level one (9 -> 3), C flat with 5 members; SUM and
/// COUNT aggregates. Dim values are Zipf-skewed so roll-ups genuinely merge
/// groups of different support.
gen::Dataset MakeHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {24, 6, 2}));
  dims.push_back(schema::Dimension::Linear("B", {9, 3}));
  dims.push_back(schema::Dimension::Flat("C", 5));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "s"}, {schema::AggFn::kCount, 0, "c"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  const gen::ZipfSampler za(24, 1.1), zb(9, 1.1), zc(5, 1.1);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {za.Sample(&rng), zb.Sample(&rng), zc.Sample(&rng)};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

struct AlgebraFixture {
  gen::Dataset ds;
  std::unique_ptr<engine::CureCube> cube;
  std::unique_ptr<CureQueryEngine> engine;
  std::unique_ptr<schema::Lattice> lattice;

  explicit AlgebraFixture(uint64_t tuples = 600, uint64_t seed = 77) {
    ds = MakeHier(tuples, seed);
    CureOptions options;
    FactInput input{.table = &ds.table};
    auto built = BuildCure(ds.schema, input, options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    cube = std::move(built).value();
    auto direct = CureQueryEngine::Create(cube.get(), 1.0);
    EXPECT_TRUE(direct.ok());
    engine = std::move(direct).value();
    lattice = std::make_unique<schema::Lattice>(&ds.schema);
  }

  const schema::NodeIdCodec& codec() const { return lattice->codec(); }
  NodeId Node(std::vector<int> levels) const { return codec().Encode(levels); }
};

// -------------------------------------------------------- containment rules

TEST(ContainmentTest, TruthTable) {
  AlgebraFixture fx(100, 3);
  const schema::CubeSchema& schema = fx.ds.schema;
  const schema::Lattice& lattice = *fx.lattice;
  const int all_a = fx.codec().all_level(0);
  const int all_b = fx.codec().all_level(1);
  const int all_c = fx.codec().all_level(2);

  auto desc = [](NodeId node) {
    QueryDesc d;
    d.node = node;
    d.Canonicalize();
    return d;
  };

  const QueryDesc fine = desc(fx.Node({0, 0, 0}));
  const QueryDesc mid = desc(fx.Node({1, 1, 0}));
  const QueryDesc coarse = desc(fx.Node({2, all_b, all_c}));
  const QueryDesc apex = desc(fx.Node({all_a, all_b, all_c}));

  // Rule 1: node containment (ancestor = MORE detailed, paper terminology).
  EXPECT_EQ(Classify(schema, lattice, fine, fine), Containment::kIdentical);
  EXPECT_EQ(Classify(schema, lattice, fine, mid), Containment::kDerivable);
  EXPECT_EQ(Classify(schema, lattice, fine, coarse), Containment::kDerivable);
  EXPECT_EQ(Classify(schema, lattice, fine, apex), Containment::kDerivable);
  EXPECT_EQ(Classify(schema, lattice, mid, fine), Containment::kNo);
  EXPECT_EQ(Classify(schema, lattice, coarse, mid), Containment::kNo);
  // Incomparable nodes: {0, all, 0} vs {all, 0, 0}.
  EXPECT_EQ(Classify(schema, lattice, desc(fx.Node({0, all_b, 0})),
                     desc(fx.Node({all_a, 0, 0}))),
            Containment::kNo);

  // Rule 2a: every cached slice must be implied by a request slice.
  QueryDesc cached_sliced = fine;
  cached_sliced.slices.push_back({0, 1, 2});  // A at level 1 == 2
  cached_sliced.Canonicalize();
  QueryDesc request_same = mid;
  request_same.slices.push_back({0, 1, 2});
  request_same.Canonicalize();
  EXPECT_EQ(Classify(schema, lattice, cached_sliced, request_same),
            Containment::kDerivable);
  // A finer request slice whose code rolls up onto the cached one implies it.
  const uint32_t leaf_code = 9;  // A level 0
  const uint32_t mid_code = schema.dim(0).LevelToLevelMap(0, 1).value()[leaf_code];
  QueryDesc cached_mid_slice = fine;
  cached_mid_slice.slices.push_back({0, 1, mid_code});
  cached_mid_slice.Canonicalize();
  QueryDesc request_leaf_slice = fine;
  request_leaf_slice.slices.push_back({0, 0, leaf_code});
  request_leaf_slice.Canonicalize();
  EXPECT_EQ(Classify(schema, lattice, cached_mid_slice, request_leaf_slice),
            Containment::kDerivable);
  // The request dropping the cached slice widens the result: not contained.
  EXPECT_EQ(Classify(schema, lattice, cached_sliced, mid), Containment::kNo);
  // A request slice the cached relation was NOT restricted by is fine (it is
  // re-applied as a filter during derivation).
  QueryDesc request_extra = mid;
  request_extra.slices.push_back({1, 1, 1});
  request_extra.Canonicalize();
  EXPECT_EQ(Classify(schema, lattice, fine, request_extra),
            Containment::kDerivable);

  // Rule 2b: a request slice finer than the cached node's grouping on that
  // dimension cannot be checked on the cached rows.
  QueryDesc request_too_fine = coarse;
  request_too_fine.slices.push_back({0, 0, 3});  // A leaf; cached groups at 2
  request_too_fine.Canonicalize();
  QueryDesc cached_coarse_a = desc(fx.Node({2, 0, 0}));
  EXPECT_EQ(Classify(schema, lattice, cached_coarse_a, request_too_fine),
            Containment::kNo);

  // Rule 3: iceberg truncation.
  QueryDesc cached_trunc = fine;
  cached_trunc.count_aggregate = 1;
  cached_trunc.min_count = 3;
  cached_trunc.Canonicalize();
  QueryDesc request_iceberg = fine;
  request_iceberg.count_aggregate = 1;
  request_iceberg.min_count = 5;
  request_iceberg.Canonicalize();
  // Same node, same count aggregate, request threshold >= cached: reusable.
  EXPECT_EQ(Classify(schema, lattice, cached_trunc, request_iceberg),
            Containment::kDerivable);
  // A lower request threshold needs groups the truncation dropped.
  QueryDesc request_lower = fine;
  request_lower.count_aggregate = 1;
  request_lower.min_count = 2;
  request_lower.Canonicalize();
  EXPECT_EQ(Classify(schema, lattice, cached_trunc, request_lower),
            Containment::kNo);
  // A truncated relation must not be rolled up to a coarser node at all.
  QueryDesc request_coarse_iceberg = mid;
  request_coarse_iceberg.count_aggregate = 1;
  request_coarse_iceberg.min_count = 3;
  request_coarse_iceberg.Canonicalize();
  EXPECT_EQ(Classify(schema, lattice, cached_trunc, request_coarse_iceberg),
            Containment::kNo);
  // An untruncated cached result answers any threshold, even post-rollup.
  EXPECT_EQ(Classify(schema, lattice, fine, request_coarse_iceberg),
            Containment::kDerivable);
  // A non-iceberg request is also answerable from a truncated relation only
  // when nothing was actually truncated (min_count <= 1 canonicalizes away).
  EXPECT_EQ(Classify(schema, lattice, cached_trunc, mid), Containment::kNo);
}

// ------------------------------------------------- whole-lattice derivation

TEST(RollupExecutorTest, WholeLatticeRollupMatchesDirectQueries) {
  AlgebraFixture fx(600, 77);
  RollupExecutor rollup(&fx.ds.schema);
  const std::vector<NodeId> nodes = fx.lattice->AllNodes();
  size_t derivable_pairs = 0;
  for (const NodeId detailed : nodes) {
    QueryDesc cached;
    cached.node = detailed;
    cached.Canonicalize();
    ResultSink cached_rows(/*retain=*/true);
    ASSERT_TRUE(fx.engine->QueryNode(detailed, &cached_rows).ok());
    for (const NodeId coarse : nodes) {
      if (coarse == detailed) continue;
      if (!fx.lattice->IsAncestorOf(detailed, coarse)) continue;
      QueryDesc request;
      request.node = coarse;
      request.Canonicalize();
      ASSERT_EQ(Classify(fx.ds.schema, *fx.lattice, cached, request),
                Containment::kDerivable);
      ResultSink derived(/*retain=*/true);
      ASSERT_TRUE(
          rollup.Derive(cached, cached_rows.rows(), request, &derived).ok());
      ResultSink expected;
      ASSERT_TRUE(fx.engine->QueryNode(coarse, &expected).ok());
      EXPECT_EQ(derived.count(), expected.count())
          << "derive " << detailed << " -> " << coarse;
      EXPECT_EQ(derived.checksum(), expected.checksum())
          << "derive " << detailed << " -> " << coarse;
      ++derivable_pairs;
    }
  }
  EXPECT_GT(derivable_pairs, 50u);  // the 24-node lattice is densely related
}

TEST(RollupExecutorTest, SliceAndIcebergApplyDuringDerivation) {
  AlgebraFixture fx(600, 78);
  RollupExecutor rollup(&fx.ds.schema);
  const NodeId fine = fx.Node({0, 0, 0});
  const NodeId coarse = fx.Node({1, 1, 0});
  QueryDesc cached;
  cached.node = fine;
  cached.Canonicalize();
  ResultSink cached_rows(/*retain=*/true);
  ASSERT_TRUE(fx.engine->QueryNode(fine, &cached_rows).ok());

  // Slice on A at level 1 plus a post-rollup iceberg threshold.
  QueryDesc request;
  request.node = coarse;
  request.slices.push_back({0, 1, 1});
  request.count_aggregate = 1;
  request.min_count = 2;
  request.Canonicalize();
  ASSERT_EQ(Classify(fx.ds.schema, *fx.lattice, cached, request),
            Containment::kDerivable);
  ResultSink derived(/*retain=*/true);
  ASSERT_TRUE(
      rollup.Derive(cached, cached_rows.rows(), request, &derived).ok());

  ResultSink expected;
  ASSERT_TRUE(fx.engine
                  ->QueryNodeSlicedIceberg(coarse, {{0, 1, 1}}, 1, 2, &expected)
                  .ok());
  EXPECT_EQ(derived.count(), expected.count());
  EXPECT_EQ(derived.checksum(), expected.checksum());
}

TEST(RollupExecutorTest, ContainmentViolationIsInternalError) {
  AlgebraFixture fx(100, 5);
  RollupExecutor rollup(&fx.ds.schema);
  QueryDesc cached;
  cached.node = fx.Node({1, 1, 0});  // coarser than the request
  cached.Canonicalize();
  QueryDesc request;
  request.node = fx.Node({0, 0, 0});
  request.Canonicalize();
  ResultSink sink;
  const Status status = rollup.Derive(cached, {}, request, &sink);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- top-k

TEST(SelectTopKTest, DeterministicSelectionAndOrder) {
  std::vector<ResultSink::Row> rows;
  auto row = [](std::vector<uint32_t> dims, int64_t sum, int64_t count) {
    ResultSink::Row r;
    r.dims = std::move(dims);
    r.aggrs = {sum, count};
    return r;
  };
  rows.push_back(row({3, 0}, 10, 7));
  rows.push_back(row({1, 2}, 99, 7));  // ties on count with the row above
  rows.push_back(row({0, 1}, 50, 20));
  rows.push_back(row({2, 2}, 5, 1));

  // Order by aggregate 1 (count) desc, ties by ascending dims.
  std::vector<ResultSink::Row> top = SelectTopK(rows, 3, 1);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].dims, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(top[1].dims, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(top[2].dims, (std::vector<uint32_t>{3, 0}));

  // k beyond the row count returns everything, still ordered.
  EXPECT_EQ(SelectTopK(rows, 10, 1).size(), 4u);
  // Shuffled input selects identically (determinism across producers).
  std::vector<ResultSink::Row> shuffled = {rows[2], rows[0], rows[3], rows[1]};
  const std::vector<ResultSink::Row> again = SelectTopK(shuffled, 3, 1);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(again[i].dims, top[i].dims);
    EXPECT_EQ(again[i].aggrs, top[i].aggrs);
  }
}

// ------------------------------------------------------- lattice navigation

TEST(LatticeNavigationTest, RollUpAndDrillDownAreInverse) {
  AlgebraFixture fx(50, 9);
  const schema::Lattice& lattice = *fx.lattice;
  const int all_a = fx.codec().all_level(0);
  const int all_b = fx.codec().all_level(1);
  const int all_c = fx.codec().all_level(2);
  const NodeId apex = fx.Node({all_a, all_b, all_c});
  const NodeId leaf = fx.Node({0, 0, 0});

  // Drill A all the way down from the apex: ALL -> 2 -> 1 -> 0, then error.
  NodeId node = apex;
  for (const int expect_level : {2, 1, 0}) {
    auto down = lattice.DrillDownDim(node, 0);
    ASSERT_TRUE(down.ok());
    node = down.value();
    EXPECT_EQ(fx.codec().Decode(node)[0], expect_level);
  }
  EXPECT_FALSE(lattice.DrillDownDim(node, 0).ok());

  // Roll it back up: 0 -> 1 -> 2 -> ALL, then error.
  for (const int expect_level : {1, 2, all_a}) {
    auto up = lattice.RollUpDim(node, 0);
    ASSERT_TRUE(up.ok());
    node = up.value();
    EXPECT_EQ(fx.codec().Decode(node)[0], expect_level);
  }
  EXPECT_FALSE(lattice.RollUpDim(node, 0).ok());

  // RollUp(DrillDown(n, d), d) == n everywhere drilling is legal.
  for (const NodeId n : lattice.AllNodes()) {
    for (int d = 0; d < fx.ds.schema.num_dims(); ++d) {
      auto down = lattice.DrillDownDim(n, d);
      if (!down.ok()) continue;
      auto back = lattice.RollUpDim(down.value(), d);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(back.value(), n);
    }
  }
  // The flat dimension C: ALL <-> level 0 and nothing else.
  EXPECT_FALSE(lattice.DrillDownDim(leaf, 2).ok());
  auto c_up = lattice.RollUpDim(leaf, 2);
  ASSERT_TRUE(c_up.ok());
  EXPECT_EQ(fx.codec().Decode(c_up.value())[2], all_c);
}

// --------------------------------------------------------- query desc / key

TEST(QueryDescTest, CanonicalizationCollapsesEquivalentSpellings) {
  QueryDesc a;
  a.node = 7;
  a.slices = {{1, 0, 4}, {0, 1, 2}};
  a.count_aggregate = 1;
  a.min_count = 1;  // threshold 1 filters nothing
  a.Canonicalize();
  QueryDesc b;
  b.node = 7;
  b.slices = {{0, 1, 2}, {1, 0, 4}};  // same slices, different order
  b.Canonicalize();                   // no iceberg at all
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.count_aggregate, -1);
  EXPECT_EQ(a.min_count, 0);

  QueryKey ka, kb;
  static_cast<QueryDesc&>(ka) = a;
  static_cast<QueryDesc&>(kb) = b;
  ka.epoch = 3;
  kb.epoch = 4;
  EXPECT_FALSE(ka == kb);  // same query, different cube snapshot
  kb.epoch = 3;
  EXPECT_TRUE(ka == kb);
  EXPECT_EQ(ka.Hash(), kb.Hash());
}

// ---------------------------------------------------------- semantic cache

QueryKey KeyFor(NodeId node, uint64_t epoch = 0) {
  QueryKey key;
  key.node = node;
  key.epoch = epoch;
  key.Canonicalize();
  return key;
}

std::shared_ptr<const QueryResult> ResultOf(const CureQueryEngine& engine,
                                            NodeId node) {
  ResultSink sink(/*retain=*/true);
  EXPECT_TRUE(engine.QueryNode(node, &sink).ok());
  auto result = std::make_shared<QueryResult>();
  result->count = sink.count();
  result->checksum = sink.checksum();
  result->rows = sink.TakeRows();
  return result;
}

TEST(SemanticCacheTest, DerivesCoarseQueryFromCachedFineResult) {
  AlgebraFixture fx(600, 11);
  SemanticCache cache(&fx.ds.schema, 4 << 20);
  const NodeId fine = fx.Node({0, 0, 0});
  const NodeId coarse = fx.Node({1, fx.codec().all_level(1), 0});
  cache.Insert(KeyFor(fine), ResultOf(*fx.engine, fine));

  const QueryKey want = KeyFor(coarse);
  EXPECT_EQ(cache.Lookup(want), nullptr);  // no exact entry
  auto derived = cache.DeriveFromCache(want);
  ASSERT_TRUE(derived.has_value());
  EXPECT_EQ(derived->source_node, fine);

  ResultSink expected;
  ASSERT_TRUE(fx.engine->QueryNode(coarse, &expected).ok());
  EXPECT_EQ(derived->result->count, expected.count());
  EXPECT_EQ(derived->result->checksum, expected.checksum());

  // The derivation was re-inserted under the request's own key.
  auto exact_now = cache.Lookup(want);
  ASSERT_NE(exact_now, nullptr);
  EXPECT_EQ(exact_now->checksum, expected.checksum());

  const SemanticCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.semantic_hits, 1u);
  EXPECT_GT(stats.rollup_rows, 0u);
  EXPECT_EQ(stats.derived_rows, expected.count());
}

TEST(SemanticCacheTest, PrefersCheapestCandidate) {
  AlgebraFixture fx(600, 12);
  SemanticCache cache(&fx.ds.schema, 4 << 20);
  const NodeId fine = fx.Node({0, 0, 0});
  const NodeId mid = fx.Node({1, 0, 0});
  const NodeId coarse = fx.Node({2, 1, fx.codec().all_level(2)});
  cache.Insert(KeyFor(fine), ResultOf(*fx.engine, fine));
  cache.Insert(KeyFor(mid), ResultOf(*fx.engine, mid));
  // Both cached nodes can answer; the mid node groups fewer dims' worth of
  // rows, so it is the cheaper source.
  auto derived = cache.DeriveFromCache(KeyFor(coarse));
  ASSERT_TRUE(derived.has_value());
  EXPECT_EQ(derived->source_node, mid);
}

TEST(SemanticCacheTest, EpochMismatchNeverDerives) {
  AlgebraFixture fx(300, 13);
  SemanticCache cache(&fx.ds.schema, 4 << 20);
  const NodeId fine = fx.Node({0, 0, 0});
  cache.Insert(KeyFor(fine, /*epoch=*/1), ResultOf(*fx.engine, fine));
  const NodeId coarse = fx.Node({1, 0, 0});
  // An older-epoch request never matches a newer cached snapshot.
  EXPECT_FALSE(cache.DeriveFromCache(KeyFor(coarse, /*epoch=*/0)).has_value());
  // The matching epoch derives.
  EXPECT_TRUE(cache.DeriveFromCache(KeyFor(coarse, /*epoch=*/1)).has_value());
  // A refresh to epoch 2 makes every epoch-1 entry invisible — and the probe
  // lazily prunes them from the index (epochs only move forward in serving).
  EXPECT_FALSE(cache.DeriveFromCache(KeyFor(coarse, /*epoch=*/2)).has_value());
  EXPECT_FALSE(cache.DeriveFromCache(KeyFor(coarse, /*epoch=*/1)).has_value());
  EXPECT_EQ(cache.stats().index_keys, 0u);
}

TEST(SemanticCacheTest, DisabledModesNeverDerive) {
  AlgebraFixture fx(300, 14);
  const NodeId fine = fx.Node({0, 0, 0});
  const NodeId coarse = fx.Node({1, 0, 0});

  SemanticCache no_semantic(&fx.ds.schema, 4 << 20, 8,
                            /*semantic_enabled=*/false);
  EXPECT_FALSE(no_semantic.semantic_enabled());
  no_semantic.Insert(KeyFor(fine), ResultOf(*fx.engine, fine));
  EXPECT_FALSE(no_semantic.DeriveFromCache(KeyFor(coarse)).has_value());
  // The exact-key layer still works.
  EXPECT_NE(no_semantic.Lookup(KeyFor(fine)), nullptr);

  SemanticCache no_cache(&fx.ds.schema, 0);
  EXPECT_FALSE(no_cache.enabled());
  EXPECT_FALSE(no_cache.semantic_enabled());
  no_cache.Insert(KeyFor(fine), ResultOf(*fx.engine, fine));
  EXPECT_FALSE(no_cache.DeriveFromCache(KeyFor(coarse)).has_value());
}

TEST(SemanticCacheTest, EvictedEntriesAreUnindexedOnProbe) {
  AlgebraFixture fx(600, 15);
  // A budget that holds roughly one leaf-node result: inserting a second
  // fine result evicts the first, whose index entry must then be pruned by
  // the failed probe instead of producing a hit on a vanished entry.
  const NodeId fine = fx.Node({0, 0, 0});
  auto fine_result = ResultOf(*fx.engine, fine);
  SemanticCache cache(&fx.ds.schema, fine_result->ByteSize() + 64, 1);
  cache.Insert(KeyFor(fine), fine_result);
  const NodeId other = fx.Node({0, 0, 1});
  cache.Insert(KeyFor(other), ResultOf(*fx.engine, other));

  // Whichever entry survived, probing for a derivable coarse query must
  // either hit from the survivor or miss cleanly — never crash or return a
  // dangling result. Run a few probes to exercise the unindex path.
  for (int i = 0; i < 3; ++i) {
    const NodeId coarse = fx.Node({1, 0, 0});
    auto derived = cache.DeriveFromCache(KeyFor(coarse));
    if (derived.has_value()) {
      ResultSink expected;
      ASSERT_TRUE(fx.engine->QueryNode(coarse, &expected).ok());
      EXPECT_EQ(derived->result->checksum, expected.checksum());
    }
  }
  const SemanticCache::Stats stats = cache.stats();
  EXPECT_LE(stats.index_keys, 4u);
}

// ------------------------------------------------------- drill-down traces

TEST(DrillDownSessionsTest, TracesAreLatticeValidAndDeterministic) {
  AlgebraFixture fx(50, 16);
  const size_t kSessions = 20, kSteps = 12;
  const std::vector<query::DrillSession> sessions =
      query::DrillDownSessions(fx.ds.schema, kSessions, kSteps, 42);
  ASSERT_EQ(sessions.size(), kSessions);
  const schema::NodeIdCodec& codec = fx.codec();
  for (const query::DrillSession& session : sessions) {
    ASSERT_EQ(session.size(), kSteps);
    // First step is the apex.
    for (int d = 0; d < fx.ds.schema.num_dims(); ++d) {
      EXPECT_EQ(codec.Decode(session[0].node)[d], codec.all_level(d));
    }
    EXPECT_TRUE(session[0].slices.empty());
    for (const query::DrillStep& step : session) {
      ASSERT_LT(step.node, codec.num_nodes());
      const std::vector<int> levels = codec.Decode(step.node);
      for (const CureQueryEngine::Slice& slice : step.slices) {
        // Every slice is checkable on the step's node: the dimension is
        // grouped at the slice's level or finer.
        const int node_level = levels[static_cast<size_t>(slice.dim)];
        ASSERT_NE(node_level, codec.all_level(slice.dim));
        EXPECT_TRUE(node_level == slice.level ||
                    fx.ds.schema.dim(slice.dim).Derives(node_level, slice.level));
        EXPECT_LT(slice.code,
                  fx.ds.schema.dim(slice.dim).level(slice.level).cardinality);
      }
    }
  }
  // Same seed, same traces.
  const std::vector<query::DrillSession> again =
      query::DrillDownSessions(fx.ds.schema, kSessions, kSteps, 42);
  for (size_t s = 0; s < kSessions; ++s) {
    for (size_t i = 0; i < kSteps; ++i) {
      EXPECT_EQ(again[s][i].node, sessions[s][i].node);
      EXPECT_EQ(again[s][i].slices.size(), sessions[s][i].slices.size());
    }
  }
  // The traces actually exercise the lattice: some step beyond the first
  // drills down, and some session rolls back up or narrows.
  size_t drills = 0, narrows = 0;
  const schema::Lattice& lattice = *fx.lattice;
  for (const query::DrillSession& session : sessions) {
    for (size_t i = 1; i < session.size(); ++i) {
      if (lattice.NumGroupingDims(session[i].node) >
          lattice.NumGroupingDims(session[i - 1].node)) {
        ++drills;
      }
      if (session[i].slices.size() > session[i - 1].slices.size()) ++narrows;
    }
  }
  EXPECT_GT(drills, 0u);
  EXPECT_GT(narrows, 0u);
}

/// End-to-end: replaying drill-down sessions against the semantic cache must
/// produce bit-identical results to the direct engine, with a healthy
/// semantic hit rate (each step is usually derivable from its predecessor).
TEST(DrillDownSessionsTest, SemanticReplayIsBitIdenticalToEngine) {
  AlgebraFixture fx(600, 17);
  SemanticCache cache(&fx.ds.schema, 16 << 20);
  const std::vector<query::DrillSession> sessions =
      query::DrillDownSessions(fx.ds.schema, 10, 10, 7);
  uint64_t steps = 0;
  for (const query::DrillSession& session : sessions) {
    for (const query::DrillStep& step : session) {
      QueryKey key;
      key.node = step.node;
      key.slices = step.slices;
      key.Canonicalize();

      uint64_t count = 0, checksum = 0;
      auto exact = cache.Lookup(key);
      if (exact != nullptr) {
        count = exact->count;
        checksum = exact->checksum;
      } else if (auto derived = cache.DeriveFromCache(key)) {
        count = derived->result->count;
        checksum = derived->result->checksum;
      } else {
        ResultSink sink(/*retain=*/true);
        ASSERT_TRUE(
            fx.engine->QueryNodeSliced(step.node, step.slices, &sink).ok());
        auto result = std::make_shared<QueryResult>();
        result->count = sink.count();
        result->checksum = sink.checksum();
        result->rows = sink.TakeRows();
        count = result->count;
        checksum = result->checksum;
        cache.Insert(key, std::move(result));
      }

      ResultSink expected;
      ASSERT_TRUE(
          fx.engine->QueryNodeSliced(step.node, step.slices, &expected).ok());
      EXPECT_EQ(count, expected.count());
      EXPECT_EQ(checksum, expected.checksum());
      ++steps;
    }
  }
  const SemanticCache::Stats stats = cache.stats();
  EXPECT_GT(stats.semantic_hits, 0u);
  EXPECT_GT(steps, 0u);
}

}  // namespace
}  // namespace cure
