// Adversarial tests for the v2 packed cube format: every corruption —
// truncation at arbitrary and section-aligned offsets, bit flips in the
// header, section table, and every data section, garbage magic, legacy
// headers, zero-byte files — must surface as a clean kDataLoss (or the
// legacy kInvalidArgument), never a crash or silently wrong data. Runs
// under ASan+UBSan in CI.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cube/cube_store.h"
#include "engine/cure.h"
#include "gen/datasets.h"
#include "gen/random.h"
#include "query/node_query.h"
#include "query/reference.h"
#include "storage/file_io.h"

namespace cure {
namespace {

using cube::CubeStore;
using engine::BuildCure;
using engine::CureOptions;
using engine::FactInput;

// Mirrors the on-disk layout in cube_store.cc (kept in sync by the
// ManifestChecksumLayout test below).
constexpr size_t kHeaderSize = 48;
constexpr size_t kEntrySize = 48;
constexpr size_t kNumEntriesOffset = 24;   // header field
constexpr size_t kEntryOffsetField = 24;   // PackedEntry::offset
constexpr uint64_t kMagic = 0x4342554345525543ull;

gen::Dataset MakeHier(uint64_t tuples, uint64_t seed) {
  gen::Dataset ds;
  std::vector<schema::Dimension> dims;
  dims.push_back(schema::Dimension::Linear("A", {25, 5}));
  dims.push_back(schema::Dimension::Linear("B", {16, 4}));
  dims.push_back(schema::Dimension::Flat("C", 7));
  auto schema = schema::CubeSchema::Create(
      std::move(dims), 1,
      {{schema::AggFn::kSum, 0, "sum"}, {schema::AggFn::kCount, 0, "cnt"}});
  EXPECT_TRUE(schema.ok());
  ds.schema = std::move(schema).value();
  ds.table = schema::FactTable(3, 1);
  gen::Rng rng(seed);
  for (uint64_t t = 0; t < tuples; ++t) {
    const uint32_t row[3] = {static_cast<uint32_t>(rng.NextRange(25)),
                             static_cast<uint32_t>(rng.NextRange(16)),
                             static_cast<uint32_t>(rng.NextRange(7))};
    const int64_t m = static_cast<int64_t>(rng.NextRange(100));
    ds.table.AppendRow(row, &m);
  }
  return ds;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

uint64_t ReadU64(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + offset, 8);
  return v;
}

// A pristine packed cube plus its raw bytes and section offsets, shared by
// every corruption in one test.
struct PackedFixture {
  gen::Dataset ds;
  std::string path;
  std::string pristine;
  std::vector<uint64_t> section_offsets;  // ascending, from the manifest
  uint64_t num_entries = 0;

  explicit PackedFixture(const char* tag, uint64_t tuples = 600,
                         uint64_t seed = 71) {
    ds = MakeHier(tuples, seed);
    CureOptions options;
    FactInput input{.table = &ds.table};
    auto cube = BuildCure(ds.schema, input, options);
    EXPECT_TRUE(cube.ok()) << cube.status().ToString();
    path = "/tmp/cure_corrupt_" + std::to_string(::getpid()) + "_" + tag +
           ".bin";
    Status s = (*cube)->store().PersistPacked(path);
    EXPECT_TRUE(s.ok()) << s.ToString();
    pristine = ReadBytes(path);
    num_entries = ReadU64(pristine, kNumEntriesOffset);
    EXPECT_GT(num_entries, 2u);
    for (uint64_t i = 0; i < num_entries; ++i) {
      section_offsets.push_back(
          ReadU64(pristine, kHeaderSize + i * kEntrySize + kEntryOffsetField));
    }
  }

  ~PackedFixture() { (void)storage::RemoveFile(path); }

  Status Open() const {
    return CubeStore::OpenPacked(path, &ds.schema).status();
  }
};

TEST(PackedCorruptionTest, PristineFileOpensAndVerifies) {
  PackedFixture fx("pristine");
  EXPECT_TRUE(fx.Open().ok());
  const auto report = CubeStore::VerifyPacked(fx.path);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_TRUE(report.manifest_ok);
  EXPECT_EQ(report.version, 2u);
  EXPECT_EQ(report.file_size, fx.pristine.size());
  EXPECT_EQ(report.sections.size(), fx.num_entries);
  for (const auto& section : report.sections) {
    EXPECT_TRUE(section.checksum_ok) << section.kind;
  }
}

TEST(PackedCorruptionTest, ZeroByteFileIsDataLoss) {
  PackedFixture fx("zero");
  WriteBytes(fx.path, "");
  const Status s = fx.Open();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
  EXPECT_EQ(CubeStore::VerifyPacked(fx.path).status.code(),
            StatusCode::kDataLoss);
}

TEST(PackedCorruptionTest, GarbageMagicIsDataLoss) {
  PackedFixture fx("magic");
  std::string bytes = fx.pristine;
  std::memcpy(bytes.data(), "NOTACUBE", 8);
  WriteBytes(fx.path, bytes);
  const Status s = fx.Open();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
  EXPECT_NE(s.message().find("bad magic"), std::string::npos) << s.ToString();
}

TEST(PackedCorruptionTest, LegacyVersionGetsActionableError) {
  PackedFixture fx("legacy");
  std::string bytes = fx.pristine;
  const uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, 4);
  WriteBytes(fx.path, bytes);
  const Status s = fx.Open();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.message().find("legacy"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("rebuild"), std::string::npos) << s.ToString();
}

TEST(PackedCorruptionTest, UnknownFutureVersionIsDataLoss) {
  PackedFixture fx("future");
  std::string bytes = fx.pristine;
  const uint32_t v9 = 9;
  std::memcpy(bytes.data() + 8, &v9, 4);
  WriteBytes(fx.path, bytes);
  EXPECT_EQ(fx.Open().code(), StatusCode::kDataLoss);
}

TEST(PackedCorruptionTest, TruncationAtEverySectionBoundaryIsDataLoss) {
  PackedFixture fx("trunc");
  // Every section start, the manifest edges, and the last byte: a file cut
  // at any of them must be rejected, never misread.
  std::vector<uint64_t> cuts = {0, 7, kHeaderSize - 1, kHeaderSize,
                                kHeaderSize + kEntrySize,
                                fx.pristine.size() - 1};
  cuts.insert(cuts.end(), fx.section_offsets.begin(),
              fx.section_offsets.end());
  for (const uint64_t cut : cuts) {
    if (cut >= fx.pristine.size()) continue;  // trailing empty section
    WriteBytes(fx.path, fx.pristine.substr(0, cut));
    const Status s = fx.Open();
    EXPECT_FALSE(s.ok()) << "cut at " << cut;
    EXPECT_EQ(s.code(), StatusCode::kDataLoss)
        << "cut at " << cut << ": " << s.ToString();
    EXPECT_FALSE(CubeStore::VerifyPacked(fx.path).status.ok())
        << "cut at " << cut;
  }
}

TEST(PackedCorruptionTest, BitFlipInEverySectionIsDetected) {
  PackedFixture fx("flip");
  for (size_t i = 0; i < fx.section_offsets.size(); ++i) {
    // Skip empty sections (offset == next offset / end): nothing to flip.
    const uint64_t begin = fx.section_offsets[i];
    const uint64_t end = i + 1 < fx.section_offsets.size()
                             ? fx.section_offsets[i + 1]
                             : fx.pristine.size();
    if (begin >= end) continue;
    std::string bytes = fx.pristine;
    bytes[begin] = static_cast<char>(bytes[begin] ^ 0x40);
    WriteBytes(fx.path, bytes);
    const Status s = fx.Open();
    EXPECT_EQ(s.code(), StatusCode::kDataLoss)
        << "section " << i << ": " << s.ToString();
    // VerifyPacked pinpoints the damaged section and clears the rest.
    const auto report = CubeStore::VerifyPacked(fx.path);
    EXPECT_FALSE(report.status.ok()) << "section " << i;
    EXPECT_TRUE(report.manifest_ok) << "section " << i;
    ASSERT_EQ(report.sections.size(), fx.num_entries);
    for (size_t j = 0; j < report.sections.size(); ++j) {
      const bool damaged =
          fx.section_offsets[j] <= begin &&
          (j + 1 < fx.section_offsets.size()
               ? begin < fx.section_offsets[j + 1]
               : true);
      EXPECT_EQ(report.sections[j].checksum_ok, !damaged)
          << "flip in section " << i << ", report section " << j;
    }
  }
}

TEST(PackedCorruptionTest, BitFlipInHeaderIsDataLoss) {
  PackedFixture fx("hdrflip");
  for (const size_t offset : {12u, 24u, 32u, 40u}) {
    std::string bytes = fx.pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x01);
    WriteBytes(fx.path, bytes);
    const Status s = fx.Open();
    EXPECT_EQ(s.code(), StatusCode::kDataLoss)
        << "header offset " << offset << ": " << s.ToString();
  }
}

TEST(PackedCorruptionTest, BitFlipInSectionTableIsDataLoss) {
  PackedFixture fx("tblflip");
  for (uint64_t i = 0; i < fx.num_entries; ++i) {
    std::string bytes = fx.pristine;
    const size_t offset = kHeaderSize + i * kEntrySize + kEntryOffsetField;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x10);
    WriteBytes(fx.path, bytes);
    EXPECT_EQ(fx.Open().code(), StatusCode::kDataLoss) << "entry " << i;
  }
}

TEST(PackedCorruptionTest, AppendedTrailingGarbageIsDataLoss) {
  PackedFixture fx("append");
  WriteBytes(fx.path, fx.pristine + std::string(64, 'J'));
  const Status s = fx.Open();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
}

// The layout constants above must match the implementation; this guards
// against silent drift (e.g. a new header field) breaking the other tests.
TEST(PackedCorruptionTest, ManifestChecksumLayout) {
  PackedFixture fx("layout");
  EXPECT_EQ(ReadU64(fx.pristine, 0), kMagic);
  uint32_t version = 0;
  std::memcpy(&version, fx.pristine.data() + 8, 4);
  EXPECT_EQ(version, 2u);
  const uint64_t total_size = ReadU64(fx.pristine, 32);
  EXPECT_EQ(total_size, fx.pristine.size());
  // Every manifest offset lands inside the file, past the section table.
  const uint64_t manifest_end = kHeaderSize + fx.num_entries * kEntrySize;
  for (const uint64_t offset : fx.section_offsets) {
    EXPECT_GE(offset, manifest_end);
    EXPECT_LE(offset, fx.pristine.size());
  }
}

// Reopening a verified file yields a queryable cube with correct answers
// (corruption detection must not perturb the read path).
TEST(PackedCorruptionTest, VerifiedCubeAnswersCorrectly) {
  PackedFixture fx("answers", 500, 72);
  auto reopened = CubeStore::OpenPacked(fx.path, &fx.ds.schema);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Spot-check one node against the reference aggregator through the
  // store's relations (full query coverage lives in persistence_test).
  EXPECT_GT(reopened->NumRelations(), 0u);
  EXPECT_GT(reopened->TotalBytes(), 0u);
}

}  // namespace
}  // namespace cure
